// srclint CLI.
//
//   srclint [--root DIR] [--json] [paths...]
//
// With no paths, scans src/** (*.h, *.cc) under the root (default: the
// current directory). Explicit paths are repo-relative — srclint reads
// ROOT/path and dispatches rules on the relative spelling, so fixture
// trees can be checked with `srclint --root testdata/layering_bad`.
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O failure.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/srclint/srclint.h"

namespace {

int Usage() {
  std::fprintf(stderr, "usage: srclint [--root DIR] [--json] [paths...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool json = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--root") {
      if (i + 1 >= argc) {
        return Usage();
      }
      root = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }

  std::vector<srclint::Finding> findings;
  size_t scanned_count = 0;
  if (paths.empty()) {
    std::vector<std::string> scanned;
    findings = srclint::CheckTree(root, &scanned);
    scanned_count = scanned.size();
  } else {
    for (const std::string& path : paths) {
      std::ifstream in(std::filesystem::path(root) / path,
                       std::ios::binary);
      if (!in) {
        findings.push_back(
            srclint::Finding{path, 1, "io-error", "unreadable file"});
        continue;
      }
      std::ostringstream content;
      content << in.rdbuf();
      std::vector<srclint::Finding> file_findings =
          srclint::CheckSource(path, content.str());
      findings.insert(findings.end(), file_findings.begin(),
                      file_findings.end());
      ++scanned_count;
    }
  }

  bool io_failure = false;
  for (const srclint::Finding& finding : findings) {
    if (finding.rule == "io-error") {
      io_failure = true;
    }
  }

  if (json) {
    std::fputs(srclint::FindingsToJson(findings).c_str(), stdout);
    std::fputc('\n', stdout);
  } else {
    std::fputs(srclint::FindingsToText(findings).c_str(), stdout);
    std::fprintf(stderr, "srclint: %zu file(s) scanned, %zu finding(s)\n",
                 scanned_count, findings.size());
  }
  if (io_failure) {
    return 2;
  }
  return findings.empty() ? 0 : 1;
}
