#include "tools/srclint/srclint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace srclint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// ---------------------------------------------------------------------------
// Escape-hatch pragmas
// ---------------------------------------------------------------------------

// Extracts every `srclint: allow(<rule>)[: <reason>]` from one comment.
// `first_line` is the line the comment starts on; newlines inside the
// comment advance the pragma's recorded line.
void CollectAllows(std::string_view comment, int first_line,
                   std::vector<AllowPragma>* out) {
  int line = first_line;
  size_t scanned = 0;
  while (true) {
    size_t at = comment.find("srclint:", scanned);
    if (at == std::string_view::npos) {
      return;
    }
    line += static_cast<int>(
        std::count(comment.begin() + scanned, comment.begin() + at, '\n'));
    scanned = at + 8;  // Past "srclint:".
    size_t pos = scanned;
    while (pos < comment.size() && comment[pos] == ' ') {
      ++pos;
    }
    if (comment.substr(pos, 6) != "allow(") {
      continue;  // Not a pragma ("srclint:" in prose); keep scanning.
    }
    pos += 6;
    size_t close = comment.find(')', pos);
    if (close == std::string_view::npos) {
      continue;
    }
    AllowPragma pragma;
    pragma.rule = std::string(comment.substr(pos, close - pos));
    pragma.line = line;
    pos = close + 1;
    while (pos < comment.size() && comment[pos] == ' ') {
      ++pos;
    }
    if (pos < comment.size() && comment[pos] == ':') {
      ++pos;
      // Reason runs to end of comment line; comment decorations like a
      // leading "// " on continuation lines stay part of the reason text,
      // which only needs to be non-empty and human-readable.
      size_t eol = comment.find('\n', pos);
      std::string_view reason = comment.substr(
          pos, eol == std::string_view::npos ? comment.size() - pos
                                             : eol - pos);
      while (!reason.empty() && reason.front() == ' ') {
        reason.remove_prefix(1);
      }
      while (!reason.empty() &&
             (reason.back() == ' ' || reason.back() == '\r')) {
        reason.remove_suffix(1);
      }
      pragma.reason = std::string(reason);
    }
    out->push_back(std::move(pragma));
    scanned = pos;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Tokenizer (the text_lexer.h idiom, extended to C++ surface syntax)
// ---------------------------------------------------------------------------

ScannedFile Tokenize(std::string_view text) {
  ScannedFile scan;
  size_t pos = 0;
  int line = 1;
  bool at_line_start = true;  // Only whitespace seen since the last newline.

  auto advance = [&](size_t n) {
    for (size_t i = 0; i < n && pos < text.size(); ++i) {
      if (text[pos] == '\n') {
        ++line;
        at_line_start = true;
      }
      ++pos;
    }
  };

  while (pos < text.size()) {
    const char c = text[pos];

    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }

    // Line comment.
    if (c == '/' && pos + 1 < text.size() && text[pos + 1] == '/') {
      size_t end = text.find('\n', pos);
      if (end == std::string_view::npos) {
        end = text.size();
      }
      CollectAllows(text.substr(pos, end - pos), line, &scan.allows);
      advance(end - pos);
      continue;
    }

    // Block comment.
    if (c == '/' && pos + 1 < text.size() && text[pos + 1] == '*') {
      size_t end = text.find("*/", pos + 2);
      if (end == std::string_view::npos) {
        end = text.size();
      } else {
        end += 2;
      }
      CollectAllows(text.substr(pos, end - pos), line, &scan.allows);
      advance(end - pos);
      continue;
    }

    // Preprocessor directive: '#' first on its line; honors backslash
    // continuations. Collapsed into one token holding the full text.
    if (c == '#' && at_line_start) {
      Token token{TokenKind::kPreprocessor, "", line};
      size_t end = pos;
      while (end < text.size()) {
        size_t eol = text.find('\n', end);
        if (eol == std::string_view::npos) {
          eol = text.size();
        }
        size_t last = eol;
        while (last > end &&
               (text[last - 1] == '\r' || text[last - 1] == ' ')) {
          --last;
        }
        if (last > end && text[last - 1] == '\\') {
          end = eol + 1;  // Continuation: keep consuming.
          continue;
        }
        end = eol;
        break;
      }
      token.text = std::string(text.substr(pos, end - pos));
      scan.tokens.push_back(std::move(token));
      advance(end - pos);
      continue;
    }
    at_line_start = false;

    // String / char literal (with escapes).
    if (c == '"' || c == '\'') {
      // Raw string: the lexer below folds prefixes like R/u8R into the
      // preceding identifier token, so a quote right after such an
      // identifier is handled there; a bare '"' here is always cooked.
      Token token{TokenKind::kString, std::string(1, c), line};
      size_t end = pos + 1;
      while (end < text.size() && text[end] != c) {
        if (text[end] == '\\' && end + 1 < text.size()) {
          ++end;
        }
        ++end;
      }
      if (end < text.size()) {
        ++end;  // Closing quote.
      }
      token.text = std::string(text.substr(pos, end - pos));
      scan.tokens.push_back(std::move(token));
      advance(end - pos);
      continue;
    }

    // Identifier (or raw-string prefix).
    if (IsIdentStart(c)) {
      size_t end = pos;
      while (end < text.size() && IsIdentChar(text[end])) {
        ++end;
      }
      std::string ident(text.substr(pos, end - pos));
      const bool raw_prefix =
          (ident == "R" || ident == "LR" || ident == "uR" || ident == "UR" ||
           ident == "u8R") &&
          end < text.size() && text[end] == '"';
      if (raw_prefix) {
        // R"delim( ... )delim"
        size_t open = text.find('(', end);
        std::string delim =
            open == std::string_view::npos
                ? std::string()
                : std::string(text.substr(end + 1, open - end - 1));
        std::string closer = ")" + delim + "\"";
        size_t close = open == std::string_view::npos
                           ? std::string_view::npos
                           : text.find(closer, open + 1);
        size_t stop = close == std::string_view::npos
                          ? text.size()
                          : close + closer.size();
        scan.tokens.push_back(Token{
            TokenKind::kString, std::string(text.substr(pos, stop - pos)),
            line});
        advance(stop - pos);
        continue;
      }
      scan.tokens.push_back(Token{TokenKind::kIdentifier, std::move(ident),
                                  line});
      advance(end - pos);
      continue;
    }

    // Number (loose: digits, digit separators, hex/float spellings).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t end = pos;
      while (end < text.size() &&
             (IsIdentChar(text[end]) || text[end] == '.' ||
              (text[end] == '\'' && end + 1 < text.size() &&
               IsIdentChar(text[end + 1])))) {
        ++end;
      }
      scan.tokens.push_back(Token{TokenKind::kNumber,
                                  std::string(text.substr(pos, end - pos)),
                                  line});
      advance(end - pos);
      continue;
    }

    // Everything else: one punctuation character per token.
    scan.tokens.push_back(Token{TokenKind::kPunct, std::string(1, c), line});
    advance(1);
  }
  return scan;
}

// ---------------------------------------------------------------------------
// Rule machinery
// ---------------------------------------------------------------------------

namespace {

// The declarative layering table for src/. `allowed` lists the OTHER
// src/ directories a file in `dir` may include (its own directory is
// always allowed). This is the source-level twin of the CMake link
// layering in src/CMakeLists.txt: crsat_core at the bottom, the oracle
// beside (not atop) the production stack, and only the differential
// driver (exempt below) allowed to see both worlds.
struct LayerRule {
  const char* dir;
  const char* allowed;  // Space-separated directory names.
};

constexpr LayerRule kLayering[] = {
    {"base", ""},
    {"math", "base"},
    {"cr", "base math"},
    {"generator", "base math cr"},
    {"analysis", "base math cr"},
    {"flow", "base math"},
    {"lp", "base math"},
    {"expansion", "base math cr"},
    {"reasoner", "base math cr lp expansion witness"},
    {"witness", "base math cr lp flow expansion reasoner"},
    {"baseline", "base math cr lp reasoner"},
    // The conformance ground truth: bare CR semantics only. Including
    // expansion/, lp/, or flow/ here would let the system under test
    // leak into its own oracle (see src/CMakeLists.txt layering).
    {"oracle", "base math cr generator"},
    // The graph-saturation witness engine: the harness's third voice.
    // Like the oracle it votes against the reasoner, so it may see only
    // the bare CR semantics — an lp/ or reasoner/ include would let the
    // engines share a bug and hollow out the vote.
    {"saturation", "base cr"},
    // The crsatd daemon: a leaf over the whole production stack. The
    // reverse direction — reasoning code including server/ — is the
    // server-layering rule below.
    {"server", "base math cr analysis expansion lp flow reasoner witness "
               "baseline"},
};

// Files exempt from the layering rule: the public umbrella header and
// the differential driver, which by design sees both worlds.
bool LayeringExempt(const std::string& path) {
  return path == "src/crsat.h" || path == "src/oracle/conformance.h" ||
         path == "src/oracle/conformance.cc";
}

// Directories whose .cc files must thread a ResourceGuard through loops.
constexpr const char* kGuardedDirs[] = {"expansion", "lp", "flow", "witness",
                                        "saturation"};

// Directories holding exact-arithmetic tiers where double/float are
// banned (a single rounding would turn a proof into a guess).
constexpr const char* kExactDirs[] = {"lp", "math"};

// Escape-hatch rules a `srclint: allow(...)` pragma may name.
constexpr const char* kAllowableRules[] = {"unguarded-loop", "float-arith"};

// "src/lp/simplex.cc" -> "lp"; "src/crsat.h" -> ""; non-src -> "".
std::string SrcDirOf(const std::string& path) {
  if (path.rfind("src/", 0) != 0) {
    return "";
  }
  size_t slash = path.find('/', 4);
  if (slash == std::string::npos) {
    return "";
  }
  return path.substr(4, slash - 4);
}

bool InList(const std::string& needle, const char* space_separated) {
  std::istringstream stream(space_separated);
  std::string word;
  while (stream >> word) {
    if (word == needle) {
      return true;
    }
  }
  return false;
}

bool HasAllow(const ScannedFile& scan, const std::string& rule) {
  for (const AllowPragma& pragma : scan.allows) {
    if (pragma.rule == rule && !pragma.reason.empty()) {
      return true;
    }
  }
  return false;
}

// Extracts the include target from a `#include` directive, or "".
std::string IncludeTarget(const std::string& directive) {
  size_t pos = directive.find_first_not_of(" \t", 1);  // Past '#'.
  if (pos == std::string::npos ||
      directive.compare(pos, 7, "include") != 0) {
    return "";
  }
  size_t open = directive.find_first_of("\"<", pos + 7);
  if (open == std::string::npos) {
    return "";
  }
  const char close = directive[open] == '"' ? '"' : '>';
  size_t end = directive.find(close, open + 1);
  if (end == std::string::npos) {
    return "";
  }
  return directive.substr(open + 1, end - open - 1);
}

void Emit(std::vector<Finding>* findings, const std::string& file, int line,
          const char* rule, std::string message) {
  findings->push_back(Finding{file, line, rule, std::move(message)});
}

// --- Rule: include-layering -----------------------------------------------

void CheckLayering(const std::string& path, const ScannedFile& scan,
                   std::vector<Finding>* findings) {
  if (LayeringExempt(path)) {
    return;
  }
  const std::string dir = SrcDirOf(path);
  if (dir.empty()) {
    return;
  }
  const LayerRule* rule = nullptr;
  for (const LayerRule& candidate : kLayering) {
    if (dir == candidate.dir) {
      rule = &candidate;
      break;
    }
  }
  for (const Token& token : scan.tokens) {
    if (token.kind != TokenKind::kPreprocessor) {
      continue;
    }
    const std::string target = IncludeTarget(token.text);
    const std::string target_dir = SrcDirOf(target);
    if (target_dir.empty() || target_dir == dir) {
      continue;  // System header, src/-root header, or own directory.
    }
    if (rule == nullptr) {
      Emit(findings, path, token.line, "include-layering",
           "directory src/" + dir +
               "/ is missing from the layering table in "
               "tools/srclint/srclint.cc; add it before including \"" +
               target + "\"");
      return;
    }
    if (!InList(target_dir, rule->allowed)) {
      Emit(findings, path, token.line, "include-layering",
           "src/" + dir + "/ may not include \"" + target + "\" (allowed: " +
               (rule->allowed[0] == '\0' ? "only src/" + dir + "/"
                                         : std::string(rule->allowed)) +
               "); see the layering table in tools/srclint/srclint.cc");
    }
  }
}

// --- Rule: server-layering ------------------------------------------------

// src/server/ (the crsatd daemon, src/server/server.h) is a strict leaf:
// no other src/ directory may include it, with no exemptions — not even
// the files the include-layering rule exempts (src/crsat.h stays a
// library umbrella; the differential driver cross-checks reasoners, not
// daemons). A reverse edge would drag sockets and the scheduler into the
// embeddable reasoning core and invert the CMake link order
// (crsat_server links crsat, never the other way).
void CheckServerLayering(const std::string& path, const ScannedFile& scan,
                         std::vector<Finding>* findings) {
  if (path.rfind("src/", 0) != 0 || SrcDirOf(path) == "server") {
    return;
  }
  for (const Token& token : scan.tokens) {
    if (token.kind != TokenKind::kPreprocessor) {
      continue;
    }
    const std::string target = IncludeTarget(token.text);
    if (SrcDirOf(target) == "server") {
      Emit(findings, path, token.line, "server-layering",
           "src/server/ is a leaf layer: \"" + target +
               "\" may not be included from " + path +
               " — the reasoning core must stay embeddable without the "
               "daemon (link order: crsat_server -> crsat, never back)");
    }
  }
}

// --- Rule: saturation-layering --------------------------------------------

// src/saturation/ (the graph-saturation witness engine) is the third
// independent voice in the differential harness, and its entire value is
// that independence. The include-layering table above keeps its own
// includes down to bare CR semantics; this rule enforces the reverse
// direction: no production code may include it. Only the differential
// driver and the public umbrella (the include-layering exemptions) may
// see it — a reasoner/ or lp/ edge into saturation/ would let the
// system under test borrow its cross-check's logic, so the two could
// share a bug and the three-way vote would quietly become a two-way one
// (link order: crsat_conformance -> crsat_saturation, never into crsat).
void CheckSaturationLayering(const std::string& path, const ScannedFile& scan,
                             std::vector<Finding>* findings) {
  if (path.rfind("src/", 0) != 0 || SrcDirOf(path) == "saturation" ||
      LayeringExempt(path)) {
    return;
  }
  for (const Token& token : scan.tokens) {
    if (token.kind != TokenKind::kPreprocessor) {
      continue;
    }
    const std::string target = IncludeTarget(token.text);
    if (SrcDirOf(target) == "saturation") {
      Emit(findings, path, token.line, "saturation-layering",
           "src/saturation/ is an independent witness engine: \"" + target +
               "\" may only be included by the differential driver "
               "(src/oracle/conformance.*) and the umbrella header — a "
               "production edge into the engine would let the system under "
               "test share bugs with its own cross-check");
    }
  }
}

// --- Rule: unguarded-loop -------------------------------------------------

void CheckUnguardedLoops(const std::string& path, const ScannedFile& scan,
                         std::vector<Finding>* findings) {
  const std::string dir = SrcDirOf(path);
  bool applies = path.size() > 3 &&
                 path.compare(path.size() - 3, 3, ".cc") == 0;
  applies = applies && std::any_of(std::begin(kGuardedDirs),
                                   std::end(kGuardedDirs),
                                   [&](const char* d) { return dir == d; });
  if (!applies || HasAllow(scan, "unguarded-loop")) {
    return;
  }
  int first_loop_line = 0;
  bool references_guard = false;
  for (size_t i = 0; i < scan.tokens.size(); ++i) {
    const Token& token = scan.tokens[i];
    if (token.kind != TokenKind::kIdentifier) {
      continue;
    }
    if (first_loop_line == 0 && (token.text == "for" || token.text == "while") &&
        i + 1 < scan.tokens.size() && scan.tokens[i + 1].kind == TokenKind::kPunct &&
        scan.tokens[i + 1].text == "(") {
      first_loop_line = token.line;
    }
    if (token.text == "ResourceGuard" || token.text == "guard" ||
        token.text == "guard_") {
      references_guard = true;
    }
  }
  if (first_loop_line != 0 && !references_guard) {
    Emit(findings, path, first_loop_line, "unguarded-loop",
         "loop in src/" + dir +
             "/ without any ResourceGuard reference: hot paths must be "
             "resource-bounded (DESIGN.md §9); thread a guard through, or "
             "explain why the loops are bounded with "
             "`// srclint: allow(unguarded-loop): <reason>`");
  }
}

// --- Rule: banned-construct -----------------------------------------------

void CheckBannedConstructs(const std::string& path, const ScannedFile& scan,
                           std::vector<Finding>* findings) {
  const std::string dir = SrcDirOf(path);
  const bool exact_tier =
      std::any_of(std::begin(kExactDirs), std::end(kExactDirs),
                  [&](const char* d) { return dir == d; });
  const bool float_allowed = HasAllow(scan, "float-arith");
  const std::vector<Token>& tokens = scan.tokens;

  auto is_punct = [&](size_t i, const char* p) {
    return i < tokens.size() && tokens[i].kind == TokenKind::kPunct &&
           tokens[i].text == p;
  };
  auto is_ident = [&](size_t i, const char* name) {
    return i < tokens.size() && tokens[i].kind == TokenKind::kIdentifier &&
           tokens[i].text == name;
  };
  // True when the identifier at `i` is reached through a member or
  // namespace qualifier (`.x`, `->x`, `ns::x`).
  auto qualified = [&](size_t i) {
    if (i == 0) {
      return false;
    }
    return is_punct(i - 1, ".") || is_punct(i - 1, ":") ||
           (i >= 2 && is_punct(i - 1, ">") && is_punct(i - 2, "-"));
  };

  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != TokenKind::kIdentifier) {
      continue;
    }

    // std::rand / unqualified rand(.
    if (token.text == "rand" && is_punct(i + 1, "(")) {
      bool std_qualified = i >= 3 && is_punct(i - 1, ":") &&
                           is_punct(i - 2, ":") && is_ident(i - 3, "std");
      if (std_qualified || !qualified(i)) {
        Emit(findings, path, token.line, "banned-construct",
             "std::rand is non-reentrant and implementation-defined; use "
             "DeterministicRng (src/base/deterministic.h)");
      }
    }

    // Argless time(): time(), time(0), time(NULL), time(nullptr).
    if (token.text == "time" && is_punct(i + 1, "(") && !qualified(i)) {
      const bool argless =
          is_punct(i + 2, ")") ||
          ((is_ident(i + 2, "NULL") || is_ident(i + 2, "nullptr") ||
            (i + 2 < tokens.size() &&
             tokens[i + 2].kind == TokenKind::kNumber &&
             tokens[i + 2].text == "0")) &&
           is_punct(i + 3, ")"));
      if (argless) {
        Emit(findings, path, token.line, "banned-construct",
             "argless time() makes runs non-reproducible; take a "
             "std::chrono clock or a ResourceGuard deadline instead");
      }
    }

    // Raw new[]: `new` followed by a type spelling then '['.
    if (token.text == "new" && !qualified(i)) {
      for (size_t j = i + 1; j < tokens.size(); ++j) {
        const Token& t = tokens[j];
        const bool type_spelling =
            t.kind == TokenKind::kIdentifier || t.kind == TokenKind::kNumber ||
            (t.kind == TokenKind::kPunct &&
             (t.text == ":" || t.text == "<" || t.text == ">" ||
              t.text == "," || t.text == "*"));
        if (!type_spelling) {
          if (t.kind == TokenKind::kPunct && t.text == "[") {
            Emit(findings, path, token.line, "banned-construct",
                 "raw new[] has no owner; use std::vector or "
                 "std::make_unique<T[]>");
          }
          break;
        }
      }
    }

    // double/float arithmetic inside the exact tiers.
    if (exact_tier && !float_allowed &&
        (token.text == "double" || token.text == "float")) {
      Emit(findings, path, token.line, "banned-construct",
           "`" + token.text + "` inside src/" + dir +
               "/ (exact arithmetic tier): one rounding turns an "
               "infeasibility proof into a guess; use Rational / "
               "SmallRational, or justify with "
               "`// srclint: allow(float-arith): <reason>`");
    }
  }
}

// --- Rule: certify-non-bypass ---------------------------------------------

void CheckCertifyNonBypass(const std::string& path, const ScannedFile& scan,
                           std::vector<Finding>* findings) {
  if (path.rfind("src/witness/certify.", 0) == 0) {
    return;  // The one home of the class.
  }
  const bool in_witness_pipeline = path.rfind("src/witness/", 0) == 0;
  const std::vector<Token>& tokens = scan.tokens;
  auto is_punct = [&](size_t i, const char* p) {
    return i < tokens.size() && tokens[i].kind == TokenKind::kPunct &&
           tokens[i].text == p;
  };
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier ||
        tokens[i].text != "CertifiedWitness") {
      continue;
    }
    const int line = tokens[i].line;
    if (i > 0 && tokens[i - 1].kind == TokenKind::kIdentifier &&
        (tokens[i - 1].text == "class" || tokens[i - 1].text == "struct")) {
      Emit(findings, path, line, "certify-non-bypass",
           "CertifiedWitness may only be defined (or forward-declared) in "
           "src/witness/certify.h — include it instead");
      continue;
    }
    bool befriended = false;
    for (size_t back = 1; back <= 3 && back <= i; ++back) {
      if (tokens[i - back].kind == TokenKind::kIdentifier &&
          tokens[i - back].text == "friend") {
        befriended = true;
      }
    }
    if (befriended) {
      Emit(findings, path, line, "certify-non-bypass",
           "befriending CertifiedWitness would bypass the "
           "private-constructor guarantee (only ModelChecker-certified "
           "interpretations become witnesses)");
      continue;
    }
    if (is_punct(i + 1, "(")) {
      Emit(findings, path, line, "certify-non-bypass",
           "direct construction of CertifiedWitness outside "
           "src/witness/certify.*: the only factory is "
           "CertifiedWitness::Certify, which runs ModelChecker");
      continue;
    }
    if (!in_witness_pipeline && is_punct(i + 1, ":") && is_punct(i + 2, ":") &&
        i + 3 < tokens.size() && tokens[i + 3].kind == TokenKind::kIdentifier &&
        tokens[i + 3].text == "Certify") {
      Emit(findings, path, line, "certify-non-bypass",
           "CertifiedWitness::Certify may only be invoked from the witness "
           "pipeline (src/witness/); call WitnessSynthesizer instead");
    }
  }
}

// --- Rule: dual-pivot-guard -----------------------------------------------

// The dual-simplex warm-start repair pivots BEFORE phase 1's guard-polled
// main loop is reachable, so every definition of RepairPrimalFeasibility
// in src/lp/ must carry its own bound: a ResourceGuard poll under the
// "simplex/dual_pivot" key and an explicit pivot cap (`max_pivots`). A
// refactor that drops either turns a rejected carried basis into a
// potential hang — the repair loop is the one place where an adversarial
// warm start controls the iteration count.
void CheckDualPivotGuard(const std::string& path, const ScannedFile& scan,
                         std::vector<Finding>* findings) {
  if (SrcDirOf(path) != "lp") {
    return;
  }
  const std::vector<Token>& tokens = scan.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier ||
        tokens[i].text != "RepairPrimalFeasibility") {
      continue;
    }
    // Find a definition: parameter list, optional trailing specifiers,
    // then '{'. Declarations and call sites end in ';' or ',' instead.
    size_t j = i + 1;
    if (j >= tokens.size() || tokens[j].kind != TokenKind::kPunct ||
        tokens[j].text != "(") {
      continue;
    }
    int parens = 0;
    while (j < tokens.size()) {
      if (tokens[j].kind == TokenKind::kPunct) {
        if (tokens[j].text == "(") {
          ++parens;
        } else if (tokens[j].text == ")" && --parens == 0) {
          break;
        }
      }
      ++j;
    }
    ++j;
    while (j < tokens.size() && tokens[j].kind == TokenKind::kIdentifier) {
      ++j;  // const, noexcept, ...
    }
    if (j >= tokens.size() || tokens[j].kind != TokenKind::kPunct ||
        tokens[j].text != "{") {
      continue;
    }
    bool polled = false;
    bool capped = false;
    int depth = 0;
    for (; j < tokens.size(); ++j) {
      const Token& t = tokens[j];
      if (t.kind == TokenKind::kPunct) {
        if (t.text == "{") {
          ++depth;
        } else if (t.text == "}" && --depth == 0) {
          break;
        }
      } else if (t.kind == TokenKind::kString &&
                 t.text.find("simplex/dual_pivot") != std::string::npos) {
        polled = true;
      } else if (t.kind == TokenKind::kIdentifier &&
                 t.text == "max_pivots") {
        capped = true;
      }
    }
    if (!polled) {
      Emit(findings, path, tokens[i].line, "dual-pivot-guard",
           "RepairPrimalFeasibility (the dual-simplex repair loop) must "
           "poll the ResourceGuard under the \"simplex/dual_pivot\" key on "
           "every pivot: it runs before phase 1's polled loop, so without "
           "its own poll an adversarial carried basis pivots unbounded");
    }
    if (!capped) {
      Emit(findings, path, tokens[i].line, "dual-pivot-guard",
           "RepairPrimalFeasibility must enforce an explicit pivot cap "
           "(`max_pivots`): dual repair is an acceleration and must reject "
           "the carried basis and fall back to cold phase 1 instead of "
           "grinding");
    }
    i = j;
  }
}

// --- Rule: failpoint-hygiene ----------------------------------------------

// Mirror of the registry in src/base/failpoint.cc (kept sorted). The
// drift-guard test in tests/srclint_test.cc parses the real registry out
// of that file and asserts set equality with this table, so adding a
// failpoint without updating the mirror fails tier 1.
constexpr const char* kFailpointRegistry[] = {
    "alloc/expansion",
    "alloc/simplex",
    "guard/trip",
    "incremental/force_cold",
    "lp/dual_repair_abort",
    "lp/fast_tier_overflow",
    "lp/support_cover_fail",
    "lp/warm_start_reject",
    "saturation/expand",
    "saturation/materialize",
    "server/accept",
    "server/queue-full",
    "server/short-read",
    "witness/force_flow_refine",
    "witness/force_rescale",
};

// A failpoint that never fires because its id was typo'd (or computed at
// runtime, defeating the static check entirely) is a silent hole in the
// chaos sweep's coverage: the degradation path it was meant to exercise
// goes untested while the sweep still reports green. And the oracle side
// of the differential harness must stay fault-free — a fault injected
// into the ground truth makes "faulted run agrees with baseline"
// meaningless — so src/oracle/ may contain no sites at all (the chaos
// driver arms faults through the registry API, not the macro).
void CheckFailpointHygiene(const std::string& path, const ScannedFile& scan,
                           std::vector<Finding>* findings) {
  if (path == "src/base/failpoint.h" || path == "src/base/failpoint.cc") {
    return;  // The macro's and registry's own home.
  }
  const bool in_oracle = path.rfind("src/oracle/", 0) == 0;
  const std::vector<Token>& tokens = scan.tokens;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier ||
        tokens[i].text != "CRSAT_FAILPOINT") {
      continue;
    }
    const int line = tokens[i].line;
    if (in_oracle) {
      Emit(findings, path, line, "failpoint-hygiene",
           "CRSAT_FAILPOINT site in src/oracle/: the conformance ground "
           "truth must stay fault-free (arm faults through the registry "
           "API from the chaos driver instead)");
      continue;
    }
    if (i + 1 >= tokens.size() || tokens[i + 1].kind != TokenKind::kPunct ||
        tokens[i + 1].text != "(") {
      continue;  // A mention, not a call site.
    }
    const bool literal_arg = i + 2 < tokens.size() &&
                             tokens[i + 2].kind == TokenKind::kString &&
                             tokens[i + 2].text.size() >= 2 &&
                             tokens[i + 2].text.front() == '"';
    if (!literal_arg) {
      Emit(findings, path, line, "failpoint-hygiene",
           "CRSAT_FAILPOINT argument must be a string literal so the id "
           "is statically checkable against the registry in "
           "src/base/failpoint.cc");
      continue;
    }
    const std::string id =
        tokens[i + 2].text.substr(1, tokens[i + 2].text.size() - 2);
    const bool registered =
        std::any_of(std::begin(kFailpointRegistry),
                    std::end(kFailpointRegistry),
                    [&](const char* r) { return id == r; });
    if (!registered) {
      Emit(findings, path, line, "failpoint-hygiene",
           "CRSAT_FAILPOINT(\"" + id +
               "\") names an unregistered id — it can never fire and "
               "silently exempts this seam from the chaos sweep; register "
               "it in src/base/failpoint.cc (and mirror it in "
               "tools/srclint/srclint.cc)");
    }
  }
}

// --- Rule: bad-allow ------------------------------------------------------

void CheckAllowPragmas(const std::string& path, const ScannedFile& scan,
                       std::vector<Finding>* findings) {
  for (const AllowPragma& pragma : scan.allows) {
    const bool known =
        std::any_of(std::begin(kAllowableRules), std::end(kAllowableRules),
                    [&](const char* r) { return pragma.rule == r; });
    if (!known) {
      Emit(findings, path, pragma.line, "bad-allow",
           "unknown escape-hatch rule '" + pragma.rule +
               "' (allowed: unguarded-loop, float-arith)");
    } else if (pragma.reason.empty()) {
      Emit(findings, path, pragma.line, "bad-allow",
           "escape hatch allow(" + pragma.rule +
               ") requires a reason: `// srclint: allow(" + pragma.rule +
               "): <why this is safe>` — a hatch without a rationale is "
               "denied");
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

std::vector<Finding> CheckSource(const std::string& path,
                                 std::string_view content) {
  std::vector<Finding> findings;
  const ScannedFile scan = Tokenize(content);
  CheckLayering(path, scan, &findings);
  CheckServerLayering(path, scan, &findings);
  CheckSaturationLayering(path, scan, &findings);
  CheckUnguardedLoops(path, scan, &findings);
  CheckBannedConstructs(path, scan, &findings);
  CheckCertifyNonBypass(path, scan, &findings);
  CheckDualPivotGuard(path, scan, &findings);
  CheckFailpointHygiene(path, scan, &findings);
  CheckAllowPragmas(path, scan, &findings);
  return findings;
}

const std::vector<std::string>& FailpointRegistry() {
  static const std::vector<std::string>* ids = [] {
    return new std::vector<std::string>(std::begin(kFailpointRegistry),
                                        std::end(kFailpointRegistry));
  }();
  return *ids;
}

std::vector<Finding> CheckTree(const std::string& repo_root,
                               std::vector<std::string>* scanned) {
  namespace fs = std::filesystem;
  std::vector<Finding> findings;
  const fs::path src_root = fs::path(repo_root) / "src";
  std::error_code ec;
  if (!fs::is_directory(src_root, ec)) {
    findings.push_back(Finding{src_root.generic_string(), 1, "io-error",
                               "not a directory (pass the repo root via "
                               "--root)"});
    return findings;
  }
  std::vector<std::string> files;
  for (fs::recursive_directory_iterator it(src_root, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file()) {
      continue;
    }
    const std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".cc") {
      files.push_back(
          fs::relative(it->path(), repo_root, ec).generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  for (const std::string& file : files) {
    std::ifstream in(fs::path(repo_root) / file, std::ios::binary);
    if (!in) {
      findings.push_back(Finding{file, 1, "io-error", "unreadable file"});
      continue;
    }
    std::ostringstream content;
    content << in.rdbuf();
    std::vector<Finding> file_findings = CheckSource(file, content.str());
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
    if (scanned != nullptr) {
      scanned->push_back(file);
    }
  }
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.file != b.file ? a.file < b.file
                                             : a.line < b.line;
                   });
  return findings;
}

std::string FindingsToText(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& finding : findings) {
    out += finding.file + ":" + std::to_string(finding.line) + ": [" +
           finding.rule + "] " + finding.message + "\n";
  }
  return out;
}

namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string FindingsToJson(const std::vector<Finding>& findings) {
  std::string out = "{\"findings\": [";
  bool first = true;
  for (const Finding& finding : findings) {
    if (!first) {
      out += ", ";
    }
    first = false;
    out += "{\"file\": \"" + JsonEscape(finding.file) +
           "\", \"line\": " + std::to_string(finding.line) + ", \"rule\": \"" +
           JsonEscape(finding.rule) + "\", \"message\": \"" +
           JsonEscape(finding.message) + "\"}";
  }
  out += "], \"count\": " + std::to_string(findings.size()) + "}";
  return out;
}

}  // namespace srclint
