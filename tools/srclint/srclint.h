#ifndef CRSAT_TOOLS_SRCLINT_SRCLINT_H_
#define CRSAT_TOOLS_SRCLINT_SRCLINT_H_

// srclint — a dependency-free source-level checker for crsat's own
// project invariants, the ones a compiler cannot see (DESIGN.md §12):
//
//   include-layering    src/ directories may only include the layers the
//                       declarative table in srclint.cc allows; in
//                       particular src/oracle/ (minus the differential
//                       driver) must stay source-isolated from
//                       expansion//lp//flow/, upgrading PR 5's link-time
//                       isolation to a source-level gate.
//   server-layering     src/server/ (the crsatd daemon) is a strict
//                       leaf: no other src/ directory may include it —
//                       not even the include-layering exemptions. The
//                       reasoning core must stay embeddable without the
//                       daemon (crsat_server links crsat, never back).
//   unguarded-loop      a .cc in expansion//lp//flow//witness/ that
//                       contains a loop must reference a ResourceGuard
//                       somewhere (resource-bounded reasoning, DESIGN.md
//                       §9) or carry an explicit escape hatch:
//                       `// srclint: allow(unguarded-loop): <reason>`.
//   banned-construct    std::rand, argless time(), raw new[] anywhere in
//                       src/; `double`/`float` inside the exact-arithmetic
//                       tiers src/lp/ and src/math/ (escape hatch:
//                       allow(float-arith)).
//   certify-non-bypass  `CertifiedWitness` may only be defined,
//                       befriended, or constructed in
//                       src/witness/certify.*, and its `Certify` factory
//                       invoked only from the witness pipeline
//                       (src/witness/): nobody mints a certificate
//                       without running ModelChecker.
//   dual-pivot-guard    any definition of `RepairPrimalFeasibility` in
//                       src/lp/ (the dual-simplex warm-start repair, the
//                       one pivot loop that runs before phase 1's polled
//                       loop) must poll the ResourceGuard under the
//                       "simplex/dual_pivot" key and enforce an explicit
//                       `max_pivots` cap.
//   failpoint-hygiene   every `CRSAT_FAILPOINT(...)` site must pass a
//                       string literal naming an id from the static
//                       registry in src/base/failpoint.cc (mirrored in
//                       srclint.cc with a drift-guard test) — a typo'd or
//                       computed id silently never fires, which is worse
//                       than a crash in a fault-injection seam. And
//                       src/oracle/ must contain no sites at all: the
//                       ground truth stays fault-free (the chaos driver
//                       arms faults through the registry API instead).
//   bad-allow           an escape-hatch comment missing its reason string
//                       (reasons are mandatory: the hatch documents *why*
//                       the invariant is safe to waive, or it is denied).
//
// The checker is deliberately lexical: a hand-rolled C++ tokenizer (the
// same idiom as src/cr/text_lexer.h — no LLVM, no external deps) over
// which each rule matches token patterns. That keeps it fast enough to
// run as a tier-1 ctest over the whole tree and trivially auditable.
// Lexical also means approximate; rules are tuned so the *absence* of a
// finding is meaningful on this codebase, and every rule has fixture
// tests pinning both the catch and the clean pass (tests/srclint_test.cc).

#include <string>
#include <string_view>
#include <vector>

namespace srclint {

/// One rule violation at a source location.
struct Finding {
  std::string file;  // Path as given to the scan (repo-relative in CI).
  int line = 1;
  std::string rule;     // e.g. "include-layering".
  std::string message;  // Human-readable, single line.
};

/// A minimal C++ token. Comments are not tokens (escape hatches inside
/// them are collected separately); preprocessor directives collapse to a
/// single `kPreprocessor` token holding the whole logical line.
enum class TokenKind {
  kIdentifier,
  kNumber,
  kString,        // String or char literal (raw strings included).
  kPunct,         // One punctuation character.
  kPreprocessor,  // Full directive text, continuations joined.
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  int line = 1;
};

/// An `// srclint: allow(<rule>)[: <reason>]` escape hatch found in a
/// comment. A hatch without a non-empty reason is itself a finding.
struct AllowPragma {
  std::string rule;
  std::string reason;
  int line = 1;
};

/// Tokenization result for one file.
struct ScannedFile {
  std::vector<Token> tokens;
  std::vector<AllowPragma> allows;
};

/// Tokenizes C++ source text. Never fails: unexpected bytes become
/// single-character punct tokens (the rules simply won't match them).
ScannedFile Tokenize(std::string_view text);

/// Runs every rule over one file's content. `path` must be the
/// repo-relative path (e.g. "src/lp/simplex.cc") — rules dispatch on it.
std::vector<Finding> CheckSource(const std::string& path,
                                 std::string_view content);

/// Scans `src/**` (*.h, *.cc) under `repo_root` and returns all findings,
/// sorted by file then line. Appends scanned file paths to `*scanned`
/// when non-null. IO errors surface as findings with rule "io-error".
std::vector<Finding> CheckTree(const std::string& repo_root,
                               std::vector<std::string>* scanned = nullptr);

/// The failpoint-hygiene rule's mirrored catalog of registered failpoint
/// ids (sorted). Exposed so tests can cross-check it against the real
/// registry in src/base/failpoint.cc and fail on drift.
const std::vector<std::string>& FailpointRegistry();

/// Render findings: one `file:line: [rule] message` line each.
std::string FindingsToText(const std::vector<Finding>& findings);

/// Single JSON object: {"findings": [...], "count": N}.
std::string FindingsToJson(const std::vector<Finding>& findings);

}  // namespace srclint

#endif  // CRSAT_TOOLS_SRCLINT_SRCLINT_H_
