// Fixture: three ways to mint an uncertified witness.
class CertifiedWitness {
 public:
  static int Certify(int x) { return x; }
};

int Forge() {
  CertifiedWitness forged = CertifiedWitness();
  (void)forged;
  return CertifiedWitness::Certify(1);
}
