#include <chrono>
#include <memory>
#include <vector>

// Fixture: the sanctioned spellings. `random()` and `time_point` must not
// trip the rand/time matchers; a placement-style `new Widget` (no
// brackets) must not trip new[]; member calls like clock.time() are fine.
struct Clock {
  long time(long base) { return base; }
};

long Tidy() {
  std::vector<int> slots(8);
  auto widget = std::make_unique<std::vector<int>>(4);
  Clock clock;
  auto now = std::chrono::steady_clock::now();
  (void)now;
  return clock.time(7) + slots[0] + static_cast<long>(widget->size());
}
