// Fixture: floating point inside the exact-arithmetic tier.
double Approximate(int n) { return n / 3.0; }
