// Fixture: the oracle sticking to its allowed layers.
#include "src/base/status.h"
#include "src/cr/schema.h"
#include "src/generator/random_schema.h"
#include "src/oracle/brute_force.h"

int StayInLane() { return 0; }
