// Fixture: a hot loop with no resource bound and no escape hatch.
int Pump(int rounds) {
  int total = 0;
  for (int i = 0; i < rounds; ++i) {
    total += i;
  }
  return total;
}
