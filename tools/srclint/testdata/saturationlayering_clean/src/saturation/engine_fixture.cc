// Fixture: the witness engine staying on bare CR semantics is clean.
#include "src/base/result.h"
#include "src/cr/schema.h"

int SaturateIndependently() { return 0; }
