// Fixture: the differential driver is the one production file allowed to
// see the engine — it is where the three-way vote happens.
#include "src/saturation/saturation.h"

int TallyTheVote() { return 0; }
