// Fixture: the shape the dual-pivot-guard rule demands — a per-pivot
// guard poll under "simplex/dual_pivot" and an explicit max_pivots cap.
#include "src/lp/tableau.h"

namespace srclint_fixture {

WarmStartOutcome Tableau::RepairPrimalFeasibility() {
  const unsigned long max_pivots = 64 + 4 * basis_.size();
  while (HasNegativeRhs()) {
    if (guard_ != nullptr && !guard_->Check("simplex/dual_pivot").ok()) {
      return WarmStartOutcome::kTripped;
    }
    if (dual_pivots_ >= max_pivots) {
      return WarmStartOutcome::kRejected;
    }
    ++dual_pivots_;
    PivotOnce();
  }
  return WarmStartOutcome::kFeasible;
}

}  // namespace srclint_fixture
