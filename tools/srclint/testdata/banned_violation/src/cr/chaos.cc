#include <cstdlib>
#include <ctime>

// Fixture: every portable banned construct in one file.
int Chaos() {
  int* slots = new int[8];
  slots[0] = std::rand();
  slots[1] = static_cast<int>(time(nullptr));
  return slots[0] + slots[1];
}
