// Fixture: the same loop, resource-bounded.
class ResourceGuard;

int Pump(int rounds, ResourceGuard* guard) {
  int total = 0;
  for (int i = 0; i < rounds; ++i) {
    if (guard != nullptr) {
      total += i;
    }
  }
  return total;
}
