// Fixture: the brute-force oracle peeking at the system under test.
#include "src/lp/simplex.h"

int PeekAtSolver() { return 0; }
