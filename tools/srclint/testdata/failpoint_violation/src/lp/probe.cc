// Fixture: two failpoint-hygiene violations in a guarded-tier file —
// an unregistered id (can never fire) and a computed id (statically
// uncheckable). No loops, so unguarded-loop stays quiet.
#include "src/base/failpoint.h"

namespace crsat {

bool ProbeOnce(const char* dynamic_id) {
  if (CRSAT_FAILPOINT("lp/not_a_registered_id")) {
    return false;
  }
  if (CRSAT_FAILPOINT(dynamic_id)) {
    return false;
  }
  return true;
}

}  // namespace crsat
