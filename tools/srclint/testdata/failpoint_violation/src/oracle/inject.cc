// Fixture: a CRSAT_FAILPOINT site inside src/oracle/ — violation even
// with a perfectly registered id, because the ground truth must stay
// fault-free.
#include "src/base/failpoint.h"

namespace crsat {

bool OracleStep() {
  if (CRSAT_FAILPOINT("guard/trip")) {
    return false;
  }
  return true;
}

}  // namespace crsat
