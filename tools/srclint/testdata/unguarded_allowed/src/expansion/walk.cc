#include <vector>

// srclint: allow(unguarded-loop): fixture — iterates a caller-provided
// vector once; the caller bounded its size.
int Walk(const std::vector<int>& steps) {
  int total = 0;
  for (int step : steps) {
    total += step;
  }
  return total;
}
