// Fixture: the reasoning core reaching up into the daemon layer — the
// reverse edge the server-layering rule forbids.
#include "src/lp/simplex.h"
#include "src/server/scheduler.h"

int ReasonOverTheWire() { return 0; }
