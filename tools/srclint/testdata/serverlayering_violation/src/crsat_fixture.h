// Fixture: even an src/-root umbrella header (exempt from
// include-layering) may not pull the daemon into the library surface.
#include "src/server/client.h"
