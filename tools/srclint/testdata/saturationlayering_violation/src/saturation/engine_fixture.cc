// Fixture: the witness engine borrowing the production LP tier — the
// dependence that would let it inherit the reasoner's bugs.
#include "src/cr/schema.h"
#include "src/lp/simplex.h"

int SaturateWithSimplex() { return 0; }
