// Fixture: production code peeking into the independent witness engine —
// the reverse edge the saturation-layering rule forbids.
#include "src/saturation/saturation.h"

int PeekAtTheWitnessEngine() { return 0; }
