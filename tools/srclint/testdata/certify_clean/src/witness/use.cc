#include "src/witness/certify.h"

// Fixture: legitimate pipeline use — naming the type from outside
// certify.* is allowed; only defining, befriending, or constructing it
// is not. (No loops here, so no unguarded-loop hatch is needed.)
void Use(const CertifiedWitness& witness) {
  (void)witness;
}
