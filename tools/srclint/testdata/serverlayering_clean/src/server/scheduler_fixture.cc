// Fixture: the daemon layer including downward is fine — server/ sits on
// top of the production stack (and on itself).
#include "src/base/thread_pool.h"
#include "src/reasoner/satisfiability.h"
#include "src/server/protocol.h"

int ScheduleSomething() { return 0; }
