// Fixture: reasoning code staying inside its own layering is clean.
#include "src/expansion/expansion.h"
#include "src/lp/simplex.h"

int ReasonQuietly() { return 0; }
