// Fixture: a reasonless hatch plus a typo'd rule name.
// srclint: allow(unguarded-loop)
// srclint: allow(ungarded-loop): note the typo
int Hatch() {
  int total = 0;
  for (int i = 0; i < 3; ++i) {
    total += i;
  }
  return total;
}
