// Fixture: a well-formed failpoint seam — string-literal id drawn from
// the registry, outside src/oracle/. Must produce zero findings.
#include "src/base/failpoint.h"

namespace crsat {

bool ProbeOnce() {
  if (CRSAT_FAILPOINT("lp/warm_start_reject")) {
    return false;
  }
  return true;
}

}  // namespace crsat
