// Fixture: a dual-simplex repair loop that lost both its guard poll and
// its pivot cap. References `guard_` so only dual-pivot-guard fires.
#include "src/lp/tableau.h"

namespace srclint_fixture {

WarmStartOutcome Tableau::RepairPrimalFeasibility() {
  while (HasNegativeRhs()) {
    guard_->Touch();  // Mentions the guard but never polls the pivot key.
    PivotOnce();
  }
  return WarmStartOutcome::kFeasible;
}

}  // namespace srclint_fixture
