#!/usr/bin/env bash
# server_smoke.sh — end-to-end parity sweep for crsatd (DESIGN.md §15).
#
# Starts the daemon on a unix socket, drives 200+ mixed requests through
# `crsat_cli client`, and diffs every response (stdout bytes AND exit
# code) against the one-shot CLI run on the same schema. Two passes:
#
#   clean  — every response must be byte-identical. No exceptions.
#   chaos  — the daemon runs under a deterministic server-seam failpoint
#            schedule (accept skip, 1-byte reads, a forced admission
#            shed). Responses must still be byte-identical OR degrade to
#            the resource family (exit 3, PR 8 ladder rung 3: an honest
#            UNKNOWN, never a different answer).
#
# Ends with a graceful drain via the shutdown request; the daemon
# process must exit 0. CI runs this under ASan+UBSan (server-smoke job).
#
# Usage: tools/server_smoke.sh <crsat_cli> [<schema-dir>]
set -u

CLI=${1:?usage: server_smoke.sh <crsat_cli> [<schema-dir>]}
SCHEMA_DIR=${2:-examples/schemas}
ROUNDS=${ROUNDS:-6}

WORK=$(mktemp -d)
SOCK="$WORK/crsatd.sock"
trap 'kill $DAEMON_PID 2>/dev/null; rm -rf "$WORK"' EXIT

FAILURES=0
REQUESTS=0
DEGRADED=0

start_daemon() {
  "$CLI" serve --unix-socket "$SOCK" >"$WORK/daemon.log" 2>&1 &
  DAEMON_PID=$!
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return 0
    kill -0 "$DAEMON_PID" 2>/dev/null || break
    sleep 0.1
  done
  echo "FATAL: daemon did not come up" >&2
  cat "$WORK/daemon.log" >&2
  exit 1
}

stop_daemon() {
  "$CLI" client --unix-socket "$SOCK" shutdown >/dev/null 2>&1
  wait "$DAEMON_PID"
  local code=$?
  if [ $code -ne 0 ]; then
    echo "FAIL: daemon exited $code after graceful drain" >&2
    cat "$WORK/daemon.log" >&2
    FAILURES=$((FAILURES + 1))
  fi
  rm -f "$SOCK"
}

# The request mix; `client_args|oneshot_args` per entry.
mix_for() {
  local schema=$1
  echo "check $schema|check $schema"
  echo "lint $schema|lint $schema"
  echo "lint $schema --json|lint $schema --json"
  echo "witness $schema text|check $schema --witness=text"
  echo "witness $schema dot|check $schema --witness=dot"
}

# Reference pass: record the one-shot CLI's stdout + exit per mix entry,
# with no failpoints active.
declare -A EXPECT_OUT EXPECT_CODE
record_expectations() {
  local i=0
  for schema in "$SCHEMA_DIR"/*.cr; do
    while IFS='|' read -r _ oneshot; do
      env -u CRSAT_FAILPOINTS "$CLI" $oneshot >"$WORK/expect_$i.out" 2>/dev/null
      EXPECT_CODE["$oneshot"]=$?
      EXPECT_OUT["$oneshot"]="$WORK/expect_$i.out"
      i=$((i + 1))
    done < <(mix_for "$schema")
  done
}

# One sweep of ROUNDS x schemas x mix through the client. $1 names the
# pass; in pass "chaos" a client exit of 3 is an accepted degradation.
run_pass() {
  local pass=$1
  for _ in $(seq 1 "$ROUNDS"); do
    for schema in "$SCHEMA_DIR"/*.cr; do
      while IFS='|' read -r clientcmd oneshot; do
        env -u CRSAT_FAILPOINTS "$CLI" client --unix-socket "$SOCK" \
          $clientcmd >"$WORK/got.out" 2>/dev/null
        local code=$?
        REQUESTS=$((REQUESTS + 1))
        if [ "$pass" = chaos ] && [ $code -eq 3 ] &&
           [ "${EXPECT_CODE[$oneshot]}" -ne 3 ]; then
          DEGRADED=$((DEGRADED + 1))
          continue
        fi
        if [ $code -ne "${EXPECT_CODE[$oneshot]}" ]; then
          echo "FAIL($pass): '$clientcmd' exit $code," \
               "one-shot '$oneshot' exit ${EXPECT_CODE[$oneshot]}" >&2
          FAILURES=$((FAILURES + 1))
        elif ! cmp -s "$WORK/got.out" "${EXPECT_OUT[$oneshot]}"; then
          echo "FAIL($pass): '$clientcmd' stdout differs from" \
               "one-shot '$oneshot':" >&2
          diff "${EXPECT_OUT[$oneshot]}" "$WORK/got.out" | head -10 >&2
          FAILURES=$((FAILURES + 1))
        fi
      done < <(mix_for "$schema")
    done
  done
}

record_expectations

echo "== clean pass =="
start_daemon
run_pass clean
CLEAN_REQUESTS=$REQUESTS
stop_daemon

echo "== chaos pass (server-seam failpoint schedule) =="
export CRSAT_FAILPOINTS="server/short-read=every:3,server/accept=nth:4,server/queue-full=nth:6"
start_daemon
unset CRSAT_FAILPOINTS
run_pass chaos
stop_daemon

echo
echo "requests: $REQUESTS (clean: $CLEAN_REQUESTS), degraded-to-resource:" \
     "$DEGRADED, failures: $FAILURES"
if [ "$CLEAN_REQUESTS" -lt 200 ]; then
  echo "FAIL: clean pass drove only $CLEAN_REQUESTS requests (< 200)" >&2
  exit 1
fi
if [ "$FAILURES" -ne 0 ]; then
  exit 1
fi
echo "all responses byte-identical to the one-shot CLI" \
     "(chaos degradations: $DEGRADED, all resource-status)"
