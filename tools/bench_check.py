#!/usr/bin/env python3
"""Gate benchmark regressions against the committed trajectory.

Compares a freshly produced bench_parallel JSON against the committed
BENCH_reasoner.json and fails (exit 1) when any matched row's wall time
regressed by more than the tolerance (default 20%). Rows are matched on
(workload name, thread count); rows marked `skipped_single_core` on
either side, and rows with no counterpart (different --depth/--schemas
parameters change the workload name), are reported and skipped rather
than failed — the gate only ever compares like with like.

Counter drift (solves/pivots) on matched rows is reported informationally:
those counts are deterministic, so a change is a behavior change, but the
wall clock is the contract this gate enforces.

Usage:
  tools/bench_check.py --baseline BENCH_reasoner.json \
      --fresh BENCH_reasoner.smoke.json [--tolerance 0.20]
"""

import argparse
import json
import sys


def load_rows(path):
    """Returns {(workload_name, threads): run_row} for comparable rows,
    or None (after printing an error) when the file is missing/malformed.
    Rows whose wall_ms is not a finite number are warned about and
    dropped — an interrupted bench run writes nulls, and the gate must
    degrade to "fewer rows compared", not a traceback."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot load {path}: {error}", file=sys.stderr)
        return None
    rows = {}
    if not isinstance(doc, dict):
        print(f"WARN  {path}: top-level JSON is not an object; no rows")
        return rows
    for workload in doc.get("workloads", []):
        name = workload.get("name", "?")
        for run in workload.get("runs", []):
            if run.get("skipped_single_core"):
                continue
            threads = run.get("threads")
            if threads is None or "wall_ms" not in run:
                continue
            try:
                wall = float(run["wall_ms"])
            except (TypeError, ValueError):
                print(f"WARN  {name} [threads={threads}] in {path}: "
                      f"non-numeric wall_ms {run['wall_ms']!r}; row dropped")
                continue
            if wall != wall or wall in (float("inf"), float("-inf")):
                print(f"WARN  {name} [threads={threads}] in {path}: "
                      f"non-finite wall_ms {wall!r}; row dropped")
                continue
            rows[(name, threads)] = run
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_reasoner.json")
    parser.add_argument("--fresh", required=True,
                        help="freshly produced bench_parallel JSON")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional wall-time regression "
                             "per row (default 0.20)")
    args = parser.parse_args()

    baseline = load_rows(args.baseline)
    fresh = load_rows(args.fresh)
    if baseline is None or fresh is None:
        return 2

    failures = []
    compared = 0
    for key in sorted(baseline):
        name, threads = key
        if key not in fresh:
            print(f"SKIP  {name} [threads={threads}]: no fresh row "
                  "(different bench parameters?)")
            continue
        base_wall = float(baseline[key]["wall_ms"])
        fresh_wall = float(fresh[key]["wall_ms"])
        compared += 1
        if base_wall <= 0:
            print(f"SKIP  {name} [threads={threads}]: zero baseline wall")
            continue
        ratio = fresh_wall / base_wall
        verdict = "OK  "
        if ratio > 1.0 + args.tolerance:
            verdict = "FAIL"
            failures.append(
                f"{name} [threads={threads}]: {base_wall:.0f} ms -> "
                f"{fresh_wall:.0f} ms ({(ratio - 1.0) * 100.0:+.1f}%, "
                f"tolerance {args.tolerance * 100.0:.0f}%)")
        print(f"{verdict}  {name} [threads={threads}]: "
              f"{base_wall:.0f} ms -> {fresh_wall:.0f} ms "
              f"({(ratio - 1.0) * 100.0:+.1f}%)")
        for counter in ("solves", "pivots"):
            if counter in baseline[key] and counter in fresh[key]:
                base_count = baseline[key][counter]
                fresh_count = fresh[key][counter]
                if base_count != fresh_count:
                    print(f"      note: {counter} changed "
                          f"{base_count} -> {fresh_count} "
                          "(deterministic counter; behavior change)")

    for key in sorted(fresh):
        if key not in baseline:
            name, threads = key
            print(f"SKIP  {name} [threads={threads}]: no baseline row")

    if compared == 0:
        print("error: no comparable rows — workload names/threads in the "
              "fresh JSON match nothing in the baseline", file=sys.stderr)
        return 1
    if failures:
        print("\nwall-time regressions beyond tolerance:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\n{compared} row(s) compared, all within "
          f"{args.tolerance * 100.0:.0f}% of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
