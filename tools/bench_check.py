#!/usr/bin/env python3
"""Gate benchmark regressions against the committed trajectory.

Compares a freshly produced bench_parallel JSON against the committed
BENCH_reasoner.json and fails (exit 1) when any matched row's wall time
regressed by more than the tolerance (default 20%). Rows are matched on
(workload name, thread count); rows marked `skipped_single_core` on
either side, and rows with no counterpart (different --depth/--schemas
parameters change the workload name), are reported and skipped rather
than failed — the gate only ever compares like with like.

Rows marked `oversubscribed` (produced by `bench_parallel
--force-multithread` on a machine with fewer cores than threads) ARE
compared, but their wall-time drift is advisory (WARN, never FAIL):
the wall clock there measures scheduler noise, not scaling. What the
gate does enforce on every multi-thread row, oversubscribed or not, is
determinism — `deterministic_across_threads` must be true in the fresh
JSON, and any workload with multi-thread baseline rows must have
multi-thread fresh rows (so a single-core CI runner can't silently
drop the cross-thread cross-check; it must pass --force-multithread).

Counter drift (solves/pivots) on matched rows is reported informationally:
those counts are deterministic, so a change is a behavior change, but the
wall clock is the contract this gate enforces.

With `--mode server` the same comparison runs over bench_server output
(BENCH_server.json): rows are matched on (workload name, client count),
a req/s drop beyond the tolerance is reported as WARN only (loopback
throughput is noisy in CI), but a nonzero `protocol_errors` or
`mismatches` count in the fresh run is a hard FAIL — the service layer
never gets to break framing or change a verdict, at any load.

Usage:
  tools/bench_check.py --baseline BENCH_reasoner.json \
      --fresh BENCH_reasoner.smoke.json [--tolerance 0.20]
  tools/bench_check.py --mode server --baseline BENCH_server.json \
      --fresh BENCH_server.smoke.json
"""

import argparse
import json
import sys


def load_rows(path):
    """Returns (doc, {(workload_name, threads): run_row}) for comparable
    rows, or (None, None) (after printing an error) when the file is
    missing/malformed. Rows whose wall_ms is not a finite number are
    warned about and dropped — an interrupted bench run writes nulls,
    and the gate must degrade to "fewer rows compared", not a
    traceback. `oversubscribed` rows are kept (their determinism and
    presence are gated; their timing is advisory)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot load {path}: {error}", file=sys.stderr)
        return None, None
    rows = {}
    if not isinstance(doc, dict):
        print(f"WARN  {path}: top-level JSON is not an object; no rows")
        return {}, rows
    for workload in doc.get("workloads", []):
        name = workload.get("name", "?")
        for run in workload.get("runs", []):
            if run.get("skipped_single_core"):
                continue
            threads = run.get("threads")
            if threads is None or "wall_ms" not in run:
                continue
            try:
                wall = float(run["wall_ms"])
            except (TypeError, ValueError):
                print(f"WARN  {name} [threads={threads}] in {path}: "
                      f"non-numeric wall_ms {run['wall_ms']!r}; row dropped")
                continue
            if wall != wall or wall in (float("inf"), float("-inf")):
                print(f"WARN  {name} [threads={threads}] in {path}: "
                      f"non-finite wall_ms {wall!r}; row dropped")
                continue
            rows[(name, threads)] = run
    return doc, rows


def load_server_rows(path):
    """Returns {(workload_name, clients): run_row} from a bench_server
    JSON, or None (after printing an error) when the file is
    missing/malformed. Rows without a finite req_per_s are dropped with
    a warning, mirroring load_rows."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot load {path}: {error}", file=sys.stderr)
        return None
    rows = {}
    if not isinstance(doc, dict):
        print(f"WARN  {path}: top-level JSON is not an object; no rows")
        return rows
    for workload in doc.get("workloads", []):
        name = workload.get("name", "?")
        for run in workload.get("runs", []):
            clients = run.get("clients")
            if clients is None or "req_per_s" not in run:
                continue
            try:
                rate = float(run["req_per_s"])
            except (TypeError, ValueError):
                print(f"WARN  {name} [clients={clients}] in {path}: "
                      f"non-numeric req_per_s {run['req_per_s']!r}; "
                      "row dropped")
                continue
            if rate != rate or rate in (float("inf"), float("-inf")):
                print(f"WARN  {name} [clients={clients}] in {path}: "
                      f"non-finite req_per_s {rate!r}; row dropped")
                continue
            rows[(name, clients)] = run
    return rows


def check_server(args):
    """The --mode server gate: correctness counters are hard failures,
    throughput drift is advisory."""
    baseline = load_server_rows(args.baseline)
    fresh = load_server_rows(args.fresh)
    if baseline is None or fresh is None:
        return 2

    failures = []
    compared = 0
    for key in sorted(fresh):
        name, clients = key
        run = fresh[key]
        for counter in ("protocol_errors", "mismatches"):
            count = run.get(counter, 0)
            if count:
                failures.append(
                    f"{name} [clients={clients}]: {counter} = {count} "
                    "(must be 0)")
        if key not in baseline:
            print(f"SKIP  {name} [clients={clients}]: no baseline row")
            continue
        base_rate = float(baseline[key]["req_per_s"])
        fresh_rate = float(run["req_per_s"])
        compared += 1
        if base_rate <= 0:
            print(f"SKIP  {name} [clients={clients}]: zero baseline rate")
            continue
        ratio = fresh_rate / base_rate
        verdict = "OK  "
        if ratio < 1.0 - args.tolerance:
            verdict = "WARN"
        print(f"{verdict}  {name} [clients={clients}]: "
              f"{base_rate:.0f} req/s -> {fresh_rate:.0f} req/s "
              f"({(ratio - 1.0) * 100.0:+.1f}%)"
              + ("  [regression beyond tolerance — advisory only]"
                 if verdict == "WARN" else ""))

    if compared == 0 and not failures:
        print("error: no comparable rows — workload names/clients in the "
              "fresh JSON match nothing in the baseline", file=sys.stderr)
        return 1
    if failures:
        print("\nservice-correctness failures:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\n{compared} row(s) compared; throughput drift is advisory, "
          "protocol_errors/mismatches all zero")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_reasoner.json")
    parser.add_argument("--fresh", required=True,
                        help="freshly produced bench_parallel JSON")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional wall-time regression "
                             "per row (default 0.20)")
    parser.add_argument("--mode", choices=("reasoner", "server"),
                        default="reasoner",
                        help="reasoner: gate bench_parallel wall times; "
                             "server: gate bench_server correctness "
                             "counters, warn on req/s drops")
    args = parser.parse_args()

    if args.mode == "server":
        return check_server(args)

    _, baseline = load_rows(args.baseline)
    fresh_doc, fresh = load_rows(args.fresh)
    if baseline is None or fresh is None:
        return 2

    failures = []
    compared = 0

    # Determinism is the one property the multi-thread rows certify on
    # any core count: the bench binary exits non-zero on a digest
    # mismatch, and the JSON records the verdict — a false here means
    # someone committed output from a failed run.
    if fresh_doc.get("deterministic_across_threads") is False:
        failures.append(
            "fresh run reports deterministic_across_threads = false")
    for workload in fresh_doc.get("workloads", []):
        if workload.get("deterministic") is False:
            failures.append(f"{workload.get('name', '?')}: fresh run "
                            "reports deterministic = false")

    # Any workload the baseline measures at >1 threads must have fresh
    # multi-thread rows too (real or oversubscribed): a single-core
    # runner that forgets --force-multithread would otherwise silently
    # skip the cross-thread determinism check.
    fresh_names = {name for name, _ in fresh}
    for name in sorted({name for name, threads in baseline if threads > 1}):
        if name not in fresh_names:
            continue  # Different bench parameters; nothing to require.
        if not any(n == name and t > 1 for n, t in fresh):
            failures.append(
                f"{name}: baseline has multi-thread rows but the fresh "
                "run has none (single-core runner? pass "
                "--force-multithread)")

    for key in sorted(baseline):
        name, threads = key
        if key not in fresh:
            print(f"SKIP  {name} [threads={threads}]: no fresh row "
                  "(different bench parameters?)")
            continue
        base_wall = float(baseline[key]["wall_ms"])
        fresh_wall = float(fresh[key]["wall_ms"])
        compared += 1
        if base_wall <= 0:
            print(f"SKIP  {name} [threads={threads}]: zero baseline wall")
            continue
        # Oversubscribed wall clocks (either side) are scheduler noise;
        # report the drift but never fail on it.
        advisory = bool(baseline[key].get("oversubscribed")
                        or fresh[key].get("oversubscribed"))
        ratio = fresh_wall / base_wall
        verdict = "OK  "
        if ratio > 1.0 + args.tolerance:
            if advisory:
                verdict = "WARN"
            else:
                verdict = "FAIL"
                failures.append(
                    f"{name} [threads={threads}]: {base_wall:.0f} ms -> "
                    f"{fresh_wall:.0f} ms ({(ratio - 1.0) * 100.0:+.1f}%, "
                    f"tolerance {args.tolerance * 100.0:.0f}%)")
        print(f"{verdict}  {name} [threads={threads}]: "
              f"{base_wall:.0f} ms -> {fresh_wall:.0f} ms "
              f"({(ratio - 1.0) * 100.0:+.1f}%)"
              + ("  [oversubscribed — timing advisory only]"
                 if advisory else ""))
        for counter in ("solves", "pivots"):
            if counter in baseline[key] and counter in fresh[key]:
                base_count = baseline[key][counter]
                fresh_count = fresh[key][counter]
                if base_count != fresh_count:
                    print(f"      note: {counter} changed "
                          f"{base_count} -> {fresh_count} "
                          "(deterministic counter; behavior change)")

    for key in sorted(fresh):
        if key not in baseline:
            name, threads = key
            print(f"SKIP  {name} [threads={threads}]: no baseline row")

    if compared == 0:
        print("error: no comparable rows — workload names/threads in the "
              "fresh JSON match nothing in the baseline", file=sys.stderr)
        return 1
    if failures:
        print("\nbench gate failures:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\n{compared} row(s) compared, all within "
          f"{args.tolerance * 100.0:.0f}% of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
