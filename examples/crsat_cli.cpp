// crsat_cli — command-line front end for the reasoner.
//
// Exit codes: 0 = success, 1 = findings (unsatisfiable classes,
// lint errors, state violations) or a runtime failure, 2 = usage error,
// 3 = a resource limit tripped (see --timeout-ms & friends).
//
// Usage:
//   crsat_cli check <schema-file> [--threads N] [--json]
//                   [--witness[=text|json|dot]]
//                   [--timeout-ms N] [--max-compounds N] [--max-memory-mb N]
//       satisfiability of every class; --threads sets the reasoning
//       pool's parallelism (0 = auto: CRSAT_THREADS or the hardware),
//       --json emits a machine-readable report including the effective
//       thread count, per-invocation solver stats, and (when any limit
//       flag is given) the final resource counters. The limit flags bound
//       the run: wall clock, compound objects materialized by the
//       expansion, approximate instrumented memory. A tripped limit
//       aborts cleanly with a structured report and exit code 3.
//       --witness additionally synthesizes a ModelChecker-certified
//       finite model populating every satisfiable class (src/witness/),
//       rendered as text, JSON, or Graphviz DOT; with --json the witness
//       is embedded in the report. Synthesis runs under the same resource
//       limits as the check: a limit tripped *during synthesis* keeps the
//       satisfiability verdict (and its exit code) and reports the trip
//       in place of the witness.
//   crsat_cli expand <schema-file>       print the expansion (Figure 4 style)
//   crsat_cli system <schema-file>       print the disequation system
//   crsat_cli model <schema-file> <Class>    materialize + print a model
//   crsat_cli debug <schema-file> <Class>    minimal unsat core
//   crsat_cli implies <schema-file> isa <Sub> <Super>
//   crsat_cli implies <schema-file> card <Class> <Rel> <Role>
//       (prints the tightest implied (min, max) for the triple)
//   crsat_cli checkstate <schema-file> <state-file>
//       (integrity check: is the database state a model of the schema?)
//   crsat_cli report <schema-file>   implied-cardinality table (Figure 7
//                                    generalized to every legal triple)
//   crsat_cli dot <schema-file>      Graphviz ER diagram on stdout
//   crsat_cli lint <schema-file> [--json]
//                  [--timeout-ms N] [--max-compounds N] [--max-memory-mb N]
//       structural diagnostics (no expansion/LP): ISA cycles, conflicting
//       or empty cardinality ranges, redundant ISA edges, unreferenced
//       entities, trivially-empty relationships. Exits 1 when any
//       error-severity finding is reported, 3 when a resource limit
//       tripped before every rule ran.
//   crsat_cli conform [--seeds N] [--seed-start S] [--bound K]
//                     [--tuple-bound T] [--classes N] [--relationships N]
//                     [--json] [--no-baseline] [--no-metamorphic]
//                     [--no-minimize] [--dump-dir DIR]
//       differential conformance sweep: for each generator seed, the
//       production reasoner is cross-checked against a brute-force
//       bounded oracle (domain size <= K), the Lenzerini-Nobili baseline
//       on ISA-free siblings, its own verdicts under metamorphic schema
//       rewrites, and its certified witnesses. Exits 1 if any
//       disagreement is found; each disagreeing schema is minimized and
//       printed (and written under --dump-dir when given).
//   crsat_cli conform --chaos-seeds N [--chaos-start S] [--classes N]
//                     [--relationships N] [--json] [--dump-dir DIR]
//       chaos conformance sweep (DESIGN.md §14): each seed's schema is
//       checked fault-free, then re-checked under a seed-derived random
//       failpoint schedule. A faulted run must return the identical
//       verdicts or degrade to a resource-status UNKNOWN; any other
//       outcome is a verdict flip, reported with the CRSAT_FAILPOINTS
//       string that replays it. Exits 1 on any flip.
//   crsat_cli serve (--port N | --unix-socket PATH) [--threads N]
//                   [--timeout-ms N] [--max-compounds N] [--max-memory-mb N]
//                   [--max-queued N] [--max-queued-per-lane N]
//       crsatd: the concurrent reasoning service (DESIGN.md §15).
//       Listens on 127.0.0.1:<port> (0 = ephemeral, the bound port is
//       printed) or an AF_UNIX socket; each connection is a session
//       holding one parsed schema; requests run on the reasoning pool
//       behind admission control and weighted fair queueing. The limit
//       flags become server-wide caps clamping every request's budget
//       headers. SIGTERM/SIGINT (or a client `shutdown`) drains
//       gracefully: in-flight requests finish, new ones are refused.
//   crsat_cli client (--port N | --unix-socket PATH)
//                    [--timeout-ms N] [--max-compounds N] [--max-memory-mb N]
//                    check <schema-file>
//                  | lint <schema-file> [--json]
//                  | witness <schema-file> [text|json|dot]
//                  | implies <schema-file> isa <Sub> <Super>
//                  | implies <schema-file> card <Class> <Rel> <Role>
//                  | stats
//                  | shutdown
//       one-shot client for crsatd: parses the schema into the session,
//       issues the request, prints the response payload (stdout for
//       ok/findings, stderr otherwise) and exits with the CLI contract
//       (0/1/2/3; load-shed and draining refusals map to 3). The limit
//       flags ride in the request's budget headers. Verdict output is
//       byte-identical to the one-shot command.
//
// Fault injection: every command honors CRSAT_FAILPOINTS (grammar in
// src/base/failpoint.h), arming deterministic failures on the recovery
// seams. A simulated allocation failure surfaces as exit code 3, like
// any other resource limit.
//
// Schema files use the DSL documented in src/cr/schema_text.h; state
// files the DSL in src/cr/state_text.h. Samples live in
// examples/schemas/.

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include "src/crsat.h"
#include "src/server/client.h"
#include "src/server/server.h"

namespace {

// Distinct exit codes so scripts can tell outcomes apart.
constexpr int kExitOk = 0;        // Success, no adverse findings.
constexpr int kExitFindings = 1;  // Unsat classes, lint errors, failures.
constexpr int kExitUsage = 2;     // Bad command line.
constexpr int kExitResource = 3;  // A resource limit tripped.

int Usage() {
  std::cerr
      << "usage:\n"
         "  crsat_cli check  <schema-file> [--threads N] [--json]\n"
         "                   [--witness[=text|json|dot]] "
         "[--backend=reasoner|saturation]\n"
         "                   [--timeout-ms N] [--max-compounds N] "
         "[--max-memory-mb N]\n"
         "  crsat_cli expand <schema-file>\n"
         "  crsat_cli system <schema-file>\n"
         "  crsat_cli model  <schema-file> <Class>\n"
         "  crsat_cli debug  <schema-file> <Class>\n"
         "  crsat_cli implies <schema-file> isa <Sub> <Super>\n"
         "  crsat_cli implies <schema-file> card <Class> <Rel> <Role>\n"
         "  crsat_cli checkstate <schema-file> <state-file>\n"
         "  crsat_cli report <schema-file>\n"
         "  crsat_cli dot <schema-file>\n"
         "  crsat_cli lint <schema-file> [--json]\n"
         "                 [--timeout-ms N] [--max-compounds N] "
         "[--max-memory-mb N]\n"
         "  crsat_cli conform [--seeds N] [--seed-start S] [--bound K]\n"
         "                    [--tuple-bound T] [--classes N] "
         "[--relationships N]\n"
         "                    [--engines reasoner[,oracle][,saturation]]\n"
         "                    [--json] [--no-baseline] [--no-metamorphic]\n"
         "                    [--no-minimize] [--dump-dir DIR]\n"
         "  crsat_cli conform --chaos-seeds N [--chaos-start S] "
         "[--classes N]\n"
         "                    [--relationships N] [--json] [--dump-dir "
         "DIR]\n"
         "  crsat_cli serve (--port N | --unix-socket PATH) [--threads N]\n"
         "                  [--timeout-ms N] [--max-compounds N] "
         "[--max-memory-mb N]\n"
         "                  [--max-queued N] [--max-queued-per-lane N]\n"
         "  crsat_cli client (--port N | --unix-socket PATH) [limit "
         "flags]\n"
         "                   check|lint|witness|implies|stats|shutdown "
         "...\n"
         "exit codes: 0 ok, 1 findings/failure, 2 usage, 3 resource limit\n";
  return kExitUsage;
}

crsat::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return crsat::NotFoundError("cannot open file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

crsat::Result<crsat::NamedSchema> LoadSchema(const std::string& path) {
  crsat::Result<std::string> text = ReadFile(path);
  if (!text.ok()) {
    return text.status();
  }
  return crsat::ParseSchema(*text);
}

int RunCheckState(const crsat::NamedSchema& parsed,
                  const std::string& state_path) {
  crsat::Result<std::string> text = ReadFile(state_path);
  if (!text.ok()) {
    std::cerr << text.status() << "\n";
    return EXIT_FAILURE;
  }
  crsat::Result<crsat::NamedState> state =
      crsat::ParseState(*text, parsed.schema);
  if (!state.ok()) {
    std::cerr << state.status() << "\n";
    return EXIT_FAILURE;
  }
  if (state->schema_name != parsed.name) {
    std::cerr << "warning: state declares schema '" << state->schema_name
              << "' but the loaded schema is '" << parsed.name << "'\n";
  }
  std::vector<std::string> violations =
      crsat::ModelChecker::Violations(parsed.schema, state->interpretation);
  if (violations.empty()) {
    std::cout << "state '" << state->name << "' is a model of schema '"
              << parsed.name << "' (" << state->interpretation.domain_size()
              << " individuals)\n";
    return EXIT_SUCCESS;
  }
  std::cout << "state '" << state->name << "' violates schema '"
            << parsed.name << "':\n";
  for (const std::string& violation : violations) {
    std::cout << "  - " << violation << "\n";
  }
  return EXIT_FAILURE;
}

crsat::Result<crsat::ClassId> ResolveClass(const crsat::Schema& schema,
                                           const std::string& name) {
  std::optional<crsat::ClassId> cls = schema.FindClass(name);
  if (!cls.has_value()) {
    return crsat::NotFoundError("no class named '" + name + "'");
  }
  return *cls;
}

std::string JsonEscape(const std::string& text) {
  std::string escaped;
  for (char c : text) {
    if (c == '"' || c == '\\') {
      escaped += '\\';
    }
    escaped += c;
  }
  return escaped;
}

// Shared flag state for the resource-bounded commands (check, lint).
struct GuardFlags {
  crsat::ResourceLimits limits;
  bool any = false;  // True when at least one limit flag was given.
};

// Parses one `--timeout-ms/--max-compounds/--max-memory-mb N` pair at
// argv[i] (advancing i past the value). Returns false when `arg` is not a
// limit flag; `*bad` reports a malformed value.
bool ParseGuardFlag(const std::string& arg, int argc, char** argv, int* i,
                    GuardFlags* flags, bool* bad) {
  if (arg != "--timeout-ms" && arg != "--max-compounds" &&
      arg != "--max-memory-mb") {
    return false;
  }
  if (*i + 1 >= argc) {
    *bad = true;
    return true;
  }
  char* end = nullptr;
  const long long value = std::strtoll(argv[++*i], &end, 10);
  if (end == nullptr || *end != '\0' || value < 0) {
    *bad = true;
    return true;
  }
  if (arg == "--timeout-ms") {
    flags->limits.timeout = std::chrono::milliseconds(value);
  } else if (arg == "--max-compounds") {
    flags->limits.max_compounds = static_cast<std::uint64_t>(value);
  } else {
    flags->limits.max_memory_bytes =
        static_cast<std::uint64_t>(value) * 1024 * 1024;
  }
  flags->any = true;
  return true;
}

// Reports a tripped guard (JSON on stdout or text on stderr) and returns
// the resource exit code.
int ReportTrip(const crsat::ResourceGuard& guard, bool json) {
  if (json) {
    std::cout << "{\n  \"error\": \""
              << JsonEscape(guard.TripStatus().ToString())
              << "\",\n  \"resource\": " << guard.report().ToJson()
              << "\n}\n";
  } else {
    std::cerr << guard.TripStatus() << "\n"
              << guard.report().ToString() << "\n";
  }
  return kExitResource;
}

// Per-invocation solver counters as a JSON object (stats are reset at
// command start, so these cover exactly this invocation).
std::string SimplexStatsJson() {
  const crsat::SimplexStats& stats = crsat::GetSimplexStats();
  auto load = [](const std::atomic<std::uint64_t>& counter) {
    return std::to_string(counter.load(std::memory_order_relaxed));
  };
  return "{\"solves\": " + load(stats.solves) +
         ", \"pivots\": " + load(stats.pivots) +
         ", \"phase1_pivots\": " + load(stats.phase1_pivots) +
         ", \"fast_solves\": " + load(stats.fast_solves) +
         ", \"fast_pivots\": " + load(stats.fast_pivots) +
         ", \"tier_fallbacks\": " + load(stats.tier_fallbacks) +
         ", \"warm_start_hits\": " + load(stats.warm_start_hits) +
         ", \"warm_start_misses\": " + load(stats.warm_start_misses) +
         ", \"dual_pivots\": " + load(stats.dual_pivots) +
         ", \"incremental_hits\": " + load(stats.incremental_hits) +
         ", \"incremental_fallbacks\": " + load(stats.incremental_fallbacks) +
         ", \"dominance_lookups\": " +
         load(crsat::GetImplicationStats().dominance_lookups) +
         ", \"dominance_hits\": " +
         load(crsat::GetImplicationStats().dominance_hits) +
         ", \"derived_disjoint_pairs\": " +
         load(crsat::GetExpansionStats().derived_disjoint_pairs) +
         ", \"pruned_subtrees\": " +
         load(crsat::GetExpansionStats().pruned_subtrees) +
         ", \"ln_short_circuits\": " +
         load(crsat::GetFastPathStats().ln_short_circuits) + "}";
}

// Degradation-ladder transitions (src/base/degradation.h) as a JSON
// object: how often the run fell back a rung and why.
std::string RecoveryStatsJson() {
  const crsat::RecoveryStats& stats = crsat::GetRecoveryStats();
  auto load = [](const std::atomic<std::uint64_t>& counter) {
    return std::to_string(counter.load(std::memory_order_relaxed));
  };
  return "{\"warm_start_fallbacks\": " + load(stats.warm_start_fallbacks) +
         ", \"cover_fallbacks\": " + load(stats.cover_fallbacks) +
         ", \"tier_fallbacks\": " + load(stats.tier_fallbacks) +
         ", \"witness_flow_refinements\": " +
         load(stats.witness_flow_refinements) +
         ", \"witness_rescales\": " + load(stats.witness_rescales) +
         ", \"bad_alloc_conversions\": " + load(stats.bad_alloc_conversions) +
         ", \"guard_trips\": " + load(stats.guard_trips) + "}";
}

// Zeroes every per-invocation counter family reported by
// `SimplexStatsJson`/`RecoveryStatsJson` so a `--json` report covers
// exactly one run.
void ResetAllStats() {
  crsat::GetSimplexStats().Reset();
  crsat::GetImplicationStats().Reset();
  crsat::GetExpansionStats().Reset();
  crsat::GetFastPathStats().Reset();
  crsat::GetRecoveryStats().Reset();
  crsat::ResetFailpointCounters();
}

int RunLint(const std::string& path, bool json, crsat::ResourceGuard* guard) {
  crsat::Result<std::string> text = ReadFile(path);
  if (!text.ok()) {
    std::cerr << text.status() << "\n";
    return EXIT_FAILURE;
  }
  // Parse leniently so empty ranges reach the `empty-range` rule with a
  // source position instead of failing the build.
  crsat::ParseSchemaOptions options;
  options.permit_empty_ranges = true;
  crsat::Result<crsat::NamedSchema> parsed = crsat::ParseSchema(*text, options);
  if (!parsed.ok()) {
    std::cerr << parsed.status() << "\n";
    return EXIT_FAILURE;
  }
  crsat::LintOptions lint_options;
  lint_options.guard = guard;
  std::vector<crsat::Diagnostic> diagnostics =
      crsat::RunLint(*parsed, lint_options);
  if (guard != nullptr && guard->tripped()) {
    // Truncated run: partial findings are not trustworthy verdicts.
    return ReportTrip(*guard, json);
  }
  if (json) {
    std::cout << crsat::DiagnosticsToJson(diagnostics) << "\n";
  } else {
    int errors = 0, warnings = 0, notes = 0;
    for (const crsat::Diagnostic& diagnostic : diagnostics) {
      std::cout << crsat::FormatDiagnostic(diagnostic, path) << "\n";
      switch (diagnostic.severity) {
        case crsat::Severity::kError:
          ++errors;
          break;
        case crsat::Severity::kWarning:
          ++warnings;
          break;
        case crsat::Severity::kNote:
          ++notes;
          break;
      }
    }
    if (diagnostics.empty()) {
      std::cout << "schema '" << parsed->name << "': no findings\n";
    } else {
      std::cout << errors << " error(s), " << warnings << " warning(s), "
                << notes << " note(s)\n";
    }
  }
  return crsat::HasErrors(diagnostics) ? kExitFindings : kExitOk;
}

// `witness_mode` is "" (off), "text", "json", or "dot". Synthesis only
// runs when at least one class is satisfiable, and only a certified
// witness is ever emitted; a resource limit tripped during synthesis
// downgrades to the plain verdict (the check already completed) with the
// trip reported in the witness slot.
int RunCheck(const crsat::NamedSchema& parsed, bool json,
             const std::string& witness_mode, crsat::ResourceGuard* guard) {
  const crsat::Schema& schema = parsed.schema;
  // ISA-free schemas skip the expansion pipeline entirely: the
  // Lenzerini-Nobili baseline computes the same verdicts with one unknown
  // per class. Witness synthesis needs the full checker, so the fast path
  // only applies to plain checks.
  std::optional<std::vector<bool>> satisfiable;
  if (witness_mode.empty()) {
    crsat::Result<std::optional<std::vector<bool>>> fast =
        crsat::TryLnSatisfiableClasses(schema);
    if (!fast.ok()) {
      std::cerr << fast.status() << "\n";
      return kExitFindings;
    }
    satisfiable = std::move(fast.value());
  }
  std::optional<crsat::Expansion> expansion;
  std::optional<crsat::SatisfiabilityChecker> checker;
  // Structural emptiness facts feed both the expansion's compound pruning
  // and the checker's per-class short-circuit.
  std::vector<bool> known_empty;
  if (!satisfiable.has_value()) {
    known_empty = crsat::ComputeProvablyEmpty(schema).class_empty;
    crsat::ExpansionOptions options;
    options.guard = guard;
    options.known_empty_classes = &known_empty;
    crsat::Result<crsat::Expansion> built =
        crsat::Expansion::Build(schema, options);
    if (!built.ok()) {
      if (guard != nullptr && guard->tripped()) {
        return ReportTrip(*guard, json);
      }
      std::cerr << built.status() << "\n";
      return crsat::IsResourceLimitStatus(built.status().code())
                 ? kExitResource
                 : kExitFindings;
    }
    expansion.emplace(std::move(built.value()));
    checker.emplace(*expansion);
    checker->SetKnownEmptyClasses(known_empty);
    crsat::Result<std::vector<bool>> verdicts = checker->SatisfiableClasses();
    if (!verdicts.ok()) {
      if (guard != nullptr && guard->tripped()) {
        return ReportTrip(*guard, json);
      }
      std::cerr << verdicts.status() << "\n";
      // A resource-family failure without a configured guard (converted
      // bad_alloc, injected allocation fault) is still a resource limit,
      // not a finding: honor the 0/1/2/3 exit contract.
      return crsat::IsResourceLimitStatus(verdicts.status().code())
                 ? kExitResource
                 : kExitFindings;
    }
    satisfiable.emplace(std::move(verdicts.value()));
  }
  bool all_ok = true;
  bool any_satisfiable = false;
  for (crsat::ClassId cls : schema.AllClasses()) {
    all_ok = all_ok && (*satisfiable)[cls.value];
    any_satisfiable = any_satisfiable || (*satisfiable)[cls.value];
  }

  std::optional<crsat::CertifiedWitness> witness;
  bool witness_downgraded = false;
  std::string witness_failure;
  if (!witness_mode.empty() && any_satisfiable) {
    crsat::WitnessSynthesizer synthesizer(*checker);
    crsat::WitnessOptions witness_options;
    witness_options.guard = guard;
    witness_options.source_map = &parsed.source_map;
    crsat::Result<crsat::CertifiedWitness> result =
        synthesizer.Synthesize(witness_options);
    if (result.ok()) {
      witness.emplace(std::move(result.value()));
    } else if (crsat::IsResourceLimitStatus(result.status().code())) {
      // The verdict predates the trip and stands; only the witness is
      // dropped. Exit code stays verdict-driven.
      witness_downgraded = true;
      witness_failure = result.status().ToString();
    } else {
      // Anything else (certification refusal included) is a hard error:
      // an uncertified witness is never emitted, silently or otherwise.
      std::cerr << result.status() << "\n";
      return kExitFindings;
    }
  }

  if (json) {
    std::cout << "{\n  \"schema\": \"" << JsonEscape(parsed.name)
              << "\",\n  \"threads\": " << crsat::GlobalThreadCount()
              << ",\n  \"classes\": [\n";
    bool first = true;
    for (crsat::ClassId cls : schema.AllClasses()) {
      if (!first) {
        std::cout << ",\n";
      }
      first = false;
      std::cout << "    {\"name\": \"" << JsonEscape(schema.ClassName(cls))
                << "\", \"satisfiable\": "
                << ((*satisfiable)[cls.value] ? "true" : "false") << "}";
    }
    std::cout << "\n  ],\n  \"strongly_satisfiable\": "
              << (all_ok ? "true" : "false")
              << ",\n  \"stats\": " << SimplexStatsJson()
              << ",\n  \"recovery\": " << RecoveryStatsJson();
    if (!witness_mode.empty()) {
      std::cout << ",\n  \"witness\": ";
      if (witness.has_value()) {
        std::cout << crsat::WitnessToJson(*witness);
      } else if (witness_downgraded) {
        std::cout << "{\"certified\": false, \"error\": \""
                  << JsonEscape(witness_failure) << "\"}";
      } else {
        std::cout << "{\"certified\": false, \"error\": \"no class is "
                     "satisfiable; nothing to witness\"}";
      }
    }
    if (guard != nullptr) {
      std::cout << ",\n  \"resource\": " << guard->report().ToJson();
    }
    std::cout << "\n}\n";
    return all_ok ? kExitOk : kExitFindings;
  }
  for (crsat::ClassId cls : schema.AllClasses()) {
    bool ok = (*satisfiable)[cls.value];
    std::cout << (ok ? "  satisfiable    " : "  UNSATISFIABLE  ")
              << schema.ClassName(cls) << "\n";
  }
  std::cout << (all_ok ? "schema is strongly satisfiable"
                       : "schema has unpopulatable classes (see 'debug')")
            << "\n";
  if (witness.has_value()) {
    if (witness_mode == "json") {
      std::cout << crsat::WitnessToJson(*witness) << "\n";
    } else if (witness_mode == "dot") {
      std::cout << crsat::WitnessToDot(*witness);
    } else {
      std::cout << "witness (certified): " << witness->stats().individuals
                << " individual(s), " << witness->stats().tuples
                << " tuple(s)\n"
                << witness->interpretation().ToString();
    }
  } else if (witness_downgraded) {
    std::cerr << "witness synthesis stopped by a resource limit; the "
                 "verdict above stands without a witness\n"
              << witness_failure << "\n";
    if (guard != nullptr) {
      std::cerr << guard->report().ToString() << "\n";
    }
  } else if (!witness_mode.empty()) {
    std::cout << "no witness: no class is satisfiable\n";
  }
  return all_ok ? kExitOk : kExitFindings;
}

// `check --backend=saturation`: classical (unrestricted-model) verdicts
// from the graph-saturation engine, next to the reasoner's finite-model
// semantics. "sat-with-reuse" means the only witness found is cyclic —
// on a schema the reasoner rejects, that contrast is the paper's
// finitely-unsat phenomenon, not a bug. Exit codes follow the verdict
// lattice: 0 when every class has some classical model (finite or
// cyclic), 1 when any class is classically unsatisfiable, 3 when any
// verdict is unknown (budget exhausted or guard trip).
int RunSaturationCheck(const crsat::NamedSchema& parsed, bool json,
                       crsat::ResourceGuard* guard) {
  const crsat::Schema& schema = parsed.schema;
  crsat::SaturationOptions options;
  options.guard = guard;
  crsat::SaturationReport report =
      crsat::SaturationEngine::Decide(schema, options);
  bool any_unsat = false;
  bool any_unknown = false;
  for (const crsat::SaturationClassResult& result : report.classes) {
    any_unsat =
        any_unsat || result.verdict == crsat::SaturationVerdict::kUnsat;
    any_unknown =
        any_unknown || result.verdict == crsat::SaturationVerdict::kUnknown;
  }
  if (json) {
    std::cout << "{\n  \"schema\": \"" << JsonEscape(parsed.name)
              << "\",\n  \"backend\": \"saturation\",\n  \"classes\": [\n";
    bool first = true;
    for (const crsat::SaturationClassResult& result : report.classes) {
      if (!first) {
        std::cout << ",\n";
      }
      first = false;
      std::cout << "    {\"name\": \""
                << JsonEscape(schema.ClassName(result.cls))
                << "\", \"verdict\": \""
                << crsat::SaturationVerdictToString(result.verdict) << "\"";
      if (!result.unknown_reason.empty()) {
        std::cout << ", \"unknown_reason\": \""
                  << JsonEscape(result.unknown_reason) << "\"";
      }
      std::cout << "}";
    }
    std::cout << "\n  ],\n  \"templates_created\": " << report.templates_created
              << ",\n  \"blocked_edges\": " << report.blocked_edges
              << ",\n  \"individuals_reused\": " << report.individuals_reused
              << ",\n  \"individuals_spawned\": "
              << report.individuals_spawned;
    if (guard != nullptr) {
      std::cout << ",\n  \"resource\": " << guard->report().ToJson();
    }
    std::cout << "\n}\n";
  } else {
    std::cout << report.Summary(schema);
    if (any_unknown && guard != nullptr && guard->tripped()) {
      std::cerr << guard->report().ToString() << "\n";
    }
  }
  if (any_unknown) {
    return kExitResource;
  }
  return any_unsat ? kExitFindings : kExitOk;
}

int RunModel(const crsat::Schema& schema, const std::string& class_name) {
  crsat::Result<crsat::ClassId> cls = ResolveClass(schema, class_name);
  if (!cls.ok()) {
    std::cerr << cls.status() << "\n";
    return EXIT_FAILURE;
  }
  crsat::Result<crsat::Expansion> expansion = crsat::Expansion::Build(schema);
  if (!expansion.ok()) {
    std::cerr << expansion.status() << "\n";
    return EXIT_FAILURE;
  }
  crsat::SatisfiabilityChecker checker(*expansion);
  crsat::Result<crsat::Interpretation> model =
      crsat::ModelBuilder::BuildModelForClass(checker, *cls);
  if (!model.ok()) {
    std::cerr << model.status() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << model->ToString();
  return EXIT_SUCCESS;
}

int RunDebug(const crsat::Schema& schema, const std::string& class_name) {
  crsat::Result<crsat::ClassId> cls = ResolveClass(schema, class_name);
  if (!cls.ok()) {
    std::cerr << cls.status() << "\n";
    return EXIT_FAILURE;
  }
  crsat::Result<crsat::UnsatCore> core = crsat::MinimizeUnsatCore(schema, *cls);
  if (!core.ok()) {
    std::cerr << core.status() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "class '" << class_name
            << "' is unsatisfiable; minimal explanation ("
            << core->constraints.size() << " constraints):\n";
  for (const crsat::CoreConstraint& constraint : core->constraints) {
    std::cout << "  - " << constraint.description << "\n";
  }
  crsat::Result<std::vector<crsat::RepairSuggestion>> repairs =
      crsat::SuggestRepairs(schema, *cls);
  if (repairs.ok() && !repairs->empty()) {
    std::cout << "smallest single-constraint repairs:\n";
    for (const crsat::RepairSuggestion& suggestion : *repairs) {
      std::cout << "  * " << suggestion.description << "\n";
    }
  }
  return EXIT_SUCCESS;
}

int RunImplies(const crsat::Schema& schema, int argc, char** argv) {
  const std::string mode = argv[3];
  if (mode == "isa" && argc == 6) {
    crsat::Result<crsat::ClassId> sub = ResolveClass(schema, argv[4]);
    crsat::Result<crsat::ClassId> super = ResolveClass(schema, argv[5]);
    if (!sub.ok() || !super.ok()) {
      std::cerr << (sub.ok() ? super.status() : sub.status()) << "\n";
      return EXIT_FAILURE;
    }
    crsat::Result<bool> implied =
        crsat::ImplicationChecker::ImpliesIsa(schema, *sub, *super);
    if (!implied.ok()) {
      std::cerr << implied.status() << "\n";
      return EXIT_FAILURE;
    }
    std::cout << argv[4] << " <= " << argv[5] << ": "
              << (*implied ? "implied" : "not implied") << "\n";
    return EXIT_SUCCESS;
  }
  if (mode == "card" && argc == 7) {
    crsat::Result<crsat::ClassId> cls = ResolveClass(schema, argv[4]);
    std::optional<crsat::RelationshipId> rel = schema.FindRelationship(argv[5]);
    std::optional<crsat::RoleId> role = schema.FindRole(argv[6]);
    if (!cls.ok() || !rel.has_value() || !role.has_value()) {
      std::cerr << "unknown class, relationship or role\n";
      return EXIT_FAILURE;
    }
    crsat::Result<std::uint64_t> min =
        crsat::ImplicationChecker::TightestImpliedMin(schema, *cls, *rel,
                                                      *role);
    crsat::Result<std::optional<std::uint64_t>> max =
        crsat::ImplicationChecker::TightestImpliedMax(schema, *cls, *rel,
                                                      *role);
    if (!min.ok() || !max.ok()) {
      std::cerr << (min.ok() ? max.status() : min.status()) << "\n";
      return EXIT_FAILURE;
    }
    std::cout << "tightest implied cardinality of (" << argv[4] << ", "
              << argv[5] << ", " << argv[6] << "): (" << *min << ", "
              << (max->has_value() ? std::to_string(**max) : "*") << ")\n";
    return EXIT_SUCCESS;
  }
  return Usage();
}

// Differential conformance sweep (src/oracle/): generated schemas, the
// production reasoner cross-checked against the brute-force oracle, the
// LN baseline, metamorphic contracts and certified witnesses. Exits 1
// when any disagreement is found. `--dump-dir` writes each disagreeing
// schema (and its minimized form) as .schema files for artifact upload.
// Chaos sweep (`conform --chaos-seeds N`): fault-free verdicts vs the
// same pipeline under seed-derived failpoint schedules. Exits 1 when any
// faulted run produced a *different answer* (as opposed to an honest
// resource-status UNKNOWN). `--dump-dir` writes each flipping schema as
// a .schema file next to a .faults file holding the replaying
// CRSAT_FAILPOINTS string.
int RunChaos(const crsat::ChaosConformanceOptions& options, bool json,
             const std::string& dump_dir) {
  ResetAllStats();
  crsat::Result<crsat::ChaosReport> report =
      crsat::RunChaosConformance(options);
  if (!report.ok()) {
    std::cerr << report.status() << "\n";
    return crsat::IsResourceLimitStatus(report.status().code())
               ? kExitResource
               : kExitFindings;
  }
  if (!dump_dir.empty()) {
    int index = 0;
    for (const crsat::ChaosVerdictFlip& flip : report->flips) {
      const std::string stem = dump_dir + "/flip_" +
                               std::to_string(index++) + "_seed" +
                               std::to_string(flip.seed);
      std::ofstream(stem + ".schema") << flip.schema_text;
      std::ofstream(stem + ".faults") << flip.fault_schedule << "\n";
    }
  }
  if (json) {
    std::cout << report->ToJson() << "\n";
  } else {
    std::cout << report->Summary() << "\n";
    for (const crsat::ChaosVerdictFlip& flip : report->flips) {
      std::cout << "\nseed " << flip.seed << " [" << flip.kind << "]"
                << (flip.class_name.empty() ? "" : " class " + flip.class_name)
                << ": " << flip.detail << "\n  replay: CRSAT_FAILPOINTS=\""
                << flip.fault_schedule << "\"\n"
                << flip.schema_text;
    }
  }
  return report->flips.empty() ? kExitOk : kExitFindings;
}

int RunConform(int argc, char** argv) {
  crsat::ConformanceOptions options;
  crsat::ChaosConformanceOptions chaos_options;
  long chaos_seeds = 0;
  bool json = false;
  std::string dump_dir;
  auto parse_int = [&](int* i, long min_value, long* out) {
    if (*i + 1 >= argc) {
      return false;
    }
    char* end = nullptr;
    const long value = std::strtol(argv[++*i], &end, 10);
    if (end == nullptr || *end != '\0' || value < min_value) {
      return false;
    }
    *out = value;
    return true;
  };
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    long value = 0;
    if (arg == "--json") {
      json = true;
    } else if (arg == "--seeds" && parse_int(&i, 1, &value)) {
      options.num_seeds = static_cast<int>(value);
    } else if (arg == "--seed-start" && parse_int(&i, 0, &value)) {
      options.first_seed = static_cast<std::uint32_t>(value);
    } else if (arg == "--bound" && parse_int(&i, 1, &value)) {
      options.oracle.max_domain = static_cast<int>(value);
    } else if (arg == "--tuple-bound" && parse_int(&i, 1, &value)) {
      options.oracle.max_tuples_per_relationship =
          static_cast<std::uint64_t>(value);
    } else if (arg == "--classes" && parse_int(&i, 1, &value)) {
      options.num_classes = static_cast<int>(value);
    } else if (arg == "--relationships" && parse_int(&i, 0, &value)) {
      options.num_relationships = static_cast<int>(value);
    } else if (arg == "--engines" && i + 1 < argc) {
      // The comma list selects which independent engines vote alongside
      // the reasoner. The reasoner is the engine under test and must be
      // listed; omitting "oracle" or "saturation" disables that voter.
      options.check_oracle = false;
      options.check_saturation = false;
      bool reasoner_listed = false;
      const std::string list = argv[++i];
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string engine =
            comma == std::string::npos ? list.substr(start)
                                       : list.substr(start, comma - start);
        if (engine == "reasoner") {
          reasoner_listed = true;
        } else if (engine == "oracle") {
          options.check_oracle = true;
        } else if (engine == "saturation") {
          options.check_saturation = true;
        } else {
          return Usage();
        }
        if (comma == std::string::npos) {
          break;
        }
        start = comma + 1;
      }
      if (!reasoner_listed) {
        return Usage();
      }
    } else if (arg == "--no-baseline") {
      options.check_baseline = false;
    } else if (arg == "--no-metamorphic") {
      options.check_metamorphic = false;
    } else if (arg == "--no-minimize") {
      options.minimize = false;
    } else if (arg == "--dump-dir" && i + 1 < argc) {
      dump_dir = argv[++i];
    } else if (arg == "--chaos-seeds" && parse_int(&i, 1, &value)) {
      chaos_seeds = value;
    } else if (arg == "--chaos-start" && parse_int(&i, 0, &value)) {
      chaos_options.first_seed = static_cast<std::uint32_t>(value);
    } else {
      return Usage();
    }
  }
  if (chaos_seeds > 0) {
    chaos_options.num_seeds = static_cast<int>(chaos_seeds);
    chaos_options.num_classes = options.num_classes;
    chaos_options.num_relationships = options.num_relationships;
    return RunChaos(chaos_options, json, dump_dir);
  }
  // Start counters from zero so the report's stats block covers exactly
  // this sweep.
  ResetAllStats();
  crsat::Result<crsat::ConformanceReport> report =
      crsat::RunConformance(options);
  if (!report.ok()) {
    std::cerr << report.status() << "\n";
    return crsat::IsResourceLimitStatus(report.status().code())
               ? kExitResource
               : kExitFindings;
  }
  if (!dump_dir.empty()) {
    int index = 0;
    for (const crsat::ConformanceDisagreement& d : report->disagreements) {
      const std::string stem = dump_dir + "/disagreement_" +
                               std::to_string(index++) + "_seed" +
                               std::to_string(d.seed);
      std::ofstream(stem + ".schema") << d.schema_text;
      if (!d.minimized_schema_text.empty()) {
        std::ofstream(stem + ".min.schema") << d.minimized_schema_text;
      }
    }
  }
  if (json) {
    std::cout << report->ToJson() << "\n";
  } else {
    std::cout << report->Summary() << "\n";
    for (const crsat::ConformanceDisagreement& d : report->disagreements) {
      std::cout << "\nseed " << d.seed << " [" << d.kind << "] class "
                << d.class_name << ": " << d.detail << "\n"
                << (d.minimized_schema_text.empty()
                        ? d.schema_text
                        : d.minimized_schema_text);
    }
  }
  return report->disagreements.empty() ? kExitOk : kExitFindings;
}

// Set by SIGTERM/SIGINT; the serve loop polls it and begins a graceful
// drain (async-signal-safe: the handler only writes the flag).
volatile std::sig_atomic_t g_shutdown_requested = 0;

void OnShutdownSignal(int /*signum*/) { g_shutdown_requested = 1; }

// `crsat_cli serve`: run crsatd until a signal or a client `shutdown`.
int RunServe(int argc, char** argv) {
  crsat::server::ServerOptions options;
  GuardFlags guard_flags;
  auto parse_long = [&](int* i, long min_value, long* out) {
    if (*i + 1 >= argc) {
      return false;
    }
    char* end = nullptr;
    const long value = std::strtol(argv[++*i], &end, 10);
    if (end == nullptr || *end != '\0' || value < min_value) {
      return false;
    }
    *out = value;
    return true;
  };
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    long value = 0;
    bool bad = false;
    if (arg == "--port" && parse_long(&i, 0, &value)) {
      options.port = static_cast<int>(value);
    } else if (arg == "--unix-socket" && i + 1 < argc) {
      options.unix_socket = argv[++i];
    } else if (arg == "--threads" && parse_long(&i, 0, &value)) {
      options.threads = static_cast<int>(value);
    } else if (arg == "--max-queued" && parse_long(&i, 1, &value)) {
      options.scheduler.max_queued = static_cast<std::size_t>(value);
    } else if (arg == "--max-queued-per-lane" && parse_long(&i, 1, &value)) {
      options.scheduler.max_queued_per_lane =
          static_cast<std::size_t>(value);
    } else if (!ParseGuardFlag(arg, argc, argv, &i, &guard_flags, &bad) ||
               bad) {
      return Usage();
    }
  }
  options.caps = guard_flags.limits;
  crsat::server::Server server(options);
  const crsat::Status started = server.Start();
  if (!started.ok()) {
    std::cerr << started << "\n";
    return started.code() == crsat::StatusCode::kInvalidArgument
               ? kExitUsage
               : kExitFindings;
  }
  std::signal(SIGTERM, OnShutdownSignal);
  std::signal(SIGINT, OnShutdownSignal);
  // Readiness line: scripts wait for it, and the ephemeral-port form
  // (`--port 0`) is only knowable from it.
  std::cout << "crsatd listening on " << server.endpoint()
            << " (threads=" << crsat::GlobalThreadCount() << ")"
            << std::endl;
  while (g_shutdown_requested == 0 && !server.draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.BeginDrain();
  server.Wait();
  std::cout << "crsatd drained\n";
  return kExitOk;
}

// Maps a response status byte back onto the CLI exit contract: 0..3 pass
// through; service-level refusals are resource-family (3) except a
// framing error, which is a hard failure (1).
int ExitCodeForReply(crsat::server::ResponseStatus status) {
  switch (status) {
    case crsat::server::ResponseStatus::kOk:
      return kExitOk;
    case crsat::server::ResponseStatus::kFindings:
      return kExitFindings;
    case crsat::server::ResponseStatus::kBadRequest:
      return kExitUsage;
    case crsat::server::ResponseStatus::kResource:
    case crsat::server::ResponseStatus::kOverloaded:
    case crsat::server::ResponseStatus::kShuttingDown:
      return kExitResource;
    case crsat::server::ResponseStatus::kProtocolError:
      return kExitFindings;
  }
  return kExitFindings;
}

// Prints a reply the way the one-shot commands do: payload on stdout for
// ok/findings (where it is the byte-identical verdict text), stderr for
// every refusal.
int PrintReply(const crsat::server::Reply& reply) {
  if (reply.status == crsat::server::ResponseStatus::kOk ||
      reply.status == crsat::server::ResponseStatus::kFindings) {
    std::cout << reply.payload;
  } else {
    std::cerr << "crsatd: " << crsat::server::ResponseStatusToString(
                                   reply.status)
              << "\n"
              << reply.payload;
  }
  return ExitCodeForReply(reply.status);
}

// `crsat_cli client`: one request against a running crsatd.
int RunClient(int argc, char** argv) {
  int port = -1;
  std::string unix_socket;
  GuardFlags guard_flags;
  int i = 2;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    bool bad = false;
    if (arg == "--port" && i + 1 < argc) {
      char* end = nullptr;
      const long value = std::strtol(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || value < 1 || value > 65535) {
        return Usage();
      }
      port = static_cast<int>(value);
    } else if (arg == "--unix-socket" && i + 1 < argc) {
      unix_socket = argv[++i];
    } else if (ParseGuardFlag(arg, argc, argv, &i, &guard_flags, &bad)) {
      if (bad) {
        return Usage();
      }
    } else {
      break;  // First positional: the client command.
    }
  }
  if (i >= argc || (port < 0) == unix_socket.empty()) {
    return Usage();
  }
  crsat::server::RequestBudget budget;
  if (guard_flags.limits.timeout.has_value()) {
    budget.deadline_ms =
        static_cast<std::uint32_t>(guard_flags.limits.timeout->count());
  }
  budget.max_compounds = guard_flags.limits.max_compounds.value_or(0);
  budget.max_memory_bytes = guard_flags.limits.max_memory_bytes.value_or(0);

  crsat::server::Client client;
  const crsat::Status connected =
      unix_socket.empty() ? client.ConnectTcp(port)
                          : client.ConnectUnix(unix_socket);
  if (!connected.ok()) {
    std::cerr << connected << "\n";
    return kExitFindings;
  }
  auto call = [&](crsat::server::RequestType type, std::string payload)
      -> crsat::Result<crsat::server::Reply> {
    return client.Call(type, std::move(payload), budget);
  };
  auto finish = [](crsat::Result<crsat::server::Reply> reply) {
    if (!reply.ok()) {
      std::cerr << reply.status() << "\n";
      return kExitFindings;
    }
    return PrintReply(*reply);
  };

  const std::string command = argv[i++];
  if (command == "stats") {
    return finish(call(crsat::server::RequestType::kStats, ""));
  }
  if (command == "shutdown") {
    return finish(call(crsat::server::RequestType::kShutdown, ""));
  }
  if (i >= argc) {
    return Usage();
  }
  const std::string schema_path = argv[i++];
  crsat::Result<std::string> text = ReadFile(schema_path);
  if (!text.ok()) {
    std::cerr << text.status() << "\n";
    return kExitFindings;
  }
  // The session's display name is the local path, so source-mapped lint
  // output matches the one-shot CLI byte for byte.
  crsat::Result<crsat::server::Reply> parsed =
      client.Parse(schema_path, *text);
  if (!parsed.ok()) {
    std::cerr << parsed.status() << "\n";
    return kExitFindings;
  }
  // `lint` tolerates a strict-parse failure: the server lints from a
  // lenient re-parse of the stored text, matching `crsat_cli lint` on a
  // schema that `check` refuses to load.
  if (parsed->status != crsat::server::ResponseStatus::kOk &&
      !(command == "lint" &&
        parsed->status == crsat::server::ResponseStatus::kFindings)) {
    std::cerr << parsed->payload;
    return ExitCodeForReply(parsed->status);
  }
  if (command == "check") {
    return finish(call(crsat::server::RequestType::kCheck, ""));
  }
  if (command == "lint") {
    std::string payload;
    if (i < argc && std::string(argv[i]) == "--json") {
      payload = "json";
      ++i;
    }
    if (i != argc) {
      return Usage();
    }
    crsat::Result<crsat::server::Reply> reply =
        call(crsat::server::RequestType::kLint, payload);
    // An empty findings payload means even the lenient re-parse failed;
    // like the one-shot CLI, the parse error goes to stderr, not stdout
    // (the parse reply recorded the strict-parse diagnostics).
    if (reply.ok() &&
        reply->status == crsat::server::ResponseStatus::kFindings &&
        reply->payload.empty()) {
      std::cerr << parsed->payload;
    }
    return finish(std::move(reply));
  }
  if (command == "witness") {
    std::string mode;
    if (i < argc) {
      mode = argv[i++];
      if (mode != "text" && mode != "json" && mode != "dot") {
        return Usage();
      }
    }
    if (i != argc) {
      return Usage();
    }
    return finish(call(crsat::server::RequestType::kWitness, mode));
  }
  if (command == "implies" && i < argc) {
    std::string payload;
    for (; i < argc; ++i) {
      if (!payload.empty()) {
        payload += ' ';
      }
      payload += argv[i];
    }
    return finish(call(crsat::server::RequestType::kImplications, payload));
  }
  return Usage();
}

int RealMain(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  if (command == "conform") {
    return RunConform(argc, argv);
  }
  if (command == "serve") {
    return RunServe(argc, argv);
  }
  if (command == "client") {
    return RunClient(argc, argv);
  }
  if (argc < 3) {
    return Usage();
  }
  if (command == "lint") {
    bool json = false;
    GuardFlags guard_flags;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      bool bad = false;
      if (arg == "--json") {
        json = true;
      } else if (!ParseGuardFlag(arg, argc, argv, &i, &guard_flags, &bad) ||
                 bad) {
        return Usage();
      }
    }
    if (guard_flags.any) {
      crsat::ResourceGuard guard(guard_flags.limits);
      return RunLint(argv[2], json, &guard);
    }
    return RunLint(argv[2], json, nullptr);
  }
  crsat::Result<crsat::NamedSchema> parsed = LoadSchema(argv[2]);
  if (!parsed.ok()) {
    std::cerr << parsed.status() << "\n";
    return EXIT_FAILURE;
  }
  const crsat::Schema& schema = parsed->schema;

  if (command == "check") {
    bool json = false;
    long threads = 0;
    std::string witness_mode;
    std::string backend = "reasoner";
    GuardFlags guard_flags;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      bool bad = false;
      if (arg == "--json") {
        json = true;
      } else if (arg.rfind("--backend=", 0) == 0) {
        backend = arg.substr(std::string("--backend=").size());
        if (backend != "reasoner" && backend != "saturation") {
          return Usage();
        }
      } else if (arg == "--witness") {
        witness_mode = "text";
      } else if (arg.rfind("--witness=", 0) == 0) {
        witness_mode = arg.substr(std::string("--witness=").size());
        if (witness_mode != "text" && witness_mode != "json" &&
            witness_mode != "dot") {
          return Usage();
        }
      } else if (arg == "--threads" && i + 1 < argc) {
        char* end = nullptr;
        threads = std::strtol(argv[++i], &end, 10);
        if (end == nullptr || *end != '\0' || threads < 0) {
          return Usage();
        }
      } else if (!ParseGuardFlag(arg, argc, argv, &i, &guard_flags, &bad) ||
                 bad) {
        return Usage();
      }
    }
    crsat::SetGlobalThreadCount(static_cast<int>(threads));
    // Per-invocation solver stats: start from zero so `--json` reports
    // exactly this run's counters.
    ResetAllStats();
    if (backend == "saturation") {
      // Witness synthesis is a reasoner-pipeline feature; the saturation
      // engine reports its own certified finite models.
      if (!witness_mode.empty()) {
        return Usage();
      }
      if (guard_flags.any) {
        crsat::ResourceGuard guard(guard_flags.limits);
        return RunSaturationCheck(*parsed, json, &guard);
      }
      return RunSaturationCheck(*parsed, json, nullptr);
    }
    if (guard_flags.any) {
      crsat::ResourceGuard guard(guard_flags.limits);
      return RunCheck(*parsed, json, witness_mode, &guard);
    }
    return RunCheck(*parsed, json, witness_mode, nullptr);
  }
  if (command == "expand") {
    crsat::Result<crsat::Expansion> expansion =
        crsat::Expansion::Build(schema);
    if (!expansion.ok()) {
      std::cerr << expansion.status() << "\n";
      return EXIT_FAILURE;
    }
    std::cout << expansion->ToString();
    return EXIT_SUCCESS;
  }
  if (command == "system") {
    crsat::Result<crsat::Expansion> expansion =
        crsat::Expansion::Build(schema);
    if (!expansion.ok()) {
      std::cerr << expansion.status() << "\n";
      return EXIT_FAILURE;
    }
    crsat::SatisfiabilityChecker checker(*expansion);
    std::cout << checker.cr_system().system.ToString();
    return EXIT_SUCCESS;
  }
  if (command == "model" && argc == 4) {
    return RunModel(schema, argv[3]);
  }
  if (command == "debug" && argc == 4) {
    return RunDebug(schema, argv[3]);
  }
  if (command == "implies" && argc >= 4) {
    return RunImplies(schema, argc, argv);
  }
  if (command == "checkstate" && argc == 4) {
    return RunCheckState(*parsed, argv[3]);
  }
  if (command == "report") {
    crsat::Result<std::vector<crsat::ImpliedCardinalityRow>> report =
        crsat::BuildImpliedCardinalityReport(schema);
    if (!report.ok()) {
      std::cerr << report.status() << "\n";
      return EXIT_FAILURE;
    }
    std::cout << crsat::ImpliedCardinalityReportToString(schema, *report);
    return EXIT_SUCCESS;
  }
  if (command == "dot") {
    std::cout << crsat::SchemaToDot(schema, parsed->name);
    return EXIT_SUCCESS;
  }
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  // Outer backstop for the subsystem boundaries (`SimplexSolver::SolveWith`,
  // `Expansion::Build` convert their own allocation failures): whatever
  // still escapes becomes the resource exit code, not a terminate().
  try {
    return RealMain(argc, argv);
  } catch (const std::bad_alloc&) {
    std::cerr << "out of memory; aborting cleanly (treat as a resource "
                 "limit)\n";
    return kExitResource;
  }
}
