// Schema debugging: the paper's Section 5 sketches "a technique that
// provides the designer with a minimum number of constraints that are
// unsatisfiable, thus supporting her in schema debugging". This example
// runs that workflow on two schemas:
//
//  1. the finitely-unsatisfiable diagram of Figure 1, and
//  2. the meeting schema after the Section 3.3 refinement
//     minc(Discussant, Holds, U1) = 2, which silently empties every class.
//
// For each, the minimal unsatisfiable core is printed: removing any single
// listed constraint repairs the class.

#include <cstdlib>
#include <iostream>

#include "src/crsat.h"

namespace {

constexpr char kFigure1Text[] = R"(
schema Figure1 {
  class C, D;
  isa D < C;
  relationship R(V1: C, V2: D);
  card C in R.V1 = (2, *);
  card D in R.V2 = (0, 1);
}
)";

constexpr char kEagerMeetingText[] = R"(
schema EagerMeeting {
  class Speaker, Discussant, Talk;
  isa Discussant < Speaker;
  relationship Holds(U1: Speaker, U2: Talk);
  relationship Participates(U3: Discussant, U4: Talk);
  card Speaker in Holds.U1 = (1, *);
  card Discussant in Holds.U1 = (2, 2);   // the Section 3.3 refinement
  card Talk in Holds.U2 = (1, 1);
  card Discussant in Participates.U3 = (1, 1);
  card Talk in Participates.U4 = (1, *);
}
)";

int DebugSchema(const char* text) {
  crsat::Result<crsat::NamedSchema> parsed = crsat::ParseSchema(text);
  if (!parsed.ok()) {
    std::cerr << "parse failed: " << parsed.status() << "\n";
    return EXIT_FAILURE;
  }
  const crsat::Schema& schema = parsed->schema;
  std::cout << "=== Schema '" << parsed->name << "' ===\n";

  crsat::Result<crsat::Expansion> expansion = crsat::Expansion::Build(schema);
  if (!expansion.ok()) {
    std::cerr << "expansion failed: " << expansion.status() << "\n";
    return EXIT_FAILURE;
  }
  crsat::SatisfiabilityChecker checker(*expansion);
  std::vector<bool> satisfiable = checker.SatisfiableClasses().value();

  bool any_unsat = false;
  for (crsat::ClassId cls : schema.AllClasses()) {
    if (satisfiable[cls.value]) {
      continue;
    }
    any_unsat = true;
    std::cout << "Class '" << schema.ClassName(cls)
              << "' is unsatisfiable. Minimal explanation:\n";
    crsat::Result<crsat::UnsatCore> core =
        crsat::MinimizeUnsatCore(schema, cls);
    if (!core.ok()) {
      std::cerr << "  core extraction failed: " << core.status() << "\n";
      return EXIT_FAILURE;
    }
    for (const crsat::CoreConstraint& constraint : core->constraints) {
      std::cout << "  - " << constraint.description << "\n";
    }
    std::cout << "  (removing any one of these " << core->constraints.size()
              << " constraints makes the class satisfiable)\n";
    crsat::Result<std::vector<crsat::RepairSuggestion>> repairs =
        crsat::SuggestRepairs(schema, cls);
    if (repairs.ok()) {
      std::cout << "  Smallest single-constraint repairs:\n";
      for (const crsat::RepairSuggestion& suggestion : *repairs) {
        std::cout << "    * " << suggestion.description << "\n";
      }
    }
  }
  if (!any_unsat) {
    std::cout << "All classes are satisfiable; nothing to debug.\n";
  }
  std::cout << "\n";
  return EXIT_SUCCESS;
}

}  // namespace

int main() {
  if (DebugSchema(kFigure1Text) != EXIT_SUCCESS) {
    return EXIT_FAILURE;
  }
  return DebugSchema(kEagerMeetingText);
}
