// The database state of the paper's Figure 6: John and Mary each hold one
// talk and participate in the other's. Check it with:
//   crsat_cli checkstate examples/schemas/meeting.cr \
//       examples/schemas/figure6_state.cr
state Figure6 of Meeting {
  individual John, Mary, talkJ, talkM;
  class Speaker: John, Mary;
  class Discussant: John, Mary;
  class Talk: talkJ, talkM;
  rel Holds: (John, talkJ), (Mary, talkM);
  rel Participates: (John, talkM), (Mary, talkJ);
}
