// Finitely unsatisfiable classes inside a ternary relationship. C and D
// replay Figure 1 across R's V1/V2 roles (2|C| <= |R| <= |D| <= |C|), so
// both are finitely empty; E merely participates at V3 with no lower
// bound of its own, so E stays finitely satisfiable — the contrast
// verdict must hit exactly C and D, never E.
schema FinitelyUnsatTernary {
  class C, D, E;
  isa D < C;
  relationship R(V1: C, V2: D, V3: E);
  card C in R.V1 = (2, *);
  card D in R.V2 = (0, 1);
}
