// Finitely unsatisfiable, classically satisfiable — Figure 1 with wider
// fan-out. Counting: 3|C| <= |R| (each C owns three R-tuples at V1) and
// |R| <= 2|D| (each D absorbs at most two at V2), with isa D < C giving
// |D| <= |C|; so 3|C| <= 2|C|, forcing C and D empty finitely. An
// infinite 3-ary tree of Ds works classically: both classes are
// sat-with-reuse for saturation, finitely-UNSAT for the reasoner.
schema FinitelyUnsatPair {
  class C, D;
  isa D < C;
  relationship R(V1: C, V2: D);
  card C in R.V1 = (3, *);
  card D in R.V2 = (0, 2);
}
