// A deliberately lopsided schema: deciding satisfiability is trivial (two
// classes, one relationship), but the *smallest* finite model needs 40000
// tuples — every A must hold 40000 R-edges and every B exactly one. Used
// by the CLI exit-code tests to trip a resource limit during witness
// synthesis specifically, after the verdict is already in.
schema WitnessHeavy {
  class A, B;
  relationship R(U1: A, U2: B);
  card A in R.U1 = (40000, *);
  card B in R.U2 = (1, 1);
}
