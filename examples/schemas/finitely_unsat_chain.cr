// Finitely unsatisfiable, classically satisfiable — Figure 1 stretched
// over an ISA chain. Counting: 2|A| <= |R| <= |C| and C < B < A gives
// |C| <= |A|, so every finite database state has A (hence B, C) empty.
// Classically an infinite tree of Cs (each also a B and an A) satisfies
// everything: all three classes contrast reasoner finitely-UNSAT against
// saturation sat-with-reuse.
schema FinitelyUnsatChain {
  class A, B, C;
  isa B < A;
  isa C < B;
  relationship R(V1: A, V2: C);
  card A in R.V1 = (2, *);
  card C in R.V2 = (0, 1);
}
