// Quickstart: the paper's meeting example end to end.
//
// Parses the CR-schema of Figure 2/3 from DSL text, checks which classes
// are finitely satisfiable, materializes an actual database state (the
// analogue of Figure 6), and asks the implication questions of Figure 7.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdlib>
#include <iostream>

#include "src/crsat.h"

namespace {

constexpr char kMeetingText[] = R"(
schema Meeting {
  class Speaker, Discussant, Talk;
  isa Discussant < Speaker;
  relationship Holds(U1: Speaker, U2: Talk);
  relationship Participates(U3: Discussant, U4: Talk);
  card Speaker in Holds.U1 = (1, *);
  card Discussant in Holds.U1 = (0, 2);
  card Talk in Holds.U2 = (1, 1);
  card Discussant in Participates.U3 = (1, 1);
  card Talk in Participates.U4 = (1, *);
}
)";

}  // namespace

int main() {
  // 1. Parse.
  crsat::Result<crsat::NamedSchema> parsed = crsat::ParseSchema(kMeetingText);
  if (!parsed.ok()) {
    std::cerr << "parse failed: " << parsed.status() << "\n";
    return EXIT_FAILURE;
  }
  const crsat::Schema& schema = parsed->schema;
  std::cout << "Loaded schema '" << parsed->name << "' with "
            << schema.num_classes() << " classes and "
            << schema.num_relationships() << " relationships.\n\n";

  // 2. Expand (Section 3.1 of the paper) and build the reasoner.
  crsat::Result<crsat::Expansion> expansion = crsat::Expansion::Build(schema);
  if (!expansion.ok()) {
    std::cerr << "expansion failed: " << expansion.status() << "\n";
    return EXIT_FAILURE;
  }
  crsat::SatisfiabilityChecker checker(*expansion);

  // 3. Class satisfiability (Theorem 3.3).
  std::cout << "Class satisfiability:\n";
  crsat::Result<std::vector<bool>> satisfiable = checker.SatisfiableClasses();
  if (!satisfiable.ok()) {
    std::cerr << "satisfiability check failed: " << satisfiable.status()
              << "\n";
    return EXIT_FAILURE;
  }
  for (crsat::ClassId cls : schema.AllClasses()) {
    std::cout << "  " << schema.ClassName(cls) << ": "
              << ((*satisfiable)[cls.value] ? "satisfiable" : "UNSATISFIABLE")
              << "\n";
  }

  // 4. Materialize a model (the constructive side of Figure 6).
  crsat::ClassId speaker = schema.FindClass("Speaker").value();
  crsat::Result<crsat::Interpretation> model =
      crsat::ModelBuilder::BuildModelForClass(checker, speaker);
  if (!model.ok()) {
    std::cerr << "model construction failed: " << model.status() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "\nA finite model populating Speaker:\n" << model->ToString();

  // 5. Implication queries (Figure 7).
  crsat::ClassId discussant = schema.FindClass("Discussant").value();
  crsat::ClassId talk = schema.FindClass("Talk").value();
  crsat::RelationshipId holds = schema.FindRelationship("Holds").value();
  crsat::RelationshipId participates =
      schema.FindRelationship("Participates").value();
  crsat::RoleId u1 = schema.FindRole("U1").value();
  crsat::RoleId u4 = schema.FindRole("U4").value();

  std::cout << "\nImplied constraints (Figure 7):\n";
  std::cout << "  Speaker <= Discussant: "
            << (crsat::ImplicationChecker::ImpliesIsa(schema, speaker,
                                                      discussant)
                        .value()
                    ? "implied"
                    : "not implied")
            << "\n";
  std::cout << "  maxc(Talk, Participates, U4) = 1: "
            << (crsat::ImplicationChecker::ImpliesMaxCardinality(
                    schema, talk, participates, u4, 1)
                        .value()
                    ? "implied"
                    : "not implied")
            << "\n";
  std::cout << "  maxc(Speaker, Holds, U1) = 1: "
            << (crsat::ImplicationChecker::ImpliesMaxCardinality(
                    schema, speaker, holds, u1, 1)
                        .value()
                    ? "implied"
                    : "not implied")
            << "\n";

  crsat::Result<std::uint64_t> tightest_min =
      crsat::ImplicationChecker::TightestImpliedMin(schema, speaker, holds,
                                                    u1);
  crsat::Result<std::optional<std::uint64_t>> tightest_max =
      crsat::ImplicationChecker::TightestImpliedMax(schema, speaker, holds,
                                                    u1);
  if (tightest_min.ok() && tightest_max.ok()) {
    std::cout << "  tightest implied cardinality of (Speaker, Holds, U1): ("
              << *tightest_min << ", "
              << (tightest_max->has_value() ? std::to_string(**tightest_max)
                                            : "*")
              << ")  [declared: (1, *)]\n";
  }
  return EXIT_SUCCESS;
}
