// Object-oriented reading of CR (the paper's Section 1: "by interpreting
// relationships as attributes, we directly derive a method applicable to
// object oriented data models").
//
// This example encodes a small OO class hierarchy where attributes are
// binary relationships with an owner-side cardinality:
//   - a mandatory single-valued attribute  -> (1, 1) on the owner role,
//   - an optional single-valued attribute  -> (0, 1),
//   - a multi-valued attribute             -> (min, max) as declared,
// and shows that attribute *refinement* along the inheritance hierarchy is
// exactly the paper's cardinality refinement — including the subtle global
// consequences the interaction produces. It then demonstrates a schema
// where a seemingly innocent refinement makes a subclass unpopulatable,
// the kind of bug this reasoner exists to catch at design time.

#include <cstdlib>
#include <iostream>

#include "src/crsat.h"

namespace {

// Employee has a mandatory department; Manager refines the multi-valued
// `reports` attribute. Every department is managed by exactly one manager
// (a mandatory inverse), and every report entry is owned by exactly one
// manager.
constexpr char kOoSchema[] = R"(
schema OoPayroll {
  class Employee, Manager, Department, Report;

  isa Manager < Employee;

  // attribute Employee.dept : Department  (mandatory, single-valued)
  relationship DeptAttr(dept_owner: Employee, dept_value: Department);
  card Employee in DeptAttr.dept_owner = (1, 1);
  // every department has between 1 and 50 members
  card Department in DeptAttr.dept_value = (1, 50);

  // attribute Manager.reports : set<Report>  (1..10)
  relationship ReportsAttr(reports_owner: Manager, reports_value: Report);
  card Manager in ReportsAttr.reports_owner = (1, 10);
  card Report in ReportsAttr.reports_value = (1, 1);

  // attribute Department.head : Manager  (mandatory, single-valued,
  // modeled from the department side)
  relationship HeadAttr(head_of: Department, head_value: Manager);
  card Department in HeadAttr.head_of = (1, 1);
  // a manager heads at most 2 departments
  card Manager in HeadAttr.head_value = (0, 2);
}
)";

// The same schema, plus a refinement that looks local but is globally
// inconsistent: every manager must head at least 3 departments, while
// managers may head at most 2.
constexpr char kBrokenRefinement[] = R"(
schema OoPayrollBroken {
  class Employee, Manager, Department, Report;
  isa Manager < Employee;
  relationship DeptAttr(dept_owner: Employee, dept_value: Department);
  card Employee in DeptAttr.dept_owner = (1, 1);
  card Department in DeptAttr.dept_value = (1, 50);
  relationship ReportsAttr(reports_owner: Manager, reports_value: Report);
  card Manager in ReportsAttr.reports_owner = (1, 10);
  card Report in ReportsAttr.reports_value = (1, 1);
  // Heads are now typed as employees, capped at 2 departments each, with
  // a refinement demanding that *managers* head at least 3 — locally each
  // line looks sensible, jointly Manager can never be instantiated.
  relationship HeadAttr(head_of: Department, head_value: Employee);
  card Department in HeadAttr.head_of = (1, 1);
  card Employee in HeadAttr.head_value = (0, 2);
  card Manager in HeadAttr.head_value = (3, *);
}
)";

int Analyze(const char* text) {
  crsat::Result<crsat::NamedSchema> parsed = crsat::ParseSchema(text);
  if (!parsed.ok()) {
    std::cerr << "parse failed: " << parsed.status() << "\n";
    return EXIT_FAILURE;
  }
  const crsat::Schema& schema = parsed->schema;
  std::cout << "=== " << parsed->name << " ===\n";
  crsat::Result<crsat::Expansion> expansion = crsat::Expansion::Build(schema);
  if (!expansion.ok()) {
    std::cerr << "expansion failed: " << expansion.status() << "\n";
    return EXIT_FAILURE;
  }
  crsat::SatisfiabilityChecker checker(*expansion);
  std::vector<bool> satisfiable = checker.SatisfiableClasses().value();
  for (crsat::ClassId cls : schema.AllClasses()) {
    std::cout << "  class " << schema.ClassName(cls) << ": "
              << (satisfiable[cls.value] ? "instantiable"
                                         : "NOT instantiable")
              << "\n";
  }

  // For instantiable Manager, report the effective (implied) attribute
  // cardinalities after inheritance interaction.
  crsat::ClassId manager = schema.FindClass("Manager").value();
  if (satisfiable[manager.value]) {
    crsat::RelationshipId head_attr =
        schema.FindRelationship("HeadAttr").value();
    crsat::RoleId head_value = schema.FindRole("head_value").value();
    crsat::Result<std::uint64_t> implied_min =
        crsat::ImplicationChecker::TightestImpliedMin(schema, manager,
                                                      head_attr, head_value);
    crsat::Result<std::optional<std::uint64_t>> implied_max =
        crsat::ImplicationChecker::TightestImpliedMax(
            schema, manager, head_attr, head_value, /*search_limit=*/8);
    if (implied_min.ok() && implied_max.ok()) {
      std::cout << "  effective Manager.heads cardinality: ("
                << *implied_min << ", "
                << (implied_max->has_value()
                        ? std::to_string(**implied_max)
                        : "*")
                << ")\n";
    }
  } else {
    std::cout << "  -> diagnosing Manager:\n";
    crsat::Result<crsat::UnsatCore> core =
        crsat::MinimizeUnsatCore(schema, manager);
    if (core.ok()) {
      for (const crsat::CoreConstraint& constraint : core->constraints) {
        std::cout << "     - " << constraint.description << "\n";
      }
    }
  }
  std::cout << "\n";
  return EXIT_SUCCESS;
}

}  // namespace

int main() {
  if (Analyze(kOoSchema) != EXIT_SUCCESS) {
    return EXIT_FAILURE;
  }
  return Analyze(kBrokenRefinement);
}
