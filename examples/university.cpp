// A larger conceptual-design scenario: a university schema mixing ISA
// hierarchies, ternary relationships, refinements, and the Section 5
// extensions (disjointness and covering). This is the kind of schema a
// CASE tool would hand to crsat during conceptual database design
// (the paper's Section 1 motivation): the designer wants to know which
// classes can be populated, what the schema silently implies, and how
// much disjointness shrinks the reasoning problem.

#include <cstdlib>
#include <iostream>

#include "src/crsat.h"

namespace {

constexpr char kUniversityText[] = R"(
schema University {
  class Person, Student, Professor, PhDStudent, Course, Department, Room;

  isa Student < Person;
  isa Professor < Person;
  isa PhDStudent < Student;
  // PhD students teach, so they are also professors in this university.
  isa PhDStudent < Professor;

  // Students and rooms have nothing in common; neither do courses and
  // persons (Section 5 extensions; these also prune the expansion).
  disjoint Person, Course, Room;
  // Every person on record is a student or a professor.
  cover Person by Student, Professor;

  relationship Teaches(teacher: Professor, course: Course);
  relationship Enrolled(student: Student, enrolled_course: Course);
  relationship Lecture(lecture_course: Course, room: Room, dept: Department);

  // Every professor teaches 1..3 courses; every course is taught by
  // exactly one professor.
  card Professor in Teaches.teacher = (1, 3);
  card Course in Teaches.course = (1, 1);
  // PhD students are limited to one course (a refinement).
  card PhDStudent in Teaches.teacher = (1, 1);

  // Every course has at least 2 students; students take 1..5 courses.
  card Student in Enrolled.student = (1, 5);
  card Course in Enrolled.enrolled_course = (2, *);
  // PhD students audit at most 2 courses.
  card PhDStudent in Enrolled.student = (1, 2);

  // Every course gets exactly one lecture slot; rooms host at most 4;
  // departments run at least 1.
  card Course in Lecture.lecture_course = (1, 1);
  card Room in Lecture.room = (0, 4);
  card Department in Lecture.dept = (1, *);
}
)";

}  // namespace

int main() {
  crsat::Result<crsat::NamedSchema> parsed =
      crsat::ParseSchema(kUniversityText);
  if (!parsed.ok()) {
    std::cerr << "parse failed: " << parsed.status() << "\n";
    return EXIT_FAILURE;
  }
  const crsat::Schema& schema = parsed->schema;

  crsat::Result<crsat::Expansion> expansion = crsat::Expansion::Build(schema);
  if (!expansion.ok()) {
    std::cerr << "expansion failed: " << expansion.status() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "Expansion size: " << expansion->classes().size()
            << " consistent compound classes (of "
            << expansion->total_compound_class_count() << " total), "
            << expansion->relationships().size()
            << " consistent compound relationships.\n";

  // How much did the Section 5 extensions prune?
  crsat::ExpansionOptions no_extensions;
  no_extensions.use_extensions = false;
  crsat::Result<crsat::Expansion> unpruned =
      crsat::Expansion::Build(schema, no_extensions);
  if (unpruned.ok()) {
    std::cout << "Without disjointness/covering pruning it would be "
              << unpruned->classes().size() << " compound classes and "
              << unpruned->relationships().size()
              << " compound relationships.\n\n";
  }

  crsat::SatisfiabilityChecker checker(*expansion);
  std::vector<bool> satisfiable = checker.SatisfiableClasses().value();
  std::cout << "Class satisfiability:\n";
  for (crsat::ClassId cls : schema.AllClasses()) {
    std::cout << "  " << schema.ClassName(cls) << ": "
              << (satisfiable[cls.value] ? "satisfiable" : "UNSATISFIABLE")
              << "\n";
  }

  // Hidden consequences of the ISA/cardinality interaction.
  crsat::ClassId phd = schema.FindClass("PhDStudent").value();
  crsat::RelationshipId teaches = schema.FindRelationship("Teaches").value();
  crsat::RelationshipId enrolled =
      schema.FindRelationship("Enrolled").value();
  crsat::RoleId teacher = schema.FindRole("teacher").value();
  crsat::RoleId student_role = schema.FindRole("student").value();

  std::cout << "\nImplied bounds for PhD students:\n";
  crsat::Result<std::uint64_t> min_teaching =
      crsat::ImplicationChecker::TightestImpliedMin(schema, phd, teaches,
                                                    teacher);
  crsat::Result<std::optional<std::uint64_t>> max_teaching =
      crsat::ImplicationChecker::TightestImpliedMax(schema, phd, teaches,
                                                    teacher,
                                                    /*search_limit=*/8);
  if (min_teaching.ok() && max_teaching.ok()) {
    std::cout << "  teaching load: (" << *min_teaching << ", "
              << (max_teaching->has_value() ? std::to_string(**max_teaching)
                                            : "*")
              << ")\n";
  }
  crsat::Result<std::optional<std::uint64_t>> max_enrollment =
      crsat::ImplicationChecker::TightestImpliedMax(schema, phd, enrolled,
                                                    student_role,
                                                    /*search_limit=*/8);
  if (max_enrollment.ok()) {
    std::cout << "  enrollment: at most "
              << (max_enrollment->has_value()
                      ? std::to_string(**max_enrollment)
                      : "unbounded")
              << " courses\n";
  }

  // Materialize a sample database state.
  crsat::Result<crsat::Interpretation> model =
      crsat::ModelBuilder::BuildModelForClass(checker, phd);
  if (!model.ok()) {
    std::cerr << "model construction failed: " << model.status() << "\n";
    return EXIT_FAILURE;
  }
  crsat::ClassId course = schema.FindClass("Course").value();
  crsat::ClassId professor = schema.FindClass("Professor").value();
  std::cout << "\nSample database state populating PhDStudent: "
            << model->domain_size() << " individuals, "
            << model->ClassExtension(professor).size() << " professors, "
            << model->ClassExtension(course).size() << " courses.\n";
  std::cout << "Model verifies: "
            << (crsat::ModelChecker::IsModel(schema, *model) ? "yes" : "NO")
            << "\n";
  return EXIT_SUCCESS;
}
