#ifndef CRSAT_ORACLE_BRUTE_FORCE_H_
#define CRSAT_ORACLE_BRUTE_FORCE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/base/result.h"
#include "src/cr/interpretation.h"
#include "src/cr/model_checker.h"
#include "src/cr/schema.h"

namespace crsat {

/// Bounds for the brute-force oracle. The oracle's verdicts are always
/// relative to these bounds: "unsatisfiable up to bound" means no model
/// with at most `max_domain` individuals and at most
/// `max_tuples_per_relationship` tuples per relationship exists — it is
/// *not* a claim about larger models.
struct OracleOptions {
  /// Largest domain (number of individuals) searched.
  int max_domain = 4;
  /// Largest relationship extension searched.
  std::uint64_t max_tuples_per_relationship = 24;
  /// Budget on complete class assignments examined before the search gives
  /// up with `kResourceExhausted` (a verdict is never guessed).
  std::uint64_t max_assignments = 4'000'000;
  /// Budget on backtracking nodes for relationships of arity >= 3 (arity-2
  /// relationships use an exact flow argument and never backtrack).
  std::uint64_t max_search_nodes = 2'000'000;
};

/// Per-class verdict of the bounded search.
enum class OracleVerdict {
  kSatisfiable,            // A ModelChecker-certified model was found.
  kUnsatisfiableUpToBound  // Exhaustive: no model within the bounds.
};

struct OracleClassResult {
  OracleVerdict verdict = OracleVerdict::kUnsatisfiableUpToBound;
  /// Domain size of the (first, smallest) found model; -1 when unsat.
  int model_domain_size = -1;
};

/// Outcome of `BruteForceOracle::Decide`. `models[c]` holds a
/// ModelChecker-certified exemplar model populating class `c` for every
/// satisfiable class (it references the schema passed to `Decide`, which
/// must outlive the report).
struct OracleReport {
  std::vector<OracleClassResult> classes;
  std::vector<std::optional<Interpretation>> models;
  std::uint64_t assignments_examined = 0;

  bool Satisfiable(ClassId cls) const {
    return classes[cls.value].verdict == OracleVerdict::kSatisfiable;
  }
};

/// An independent, bounded ground-truth decision procedure for finite
/// class satisfiability, used to cross-check the expansion + disequation
/// reasoner (src/reasoner/) in the conformance harness.
///
/// The oracle works directly over `Schema` semantics (Definition 2.2) and
/// certifies every SAT verdict by running `ModelChecker` on an explicit
/// `Interpretation`; it shares *no* code with `expansion/` or `lp/` (the
/// build enforces this: the `crsat_oracle` library links only against
/// `crsat_core`). Its only semantic dependency is the model checker — the
/// same judge that certifies the reasoner's witnesses — so a bug in the
/// fast pipeline cannot silently cancel out here.
///
/// Method: individuals in a model are interchangeable up to their class
/// membership set, and the model conditions decompose per individual
/// (ISA, disjointness, covering) and per relationship (typing,
/// cardinality). The search therefore enumerates multisets of *locally
/// consistent* class-membership profiles (ISA-closed, disjointness- and
/// covering-respecting bit sets — any individual of a model must carry
/// one) by increasing domain size, and for each assignment decides every
/// relationship independently: does a duplicate-free tuple set over the
/// populated primaries exist whose per-individual role counts meet every
/// applicable cardinality declaration? Arity-2 relationships reduce
/// exactly to a degree-constrained bipartite subgraph found by a
/// self-contained max-flow with lower bounds; higher arities use exact
/// backtracking under `max_search_nodes`. Any witness found is
/// materialized and certified before a SAT verdict is reported.
class BruteForceOracle {
 public:
  /// Decides bounded satisfiability of every class. Fails with
  /// `kResourceExhausted` when a budget runs out (never guesses),
  /// `kInternal` if a constructed witness unexpectedly fails
  /// certification, and `kInvalidArgument` for schemas too wide to
  /// enumerate (more than 16 classes).
  static Result<OracleReport> Decide(const Schema& schema,
                                     const OracleOptions& options = {});
};

}  // namespace crsat

#endif  // CRSAT_ORACLE_BRUTE_FORCE_H_
