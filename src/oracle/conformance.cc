#include "src/oracle/conformance.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <optional>
#include <sstream>
#include <utility>

#include "src/analysis/empty_classes.h"
#include "src/base/degradation.h"
#include "src/base/deterministic.h"
#include "src/base/failpoint.h"
#include "src/base/resource_guard.h"
#include "src/baseline/fast_path.h"
#include "src/baseline/ln_reasoner.h"
#include "src/lp/simplex.h"
#include "src/reasoner/implication_engine.h"
#include "src/cr/interpretation.h"
#include "src/cr/model_checker.h"
#include "src/cr/schema_text.h"
#include "src/expansion/expansion.h"
#include "src/generator/random_schema.h"
#include "src/oracle/metamorphic.h"
#include "src/oracle/schema_parts.h"
#include "src/reasoner/satisfiability.h"
#include "src/saturation/graph.h"
#include "src/saturation/saturation.h"
#include "src/witness/witness.h"

namespace crsat {

namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

bool IsResourceLimit(StatusCode code) {
  return code == StatusCode::kResourceExhausted ||
         code == StatusCode::kDeadlineExceeded;
}

/// Witness-synthesis failures that do not convict anyone: budget and
/// guard exhaustion (`WitnessSynthesizer::Synthesize` contract). What is
/// NOT here is deliberate — `kInternal` means certification refused a
/// synthesized model, and `kInvalidArgument` means the pipeline saw no
/// satisfiable class right after the reasoner reported one.
bool IsBenignWitnessFailure(StatusCode code) {
  return IsResourceLimit(code) || code == StatusCode::kUnavailable ||
         code == StatusCode::kCancelled;
}

/// The production verdict path — the same expansion -> known-empty feed ->
/// satisfiability pipeline `crsat_cli check` runs. `inject_flip_class`
/// (when in range) flips one verdict, simulating a reasoner bug.
/// `expansion_options` lets the chaos driver thread a resource guard
/// through the whole pipeline (the options travel with the built
/// expansion into every downstream layer).
Result<std::vector<bool>> ReasonerVerdicts(
    const Schema& schema, int inject_flip_class,
    const ExpansionOptions& expansion_options = {}) {
  Result<Expansion> expansion = Expansion::Build(schema, expansion_options);
  if (!expansion.ok()) {
    return expansion.status();
  }
  SatisfiabilityChecker checker(*expansion);
  checker.SetKnownEmptyClasses(ComputeProvablyEmpty(schema).class_empty);
  Result<std::vector<bool>> verdicts = checker.SatisfiableClasses();
  if (!verdicts.ok()) {
    return verdicts.status();
  }
  std::vector<bool> result = std::move(verdicts).value();
  if (inject_flip_class >= 0 &&
      inject_flip_class < static_cast<int>(result.size())) {
    result[inject_flip_class] = !result[inject_flip_class];
  }
  return result;
}

/// Synthesizes a certified witness when some class is satisfiable.
/// Failure statuses propagate so the caller can tell a benign resource
/// limit from a semantic failure: the production pipeline promises that
/// whenever it reports a satisfiable class it can also certify a model,
/// so "reasoner says SAT but synthesis failed" is a conformance
/// disagreement, not bad luck.
Result<Interpretation> SynthesizeWitness(
    const Schema& schema, const ExpansionOptions& expansion_options = {}) {
  Result<Expansion> expansion = Expansion::Build(schema, expansion_options);
  if (!expansion.ok()) {
    return expansion.status();
  }
  SatisfiabilityChecker checker(*expansion);
  Result<std::vector<bool>> verdicts = checker.SatisfiableClasses();
  if (!verdicts.ok()) {
    return verdicts.status();
  }
  if (std::none_of(verdicts->begin(), verdicts->end(),
                   [](bool satisfiable) { return satisfiable; })) {
    return Status(StatusCode::kInvalidArgument, "no satisfiable class");
  }
  WitnessSynthesizer synthesizer(checker);
  Result<CertifiedWitness> witness = synthesizer.Synthesize();
  if (!witness.ok()) {
    return witness.status();
  }
  return std::move(witness).value().TakeInterpretation();
}

/// Degraded form for minimization predicates, where candidate schemas may
/// legitimately have no witness.
std::optional<Interpretation> TrySynthesizeWitness(const Schema& schema) {
  Result<Interpretation> witness = SynthesizeWitness(schema);
  if (!witness.ok()) {
    return std::nullopt;
  }
  return std::move(witness).value();
}

/// True iff the certified witness would have been found by an oracle run
/// with these bounds (domain and every relationship extension inside the
/// caps) — in which case an UNSAT-up-to-bound verdict convicts the oracle.
bool WitnessFitsBounds(const Interpretation& witness,
                       const OracleOptions& bounds) {
  if (witness.domain_size() > bounds.max_domain) {
    return false;
  }
  for (RelationshipId rel : witness.schema().AllRelationships()) {
    if (witness.RelationshipExtension(rel).size() >
        bounds.max_tuples_per_relationship) {
      return false;
    }
  }
  return true;
}

/// Greedy delta-debugging over SchemaParts: repeatedly drop any single
/// declaration (covering, disjointness, cardinality, ISA edge, or a whole
/// relationship with its cardinalities) as long as `disagrees` still holds
/// on the rebuilt schema. Classes are never dropped so class ids stay
/// stable for the predicate. Returns the shrunk schema's text, or "" when
/// nothing was removable.
std::string MinimizeDisagreement(
    const Schema& schema, const std::function<bool(const Schema&)>& disagrees,
    int budget) {
  SchemaParts parts = SchemaParts::FromSchema(schema);
  int evaluations = 0;
  auto still_disagrees = [&](const SchemaParts& candidate) {
    if (evaluations >= budget) {
      return false;
    }
    ++evaluations;
    Result<Schema> built = candidate.Build();
    return built.ok() && disagrees(*built);
  };
  auto try_drop_each = [&](size_t count,
                           const std::function<void(SchemaParts*, size_t)>&
                               erase) {
    for (size_t i = 0; i < count; ++i) {
      SchemaParts candidate = parts;
      erase(&candidate, i);
      if (still_disagrees(candidate)) {
        parts = std::move(candidate);
        return true;
      }
    }
    return false;
  };
  bool removed_anything = false;
  bool progress = true;
  while (progress) {
    progress =
        try_drop_each(parts.coverings.size(),
                      [](SchemaParts* p, size_t i) {
                        p->coverings.erase(p->coverings.begin() + i);
                      }) ||
        try_drop_each(parts.disjointness.size(),
                      [](SchemaParts* p, size_t i) {
                        p->disjointness.erase(p->disjointness.begin() + i);
                      }) ||
        try_drop_each(parts.cards.size(),
                      [](SchemaParts* p, size_t i) {
                        p->cards.erase(p->cards.begin() + i);
                      }) ||
        try_drop_each(parts.isa.size(),
                      [](SchemaParts* p, size_t i) {
                        p->isa.erase(p->isa.begin() + i);
                      }) ||
        try_drop_each(
            parts.relationships.size(), [](SchemaParts* p, size_t i) {
              const std::string name = p->relationships[i].name;
              p->relationships.erase(p->relationships.begin() + i);
              p->cards.erase(
                  std::remove_if(p->cards.begin(), p->cards.end(),
                                 [&name](const SchemaParts::Card& card) {
                                   return card.rel == name;
                                 }),
                  p->cards.end());
            });
    removed_anything = removed_anything || progress;
  }
  if (!removed_anything) {
    return "";
  }
  Result<Schema> built = parts.Build();
  if (!built.ok()) {
    return "";
  }
  return SchemaToText(*built, "minimized");
}

bool RelationHolds(VerdictRelation relation, bool original_sat,
                   bool mutant_sat) {
  switch (relation) {
    case VerdictRelation::kEquisatisfiable:
      return original_sat == mutant_sat;
    case VerdictRelation::kSatPreserved:
      return !original_sat || mutant_sat;
    case VerdictRelation::kUnsatPreserved:
      return original_sat || !mutant_sat;
  }
  return false;
}

RandomSchemaParams SweepParams(const ConformanceOptions& options,
                               std::uint32_t seed) {
  RandomSchemaParams params;
  params.seed = seed;
  params.num_classes = options.num_classes;
  params.num_relationships = options.num_relationships;
  params.isa_density = options.isa_density;
  // Exercise the Section 5 extensions on a third of the sweep: enough to
  // cover disjointness interaction without making most schemas trivially
  // unsatisfiable.
  params.num_disjointness_groups = (seed % 3 == 0) ? 1 : 0;
  return params;
}

}  // namespace

std::string ConformanceReport::ToJson() const {
  std::ostringstream out;
  out << "{\n"
      << "  \"schemas_checked\": " << schemas_checked << ",\n"
      << "  \"class_verdicts_compared\": " << class_verdicts_compared
      << ",\n"
      << "  \"sat_confirmed_by_oracle\": " << sat_confirmed_by_oracle
      << ",\n"
      << "  \"unsat_consistent_up_to_bound\": " << unsat_consistent_up_to_bound
      << ",\n"
      << "  \"sat_beyond_bound\": " << sat_beyond_bound << ",\n"
      << "  \"oracle_exhausted\": " << oracle_exhausted << ",\n"
      << "  \"baseline_schemas\": " << baseline_schemas << ",\n"
      << "  \"metamorphic_mutants\": " << metamorphic_mutants << ",\n"
      << "  \"witnesses_certified\": " << witnesses_certified << ",\n"
      << "  \"saturation_models_certified\": " << saturation_models_certified
      << ",\n"
      << "  \"sat_confirmed_by_saturation\": " << sat_confirmed_by_saturation
      << ",\n"
      << "  \"unsat_confirmed_by_saturation\": "
      << unsat_confirmed_by_saturation << ",\n"
      << "  \"sat_without_finite_witness\": " << sat_without_finite_witness
      << ",\n"
      << "  \"infinite_model_contrasts\": " << infinite_model_contrasts
      << ",\n"
      << "  \"saturation_unknown\": " << saturation_unknown << ",\n";
  {
    // Process-wide solver counters at report time; with the CLI's
    // reset-at-command-start discipline they cover exactly this sweep.
    const SimplexStats& lp = GetSimplexStats();
    const ImplicationStats& probe = GetImplicationStats();
    const ExpansionStats& expand = GetExpansionStats();
    auto load = [](const std::atomic<std::uint64_t>& counter) {
      return counter.load(std::memory_order_relaxed);
    };
    out << "  \"stats\": {\"solves\": " << load(lp.solves)
        << ", \"pivots\": " << load(lp.pivots)
        << ", \"warm_start_hits\": " << load(lp.warm_start_hits)
        << ", \"warm_start_misses\": " << load(lp.warm_start_misses)
        << ", \"dual_pivots\": " << load(lp.dual_pivots)
        << ", \"incremental_hits\": " << load(lp.incremental_hits)
        << ", \"incremental_fallbacks\": " << load(lp.incremental_fallbacks)
        << ", \"dominance_lookups\": " << load(probe.dominance_lookups)
        << ", \"dominance_hits\": " << load(probe.dominance_hits)
        << ", \"derived_disjoint_pairs\": "
        << load(expand.derived_disjoint_pairs)
        << ", \"pruned_subtrees\": " << load(expand.pruned_subtrees)
        << ", \"ln_short_circuits\": "
        << load(GetFastPathStats().ln_short_circuits) << "},\n";
  }
  out << "  \"disagreements\": [";
  bool first = true;
  for (const ConformanceDisagreement& d : disagreements) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"seed\": " << d.seed << ", \"kind\": \""
        << JsonEscape(d.kind) << "\", \"class\": \""
        << JsonEscape(d.class_name) << "\", \"detail\": \""
        << JsonEscape(d.detail) << "\", \"schema\": \""
        << JsonEscape(d.schema_text) << "\", \"minimized\": \""
        << JsonEscape(d.minimized_schema_text) << "\"}";
  }
  out << (disagreements.empty() ? "]" : "\n  ]") << "\n}";
  return out.str();
}

std::string ConformanceReport::Summary() const {
  std::ostringstream out;
  out << schemas_checked << " schemas, " << class_verdicts_compared
      << " class verdicts vs oracle (" << sat_confirmed_by_oracle
      << " sat confirmed, " << unsat_consistent_up_to_bound
      << " unsat consistent, " << sat_beyond_bound << " sat beyond bound, "
      << oracle_exhausted << " oracle budget skips), " << baseline_schemas
      << " baseline schemas, " << metamorphic_mutants
      << " metamorphic mutants, " << witnesses_certified
      << " witnesses certified, saturation vote ("
      << saturation_models_certified << " models certified, "
      << sat_confirmed_by_saturation << " sat confirmed, "
      << unsat_confirmed_by_saturation << " unsat confirmed, "
      << sat_without_finite_witness << " sat without finite witness, "
      << infinite_model_contrasts << " infinite-model contrasts, "
      << saturation_unknown << " unknown): " << disagreements.size()
      << " disagreement(s)";
  return out.str();
}

Result<ConformanceReport> RunConformance(const ConformanceOptions& options) {
  ConformanceReport report;
  // Curated extras first (reported with seed 0), then the generated
  // sweep. Both run the identical comparison pipeline; only the baseline
  // cross-check is generator-derived and skips extras.
  struct SweepItem {
    std::uint32_t seed = 0;
    bool generated = false;
    Schema schema;
  };
  std::vector<SweepItem> items;
  for (const std::string& text : options.extra_schema_texts) {
    Result<NamedSchema> parsed = ParseSchema(text);
    if (!parsed.ok()) {
      return Status(parsed.status().code(),
                    "extra conformance schema failed to parse: " +
                        parsed.status().message());
    }
    items.push_back({0, false, std::move(parsed).value().schema});
  }
  for (int i = 0; i < options.num_seeds; ++i) {
    const std::uint32_t seed =
        options.first_seed + static_cast<std::uint32_t>(i);
    Result<Schema> generated =
        GenerateRandomSchema(SweepParams(options, seed));
    if (!generated.ok()) {
      return generated.status();
    }
    items.push_back({seed, true, std::move(generated).value()});
  }
  for (const SweepItem& item : items) {
    const std::uint32_t seed = item.seed;
    const Schema& schema = item.schema;
    const std::string schema_text = SchemaToText(schema, "conformance");

    Result<std::vector<bool>> reasoner =
        ReasonerVerdicts(schema, options.inject_flip_class);
    if (!reasoner.ok()) {
      return Status(reasoner.status().code(),
                    "reasoner failed on seed " + std::to_string(seed) +
                        ": " + reasoner.status().message());
    }
    ++report.schemas_checked;

    auto record = [&](const std::string& kind, ClassId cls,
                      const std::string& detail,
                      const std::function<bool(const Schema&)>& predicate) {
      ConformanceDisagreement disagreement;
      disagreement.seed = seed;
      disagreement.kind = kind;
      disagreement.class_name = schema.ClassName(cls);
      disagreement.detail = detail;
      disagreement.schema_text = schema_text;
      if (options.minimize) {
        disagreement.minimized_schema_text = MinimizeDisagreement(
            schema, predicate, options.minimize_budget);
      }
      report.disagreements.push_back(std::move(disagreement));
    };

    // --- Witness cross-check ------------------------------------------
    // Whenever the reasoner reports any satisfiable class, make the
    // production pipeline put up a witness and re-judge it here, outside
    // that pipeline. The synthesizer certifies internally, but this
    // invocation is the harness's own: a witness that fails it is a
    // disagreement, not an exception.
    std::optional<Interpretation> witness;
    const bool any_sat =
        std::any_of(reasoner->begin(), reasoner->end(), [](bool b) {
          return b;
        });
    if (options.check_witnesses && any_sat) {
      Result<Interpretation> synthesized = SynthesizeWitness(schema);
      if (synthesized.ok()) {
        witness = std::move(synthesized).value();
        if (ModelChecker::IsModel(schema, *witness)) {
          ++report.witnesses_certified;
        } else {
          record("witness-not-a-model", ClassId{0},
                 "synthesized witness with domain size " +
                     std::to_string(witness->domain_size()) +
                     " fails ModelChecker",
                 [&options](const Schema& candidate) {
                   Result<std::vector<bool>> v = ReasonerVerdicts(
                       candidate, options.inject_flip_class);
                   if (!v.ok() ||
                       std::none_of(v->begin(), v->end(),
                                    [](bool b) { return b; })) {
                     return false;
                   }
                   std::optional<Interpretation> w =
                       TrySynthesizeWitness(candidate);
                   return w.has_value() &&
                          !ModelChecker::IsModel(candidate, *w);
                 });
          witness.reset();  // Not a model; useless against the oracle.
        }
      } else if (!IsBenignWitnessFailure(synthesized.status().code())) {
        // The reasoner reported a satisfiable class, yet its own witness
        // pipeline cannot put up a certified model. Either the verdict is
        // an unsound SAT or the synthesizer is broken; both are findings.
        record("witness-synthesis-failed", ClassId{0},
               "reasoner reports satisfiable classes but synthesis "
               "failed: " +
                   synthesized.status().message(),
               [&options](const Schema& candidate) {
                 Result<std::vector<bool>> v = ReasonerVerdicts(
                     candidate, options.inject_flip_class);
                 if (!v.ok() || std::none_of(v->begin(), v->end(),
                                             [](bool b) { return b; })) {
                   return false;
                 }
                 Result<Interpretation> w = SynthesizeWitness(candidate);
                 return !w.ok() &&
                        !IsBenignWitnessFailure(w.status().code());
               });
      }
    }

    // --- Reasoner vs brute-force oracle -------------------------------
    // The report outlives this block: the saturation vote below uses it
    // to corroborate its own findings when the oracle ran to completion.
    std::optional<OracleReport> oracle;
    if (options.check_oracle) {
      Result<OracleReport> decided =
          BruteForceOracle::Decide(schema, options.oracle);
      if (!decided.ok() && IsResourceLimit(decided.status().code())) {
        ++report.oracle_exhausted;
      } else if (!decided.ok()) {
        return Status(decided.status().code(),
                      "oracle failed on seed " + std::to_string(seed) + ": " +
                          decided.status().message());
      } else {
        oracle = std::move(decided).value();
      }
    }
    if (oracle.has_value()) {
      for (ClassId cls : schema.AllClasses()) {
        const bool reasoner_sat = (*reasoner)[cls.value];
        const bool oracle_sat = oracle->Satisfiable(cls);
        ++report.class_verdicts_compared;
        if (reasoner_sat && oracle_sat) {
          ++report.sat_confirmed_by_oracle;
          continue;
        }
        if (!reasoner_sat && !oracle_sat) {
          ++report.unsat_consistent_up_to_bound;
          continue;
        }
        if (!reasoner_sat && oracle_sat) {
          // The oracle holds a ModelChecker-certified model of a class the
          // reasoner claims cannot be populated: a soundness bug.
          record("reasoner-unsat-oracle-sat", cls,
                 "oracle found a certified model with domain size " +
                     std::to_string(
                         oracle->classes[cls.value].model_domain_size),
                 [&options, cls](const Schema& candidate) {
                   Result<std::vector<bool>> v = ReasonerVerdicts(
                       candidate, options.inject_flip_class);
                   Result<OracleReport> o =
                       BruteForceOracle::Decide(candidate, options.oracle);
                   return v.ok() && o.ok() && !(*v)[cls.value] &&
                          o->Satisfiable(cls);
                 });
          continue;
        }
        // reasoner SAT, oracle UNSAT up to bound. Only a disagreement if a
        // certified witness proves a model exists *within* the bounds.
        if (witness.has_value() &&
            WitnessFitsBounds(*witness, options.oracle) &&
            !witness->ClassExtension(cls).empty()) {
          record("oracle-missed-witness", cls,
                 "certified witness with domain size " +
                     std::to_string(witness->domain_size()) +
                     " fits the oracle bounds",
                 [&options, cls](const Schema& candidate) {
                   Result<std::vector<bool>> v = ReasonerVerdicts(
                       candidate, options.inject_flip_class);
                   Result<OracleReport> o =
                       BruteForceOracle::Decide(candidate, options.oracle);
                   if (!v.ok() || !o.ok() || !(*v)[cls.value] ||
                       o->Satisfiable(cls)) {
                     return false;
                   }
                   std::optional<Interpretation> w =
                       TrySynthesizeWitness(candidate);
                   return w.has_value() &&
                          WitnessFitsBounds(*w, options.oracle) &&
                          !w->ClassExtension(cls).empty();
                 });
        } else {
          ++report.sat_beyond_bound;
        }
      }
    }

    // --- The saturation vote ------------------------------------------
    // The third engine answers *classical* satisfiability plus, when it
    // can, a concrete finite model. Its evidence is re-judged here at
    // harness level, outside the engine: finite models go through
    // ModelChecker (the CertifiedWitness non-bypass discipline),
    // sat-with-reuse graphs through ValidateSaturationGraph. A valid
    // cyclic graph against a reasoner finitely-UNSAT is NOT a
    // disagreement — it is the infinite-model contrast this engine
    // exists to exhibit.
    if (options.check_saturation) {
      const SaturationOptions sat_options = options.saturation;
      const SaturationReport saturation =
          SaturationEngine::Decide(schema, sat_options);
      for (ClassId cls : schema.AllClasses()) {
        const SaturationClassResult& vote =
            saturation.classes[static_cast<size_t>(cls.value)];
        const bool reasoner_sat = (*reasoner)[cls.value];
        const bool oracle_ran = oracle.has_value();
        const bool oracle_sat = oracle_ran && oracle->Satisfiable(cls);
        switch (vote.verdict) {
          case SaturationVerdict::kUnknown:
            ++report.saturation_unknown;
            break;
          case SaturationVerdict::kUnsat:
            if (reasoner_sat) {
              record("saturation-unsat-reasoner-sat", cls,
                     "saturation proves classical UNSAT, reasoner reports "
                     "finitely SAT",
                     [sat_options, cls](const Schema& candidate) {
                       Result<std::vector<bool>> v =
                           ReasonerVerdicts(candidate, -1);
                       return v.ok() && (*v)[cls.value] &&
                              SaturationEngine::DecideClass(candidate, cls,
                                                            sat_options)
                                      .verdict == SaturationVerdict::kUnsat;
                     });
            } else if (oracle_sat) {
              record("saturation-unsat-oracle-sat", cls,
                     "saturation proves classical UNSAT, oracle holds a "
                     "certified model with domain size " +
                         std::to_string(
                             oracle->classes[cls.value].model_domain_size),
                     [&options, sat_options, cls](const Schema& candidate) {
                       Result<OracleReport> o = BruteForceOracle::Decide(
                           candidate, options.oracle);
                       return o.ok() && o->Satisfiable(cls) &&
                              SaturationEngine::DecideClass(candidate, cls,
                                                            sat_options)
                                      .verdict == SaturationVerdict::kUnsat;
                     });
            } else {
              ++report.unsat_confirmed_by_saturation;
            }
            break;
          case SaturationVerdict::kFiniteModel: {
            if (!vote.model.has_value() ||
                !ModelChecker::IsModel(schema, *vote.model)) {
              record("saturation-missed-violation", cls,
                     "saturation finite model" +
                         (vote.model.has_value()
                              ? " with domain size " +
                                    std::to_string(vote.model->domain_size())
                              : std::string("")) +
                         " fails the harness ModelChecker",
                     [sat_options, cls](const Schema& candidate) {
                       SaturationClassResult s = SaturationEngine::DecideClass(
                           candidate, cls, sat_options);
                       return s.verdict == SaturationVerdict::kFiniteModel &&
                              (!s.model.has_value() ||
                               !ModelChecker::IsModel(candidate, *s.model));
                     });
              break;
            }
            ++report.saturation_models_certified;
            if (!reasoner_sat) {
              record("reasoner-unsat-saturation-model", cls,
                     "harness-certified saturation model with domain size " +
                         std::to_string(vote.model->domain_size()) +
                         " for a class the reasoner calls UNSAT",
                     [sat_options, cls](const Schema& candidate) {
                       Result<std::vector<bool>> v =
                           ReasonerVerdicts(candidate, -1);
                       if (!v.ok() || (*v)[cls.value]) {
                         return false;
                       }
                       SaturationClassResult s = SaturationEngine::DecideClass(
                           candidate, cls, sat_options);
                       return s.verdict == SaturationVerdict::kFiniteModel &&
                              s.model.has_value() &&
                              ModelChecker::IsModel(candidate, *s.model);
                     });
              break;
            }
            ++report.sat_confirmed_by_saturation;
            if (oracle_ran && !oracle_sat &&
                WitnessFitsBounds(*vote.model, options.oracle) &&
                !vote.model->ClassExtension(cls).empty()) {
              record("oracle-missed-saturation-model", cls,
                     "certified saturation model with domain size " +
                         std::to_string(vote.model->domain_size()) +
                         " fits the oracle bounds",
                     [&options, sat_options, cls](const Schema& candidate) {
                       Result<OracleReport> o = BruteForceOracle::Decide(
                           candidate, options.oracle);
                       if (!o.ok() || o->Satisfiable(cls)) {
                         return false;
                       }
                       SaturationClassResult s = SaturationEngine::DecideClass(
                           candidate, cls, sat_options);
                       return s.verdict == SaturationVerdict::kFiniteModel &&
                              s.model.has_value() &&
                              ModelChecker::IsModel(candidate, *s.model) &&
                              WitnessFitsBounds(*s.model, options.oracle) &&
                              !s.model->ClassExtension(cls).empty();
                     });
            }
            break;
          }
          case SaturationVerdict::kSatWithReuse: {
            const std::vector<std::string> graph_violations =
                ValidateSaturationGraph(schema, vote.graph, cls);
            if (!graph_violations.empty()) {
              const std::string why =
                  "sat-with-reuse graph fails validation: " +
                  graph_violations.front();
              const auto invalid_graph = [sat_options,
                                          cls](const Schema& candidate) {
                SaturationClassResult s = SaturationEngine::DecideClass(
                    candidate, cls, sat_options);
                return s.verdict == SaturationVerdict::kSatWithReuse &&
                       !ValidateSaturationGraph(candidate, s.graph, cls)
                            .empty();
              };
              record(oracle_ran && !oracle_sat
                         ? "saturation-claims-sat-oracle-unsat"
                         : "saturation-graph-invalid",
                     cls, why, invalid_graph);
              break;
            }
            if (!reasoner_sat) {
              ++report.infinite_model_contrasts;
            } else {
              ++report.sat_without_finite_witness;
            }
            break;
          }
        }
      }
    }

    // --- Reasoner vs the Lenzerini–Nobili baseline --------------------
    // The baseline refuses ISA, so the comparison runs on an ISA-free
    // sibling schema generated from the same seed.
    if (options.check_baseline && item.generated) {
      RandomSchemaParams ln_params = SweepParams(options, seed);
      ln_params.isa_density = 0.0;
      ln_params.refinement_probability = 0.0;
      ln_params.num_disjointness_groups = 0;
      Result<Schema> ln_schema = GenerateRandomSchema(ln_params);
      if (!ln_schema.ok()) {
        return ln_schema.status();
      }
      Result<LnReasoner> baseline = LnReasoner::Create(*ln_schema);
      if (!baseline.ok()) {
        return Status(StatusCode::kInternal,
                      "ISA-free schema rejected by the LN baseline: " +
                          baseline.status().message());
      }
      Result<std::vector<bool>> baseline_verdicts =
          baseline->SatisfiableClasses();
      Result<std::vector<bool>> reasoner_on_ln =
          ReasonerVerdicts(*ln_schema, options.inject_flip_class);
      if (!baseline_verdicts.ok() || !reasoner_on_ln.ok()) {
        return Status(StatusCode::kInternal,
                      "baseline comparison failed on seed " +
                          std::to_string(seed));
      }
      ++report.baseline_schemas;
      for (ClassId cls : ln_schema->AllClasses()) {
        if ((*baseline_verdicts)[cls.value] ==
            (*reasoner_on_ln)[cls.value]) {
          continue;
        }
        ConformanceDisagreement disagreement;
        disagreement.seed = seed;
        disagreement.kind = "reasoner-vs-baseline";
        disagreement.class_name = ln_schema->ClassName(cls);
        disagreement.detail =
            std::string("reasoner says ") +
            ((*reasoner_on_ln)[cls.value] ? "sat" : "unsat") +
            ", LN baseline says " +
            ((*baseline_verdicts)[cls.value] ? "sat" : "unsat");
        disagreement.schema_text = SchemaToText(*ln_schema, "conformance");
        if (options.minimize) {
          disagreement.minimized_schema_text = MinimizeDisagreement(
              *ln_schema,
              [&options, cls](const Schema& candidate) {
                Result<LnReasoner> b = LnReasoner::Create(candidate);
                if (!b.ok()) {
                  return false;
                }
                Result<std::vector<bool>> bv = b->SatisfiableClasses();
                Result<std::vector<bool>> rv = ReasonerVerdicts(
                    candidate, options.inject_flip_class);
                return bv.ok() && rv.ok() &&
                       (*bv)[cls.value] != (*rv)[cls.value];
              },
              options.minimize_budget);
        }
        report.disagreements.push_back(std::move(disagreement));
      }
    }

    // --- Reasoner vs itself under metamorphic rewrites ----------------
    if (options.check_metamorphic) {
      Result<std::vector<MutatedSchema>> mutants =
          ApplyMetamorphicRules(schema, seed);
      if (!mutants.ok()) {
        return mutants.status();
      }
      for (const MutatedSchema& mutant : *mutants) {
        Result<std::vector<bool>> mutant_verdicts =
            ReasonerVerdicts(mutant.schema, /*inject_flip_class=*/-1);
        if (!mutant_verdicts.ok()) {
          return Status(mutant_verdicts.status().code(),
                        "reasoner failed on mutant '" + mutant.rule_name +
                            "' of seed " + std::to_string(seed) + ": " +
                            mutant_verdicts.status().message());
        }
        ++report.metamorphic_mutants;
        for (ClassId cls : schema.AllClasses()) {
          const bool original_sat = (*reasoner)[cls.value];
          const bool mutant_sat =
              (*mutant_verdicts)[mutant.class_map[cls.value].value];
          if (RelationHolds(mutant.relation, original_sat, mutant_sat)) {
            continue;
          }
          const std::string rule = mutant.rule_name;
          record(
              "metamorphic:" + rule, cls,
              std::string(VerdictRelationToString(mutant.relation)) +
                  " violated: original " +
                  (original_sat ? "sat" : "unsat") + ", mutant " +
                  (mutant_sat ? "sat" : "unsat"),
              [&options, cls, rule, seed](const Schema& candidate) {
                Result<std::vector<bool>> original = ReasonerVerdicts(
                    candidate, options.inject_flip_class);
                if (!original.ok()) {
                  return false;
                }
                Result<std::vector<MutatedSchema>> remutated =
                    ApplyMetamorphicRules(candidate, seed);
                if (!remutated.ok()) {
                  return false;
                }
                for (const MutatedSchema& m : *remutated) {
                  if (m.rule_name != rule) {
                    continue;
                  }
                  Result<std::vector<bool>> mv =
                      ReasonerVerdicts(m.schema, -1);
                  return mv.ok() &&
                         !RelationHolds(
                             m.relation, (*original)[cls.value],
                             (*mv)[m.class_map[cls.value].value]);
                }
                return false;
              });
        }
      }
    }
  }
  return report;
}

namespace {

/// Renders an armed schedule in the CRSAT_FAILPOINTS grammar, so every
/// reported flip replays from the command line.
std::string FormatSchedule(const std::vector<FailpointSpec>& schedule) {
  std::ostringstream out;
  bool first = true;
  for (const FailpointSpec& spec : schedule) {
    out << (first ? "" : ",") << spec.id;
    first = false;
    switch (spec.mode) {
      case FailpointMode::kNth:
        out << "=nth:" << spec.n;
        break;
      case FailpointMode::kEveryK:
        out << "=every:" << spec.n;
        break;
      case FailpointMode::kProbability:
        out << "=p:" << spec.probability << "@" << spec.seed;
        break;
    }
  }
  return out.str();
}

/// Seed-derived randomized fault schedule: 1..max_faults distinct
/// registered failpoints (a shuffled prefix of the registry), each with a
/// random mode — fire-once, every-K, or seeded probability. A pure
/// function of `seed`, exactly like the schema itself, so a failing seed
/// reproduces the identical fault schedule on any platform.
std::vector<FailpointSpec> ChaosSchedule(std::uint32_t seed, int max_faults) {
  // Decorrelated from the schema generator, which consumes the raw seed.
  DeterministicRng rng(seed * 2654435761u + 0x9E3779B9u);
  const std::vector<std::string>& registry = RegisteredFailpoints();
  std::vector<std::size_t> order(registry.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[static_cast<std::size_t>(rng.UniformInt(
                                0, static_cast<int>(i) - 1))]);
  }
  const int count =
      std::min(rng.UniformInt(1, std::max(1, max_faults)),
               static_cast<int>(registry.size()));
  std::vector<FailpointSpec> schedule;
  for (int i = 0; i < count; ++i) {
    FailpointSpec spec;
    spec.id = registry[order[static_cast<std::size_t>(i)]];
    switch (rng.UniformInt(0, 2)) {
      case 0:
        spec.mode = FailpointMode::kNth;
        spec.n = static_cast<std::uint64_t>(rng.UniformInt(1, 4));
        break;
      case 1:
        spec.mode = FailpointMode::kEveryK;
        spec.n = static_cast<std::uint64_t>(rng.UniformInt(2, 5));
        break;
      default:
        spec.mode = FailpointMode::kProbability;
        spec.probability = 0.25 * rng.UniformInt(1, 3);
        spec.seed = rng.NextWord();
        break;
    }
    schedule.push_back(std::move(spec));
  }
  return schedule;
}

/// However a faulted run exits, the process returns to fault-free.
struct ScopedChaosFaults {
  ~ScopedChaosFaults() { DeactivateAllFailpoints(); }
};

}  // namespace

std::string ChaosReport::ToJson() const {
  std::ostringstream out;
  out << "{\n"
      << "  \"seeds_swept\": " << seeds_swept << ",\n"
      << "  \"faulted_runs_agreeing\": " << faulted_runs_agreeing << ",\n"
      << "  \"degraded_to_unknown\": " << degraded_to_unknown << ",\n"
      << "  \"witnesses_survived\": " << witnesses_survived << ",\n"
      << "  \"witness_benign_failures\": " << witness_benign_failures
      << ",\n"
      << "  \"failpoints_armed\": " << failpoints_armed << ",\n"
      << "  \"faults_fired\": " << faults_fired << ",\n"
      << "  \"fires_by_failpoint\": {";
  {
    bool first = true;
    for (const auto& entry : fires_by_failpoint) {
      out << (first ? "" : ", ") << "\"" << JsonEscape(entry.first)
          << "\": " << entry.second;
      first = false;
    }
  }
  out << "},\n";
  {
    // Ladder-transition counters for the whole sweep (reset-at-start
    // discipline, same as the solver stats in ConformanceReport).
    const RecoveryStats& recovery = GetRecoveryStats();
    auto load = [](const std::atomic<std::uint64_t>& counter) {
      return counter.load(std::memory_order_relaxed);
    };
    out << "  \"recovery\": {\"warm_start_fallbacks\": "
        << load(recovery.warm_start_fallbacks)
        << ", \"cover_fallbacks\": " << load(recovery.cover_fallbacks)
        << ", \"tier_fallbacks\": " << load(recovery.tier_fallbacks)
        << ", \"witness_flow_refinements\": "
        << load(recovery.witness_flow_refinements)
        << ", \"witness_rescales\": " << load(recovery.witness_rescales)
        << ", \"bad_alloc_conversions\": "
        << load(recovery.bad_alloc_conversions)
        << ", \"guard_trips\": " << load(recovery.guard_trips) << "},\n";
  }
  out << "  \"flips\": [";
  bool first = true;
  for (const ChaosVerdictFlip& flip : flips) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"seed\": " << flip.seed << ", \"kind\": \""
        << JsonEscape(flip.kind) << "\", \"class\": \""
        << JsonEscape(flip.class_name) << "\", \"faults\": \""
        << JsonEscape(flip.fault_schedule) << "\", \"detail\": \""
        << JsonEscape(flip.detail) << "\", \"schema\": \""
        << JsonEscape(flip.schema_text) << "\"}";
  }
  out << (flips.empty() ? "]" : "\n  ]") << "\n}";
  return out.str();
}

std::string ChaosReport::Summary() const {
  std::ostringstream out;
  out << seeds_swept << " seeds under chaos (" << failpoints_armed
      << " failpoints armed, " << faults_fired << " faults fired): "
      << faulted_runs_agreeing << " faulted runs agreed with fault-free, "
      << degraded_to_unknown << " degraded to UNKNOWN, "
      << witnesses_survived << " witnesses survived, "
      << witness_benign_failures << " benign witness failures: "
      << flips.size() << " verdict flip(s)";
  return out.str();
}

Result<ChaosReport> RunChaosConformance(
    const ChaosConformanceOptions& options) {
  ChaosReport report;
  for (const std::string& id : RegisteredFailpoints()) {
    report.fires_by_failpoint.emplace_back(id, 0);
  }
  // However this sweep exits, leave the process fault-free.
  ScopedChaosFaults cleanup;
  for (int i = 0; i < options.num_seeds; ++i) {
    const std::uint32_t seed =
        options.first_seed + static_cast<std::uint32_t>(i);
    ConformanceOptions shape;
    shape.num_classes = options.num_classes;
    shape.num_relationships = options.num_relationships;
    shape.isa_density = options.isa_density;
    Result<Schema> generated = GenerateRandomSchema(SweepParams(shape, seed));
    if (!generated.ok()) {
      return generated.status();
    }
    const Schema& schema = *generated;

    // Ground truth: the fault-free run. A failure here is a harness bug,
    // not a chaos finding.
    DeactivateAllFailpoints();
    Result<std::vector<bool>> baseline =
        ReasonerVerdicts(schema, /*inject_flip_class=*/-1);
    if (!baseline.ok()) {
      return Status(baseline.status().code(),
                    "fault-free run failed on seed " + std::to_string(seed) +
                        ": " + baseline.status().message());
    }

    // Arm the seed-derived schedule and re-run the same pipeline, guarded
    // so `guard/trip` has a guard to trip.
    const std::vector<FailpointSpec> schedule =
        ChaosSchedule(seed, options.max_faults_per_seed);
    const std::string schedule_text = FormatSchedule(schedule);
    std::vector<FailpointCounters> before;
    for (const FailpointSpec& spec : schedule) {
      before.push_back(GetFailpointCounters(spec.id));
      CRSAT_RETURN_IF_ERROR(ActivateFailpoint(spec));
      ++report.failpoints_armed;
    }

    auto record_flip = [&](const std::string& kind,
                           const std::string& class_name,
                           const std::string& detail) {
      ChaosVerdictFlip flip;
      flip.seed = seed;
      flip.kind = kind;
      flip.class_name = class_name;
      flip.fault_schedule = schedule_text;
      flip.detail = detail;
      flip.schema_text = SchemaToText(schema, "chaos");
      report.flips.push_back(std::move(flip));
    };

    ResourceGuard guard;
    ExpansionOptions faulted_options;
    faulted_options.guard = &guard;
    Result<std::vector<bool>> faulted =
        ReasonerVerdicts(schema, options.inject_flip_class, faulted_options);
    if (faulted.ok()) {
      bool agreed = true;
      for (ClassId cls : schema.AllClasses()) {
        if ((*faulted)[cls.value] == (*baseline)[cls.value]) {
          continue;
        }
        agreed = false;
        record_flip("verdict-flip", schema.ClassName(cls),
                    std::string("fault-free run says ") +
                        ((*baseline)[cls.value] ? "sat" : "unsat") +
                        ", faulted run says " +
                        ((*faulted)[cls.value] ? "sat" : "unsat"));
      }
      if (agreed) {
        ++report.faulted_runs_agreeing;
      }
    } else if (IsResourceLimitStatus(faulted.status().code())) {
      // The bottom rung: an honest UNKNOWN instead of an answer.
      ++report.degraded_to_unknown;
    } else {
      record_flip("non-benign-status", "",
                  "faulted run failed outside the resource family: " +
                      faulted.status().message());
    }

    // Witness stage under the same faults: whenever the fault-free run
    // found a satisfiable class, the faulted pipeline must either put up
    // a model that certifies here — outside the pipeline — or fail with
    // one of its documented benign statuses. A non-model or a semantic
    // error is a ladder-soundness violation.
    const bool any_sat = std::any_of(baseline->begin(), baseline->end(),
                                     [](bool b) { return b; });
    if (options.check_witnesses && any_sat) {
      Result<Interpretation> witness =
          SynthesizeWitness(schema, faulted_options);
      if (witness.ok()) {
        if (ModelChecker::IsModel(schema, *witness)) {
          ++report.witnesses_survived;
        } else {
          record_flip("witness-flip", "",
                      "faulted witness stage synthesized a non-model with "
                      "domain size " +
                          std::to_string(witness->domain_size()));
        }
      } else if (IsBenignWitnessFailure(witness.status().code())) {
        ++report.witness_benign_failures;
      } else {
        record_flip("witness-flip", "",
                    "faulted witness stage failed outside the benign "
                    "family: " +
                        witness.status().message());
      }
    }

    for (std::size_t s = 0; s < schedule.size(); ++s) {
      const FailpointCounters after = GetFailpointCounters(schedule[s].id);
      const std::uint64_t fired = after.fires - before[s].fires;
      report.faults_fired += fired;
      for (auto& entry : report.fires_by_failpoint) {
        if (entry.first == schedule[s].id) {
          entry.second += fired;
          break;
        }
      }
    }
    DeactivateAllFailpoints();
    ++report.seeds_swept;
  }
  return report;
}

}  // namespace crsat
