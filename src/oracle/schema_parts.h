#ifndef CRSAT_ORACLE_SCHEMA_PARTS_H_
#define CRSAT_ORACLE_SCHEMA_PARTS_H_

#include <string>
#include <utility>
#include <vector>

#include "src/base/result.h"
#include "src/cr/schema.h"

namespace crsat {

/// A `Schema` exploded into freely editable, name-based declarations —
/// the working representation for schema surgery: the metamorphic rewrites
/// (src/oracle/metamorphic.h) edit parts and rebuild, and the conformance
/// minimizer drops parts one by one while a disagreement persists.
struct SchemaParts {
  struct Relationship {
    std::string name;
    /// (role name, primary class name) in declaration order.
    std::vector<std::pair<std::string, std::string>> roles;
  };
  struct Isa {
    std::string subclass;
    std::string superclass;
  };
  struct Card {
    std::string cls;
    std::string rel;
    std::string role;
    Cardinality cardinality;
  };
  struct Cover {
    std::string covered;
    std::vector<std::string> coverers;
  };

  std::vector<std::string> classes;
  std::vector<Relationship> relationships;
  std::vector<Isa> isa;
  std::vector<Card> cards;
  std::vector<std::vector<std::string>> disjointness;
  std::vector<Cover> coverings;

  static SchemaParts FromSchema(const Schema& schema);

  /// Rebuilds through `SchemaBuilder` (all well-formedness rules apply).
  Result<Schema> Build() const;
};

}  // namespace crsat

#endif  // CRSAT_ORACLE_SCHEMA_PARTS_H_
