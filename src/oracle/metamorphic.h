#ifndef CRSAT_ORACLE_METAMORPHIC_H_
#define CRSAT_ORACLE_METAMORPHIC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/cr/schema.h"

namespace crsat {

/// How a metamorphic rewrite relates the mutant's per-class satisfiability
/// verdicts to the original's. Each relation is a *theorem* about CR
/// semantics, independent of any reasoner — so a reasoner whose verdicts
/// violate one has a bug, with no oracle needed.
enum class VerdictRelation {
  /// verdict(original, C) == verdict(mutant, map(C)) for every original
  /// class C. Holds for meaning-preserving rewrites (renaming, role
  /// permutation, redundant ISA, interposition, dead grafting, duplicate
  /// disjointness).
  kEquisatisfiable,
  /// SAT(original, C) implies SAT(mutant, map(C)): every model of the
  /// original is a model of the mutant (constraint relaxation).
  kSatPreserved,
  /// UNSAT(original, C) implies UNSAT(mutant, map(C)): every model of the
  /// mutant is a model of the original (constraint tightening).
  kUnsatPreserved,
};

const char* VerdictRelationToString(VerdictRelation relation);

/// A rewritten schema plus the contract the rewrite guarantees.
struct MutatedSchema {
  std::string rule_name;
  VerdictRelation relation;
  Schema schema;
  /// `class_map[c.value]` is the mutant's id for the original class `c`.
  /// Fresh classes introduced by the rewrite have no preimage and are not
  /// part of the contract.
  std::vector<ClassId> class_map;
};

/// Names of all rules, in application order (stable; used for reporting).
std::vector<std::string> MetamorphicRuleNames();

/// Applies every applicable metamorphic rule to `schema`, drawing any
/// random choices deterministically from `seed` (same seed, same mutants,
/// any platform). Rules that do not apply (e.g. redundant-ISA insertion on
/// a schema with no composable ISA chain) are skipped. Fails only on
/// internal errors — a rule producing a schema that does not build is a
/// bug in the rule, not in the input.
Result<std::vector<MutatedSchema>> ApplyMetamorphicRules(
    const Schema& schema, std::uint32_t seed);

}  // namespace crsat

#endif  // CRSAT_ORACLE_METAMORPHIC_H_
