#include "src/oracle/brute_force.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <queue>
#include <string>
#include <utility>

namespace crsat {

namespace {

constexpr std::uint64_t kInfinity = std::numeric_limits<std::uint64_t>::max();

/// A locally consistent class-membership profile: the exact set of classes
/// one individual belongs to, as a bit mask, plus the per-role count
/// bounds any individual carrying the profile must satisfy.
struct Profile {
  std::uint32_t mask = 0;
  /// Indexed by global RoleId value. `in_extent[r]` iff the profile
  /// contains the primary class of role r (so its individuals may — and
  /// when `lo > 0` must — appear at that role). Bounds are the
  /// intersection of every applicable cardinality declaration.
  std::vector<bool> in_extent;
  std::vector<std::uint64_t> lo;
  std::vector<std::uint64_t> hi;  // kInfinity encodes "no maximum".
};

// ---------------------------------------------------------------------------
// Self-contained max-flow with lower bounds (for the arity-2 exact case).
// Deliberately independent of src/flow/ so the oracle shares no solver code
// with the witness pipeline it cross-checks. Graphs here have at most
// 2*max_domain + 4 nodes; a simple BFS augmenting-path flow is plenty.
// ---------------------------------------------------------------------------

class TinyFlow {
 public:
  explicit TinyFlow(int nodes) : head_(nodes, -1) {}

  int AddEdge(int from, int to, std::uint64_t capacity) {
    edges_.push_back({to, head_[from], capacity});
    head_[from] = static_cast<int>(edges_.size()) - 1;
    edges_.push_back({from, head_[to], 0});
    head_[to] = static_cast<int>(edges_.size()) - 1;
    return static_cast<int>(edges_.size()) - 2;
  }

  /// Flow pushed through forward edge `id` after MaxFlow.
  std::uint64_t FlowOn(int id) const { return edges_[id ^ 1].capacity; }

  std::uint64_t MaxFlow(int source, int sink) {
    std::uint64_t total = 0;
    while (true) {
      // BFS for a shortest augmenting path.
      std::vector<int> parent_edge(head_.size(), -1);
      std::vector<bool> seen(head_.size(), false);
      std::queue<int> frontier;
      frontier.push(source);
      seen[source] = true;
      while (!frontier.empty() && !seen[sink]) {
        int node = frontier.front();
        frontier.pop();
        for (int e = head_[node]; e != -1; e = edges_[e].next) {
          if (edges_[e].capacity == 0 || seen[edges_[e].to]) {
            continue;
          }
          seen[edges_[e].to] = true;
          parent_edge[edges_[e].to] = e;
          frontier.push(edges_[e].to);
        }
      }
      if (!seen[sink]) {
        return total;
      }
      std::uint64_t bottleneck = kInfinity;
      for (int node = sink; node != source;
           node = edges_[parent_edge[node] ^ 1].to) {
        bottleneck = std::min(bottleneck, edges_[parent_edge[node]].capacity);
      }
      for (int node = sink; node != source;
           node = edges_[parent_edge[node] ^ 1].to) {
        edges_[parent_edge[node]].capacity -= bottleneck;
        edges_[parent_edge[node] ^ 1].capacity += bottleneck;
      }
      total += bottleneck;
    }
  }

 private:
  struct Edge {
    int to;
    int next;
    std::uint64_t capacity;
  };
  std::vector<int> head_;
  std::vector<Edge> edges_;
};

/// Per-individual degree bounds on one side of an arity-2 relationship.
struct DegreeBound {
  int individual;  // Index into the assignment's individual list.
  std::uint64_t lo;
  std::uint64_t hi;
};

/// Decides — exactly — whether a duplicate-free 0/1 incidence between
/// `rows` and `cols` exists where row i has degree in [rows[i].lo, .hi],
/// column j likewise, and the total edge count is at most `max_total`.
/// On success appends the chosen (row individual, col individual) pairs.
/// This is a circulation-with-lower-bounds instance: S -> row (degree
/// range), row -> col (0/1), col -> T (degree range), T -> S (<= total).
bool SolveBipartite(const std::vector<DegreeBound>& rows,
                    const std::vector<DegreeBound>& cols,
                    std::uint64_t max_total,
                    std::vector<std::pair<int, int>>* out_pairs) {
  const int num_rows = static_cast<int>(rows.size());
  const int num_cols = static_cast<int>(cols.size());
  // Quick necessary checks before building the graph.
  for (const DegreeBound& row : rows) {
    if (row.lo > row.hi ||
        row.lo > static_cast<std::uint64_t>(num_cols)) {
      return false;
    }
  }
  for (const DegreeBound& col : cols) {
    if (col.lo > col.hi ||
        col.lo > static_cast<std::uint64_t>(num_rows)) {
      return false;
    }
  }
  // Node layout: 0 = S, 1 = T, 2..= rows, then cols, then SS, TT.
  const int node_s = 0;
  const int node_t = 1;
  const int row_base = 2;
  const int col_base = row_base + num_rows;
  const int node_ss = col_base + num_cols;
  const int node_tt = node_ss + 1;
  TinyFlow flow(node_tt + 1);

  std::uint64_t lower_bound_total = 0;
  // excess[v] accumulates (lower bounds in) - (lower bounds out).
  std::vector<std::int64_t> excess(node_tt + 1, 0);
  auto add_bounded = [&](int from, int to, std::uint64_t lo,
                         std::uint64_t hi) {
    const std::uint64_t slack = hi == kInfinity ? kInfinity : hi - lo;
    int id = flow.AddEdge(from, to, slack);
    excess[to] += static_cast<std::int64_t>(lo);
    excess[from] -= static_cast<std::int64_t>(lo);
    lower_bound_total += lo;
    return id;
  };

  for (int i = 0; i < num_rows; ++i) {
    std::uint64_t hi =
        std::min(rows[i].hi, static_cast<std::uint64_t>(num_cols));
    add_bounded(node_s, row_base + i, rows[i].lo, hi);
  }
  for (int j = 0; j < num_cols; ++j) {
    std::uint64_t hi =
        std::min(cols[j].hi, static_cast<std::uint64_t>(num_rows));
    add_bounded(col_base + j, node_t, cols[j].lo, hi);
  }
  std::vector<int> cell_edges;
  cell_edges.reserve(static_cast<size_t>(num_rows) * num_cols);
  for (int i = 0; i < num_rows; ++i) {
    for (int j = 0; j < num_cols; ++j) {
      cell_edges.push_back(flow.AddEdge(row_base + i, col_base + j, 1));
    }
  }
  flow.AddEdge(node_t, node_s, max_total);  // Circulation return edge.

  std::uint64_t required = 0;
  for (int v = 0; v <= node_tt; ++v) {
    if (excess[v] > 0) {
      flow.AddEdge(node_ss, v, static_cast<std::uint64_t>(excess[v]));
      required += static_cast<std::uint64_t>(excess[v]);
    } else if (excess[v] < 0) {
      flow.AddEdge(v, node_tt, static_cast<std::uint64_t>(-excess[v]));
    }
  }
  if (flow.MaxFlow(node_ss, node_tt) != required) {
    return false;
  }
  if (out_pairs != nullptr) {
    for (int i = 0; i < num_rows; ++i) {
      for (int j = 0; j < num_cols; ++j) {
        if (flow.FlowOn(cell_edges[static_cast<size_t>(i) * num_cols + j]) >
            0) {
          out_pairs->emplace_back(rows[i].individual, cols[j].individual);
        }
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Exact backtracking for relationships of arity >= 3.
// ---------------------------------------------------------------------------

struct GridSearch {
  /// candidates[t] is a full tuple (individual per role position).
  std::vector<std::vector<int>> candidates;
  /// Per (position, individual) bounds and running counts.
  std::vector<std::map<int, std::pair<std::uint64_t, std::uint64_t>>> bounds;
  std::vector<std::map<int, std::uint64_t>> counts;
  /// remaining[k][x] = candidates not yet decided containing x at k.
  std::vector<std::map<int, std::uint64_t>> remaining;
  std::uint64_t budget = 0;
  std::uint64_t max_total = 0;
  std::uint64_t chosen_total = 0;
  bool exhausted = false;

  bool Violates() const {
    for (size_t k = 0; k < bounds.size(); ++k) {
      for (const auto& [individual, bound] : bounds[k]) {
        auto count_it = counts[k].find(individual);
        const std::uint64_t count =
            count_it == counts[k].end() ? 0 : count_it->second;
        if (count > bound.second) {
          return true;
        }
        auto remaining_it = remaining[k].find(individual);
        const std::uint64_t slack =
            remaining_it == remaining[k].end() ? 0 : remaining_it->second;
        if (count + slack < bound.first) {
          return true;  // Mins can no longer be met.
        }
      }
    }
    return false;
  }

  bool Search(size_t index, std::vector<bool>* chosen) {
    if (budget == 0) {
      exhausted = true;
      return false;
    }
    --budget;
    if (Violates()) {
      return false;
    }
    if (index == candidates.size()) {
      // All counts are within [lo, hi] (Violates covered both sides once
      // nothing remains undecided).
      return true;
    }
    const std::vector<int>& tuple = candidates[index];
    for (size_t k = 0; k < tuple.size(); ++k) {
      --remaining[k][tuple[k]];
    }
    // Try including the tuple first (biases toward meeting mins early).
    if (chosen_total < max_total) {
      for (size_t k = 0; k < tuple.size(); ++k) {
        ++counts[k][tuple[k]];
      }
      ++chosen_total;
      (*chosen)[index] = true;
      if (Search(index + 1, chosen)) {
        return true;
      }
      (*chosen)[index] = false;
      --chosen_total;
      for (size_t k = 0; k < tuple.size(); ++k) {
        --counts[k][tuple[k]];
      }
    }
    if (!exhausted && Search(index + 1, chosen)) {
      return true;
    }
    for (size_t k = 0; k < tuple.size(); ++k) {
      ++remaining[k][tuple[k]];
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// The enumeration itself.
// ---------------------------------------------------------------------------

/// One fully specified candidate-model skeleton: how many individuals
/// carry each profile.
struct Assignment {
  std::vector<int> counts;  // Parallel to the profile list.
  int total = 0;
};

class Enumerator {
 public:
  Enumerator(const Schema& schema, const OracleOptions& options)
      : schema_(schema), options_(options) {}

  Result<OracleReport> Run() {
    if (schema_.num_classes() > 16) {
      return InvalidArgumentError(
          "brute-force oracle supports at most 16 classes (got " +
          std::to_string(schema_.num_classes()) + ")");
    }
    BuildProfiles();
    report_.classes.assign(schema_.num_classes(), OracleClassResult{});
    report_.models.resize(schema_.num_classes());
    undecided_ = (1u << schema_.num_classes()) - 1u;

    // Increasing domain size, so the first model found per class is also a
    // smallest one (witnesses stay readable, dumps stay minimal).
    Assignment assignment;
    assignment.counts.assign(profiles_.size(), 0);
    for (int domain = 1;
         domain <= options_.max_domain && undecided_ != 0; ++domain) {
      Status status = Extend(&assignment, 0, domain);
      if (!status.ok()) {
        return status;
      }
    }
    return std::move(report_);
  }

 private:
  /// Enumerates count vectors summing exactly to `remaining` over
  /// profiles[first..], checking each completed assignment.
  Status Extend(Assignment* assignment, size_t first, int remaining) {
    if (undecided_ == 0) {
      return OkStatus();
    }
    if (remaining == 0) {
      return Check(*assignment);
    }
    if (first == profiles_.size()) {
      return OkStatus();
    }
    for (int count = remaining; count >= 0; --count) {
      assignment->counts[first] = count;
      assignment->total += count;
      Status status = Extend(assignment, first + 1, remaining - count);
      assignment->total -= count;
      assignment->counts[first] = 0;
      if (!status.ok()) {
        return status;
      }
      if (undecided_ == 0) {
        return OkStatus();
      }
    }
    return OkStatus();
  }

  /// Decides whether `assignment` extends to a model; on success certifies
  /// it and marks every populated class satisfiable.
  Status Check(const Assignment& assignment) {
    if (report_.assignments_examined >= options_.max_assignments) {
      return Status(StatusCode::kResourceExhausted,
                    "brute-force oracle: assignment budget (" +
                        std::to_string(options_.max_assignments) +
                        ") exhausted before all classes were decided");
    }
    ++report_.assignments_examined;

    std::uint32_t populated = 0;
    for (size_t p = 0; p < profiles_.size(); ++p) {
      if (assignment.counts[p] > 0) {
        populated |= profiles_[p].mask;
      }
    }
    if ((populated & undecided_) == 0) {
      return OkStatus();  // Cannot decide anything new.
    }

    // Individuals, grouped so equal profiles are adjacent.
    std::vector<int> profile_of;  // individual -> profile index
    for (size_t p = 0; p < profiles_.size(); ++p) {
      for (int i = 0; i < assignment.counts[p]; ++i) {
        profile_of.push_back(static_cast<int>(p));
      }
    }

    // Every relationship independently: tuples of R only affect counts at
    // R's own roles, so feasibility decomposes per relationship once the
    // class assignment is fixed.
    std::vector<std::vector<std::vector<int>>> tuples(
        schema_.num_relationships());
    for (RelationshipId rel : schema_.AllRelationships()) {
      bool feasible = false;
      Status status =
          SolveRelationship(rel, profile_of, assignment,
                            &tuples[rel.value], &feasible);
      if (!status.ok()) {
        return status;
      }
      if (!feasible) {
        return OkStatus();
      }
    }

    // Materialize and certify.
    Interpretation interpretation(schema_);
    for (int profile : profile_of) {
      Individual individual = interpretation.AddIndividual();
      for (ClassId cls : schema_.AllClasses()) {
        if ((profiles_[profile].mask >> cls.value) & 1u) {
          Status status = interpretation.AddToClass(cls, individual);
          if (!status.ok()) {
            return status;
          }
        }
      }
    }
    for (RelationshipId rel : schema_.AllRelationships()) {
      for (const std::vector<int>& tuple : tuples[rel.value]) {
        Status status = interpretation.AddTuple(rel, tuple);
        if (!status.ok()) {
          return status;
        }
      }
    }
    std::vector<ModelViolation> violations =
        ModelChecker::CheckModel(schema_, interpretation);
    if (!violations.empty()) {
      // The search's feasibility argument disagrees with the judge: an
      // oracle bug. Refuse loudly rather than report an uncertified SAT.
      return Status(StatusCode::kInternal,
                    "brute-force oracle: constructed interpretation failed "
                    "certification: " +
                        violations.front().message);
    }

    for (ClassId cls : schema_.AllClasses()) {
      const std::uint32_t bit = 1u << cls.value;
      if ((populated & bit) != 0 && (undecided_ & bit) != 0) {
        report_.classes[cls.value].verdict = OracleVerdict::kSatisfiable;
        report_.classes[cls.value].model_domain_size =
            interpretation.domain_size();
        report_.models[cls.value].emplace(interpretation);
        undecided_ &= ~bit;
      }
    }
    return OkStatus();
  }

  /// Does a duplicate-free tuple set for `rel` exist over the assigned
  /// individuals meeting every applicable cardinality declaration?
  Status SolveRelationship(RelationshipId rel,
                           const std::vector<int>& profile_of,
                           const Assignment& assignment,
                           std::vector<std::vector<int>>* out_tuples,
                           bool* feasible) {
    const std::vector<RoleId>& roles = schema_.RolesOf(rel);

    // Feasibility depends only on the counts of profiles that can appear
    // at some role of this relationship — memoize on that projection so
    // enumeration over unrelated profiles reuses the verdict.
    std::vector<int> key;
    key.reserve(profiles_.size());
    for (size_t p = 0; p < profiles_.size(); ++p) {
      bool relevant = false;
      for (RoleId role : roles) {
        relevant = relevant || profiles_[p].in_extent[role.value];
      }
      key.push_back(relevant ? assignment.counts[p] : 0);
    }
    auto memo_it = feasibility_memo_[rel.value].find(key);
    if (memo_it != feasibility_memo_[rel.value].end() && !memo_it->second) {
      *feasible = false;
      return OkStatus();
    }

    Status status = OkStatus();
    if (roles.size() == 2) {
      *feasible = SolveArity2(rel, profile_of, out_tuples);
    } else {
      status = SolveGeneral(rel, profile_of, out_tuples, feasible);
    }
    if (status.ok()) {
      feasibility_memo_[rel.value][std::move(key)] = *feasible;
    }
    return status;
  }

  bool SolveArity2(RelationshipId rel, const std::vector<int>& profile_of,
                   std::vector<std::vector<int>>* out_tuples) {
    const std::vector<RoleId>& roles = schema_.RolesOf(rel);
    std::vector<DegreeBound> rows;
    std::vector<DegreeBound> cols;
    for (size_t i = 0; i < profile_of.size(); ++i) {
      const Profile& profile = profiles_[profile_of[i]];
      if (profile.in_extent[roles[0].value]) {
        rows.push_back({static_cast<int>(i), profile.lo[roles[0].value],
                        profile.hi[roles[0].value]});
      }
      if (profile.in_extent[roles[1].value]) {
        cols.push_back({static_cast<int>(i), profile.lo[roles[1].value],
                        profile.hi[roles[1].value]});
      }
    }
    std::vector<std::pair<int, int>> pairs;
    if (!SolveBipartite(rows, cols, options_.max_tuples_per_relationship,
                        &pairs)) {
      return false;
    }
    for (const auto& [row, col] : pairs) {
      out_tuples->push_back({row, col});
    }
    return true;
  }

  Status SolveGeneral(RelationshipId rel, const std::vector<int>& profile_of,
                      std::vector<std::vector<int>>* out_tuples,
                      bool* feasible) {
    const std::vector<RoleId>& roles = schema_.RolesOf(rel);
    GridSearch search;
    search.budget = options_.max_search_nodes;
    search.max_total = options_.max_tuples_per_relationship;
    search.bounds.resize(roles.size());
    search.counts.resize(roles.size());
    search.remaining.resize(roles.size());

    std::vector<std::vector<int>> extents(roles.size());
    for (size_t k = 0; k < roles.size(); ++k) {
      for (size_t i = 0; i < profile_of.size(); ++i) {
        const Profile& profile = profiles_[profile_of[i]];
        if (profile.in_extent[roles[k].value]) {
          extents[k].push_back(static_cast<int>(i));
          search.bounds[k][static_cast<int>(i)] = {
              profile.lo[roles[k].value], profile.hi[roles[k].value]};
        }
      }
      if (extents[k].empty()) {
        // No typed filler for this role: only the empty extension is
        // possible; it works iff no populated individual has a minimum.
        for (const auto& [individual, bound] : search.bounds[k]) {
          (void)individual;
          if (bound.first > 0) {
            *feasible = false;
            return OkStatus();
          }
        }
      }
    }
    // Candidate grid (product of the role extents), in lexicographic
    // order — deterministic.
    std::vector<size_t> cursor(roles.size(), 0);
    bool any_empty = false;
    for (const std::vector<int>& extent : extents) {
      any_empty = any_empty || extent.empty();
    }
    if (!any_empty) {
      while (true) {
        std::vector<int> tuple(roles.size());
        for (size_t k = 0; k < roles.size(); ++k) {
          tuple[k] = extents[k][cursor[k]];
        }
        search.candidates.push_back(std::move(tuple));
        size_t k = roles.size();
        while (k > 0) {
          --k;
          if (++cursor[k] < extents[k].size()) {
            break;
          }
          cursor[k] = 0;
          if (k == 0) {
            goto grid_done;
          }
        }
      }
    }
  grid_done:
    for (size_t t = 0; t < search.candidates.size(); ++t) {
      for (size_t k = 0; k < roles.size(); ++k) {
        ++search.remaining[k][search.candidates[t][k]];
      }
    }
    std::vector<bool> chosen(search.candidates.size(), false);
    const bool found = search.Search(0, &chosen);
    if (search.exhausted) {
      return Status(StatusCode::kResourceExhausted,
                    "brute-force oracle: backtracking budget exhausted on "
                    "relationship " +
                        schema_.RelationshipName(rel));
    }
    *feasible = found;
    if (found) {
      for (size_t t = 0; t < search.candidates.size(); ++t) {
        if (chosen[t]) {
          out_tuples->push_back(search.candidates[t]);
        }
      }
    }
    return OkStatus();
  }

  /// Enumerates every locally consistent profile and its per-role bounds.
  /// Dropping locally inconsistent masks is sound: conditions (A),
  /// disjointness and covering are per-individual, so no individual of any
  /// model carries one; dropping bound-empty masks (some role with
  /// lo > hi) is likewise sound because condition (C) is per-individual.
  void BuildProfiles() {
    const int num_classes = schema_.num_classes();
    feasibility_memo_.assign(schema_.num_relationships(), {});
    for (std::uint32_t mask = 1; mask < (1u << num_classes); ++mask) {
      bool consistent = true;
      for (int c = 0; c < num_classes && consistent; ++c) {
        if (((mask >> c) & 1u) == 0) {
          continue;
        }
        // ISA closure: members of a class are members of its superclasses.
        for (ClassId super : schema_.SuperclassesOf(ClassId(c))) {
          if (((mask >> super.value) & 1u) == 0) {
            consistent = false;
            break;
          }
        }
        for (int d = c + 1; d < num_classes && consistent; ++d) {
          if (((mask >> d) & 1u) != 0 &&
              schema_.AreDeclaredDisjoint(ClassId(c), ClassId(d))) {
            consistent = false;
          }
        }
      }
      for (const CoveringConstraint& covering :
           schema_.covering_constraints()) {
        if (!consistent) {
          break;
        }
        if (((mask >> covering.covered.value) & 1u) == 0) {
          continue;
        }
        bool covered = false;
        for (ClassId coverer : covering.coverers) {
          covered = covered || ((mask >> coverer.value) & 1u) != 0;
        }
        consistent = consistent && covered;
      }
      if (!consistent) {
        continue;
      }

      Profile profile;
      profile.mask = mask;
      profile.in_extent.assign(schema_.num_roles(), false);
      profile.lo.assign(schema_.num_roles(), 0);
      profile.hi.assign(schema_.num_roles(), kInfinity);
      bool bounds_consistent = true;
      for (RelationshipId rel : schema_.AllRelationships()) {
        for (RoleId role : schema_.RolesOf(rel)) {
          ClassId primary = schema_.PrimaryClass(role);
          if (((mask >> primary.value) & 1u) == 0) {
            continue;  // Typing forbids appearing at this role at all.
          }
          profile.in_extent[role.value] = true;
          for (const CardinalityDeclaration& decl :
               schema_.cardinality_declarations()) {
            if (decl.rel != rel || decl.role != role ||
                ((mask >> decl.cls.value) & 1u) == 0) {
              continue;
            }
            profile.lo[role.value] =
                std::max(profile.lo[role.value], decl.cardinality.min);
            if (decl.cardinality.max.has_value()) {
              profile.hi[role.value] =
                  std::min(profile.hi[role.value], *decl.cardinality.max);
            }
          }
          bounds_consistent =
              bounds_consistent &&
              profile.lo[role.value] <= profile.hi[role.value] &&
              profile.lo[role.value] <= options_.max_tuples_per_relationship;
        }
      }
      if (bounds_consistent) {
        profiles_.push_back(std::move(profile));
      }
    }
  }

  const Schema& schema_;
  const OracleOptions& options_;
  std::vector<Profile> profiles_;
  std::uint32_t undecided_ = 0;
  OracleReport report_;
  /// Per relationship: projected profile-count vector -> feasibility.
  std::vector<std::map<std::vector<int>, bool>> feasibility_memo_;
};

}  // namespace

Result<OracleReport> BruteForceOracle::Decide(const Schema& schema,
                                              const OracleOptions& options) {
  Enumerator enumerator(schema, options);
  return enumerator.Run();
}

}  // namespace crsat
