#ifndef CRSAT_ORACLE_CONFORMANCE_H_
#define CRSAT_ORACLE_CONFORMANCE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/base/result.h"
#include "src/oracle/brute_force.h"
#include "src/saturation/saturation.h"

namespace crsat {

/// Knobs for one conformance sweep (see RunConformance below).
struct ConformanceOptions {
  /// How many generator seeds to sweep, starting at `first_seed`.
  int num_seeds = 100;
  std::uint32_t first_seed = 1;

  /// Engine selection for the vote (the reasoner always runs — it is the
  /// system under test). `check_oracle` gates the brute-force oracle,
  /// `check_saturation` the graph-saturation engine; with both on, every
  /// class verdict is a three-way vote.
  bool check_oracle = true;
  bool check_saturation = true;

  /// Bounds for the brute-force ground-truth oracle.
  OracleOptions oracle;

  /// Knobs for the saturation engine. Leave `saturation.guard` null in
  /// sweeps: the step/node budgets are deterministic, wall-clock
  /// timeouts are not, and sweep verdicts must be reproducible.
  SaturationOptions saturation;

  /// Curated schema texts (ParseSchema grammar) checked before the
  /// generated sweep, through the same comparison pipeline; their
  /// disagreements are reported with seed 0. The baseline cross-check is
  /// generator-derived and skips them.
  std::vector<std::string> extra_schema_texts;

  /// Shape of the generated schemas. Small on purpose: the oracle is
  /// exponential in these, and small schemas are where reasoner bugs
  /// minimize to anyway.
  int num_classes = 4;
  int num_relationships = 3;
  double isa_density = 0.25;

  /// Cross-check against the Lenzerini–Nobili baseline on an ISA-free
  /// sibling schema (same seed, ISA/refinements/extensions disabled).
  bool check_baseline = true;

  /// Re-run the reasoner on every metamorphic mutant and check the rule's
  /// verdict relation.
  bool check_metamorphic = true;

  /// Synthesize a certified witness for SAT schemas; a certified witness
  /// that fits inside the oracle bounds while the oracle said
  /// UNSAT-up-to-bound convicts the *oracle* (completeness bug).
  bool check_witnesses = true;

  /// Greedily shrink disagreeing schemas before reporting.
  bool minimize = true;
  /// Cap on predicate evaluations per minimization (each one is a full
  /// reasoner + oracle run).
  int minimize_budget = 200;

  /// Test hook: flip the reasoner's verdict for this class id on the
  /// original schema of every seed (-1 = off). Simulates a reasoner
  /// soundness/completeness bug so tests can prove the harness catches
  /// one without committing a broken reasoner.
  int inject_flip_class = -1;
};

/// One reasoner-vs-ground-truth (or reasoner-vs-contract) conflict.
struct ConformanceDisagreement {
  std::uint32_t seed = 0;
  /// Machine-readable taxonomy:
  ///   "reasoner-unsat-oracle-sat"  — oracle holds a certified model the
  ///                                  reasoner claims cannot exist
  ///                                  (reasoner soundness bug);
  ///   "oracle-missed-witness"      — certified witness fits the oracle
  ///                                  bounds yet the oracle said UNSAT
  ///                                  (oracle completeness bug);
  ///   "reasoner-vs-baseline"       — LN fragment, two solvers disagree;
  ///   "metamorphic:<rule>"         — a verdict-relation theorem violated.
  /// Saturation-engine taxonomy (three-way vote):
  ///   "saturation-missed-violation"      — a saturation finite model
  ///                                        fails the harness's own
  ///                                        ModelChecker re-judging
  ///                                        (saturation soundness bug,
  ///                                        e.g. a weakened merge rule);
  ///   "saturation-claims-sat-oracle-unsat" — saturation claims classical
  ///                                        SAT but its graph fails
  ///                                        ValidateSaturationGraph while
  ///                                        the oracle found no model
  ///                                        (e.g. over-eager blocking);
  ///   "saturation-graph-invalid"         — invalid graph, no oracle
  ///                                        verdict to corroborate;
  ///   "saturation-unsat-reasoner-sat"    — saturation proves classical
  ///                                        UNSAT where the reasoner
  ///                                        reports finitely SAT;
  ///   "saturation-unsat-oracle-sat"      — saturation proves classical
  ///                                        UNSAT where the oracle holds
  ///                                        a certified finite model;
  ///   "reasoner-unsat-saturation-model"  — a harness-certified finite
  ///                                        saturation model for a class
  ///                                        the reasoner calls UNSAT;
  ///   "oracle-missed-saturation-model"   — a certified saturation model
  ///                                        fits the oracle bounds yet
  ///                                        the oracle said UNSAT.
  /// NOT a disagreement: saturation sat-with-reuse vs reasoner UNSAT with
  /// a *valid* graph — that is the finitely-unsat/classically-sat
  /// contrast the engine exists to exhibit (`infinite_model_contrasts`).
  std::string kind;
  std::string class_name;
  std::string detail;
  /// Schema text (`ParseSchema`-compatible) reproducing the disagreement.
  std::string schema_text;
  /// Greedily shrunk variant that still disagrees (empty when minimization
  /// is off or nothing could be removed).
  std::string minimized_schema_text;
};

/// Counters + disagreements from a sweep. A clean run is
/// `disagreements.empty()` with the positive-evidence counters nonzero —
/// zero disagreements over zero comparisons proves nothing, so the tests
/// assert on the counters too.
struct ConformanceReport {
  int schemas_checked = 0;
  int class_verdicts_compared = 0;
  int sat_confirmed_by_oracle = 0;
  int unsat_consistent_up_to_bound = 0;
  /// Reasoner said SAT, oracle hit its bound, and the certified witness
  /// (when available) was genuinely larger than the bound — consistent.
  int sat_beyond_bound = 0;
  int oracle_exhausted = 0;
  int baseline_schemas = 0;
  int metamorphic_mutants = 0;
  int witnesses_certified = 0;
  /// Three-way-vote counters (all zero when `check_saturation` is off).
  /// Saturation finite models that passed the harness's ModelChecker.
  int saturation_models_certified = 0;
  /// Classes where reasoner SAT was corroborated by a certified
  /// saturation model / where reasoner UNSAT was corroborated by a
  /// saturation classical-UNSAT proof (strictly stronger than finite).
  int sat_confirmed_by_saturation = 0;
  int unsat_confirmed_by_saturation = 0;
  /// Benign: classically satisfiable per a valid saturation graph, but
  /// no finite model found within phase B budgets while the reasoner
  /// says finitely SAT.
  int sat_without_finite_witness = 0;
  /// The contrast class: reasoner finitely-UNSAT, saturation classically
  /// SAT with a validated cyclic graph. The schemas the two-engine
  /// harness could never exhibit.
  int infinite_model_contrasts = 0;
  /// Saturation gave up (guard trip, injected fault, step budget).
  int saturation_unknown = 0;
  std::vector<ConformanceDisagreement> disagreements;

  std::string ToJson() const;
  /// One-paragraph human summary.
  std::string Summary() const;
};

/// The differential driver: for each seed, generates a schema, runs the
/// production reasoner (expansion -> satisfiability, the same path as
/// `crsat_cli check`), and cross-checks it five ways — against the
/// brute-force oracle, against the graph-saturation engine (per-class
/// three-way vote, saturation models re-judged by ModelChecker and
/// saturation graphs re-judged by ValidateSaturationGraph, both at
/// harness level), against the LN baseline on the ISA-free fragment,
/// against itself under metamorphic rewrites, and against its own
/// certified witnesses. Any conflict is recorded (and minimized); a
/// harness-level failure (e.g. the generator itself erroring) aborts with
/// a non-ok status instead of being swallowed.
Result<ConformanceReport> RunConformance(const ConformanceOptions& options);

/// Knobs for one chaos sweep (see RunChaosConformance below).
struct ChaosConformanceOptions {
  /// How many generator seeds to sweep, starting at `first_seed`. Each
  /// seed determines both the schema AND the fault schedule, so a sweep
  /// is reproducible fault-for-fault from `(first_seed, num_seeds)`.
  int num_seeds = 200;
  std::uint32_t first_seed = 1;

  /// Shape of the generated schemas (same knobs as ConformanceOptions).
  int num_classes = 4;
  int num_relationships = 3;
  double isa_density = 0.25;

  /// Upper bound on how many distinct failpoints are armed per seed (at
  /// least one is always armed — an unfaulted rerun proves nothing).
  int max_faults_per_seed = 3;

  /// Also re-run witness synthesis under faults whenever the fault-free
  /// verdicts contain a satisfiable class, asserting the faulted pipeline
  /// either certifies a model or fails benignly.
  bool check_witnesses = true;

  /// Test hook: flip the *faulted* run's verdict for this class id on
  /// every seed (-1 = off). Simulates a degradation path that silently
  /// corrupts a verdict, so tests can prove the chaos harness detects
  /// verdict flips without committing a broken ladder.
  int inject_flip_class = -1;
};

/// One soundness violation of the degradation ladder: a run with faults
/// injected produced a *different answer* instead of the same answer or a
/// resource-status UNKNOWN.
struct ChaosVerdictFlip {
  std::uint32_t seed = 0;
  /// "verdict-flip"            — a class verdict differs from fault-free;
  /// "non-benign-status"       — faulted run failed with a status outside
  ///                             the resource family (kInternal etc.);
  /// "witness-flip"            — faulted witness stage produced a
  ///                             non-model or a non-benign failure.
  std::string kind;
  std::string class_name;
  /// The fault schedule active during the run, in CRSAT_FAILPOINTS
  /// grammar, so the flip replays from the command line.
  std::string fault_schedule;
  std::string detail;
  std::string schema_text;
};

/// Counters + flips from a chaos sweep. Soundness holds iff `flips` is
/// empty; the positive-evidence counters (`faults_fired`,
/// `faulted_runs_agreeing`) must be nonzero for the run to prove
/// anything, and the tests assert that too.
struct ChaosReport {
  int seeds_swept = 0;
  /// Faulted runs that completed with verdicts identical to fault-free.
  int faulted_runs_agreeing = 0;
  /// Faulted runs that degraded to a resource-status UNKNOWN (the
  /// bottom rung of the ladder) instead of answering.
  int degraded_to_unknown = 0;
  /// Faulted witness stages that still certified a model / that failed
  /// benignly.
  int witnesses_survived = 0;
  int witness_benign_failures = 0;
  /// Total failpoint activations and fires across the sweep.
  int failpoints_armed = 0;
  std::uint64_t faults_fired = 0;
  /// Per-failpoint fire counts (sorted by id), for coverage reporting.
  std::vector<std::pair<std::string, std::uint64_t>> fires_by_failpoint;
  std::vector<ChaosVerdictFlip> flips;

  std::string ToJson() const;
  /// One-paragraph human summary.
  std::string Summary() const;
};

/// The chaos driver proving the degradation ladder sound: for each seed,
/// runs the production verdict pipeline fault-free, then re-runs it under
/// a seed-derived randomized fault schedule (failpoints armed through the
/// registry API with nth/every-K/probability modes) and a resource guard,
/// and asserts the faulted outcome is either (a) verdicts identical to
/// the fault-free run, or (b) a resource-family UNKNOWN — never a
/// different answer. Witness synthesis is additionally allowed its
/// documented benign failures (`kUnavailable` rescale exhaustion,
/// cancellation). All failpoints are deactivated before returning, even
/// on error paths.
Result<ChaosReport> RunChaosConformance(const ChaosConformanceOptions& options);

}  // namespace crsat

#endif  // CRSAT_ORACLE_CONFORMANCE_H_
