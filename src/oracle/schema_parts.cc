#include "src/oracle/schema_parts.h"

namespace crsat {

SchemaParts SchemaParts::FromSchema(const Schema& schema) {
  SchemaParts parts;
  for (ClassId cls : schema.AllClasses()) {
    parts.classes.push_back(schema.ClassName(cls));
  }
  for (RelationshipId rel : schema.AllRelationships()) {
    Relationship relationship;
    relationship.name = schema.RelationshipName(rel);
    for (RoleId role : schema.RolesOf(rel)) {
      relationship.roles.emplace_back(
          schema.RoleName(role),
          schema.ClassName(schema.PrimaryClass(role)));
    }
    parts.relationships.push_back(std::move(relationship));
  }
  for (const IsaStatement& isa : schema.isa_statements()) {
    parts.isa.push_back({schema.ClassName(isa.subclass),
                         schema.ClassName(isa.superclass)});
  }
  for (const CardinalityDeclaration& decl :
       schema.cardinality_declarations()) {
    parts.cards.push_back({schema.ClassName(decl.cls),
                           schema.RelationshipName(decl.rel),
                           schema.RoleName(decl.role), decl.cardinality});
  }
  for (const DisjointnessConstraint& group :
       schema.disjointness_constraints()) {
    std::vector<std::string> names;
    for (ClassId cls : group.classes) {
      names.push_back(schema.ClassName(cls));
    }
    parts.disjointness.push_back(std::move(names));
  }
  for (const CoveringConstraint& constraint : schema.covering_constraints()) {
    Cover cover;
    cover.covered = schema.ClassName(constraint.covered);
    for (ClassId cls : constraint.coverers) {
      cover.coverers.push_back(schema.ClassName(cls));
    }
    parts.coverings.push_back(std::move(cover));
  }
  return parts;
}

Result<Schema> SchemaParts::Build() const {
  SchemaBuilder builder;
  for (const std::string& name : classes) {
    builder.AddClass(name);
  }
  for (const Relationship& relationship : relationships) {
    builder.AddRelationship(relationship.name, relationship.roles);
  }
  for (const Isa& statement : isa) {
    builder.AddIsa(statement.subclass, statement.superclass);
  }
  for (const Card& card : cards) {
    builder.SetCardinality(card.cls, card.rel, card.role, card.cardinality);
  }
  for (const std::vector<std::string>& group : disjointness) {
    builder.AddDisjointness(group);
  }
  for (const Cover& cover : coverings) {
    builder.AddCovering(cover.covered, cover.coverers);
  }
  return builder.Build();
}

}  // namespace crsat
