#include "src/oracle/metamorphic.h"

#include <algorithm>
#include <utility>

#include "src/generator/deterministic.h"
#include "src/oracle/schema_parts.h"

namespace crsat {

namespace {

/// A fresh class name not already declared.
std::string FreshClassName(const SchemaParts& parts, const std::string& stem) {
  int suffix = static_cast<int>(parts.classes.size());
  while (true) {
    std::string candidate = stem + std::to_string(suffix);
    if (std::find(parts.classes.begin(), parts.classes.end(), candidate) ==
        parts.classes.end()) {
      return candidate;
    }
    ++suffix;
  }
}

// Each rule edits a copy of the parts and reports its verdict relation;
// returning false means "not applicable to this schema" (skipped, not an
// error). Rules must never remove or reorder classes: the contract maps
// original class ids onto themselves, with fresh classes appended.

bool RenameEntities(const Schema&, SchemaParts* parts, DeterministicRng*) {
  auto rename = [](std::string* name) { *name = "m_" + *name; };
  for (std::string& name : parts->classes) {
    rename(&name);
  }
  for (SchemaParts::Relationship& relationship : parts->relationships) {
    rename(&relationship.name);
    for (auto& [role_name, class_name] : relationship.roles) {
      rename(&role_name);
      rename(&class_name);
    }
  }
  for (SchemaParts::Isa& isa : parts->isa) {
    rename(&isa.subclass);
    rename(&isa.superclass);
  }
  for (SchemaParts::Card& card : parts->cards) {
    rename(&card.cls);
    rename(&card.rel);
    rename(&card.role);
  }
  for (std::vector<std::string>& group : parts->disjointness) {
    for (std::string& name : group) {
      rename(&name);
    }
  }
  for (SchemaParts::Cover& cover : parts->coverings) {
    rename(&cover.covered);
    for (std::string& name : cover.coverers) {
      rename(&name);
    }
  }
  return true;
}

bool PermuteRoles(const Schema&, SchemaParts* parts, DeterministicRng* rng) {
  if (parts->relationships.empty()) {
    return false;
  }
  for (SchemaParts::Relationship& relationship : parts->relationships) {
    const int arity = static_cast<int>(relationship.roles.size());
    // Rotate by a nonzero offset: tuples are stored per role order, so
    // this genuinely permutes every extension's component layout.
    std::rotate(relationship.roles.begin(),
                relationship.roles.begin() + rng->UniformInt(1, arity - 1 > 0
                                                                    ? arity - 1
                                                                    : 1),
                relationship.roles.end());
  }
  return true;
}

bool RelaxCardinalities(const Schema&, SchemaParts* parts,
                        DeterministicRng* rng) {
  if (parts->cards.empty()) {
    return false;
  }
  for (SchemaParts::Card& card : parts->cards) {
    card.cardinality.min = static_cast<std::uint64_t>(
        rng->UniformInt(0, static_cast<int>(card.cardinality.min)));
    if (card.cardinality.max.has_value()) {
      if (rng->Coin(0.4)) {
        card.cardinality.max.reset();  // Relax to "no maximum".
      } else {
        *card.cardinality.max += static_cast<std::uint64_t>(
            rng->UniformInt(0, 2));
      }
    }
  }
  return true;
}

bool TightenCardinalities(const Schema&, SchemaParts* parts,
                          DeterministicRng* rng) {
  if (parts->cards.empty()) {
    return false;
  }
  for (SchemaParts::Card& card : parts->cards) {
    Cardinality& cardinality = card.cardinality;
    if (cardinality.max.has_value()) {
      const int low = static_cast<int>(cardinality.min);
      const int high = static_cast<int>(*cardinality.max);
      const int new_min = rng->UniformInt(low, high);
      cardinality.min = static_cast<std::uint64_t>(new_min);
      cardinality.max = static_cast<std::uint64_t>(
          rng->UniformInt(new_min, high));
    } else {
      cardinality.min += static_cast<std::uint64_t>(rng->UniformInt(0, 2));
      if (rng->Coin(0.3)) {
        // A finite maximum is strictly tighter than none.
        cardinality.max =
            cardinality.min + static_cast<std::uint64_t>(
                                  rng->UniformInt(0, 2));
      }
    }
  }
  return true;
}

bool InterposeIsaChain(const Schema&, SchemaParts* parts,
                       DeterministicRng* rng) {
  if (parts->isa.empty()) {
    return false;
  }
  const int edge = rng->UniformInt(
      0, static_cast<int>(parts->isa.size()) - 1);
  const std::string middle = FreshClassName(*parts, "Mid");
  const std::string subclass = parts->isa[edge].subclass;
  const std::string superclass = parts->isa[edge].superclass;
  parts->classes.push_back(middle);
  parts->isa[edge] = {subclass, middle};
  parts->isa.push_back({middle, superclass});
  return true;
}

bool InsertRedundantIsa(const Schema& schema, SchemaParts* parts,
                        DeterministicRng* rng) {
  // Candidate pairs: sub <=* super holds transitively but no direct edge
  // is declared (adding one is then semantically implied — a no-op).
  std::vector<std::pair<int, int>> candidates;
  for (ClassId sub : schema.AllClasses()) {
    for (ClassId super : schema.AllClasses()) {
      if (sub == super || !schema.IsSubclassOf(sub, super)) {
        continue;
      }
      bool declared = false;
      for (const IsaStatement& isa : schema.isa_statements()) {
        declared = declared ||
                   (isa.subclass == sub && isa.superclass == super);
      }
      if (!declared) {
        candidates.emplace_back(sub.value, super.value);
      }
    }
  }
  if (candidates.empty()) {
    return false;
  }
  const auto& [sub, super] = candidates[rng->UniformInt(
      0, static_cast<int>(candidates.size()) - 1)];
  parts->isa.push_back({parts->classes[sub], parts->classes[super]});
  return true;
}

bool GraftDeadClass(const Schema&, SchemaParts* parts,
                    DeterministicRng* rng) {
  const std::string dead = FreshClassName(*parts, "Dead");
  const int anchor = rng->UniformInt(
      0, static_cast<int>(parts->classes.size()) - 1);
  parts->isa.push_back({dead, parts->classes[anchor]});
  parts->classes.push_back(dead);
  return true;
}

bool DuplicateDisjointness(const Schema&, SchemaParts* parts,
                           DeterministicRng* rng) {
  if (parts->disjointness.empty()) {
    return false;
  }
  const int group = rng->UniformInt(
      0, static_cast<int>(parts->disjointness.size()) - 1);
  parts->disjointness.push_back(parts->disjointness[group]);
  return true;
}

struct Rule {
  const char* name;
  VerdictRelation relation;
  bool (*apply)(const Schema&, SchemaParts*, DeterministicRng*);
};

constexpr Rule kRules[] = {
    {"rename-entities", VerdictRelation::kEquisatisfiable, RenameEntities},
    {"permute-roles", VerdictRelation::kEquisatisfiable, PermuteRoles},
    {"relax-cardinalities", VerdictRelation::kSatPreserved,
     RelaxCardinalities},
    {"tighten-cardinalities", VerdictRelation::kUnsatPreserved,
     TightenCardinalities},
    {"interpose-isa-chain", VerdictRelation::kEquisatisfiable,
     InterposeIsaChain},
    {"insert-redundant-isa", VerdictRelation::kEquisatisfiable,
     InsertRedundantIsa},
    {"graft-dead-class", VerdictRelation::kEquisatisfiable, GraftDeadClass},
    {"duplicate-disjointness", VerdictRelation::kEquisatisfiable,
     DuplicateDisjointness},
};

}  // namespace

const char* VerdictRelationToString(VerdictRelation relation) {
  switch (relation) {
    case VerdictRelation::kEquisatisfiable:
      return "equisatisfiable";
    case VerdictRelation::kSatPreserved:
      return "sat-preserved";
    case VerdictRelation::kUnsatPreserved:
      return "unsat-preserved";
  }
  return "unknown";
}

std::vector<std::string> MetamorphicRuleNames() {
  std::vector<std::string> names;
  for (const Rule& rule : kRules) {
    names.emplace_back(rule.name);
  }
  return names;
}

Result<std::vector<MutatedSchema>> ApplyMetamorphicRules(
    const Schema& schema, std::uint32_t seed) {
  std::vector<MutatedSchema> mutants;
  const SchemaParts original = SchemaParts::FromSchema(schema);
  for (size_t r = 0; r < std::size(kRules); ++r) {
    const Rule& rule = kRules[r];
    // One independent stream per rule, so skipping an inapplicable rule
    // never shifts the draws of the next one.
    DeterministicRng rng(seed ^ (0x9e3779b9u * static_cast<std::uint32_t>(
                                     r + 1)));
    SchemaParts parts = original;
    if (!rule.apply(schema, &parts, &rng)) {
      continue;
    }
    Result<Schema> rebuilt = parts.Build();
    if (!rebuilt.ok()) {
      return Status(StatusCode::kInternal,
                    std::string("metamorphic rule '") + rule.name +
                        "' produced an ill-formed schema: " +
                        rebuilt.status().message());
    }
    // No rule removes or reorders classes, so original ids map onto
    // themselves (fresh classes are appended past the original range).
    std::vector<ClassId> class_map;
    for (ClassId cls : schema.AllClasses()) {
      class_map.push_back(cls);
    }
    mutants.push_back(MutatedSchema{rule.name, rule.relation,
                                    std::move(rebuilt).value(),
                                    std::move(class_map)});
  }
  return mutants;
}

}  // namespace crsat
