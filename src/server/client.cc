#include "src/server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace crsat {
namespace server {

namespace {

bool SendAll(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Status Client::ConnectTcp(int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return InternalError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    Close();
    return UnavailableError("connect(127.0.0.1:" + std::to_string(port) +
                            "): " + std::strerror(err));
  }
  return OkStatus();
}

Status Client::ConnectUnix(const std::string& path) {
  Close();
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgumentError("unix socket path too long: '" + path + "'");
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return InternalError(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    Close();
    return UnavailableError("connect('" + path +
                            "'): " + std::strerror(err));
  }
  return OkStatus();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Result<Reply> Client::Call(RequestType type, std::string payload,
                           const RequestBudget& budget) {
  if (fd_ < 0) {
    return UnavailableError("client is not connected");
  }
  if (payload.size() > kMaxPayloadBytes) {
    // Refuse before any bytes go out: EncodeFrame never truncates, and
    // a clipped schema answered "successfully" would be worse than an
    // error (the connection stays clean after this refusal).
    return InvalidArgumentError(
        "request payload is " + std::to_string(payload.size()) +
        " bytes; the frame cap is " + std::to_string(kMaxPayloadBytes));
  }
  Frame request = MakeRequest(type, std::move(payload));
  request.deadline_ms = budget.deadline_ms;
  request.max_compounds = budget.max_compounds;
  request.max_memory_bytes = budget.max_memory_bytes;
  if (!SendAll(fd_, EncodeFrame(request))) {
    return UnavailableError(std::string("send: ") + std::strerror(errno));
  }
  // This client is strictly request-reply — exactly one outstanding
  // request — so the next response frame on the stream is ours. That
  // discipline is what makes the match trivial: the protocol does not
  // globally order responses (service-level requests and admission
  // refusals are answered from the server's reader thread and can
  // overtake responses to earlier admitted requests), so a pipelining
  // client would need its own correlation. See "Response ordering" in
  // protocol.h.
  while (true) {
    Frame frame;
    std::size_t consumed = 0;
    std::string error;
    const DecodeResult result =
        DecodeFrame(buffer_, &frame, &consumed, &error);
    if (result == DecodeResult::kError) {
      return InternalError("protocol error from server: " + error);
    }
    if (result == DecodeResult::kFrame) {
      buffer_.erase(0, consumed);
      if (!frame.is_response()) {
        return InternalError("server sent a request frame");
      }
      Reply reply;
      reply.status = frame.response_status();
      reply.payload = std::move(frame.payload);
      return reply;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      return UnavailableError("connection closed mid-response");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Result<Reply> Client::Parse(const std::string& display_name,
                            const std::string& schema_text) {
  return Call(RequestType::kParse, display_name + "\n" + schema_text);
}

}  // namespace server
}  // namespace crsat
