#include "src/server/scheduler.h"

#include <algorithm>

#include "src/base/failpoint.h"

namespace crsat {
namespace server {

namespace {

// DRR cost of one request: a floor of 1 plus one unit per payload KiB,
// clamped so a single megabyte schema cannot demand an unbounded number
// of round-robin passes before dispatching.
std::uint64_t CostOf(std::size_t cost_bytes) {
  const std::uint64_t kibs = static_cast<std::uint64_t>(cost_bytes) / 1024;
  return 1 + std::min<std::uint64_t>(kibs, 63);
}

// Set while this thread is inside Pump's dispatch loop. ThreadPool::Post
// on a parallelism-1 pool runs the task inline, whose completion hook
// calls Pump again; the latch turns that recursion into iteration of the
// outer loop (a 10k-deep lane drains with O(1) stack).
thread_local bool tls_pumping = false;

}  // namespace

std::string RequestScheduler::Stats::ToJson() const {
  auto field = [](const char* name, std::uint64_t value) {
    return "\"" + std::string(name) + "\": " + std::to_string(value);
  };
  return "{" + field("submitted", submitted) + ", " +
         field("admitted", admitted) + ", " + field("shed", shed) + ", " +
         field("refused_draining", refused_draining) + ", " +
         field("completed", completed) + ", " +
         field("queued_now", queued_now) + ", " +
         field("running_now", running_now) + ", " +
         field("lanes_now", lanes_now) + "}";
}

RequestScheduler::RequestScheduler(ThreadPool* pool, const Options& options)
    : pool_(pool),
      options_(options),
      max_concurrency_(options.max_concurrency > 0 ? options.max_concurrency
                                                   : pool->num_threads()) {}

RequestScheduler::~RequestScheduler() { AwaitIdle(); }

void RequestScheduler::OpenLane(std::uint64_t lane_id, std::uint64_t weight) {
  MutexLock lock(mutex_);
  auto lane = std::make_shared<Lane>();
  lane->id = lane_id;
  lane->weight = weight < 1 ? 1 : weight;
  lanes_[lane_id] = std::move(lane);
}

void RequestScheduler::CloseLane(std::uint64_t lane_id) {
  MutexLock lock(mutex_);
  auto it = lanes_.find(lane_id);
  if (it == lanes_.end()) {
    return;
  }
  // Queued work still runs: the lane object stays alive through the
  // ready ring's shared_ptr until its queue drains; only the id mapping
  // goes away (the connection is gone, nothing new can arrive).
  lanes_.erase(it);
}

ResponseStatus RequestScheduler::Submit(std::uint64_t lane_id,
                                        std::size_t cost_bytes,
                                        std::function<void()> work) {
  {
    MutexLock lock(mutex_);
    ++counters_.submitted;
    if (draining_) {
      ++counters_.refused_draining;
      return ResponseStatus::kShuttingDown;
    }
    auto it = lanes_.find(lane_id);
    if (it == lanes_.end()) {
      ++counters_.shed;
      return ResponseStatus::kOverloaded;  // Lane already closed.
    }
    const std::shared_ptr<Lane>& lane = it->second;
    if (CRSAT_FAILPOINT("server/queue-full") ||
        queued_total_ >= options_.max_queued ||
        lane->queue.size() >= options_.max_queued_per_lane) {
      ++counters_.shed;
      return ResponseStatus::kOverloaded;
    }
    ++counters_.admitted;
    lane->queue.emplace_back(CostOf(cost_bytes), std::move(work));
    ++queued_total_;
    if (!lane->running && !lane->in_ready_ring) {
      lane->in_ready_ring = true;
      ready_ring_.push_back(lane);
    }
  }
  Pump();
  return ResponseStatus::kOk;
}

bool RequestScheduler::NextDispatchLocked(std::shared_ptr<Lane>* lane,
                                          std::function<void()>* work) {
  if (running_total_ >= max_concurrency_) {
    return false;
  }
  // Deficit round robin over the ready ring. Each visit tops up the
  // lane's deficit by weight x quantum; a lane whose head request still
  // costs more than its deficit rotates to the back with the deficit
  // retained, so it dispatches within a bounded number of passes. The
  // ring only holds lanes with non-empty queues and nothing running, so
  // every full rotation strictly increases every ready lane's deficit —
  // the loop terminates.
  while (!ready_ring_.empty()) {
    std::shared_ptr<Lane> front = ready_ring_.front();
    front->deficit += front->weight * options_.quantum;
    const std::uint64_t head_cost = front->queue.front().first;
    if (front->deficit < head_cost) {
      ready_ring_.pop_front();
      ready_ring_.push_back(front);
      continue;
    }
    front->deficit -= head_cost;
    *work = std::move(front->queue.front().second);
    front->queue.pop_front();
    --queued_total_;
    front->running = true;
    front->in_ready_ring = false;
    ready_ring_.pop_front();
    if (front->queue.empty()) {
      front->deficit = 0;  // Classic DRR: an idle lane banks nothing.
    }
    ++running_total_;
    *lane = std::move(front);
    return true;
  }
  return false;
}

void RequestScheduler::Pump() {
  if (tls_pumping) {
    return;  // The outer loop on this thread picks up the new state.
  }
  tls_pumping = true;
  while (true) {
    std::shared_ptr<Lane> lane;
    std::function<void()> work;
    {
      MutexLock lock(mutex_);
      if (!NextDispatchLocked(&lane, &work)) {
        break;
      }
    }
    pool_->Post([this, lane = std::move(lane), work = std::move(work)] {
      work();
      OnComplete(lane);
    });
  }
  tls_pumping = false;
}

void RequestScheduler::OnComplete(const std::shared_ptr<Lane>& lane) {
  bool idle = false;
  {
    MutexLock lock(mutex_);
    lane->running = false;
    --running_total_;
    ++counters_.completed;
    if (!lane->queue.empty() && !lane->in_ready_ring) {
      lane->in_ready_ring = true;
      ready_ring_.push_back(lane);
    }
    idle = queued_total_ == 0 && running_total_ == 0;
  }
  if (idle) {
    idle_.NotifyAll();
  }
  Pump();
}

void RequestScheduler::BeginDrain() {
  MutexLock lock(mutex_);
  draining_ = true;
}

bool RequestScheduler::draining() const {
  MutexLock lock(mutex_);
  return draining_;
}

void RequestScheduler::AwaitIdle() {
  MutexLock lock(mutex_);
  while (queued_total_ != 0 || running_total_ != 0) {
    idle_.Wait(lock);
  }
}

RequestScheduler::Stats RequestScheduler::stats() const {
  MutexLock lock(mutex_);
  Stats snapshot = counters_;
  snapshot.queued_now = queued_total_;
  snapshot.running_now = static_cast<std::uint64_t>(running_total_);
  snapshot.lanes_now = lanes_.size();
  return snapshot;
}

}  // namespace server
}  // namespace crsat
