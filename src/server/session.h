#ifndef CRSAT_SERVER_SESSION_H_
#define CRSAT_SERVER_SESSION_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "src/cr/schema_text.h"

namespace crsat {
namespace server {

/// Per-connection session state: the reason crsatd exists. A client pays
/// `ParseSchema` once (kParse) and then issues many queries against the
/// stored `NamedSchema` over the same connection.
///
/// Concurrency contract: the scheduler (src/server/scheduler.h)
/// dispatches at most ONE request per session at a time, and every
/// dispatch/completion transition goes through the scheduler mutex — so
/// the fields below are accessed serially with happens-before edges
/// between consecutive requests, and need no lock of their own. The
/// counters are atomics only because the `stats` handler may snapshot
/// them from another session's request.
struct Session {
  explicit Session(std::uint64_t session_id) : id(session_id) {}

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const std::uint64_t id;

  /// The strictly-parsed schema (set by a successful kParse, replaced
  /// by the next). Absent until the first successful parse;
  /// schema-dependent requests on a schema-less session are
  /// kBadRequest.
  std::optional<NamedSchema> schema;
  /// The raw DSL text of the last kParse — stored even when the strict
  /// parse failed, because lint works on a *leniently* re-parsed schema
  /// (permit_empty_ranges) exactly as `crsat_cli lint` does, so lint
  /// diagnostics stay byte-identical to the one-shot CLI.
  std::string schema_text;
  /// True once any kParse stored `schema_text` (distinguishes "no parse
  /// yet" from an empty schema file).
  bool text_loaded = false;
  /// Client-supplied display name (its local path), used verbatim when
  /// rendering source-mapped diagnostics.
  std::string display_name;

  /// Requests fully served on this session (responses written).
  std::atomic<std::uint64_t> requests_served{0};
  /// Requests shed by admission control on this session.
  std::atomic<std::uint64_t> requests_shed{0};
};

}  // namespace server
}  // namespace crsat

#endif  // CRSAT_SERVER_SESSION_H_
