#ifndef CRSAT_SERVER_SCHEDULER_H_
#define CRSAT_SERVER_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "src/base/annotations.h"
#include "src/base/mutex.h"
#include "src/base/thread_pool.h"
#include "src/server/protocol.h"

namespace crsat {
namespace server {

/// The async request scheduler: admission control in front, weighted
/// fair queueing in the middle, the process-wide `ThreadPool` at the
/// back (DESIGN.md §15).
///
/// Every connection registers one *lane* (keyed by session id). Admitted
/// requests join their lane's FIFO; a deficit-round-robin pass over the
/// lanes picks what runs next, so one pathological tenant flooding its
/// lane cannot starve the others: a light tenant's wait is bounded by
/// (active lanes x longest single request), never by the pathological
/// backlog length. Per-request `ResourceGuard` deadlines bound that
/// longest request, closing the loop.
///
/// Guarantees:
///   - FIFO order *within* a lane; at most one in-flight request per
///     lane (sessions hold unsynchronized state, src/server/session.h).
///   - Deficit round robin *across* lanes, cost = 1 + payload KiB
///     (clamped), so megabyte schemas pay more than one-line probes.
///   - Global and per-lane queue bounds; beyond either, `Submit`
///     returns kOverloaded and nothing is queued (load shed). The
///     `server/queue-full` failpoint forces this outcome.
///   - After `BeginDrain`, `Submit` returns kShuttingDown; everything
///     already admitted still runs to completion (`AwaitIdle`).
///
/// Execution happens via `ThreadPool::Post`. On a parallelism-1 pool
/// `Post` runs inline; the pump loop is written iteratively (with a
/// thread-local re-entrancy latch) so a long lane drains as a loop, not
/// as recursion.
class RequestScheduler {
 public:
  struct Options {
    /// Global bound on queued (admitted, not yet running) requests.
    std::size_t max_queued = 256;
    /// Per-lane bound on queued requests.
    std::size_t max_queued_per_lane = 64;
    /// Max concurrently running requests; 0 = the pool's parallelism.
    int max_concurrency = 0;
    /// Deficit added to a lane each time the round-robin pass visits it.
    std::uint64_t quantum = 4;
  };

  /// Counter snapshot for the `stats` request and the tests.
  struct Stats {
    std::uint64_t submitted = 0;  ///< Admission attempts.
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;       ///< Refused with kOverloaded.
    std::uint64_t refused_draining = 0;  ///< Refused with kShuttingDown.
    std::uint64_t completed = 0;
    std::uint64_t queued_now = 0;
    std::uint64_t running_now = 0;
    std::uint64_t lanes_now = 0;

    std::string ToJson() const;
  };

  RequestScheduler(ThreadPool* pool, const Options& options);
  ~RequestScheduler();

  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  /// Creates lane `lane_id` (weight >= 1 scales its deficit quantum).
  void OpenLane(std::uint64_t lane_id, std::uint64_t weight = 1)
      CRSAT_EXCLUDES(mutex_);

  /// Removes `lane_id` once its queue is empty and nothing is in
  /// flight; queued work still runs first (call after the connection
  /// stops submitting).
  void CloseLane(std::uint64_t lane_id) CRSAT_EXCLUDES(mutex_);

  /// Admission + enqueue. `work` will run exactly once on the pool (or
  /// inline, see above) iff the return value is kOk; any other value
  /// means the request was refused and `work` was dropped. `cost_bytes`
  /// is the request payload size (fed into the DRR cost).
  ResponseStatus Submit(std::uint64_t lane_id, std::size_t cost_bytes,
                        std::function<void()> work) CRSAT_EXCLUDES(mutex_);

  /// Refuse all new work from now on (kShuttingDown); already-admitted
  /// requests keep running.
  void BeginDrain() CRSAT_EXCLUDES(mutex_);
  bool draining() const CRSAT_EXCLUDES(mutex_);

  /// Blocks until no request is queued or running.
  void AwaitIdle() CRSAT_EXCLUDES(mutex_);

  Stats stats() const CRSAT_EXCLUDES(mutex_);

 private:
  struct Lane {
    std::uint64_t id = 0;
    std::uint64_t weight = 1;
    std::uint64_t deficit = 0;
    bool running = false;       ///< A request from this lane is in flight.
    bool in_ready_ring = false;
    std::deque<std::pair<std::uint64_t, std::function<void()>>> queue;
  };

  /// Pulls the next dispatchable (lane, work) under DRR, or returns
  /// false when at capacity / nothing ready.
  bool NextDispatchLocked(std::shared_ptr<Lane>* lane,
                          std::function<void()>* work)
      CRSAT_REQUIRES(mutex_);
  void Pump() CRSAT_EXCLUDES(mutex_);
  void OnComplete(const std::shared_ptr<Lane>& lane) CRSAT_EXCLUDES(mutex_);

  ThreadPool* const pool_;
  const Options options_;
  const int max_concurrency_;

  mutable Mutex mutex_;
  CondVar idle_;  ///< Signaled when queued + running reaches zero.
  std::map<std::uint64_t, std::shared_ptr<Lane>> lanes_
      CRSAT_GUARDED_BY(mutex_);
  std::deque<std::shared_ptr<Lane>> ready_ring_ CRSAT_GUARDED_BY(mutex_);
  bool draining_ CRSAT_GUARDED_BY(mutex_) = false;
  std::size_t queued_total_ CRSAT_GUARDED_BY(mutex_) = 0;
  int running_total_ CRSAT_GUARDED_BY(mutex_) = 0;
  Stats counters_ CRSAT_GUARDED_BY(mutex_);
};

}  // namespace server
}  // namespace crsat

#endif  // CRSAT_SERVER_SCHEDULER_H_
