#include "src/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>

#include "src/base/failpoint.h"
#include "src/base/thread_pool.h"
#include "src/server/handlers.h"
#include "src/server/protocol.h"

namespace crsat {
namespace server {

namespace {

// Full-buffer send; EINTR retried, SIGPIPE suppressed (a peer that went
// away mid-response is its problem, not the daemon's).
bool SendAll(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

// One live client connection: socket, reader thread, session state, and
// the write lock serializing the two response writers (the reader thread
// for refusals/service requests, pool workers for handler responses).
struct Server::Connection {
  Connection(int connection_fd, std::uint64_t session_id)
      : fd(connection_fd), session(session_id) {}

  const int fd;
  Session session;
  std::thread thread;
  Mutex write_mutex;
  /// Admitted requests whose response has not been written yet. Pool
  /// workers hold a raw `Connection*` until they drop this count, so
  /// the reaper must not free the connection while it is nonzero.
  std::atomic<int> inflight{0};
  /// Set (release) as the reader thread's very last touch of `this`;
  /// together with `inflight == 0` it makes the connection reapable.
  std::atomic<bool> reader_done{false};

  bool Send(Frame frame) CRSAT_EXCLUDES(write_mutex) {
    if (frame.payload.size() > kMaxPayloadBytes) {
      // A response the framing cannot carry (e.g. an enormous witness
      // dump): an honest resource refusal beats a truncated payload the
      // client would misread as complete.
      frame = MakeResponse(frame.request_type(), ResponseStatus::kResource,
                           "response payload exceeds the frame cap\n");
    }
    MutexLock lock(write_mutex);
    return SendAll(fd, EncodeFrame(frame));
  }
};

Server::Server(const ServerOptions& options)
    : options_(options),
      scheduler_(nullptr) {}

Server::~Server() {
  if (listen_fd_ >= 0) {
    BeginDrain();
    Wait();
  }
}

std::string Server::endpoint() const {
  if (!options_.unix_socket.empty()) {
    return "unix:" + options_.unix_socket;
  }
  return "127.0.0.1:" + std::to_string(bound_port_);
}

Status Server::Start() {
  const bool tcp = options_.port >= 0;
  const bool uds = !options_.unix_socket.empty();
  if (tcp == uds) {
    return InvalidArgumentError(
        "crsatd needs exactly one of --port / --unix-socket");
  }
  // Resolve the pool size before the first connection can dispatch:
  // the count is frozen for the daemon's lifetime (thread_pool.h).
  SetGlobalThreadCount(options_.threads);
  scheduler_ = std::make_unique<RequestScheduler>(&GlobalThreadPool(),
                                                  options_.scheduler);

  if (uds) {
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket.size() >= sizeof(addr.sun_path)) {
      return InvalidArgumentError("unix socket path too long: '" +
                                  options_.unix_socket + "'");
    }
    std::strncpy(addr.sun_path, options_.unix_socket.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return InternalError(std::string("socket(AF_UNIX): ") +
                           std::strerror(errno));
    }
    ::unlink(options_.unix_socket.c_str());  // Stale path from a crash.
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const int err = errno;
      ::close(listen_fd_);
      listen_fd_ = -1;
      return InternalError("bind('" + options_.unix_socket +
                           "'): " + std::strerror(err));
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return InternalError(std::string("socket(AF_INET): ") +
                           std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const int err = errno;
      ::close(listen_fd_);
      listen_fd_ = -1;
      return InternalError("bind(127.0.0.1:" +
                           std::to_string(options_.port) +
                           "): " + std::strerror(err));
    }
    sockaddr_in bound;
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) == 0) {
      bound_port_ = static_cast<int>(ntohs(bound.sin_port));
    }
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InternalError(std::string("listen: ") + std::strerror(err));
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return OkStatus();
}

void Server::AcceptLoop() {
  while (true) {
    // Reap between polls: a daemon that held every dead connection's fd
    // and thread object until shutdown would run into EMFILE long
    // before its first drain.
    ReapDeadConnections();
    {
      MutexLock lock(mutex_);
      if (draining_) {
        return;
      }
    }
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    // Bounded poll so the drain flag is observed promptly even when no
    // client ever connects.
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready <= 0) {
      continue;  // Timeout or EINTR: re-check the drain flag.
    }
    // The accept seam: a fired failpoint skips this round. The
    // connection stays in the listen backlog and is accepted on the
    // next poll — a transient accept failure is a delay, never a drop.
    if (CRSAT_FAILPOINT("server/accept")) {
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;  // EINTR/ECONNABORTED: nothing to clean up.
    }
    MutexLock lock(mutex_);
    if (draining_) {
      ::close(fd);
      return;
    }
    auto connection = std::make_unique<Connection>(fd, next_session_id_++);
    Connection* raw = connection.get();
    scheduler_->OpenLane(raw->session.id);
    raw->thread = std::thread([this, raw] { ConnectionLoop(raw); });
    connections_.push_back(std::move(connection));
  }
}

void Server::ConnectionLoop(Connection* connection) {
  std::string buffer;
  char chunk[4096];
  bool condemned = false;
  while (!condemned) {
    // The short-read seam: a fired failpoint delivers one byte, forcing
    // the reassembly loop below to run byte-at-a-time. Verdicts cannot
    // change — only the number of reads.
    const std::size_t want =
        CRSAT_FAILPOINT("server/short-read") ? 1 : sizeof(chunk);
    const ssize_t n = ::recv(connection->fd, chunk, want, 0);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;  // Peer closed (or drain shut the socket down).
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    while (true) {
      Frame frame;
      std::size_t consumed = 0;
      std::string error;
      const DecodeResult result =
          DecodeFrame(buffer, &frame, &consumed, &error);
      if (result == DecodeResult::kNeedMore) {
        break;
      }
      if (result == DecodeResult::kError) {
        // The stream can never resynchronize after a framing error:
        // report and hang up (through the common teardown below).
        connection->Send(MakeResponse(RequestType::kParse,
                                      ResponseStatus::kProtocolError,
                                      error + "\n"));
        condemned = true;
        break;
      }
      buffer.erase(0, consumed);
      if (frame.is_response() || !IsKnownRequestType(frame.type)) {
        connection->Send(MakeResponse(
            frame.request_type(), ResponseStatus::kProtocolError,
            "expected a request frame with a known type\n"));
        continue;
      }
      DispatchFrame(connection, std::move(frame));
    }
  }
  // Reader-side teardown: close the lane (queued work still runs, new
  // submissions are refused) and shut the socket down — but leave the
  // fd allocated, since pool workers may still write late responses on
  // it; closing here could hand the fd number to a new connection and
  // misdeliver them. The accept thread's reaper closes and joins once
  // `inflight` drains. `reader_done` must be the very last touch of
  // `connection`: after it is set the reaper may free it at any moment.
  scheduler_->CloseLane(connection->session.id);
  ::shutdown(connection->fd, SHUT_RDWR);
  connection->reader_done.store(true, std::memory_order_release);
}

void Server::DispatchFrame(Connection* connection, Frame frame) {
  const RequestType type = frame.request_type();
  if (type == RequestType::kStats) {
    connection->Send(MakeResponse(type, ResponseStatus::kOk,
                                  scheduler_->stats().ToJson() + "\n"));
    connection->session.requests_served.fetch_add(1,
                                                  std::memory_order_relaxed);
    return;
  }
  if (type == RequestType::kShutdown) {
    // Drain first, reply second: once the client reads "draining" the
    // daemon is observably draining (the reply still goes out — drain
    // only stops *new* work, this connection stays open to finish).
    BeginDrain();
    connection->Send(
        MakeResponse(type, ResponseStatus::kOk, "draining\n"));
    connection->session.requests_served.fetch_add(1,
                                                  std::memory_order_relaxed);
    return;
  }
  // Session request: through admission control onto the pool. The
  // lambda owns the frame; the scheduler guarantees at most one
  // in-flight request per lane, so the session needs no lock.
  const std::size_t cost = frame.payload.size();
  connection->inflight.fetch_add(1, std::memory_order_relaxed);
  auto work = [this, connection, frame = std::move(frame)] {
    HandlerResult result =
        HandleRequest(connection->session, frame, options_.caps);
    connection->Send(MakeResponse(frame.request_type(), result.status,
                                  std::move(result.payload)));
    connection->session.requests_served.fetch_add(1,
                                                  std::memory_order_relaxed);
    // Last touch of `connection`: once the in-flight count drops the
    // reaper may free it (the reader thread may already be gone).
    connection->inflight.fetch_sub(1, std::memory_order_release);
  };
  const ResponseStatus admitted =
      scheduler_->Submit(connection->session.id, cost, std::move(work));
  if (admitted != ResponseStatus::kOk) {
    // Shed / draining: answer from the reader thread. The scheduler
    // dropped `work` unrun, so undo its in-flight count here.
    connection->inflight.fetch_sub(1, std::memory_order_release);
    connection->session.requests_shed.fetch_add(1, std::memory_order_relaxed);
    connection->Send(MakeResponse(
        type, admitted,
        std::string(ResponseStatusToString(admitted)) + "\n"));
  }
}

void Server::BeginDrain() {
  {
    MutexLock lock(mutex_);
    if (draining_) {
      return;
    }
    draining_ = true;
  }
  drain_cv_.NotifyAll();
  if (scheduler_ != nullptr) {
    scheduler_->BeginDrain();
  }
}

bool Server::draining() const {
  MutexLock lock(mutex_);
  return draining_;
}

std::size_t Server::live_connections() const {
  MutexLock lock(mutex_);
  return connections_.size();
}

void Server::ReapDeadConnections() {
  // A connection is reapable once its reader thread has exited *and*
  // its last admitted request has written its response (pool workers
  // hold raw Connection pointers until then). Join/close happen outside
  // mutex_; the join is near-instant because `reader_done` is the
  // reader's final action.
  std::vector<std::unique_ptr<Connection>> dead;
  {
    MutexLock lock(mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      Connection* connection = it->get();
      if (connection->reader_done.load(std::memory_order_acquire) &&
          connection->inflight.load(std::memory_order_acquire) == 0) {
        dead.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::unique_ptr<Connection>& connection : dead) {
    if (connection->thread.joinable()) {
      connection->thread.join();
    }
    ::close(connection->fd);
  }
}

void Server::Wait() {
  {
    MutexLock lock(mutex_);
    while (!draining_) {
      drain_cv_.Wait(lock);
    }
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // Everything admitted before the drain finishes and writes its
  // response before the sockets go away.
  scheduler_->AwaitIdle();
  std::vector<std::unique_ptr<Connection>> remaining;
  {
    MutexLock lock(mutex_);
    for (const std::unique_ptr<Connection>& connection : connections_) {
      ::shutdown(connection->fd, SHUT_RDWR);  // Unblocks the reader.
    }
    // The accept thread is already joined, so the vector cannot grow:
    // swap it out and join lock-free. Joining while holding mutex_
    // would deadlock with a reader that just read a buffered second
    // kShutdown and is blocked in BeginDrain on this same mutex.
    remaining.swap(connections_);
  }
  for (std::unique_ptr<Connection>& connection : remaining) {
    if (connection->thread.joinable()) {
      connection->thread.join();
    }
    ::close(connection->fd);
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (!options_.unix_socket.empty()) {
    ::unlink(options_.unix_socket.c_str());
  }
}

}  // namespace server
}  // namespace crsat
