#include "src/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/base/failpoint.h"
#include "src/base/thread_pool.h"
#include "src/server/handlers.h"
#include "src/server/protocol.h"

namespace crsat {
namespace server {

namespace {

// Full-buffer send; EINTR retried, SIGPIPE suppressed (a peer that went
// away mid-response is its problem, not the daemon's).
bool SendAll(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

// One live client connection: socket, reader thread, session state, and
// the write lock serializing the two response writers (the reader thread
// for refusals/service requests, pool workers for handler responses).
struct Server::Connection {
  Connection(int connection_fd, std::uint64_t session_id)
      : fd(connection_fd), session(session_id) {}

  const int fd;
  Session session;
  std::thread thread;
  Mutex write_mutex;

  bool Send(const Frame& frame) CRSAT_EXCLUDES(write_mutex) {
    MutexLock lock(write_mutex);
    return SendAll(fd, EncodeFrame(frame));
  }
};

Server::Server(const ServerOptions& options)
    : options_(options),
      scheduler_(nullptr) {}

Server::~Server() {
  if (listen_fd_ >= 0) {
    BeginDrain();
    Wait();
  }
}

std::string Server::endpoint() const {
  if (!options_.unix_socket.empty()) {
    return "unix:" + options_.unix_socket;
  }
  return "127.0.0.1:" + std::to_string(bound_port_);
}

Status Server::Start() {
  const bool tcp = options_.port >= 0;
  const bool uds = !options_.unix_socket.empty();
  if (tcp == uds) {
    return InvalidArgumentError(
        "crsatd needs exactly one of --port / --unix-socket");
  }
  // Resolve the pool size before the first connection can dispatch:
  // the count is frozen for the daemon's lifetime (thread_pool.h).
  SetGlobalThreadCount(options_.threads);
  scheduler_ = std::make_unique<RequestScheduler>(&GlobalThreadPool(),
                                                  options_.scheduler);

  if (uds) {
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket.size() >= sizeof(addr.sun_path)) {
      return InvalidArgumentError("unix socket path too long: '" +
                                  options_.unix_socket + "'");
    }
    std::strncpy(addr.sun_path, options_.unix_socket.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return InternalError(std::string("socket(AF_UNIX): ") +
                           std::strerror(errno));
    }
    ::unlink(options_.unix_socket.c_str());  // Stale path from a crash.
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const int err = errno;
      ::close(listen_fd_);
      listen_fd_ = -1;
      return InternalError("bind('" + options_.unix_socket +
                           "'): " + std::strerror(err));
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return InternalError(std::string("socket(AF_INET): ") +
                           std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const int err = errno;
      ::close(listen_fd_);
      listen_fd_ = -1;
      return InternalError("bind(127.0.0.1:" +
                           std::to_string(options_.port) +
                           "): " + std::strerror(err));
    }
    sockaddr_in bound;
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) == 0) {
      bound_port_ = static_cast<int>(ntohs(bound.sin_port));
    }
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InternalError(std::string("listen: ") + std::strerror(err));
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return OkStatus();
}

void Server::AcceptLoop() {
  while (true) {
    {
      MutexLock lock(mutex_);
      if (draining_) {
        return;
      }
    }
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    // Bounded poll so the drain flag is observed promptly even when no
    // client ever connects.
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready <= 0) {
      continue;  // Timeout or EINTR: re-check the drain flag.
    }
    // The accept seam: a fired failpoint skips this round. The
    // connection stays in the listen backlog and is accepted on the
    // next poll — a transient accept failure is a delay, never a drop.
    if (CRSAT_FAILPOINT("server/accept")) {
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;  // EINTR/ECONNABORTED: nothing to clean up.
    }
    MutexLock lock(mutex_);
    if (draining_) {
      ::close(fd);
      return;
    }
    auto connection = std::make_unique<Connection>(fd, next_session_id_++);
    Connection* raw = connection.get();
    scheduler_->OpenLane(raw->session.id);
    raw->thread = std::thread([this, raw] { ConnectionLoop(raw); });
    connections_.push_back(std::move(connection));
  }
}

void Server::ConnectionLoop(Connection* connection) {
  std::string buffer;
  char chunk[4096];
  while (true) {
    // The short-read seam: a fired failpoint delivers one byte, forcing
    // the reassembly loop below to run byte-at-a-time. Verdicts cannot
    // change — only the number of reads.
    const std::size_t want =
        CRSAT_FAILPOINT("server/short-read") ? 1 : sizeof(chunk);
    const ssize_t n = ::recv(connection->fd, chunk, want, 0);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;  // Peer closed (or drain shut the socket down).
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    while (true) {
      Frame frame;
      std::size_t consumed = 0;
      std::string error;
      const DecodeResult result =
          DecodeFrame(buffer, &frame, &consumed, &error);
      if (result == DecodeResult::kNeedMore) {
        break;
      }
      if (result == DecodeResult::kError) {
        // The stream can never resynchronize after a framing error:
        // report and hang up.
        connection->Send(MakeResponse(RequestType::kParse,
                                      ResponseStatus::kProtocolError,
                                      error + "\n"));
        scheduler_->CloseLane(connection->session.id);
        ::shutdown(connection->fd, SHUT_RDWR);
        return;
      }
      buffer.erase(0, consumed);
      if (frame.is_response() || !IsKnownRequestType(frame.type)) {
        connection->Send(MakeResponse(
            frame.request_type(), ResponseStatus::kProtocolError,
            "expected a request frame with a known type\n"));
        continue;
      }
      DispatchFrame(connection, std::move(frame));
    }
  }
  scheduler_->CloseLane(connection->session.id);
}

void Server::DispatchFrame(Connection* connection, Frame frame) {
  const RequestType type = frame.request_type();
  if (type == RequestType::kStats) {
    connection->Send(MakeResponse(type, ResponseStatus::kOk,
                                  scheduler_->stats().ToJson() + "\n"));
    connection->session.requests_served.fetch_add(1,
                                                  std::memory_order_relaxed);
    return;
  }
  if (type == RequestType::kShutdown) {
    // Drain first, reply second: once the client reads "draining" the
    // daemon is observably draining (the reply still goes out — drain
    // only stops *new* work, this connection stays open to finish).
    BeginDrain();
    connection->Send(
        MakeResponse(type, ResponseStatus::kOk, "draining\n"));
    connection->session.requests_served.fetch_add(1,
                                                  std::memory_order_relaxed);
    return;
  }
  // Session request: through admission control onto the pool. The
  // lambda owns the frame; the scheduler guarantees at most one
  // in-flight request per lane, so the session needs no lock.
  const std::size_t cost = frame.payload.size();
  auto work = [this, connection, frame = std::move(frame)] {
    HandlerResult result =
        HandleRequest(connection->session, frame, options_.caps);
    connection->Send(MakeResponse(frame.request_type(), result.status,
                                  std::move(result.payload)));
    connection->session.requests_served.fetch_add(1,
                                                  std::memory_order_relaxed);
  };
  const ResponseStatus admitted =
      scheduler_->Submit(connection->session.id, cost, std::move(work));
  if (admitted != ResponseStatus::kOk) {
    // Shed / draining: answer from the reader thread, nothing ran.
    connection->session.requests_shed.fetch_add(1, std::memory_order_relaxed);
    connection->Send(MakeResponse(
        type, admitted,
        std::string(ResponseStatusToString(admitted)) + "\n"));
  }
}

void Server::BeginDrain() {
  {
    MutexLock lock(mutex_);
    if (draining_) {
      return;
    }
    draining_ = true;
  }
  drain_cv_.NotifyAll();
  if (scheduler_ != nullptr) {
    scheduler_->BeginDrain();
  }
}

bool Server::draining() const {
  MutexLock lock(mutex_);
  return draining_;
}

void Server::Wait() {
  {
    MutexLock lock(mutex_);
    while (!draining_) {
      drain_cv_.Wait(lock);
    }
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // Everything admitted before the drain finishes and writes its
  // response before the sockets go away.
  scheduler_->AwaitIdle();
  {
    MutexLock lock(mutex_);
    for (const std::unique_ptr<Connection>& connection : connections_) {
      ::shutdown(connection->fd, SHUT_RDWR);  // Unblocks the reader.
    }
  }
  // Joining outside the lock would race AcceptLoop's push_back, but the
  // accept thread is already joined — the vector is frozen now.
  MutexLock lock(mutex_);
  for (const std::unique_ptr<Connection>& connection : connections_) {
    if (connection->thread.joinable()) {
      connection->thread.join();
    }
    ::close(connection->fd);
  }
  connections_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (!options_.unix_socket.empty()) {
    ::unlink(options_.unix_socket.c_str());
  }
}

}  // namespace server
}  // namespace crsat
