#ifndef CRSAT_SERVER_CLIENT_H_
#define CRSAT_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "src/base/result.h"
#include "src/base/status.h"
#include "src/server/protocol.h"

namespace crsat {
namespace server {

/// Per-request resource budget carried in the frame header; zero fields
/// mean "no request-side limit" (the server's caps still apply).
struct RequestBudget {
  std::uint32_t deadline_ms = 0;
  std::uint64_t max_compounds = 0;
  std::uint64_t max_memory_bytes = 0;
};

/// One response as the caller sees it.
struct Reply {
  ResponseStatus status = ResponseStatus::kOk;
  std::string payload;
};

/// Blocking crsatd client: one connection, one session, strict
/// request-reply (`Call` writes one frame and blocks reading until its
/// response arrives). Keeping exactly one request outstanding is what
/// makes the next response frame *the* response — the protocol does
/// not globally order responses for pipelining peers (protocol.h,
/// "Response ordering"). Used by `crsat_cli client` and the tests; not
/// thread-safe — share nothing or lock outside.
class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

  /// Connects to a crsatd TCP listener on 127.0.0.1.
  Status ConnectTcp(int port);
  /// Connects to a crsatd AF_UNIX listener.
  Status ConnectUnix(const std::string& path);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends one request and blocks for its response. A `Status` error
  /// means the *transport* failed (connect/send/short stream/framing);
  /// server-side outcomes — findings, resource trips, load shed — come
  /// back as the `Reply`'s status, exactly as the wire carries them.
  Result<Reply> Call(RequestType type, std::string payload,
                     const RequestBudget& budget = {});

  /// Convenience: `parse` with the "<display-name>\n<text>" payload.
  Result<Reply> Parse(const std::string& display_name,
                      const std::string& schema_text);

 private:
  int fd_ = -1;
  std::string buffer_;  ///< Reassembly buffer across Call invocations.
};

}  // namespace server
}  // namespace crsat

#endif  // CRSAT_SERVER_CLIENT_H_
