#ifndef CRSAT_SERVER_HANDLERS_H_
#define CRSAT_SERVER_HANDLERS_H_

#include <string>

#include "src/base/resource_guard.h"
#include "src/server/protocol.h"
#include "src/server/session.h"

namespace crsat {
namespace server {

/// Outcome of one schema request: the response status byte plus the
/// response payload (for kOk/kFindings, the exact stdout text the
/// one-shot CLI would have printed; otherwise a human-readable reason).
struct HandlerResult {
  ResponseStatus status = ResponseStatus::kOk;
  std::string payload;
};

/// Executes one schema-level request (`parse`, `check`, `lint`,
/// `implications`, `witness`) against `session`, under a per-request
/// `ResourceGuard` built from the frame's budget headers clamped by the
/// server-wide `caps` (protocol.h `ClampBudget`).
///
/// Parity contract (tests/server_test.cc, tools/server_smoke.sh): for
/// kCheck/kLint/kWitness the kOk/kFindings payload is byte-identical to
/// the stdout of `crsat_cli check|lint|check --witness=M` on the same
/// schema text, because both run the same library pipeline and the same
/// formatting code. A guard trip returns kResource with the trip report
/// as payload — the degradation ladder's honest UNKNOWN, never a guessed
/// verdict.
///
/// `stats` and `shutdown` are service-level requests handled by the
/// server itself, not here; routing one in returns kBadRequest.
HandlerResult HandleRequest(Session& session, const Frame& request,
                            const ResourceLimits& caps);

}  // namespace server
}  // namespace crsat

#endif  // CRSAT_SERVER_HANDLERS_H_
