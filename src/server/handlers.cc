#include "src/server/handlers.h"

#include <cstdio>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/crsat.h"

namespace crsat {
namespace server {

namespace {

std::string JsonEscape(const std::string& text) {
  std::string escaped;
  for (char c : text) {
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\t':
        escaped += "\\t";
        break;
      case '\r':
        escaped += "\\r";
        break;
      default:
        // JSON forbids raw control characters; a multi-line or
        // control-laden status string must not corrupt the report.
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          escaped += buffer;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

// The trip report, formatted exactly as the CLI's ReportTrip: text mode
// mirrors its stderr, json mode its stdout.
HandlerResult TripResult(const ResourceGuard& guard, bool json) {
  std::ostringstream out;
  if (json) {
    out << "{\n  \"error\": \"" << JsonEscape(guard.TripStatus().ToString())
        << "\",\n  \"resource\": " << guard.report().ToJson() << "\n}\n";
  } else {
    out << guard.TripStatus() << "\n" << guard.report().ToString() << "\n";
  }
  return {ResponseStatus::kResource, out.str()};
}

HandlerResult BadRequest(std::string reason) {
  if (reason.empty() || reason.back() != '\n') {
    reason += '\n';
  }
  return {ResponseStatus::kBadRequest, std::move(reason)};
}

HandlerResult HandleParse(Session& session, const std::string& payload) {
  // Payload: "<display-name>\n<schema DSL text>".
  const std::size_t newline = payload.find('\n');
  if (newline == std::string::npos) {
    return BadRequest(
        "malformed parse payload: expected \"<display-name>\\n<schema "
        "text>\"");
  }
  // Replace whatever the session held; later requests run against this.
  // The raw text is kept even when the strict parse fails: lint runs on
  // a lenient re-parse (the one-shot CLI lints schemas `check` refuses,
  // e.g. ones with empty cardinality ranges).
  session.display_name = payload.substr(0, newline);
  session.schema_text = payload.substr(newline + 1);
  session.text_loaded = true;
  session.schema.reset();
  Result<NamedSchema> parsed = ParseSchema(session.schema_text);
  if (!parsed.ok()) {
    // Mirrors `crsat_cli check <bad-schema>`: the parse error text with
    // the findings exit code. The session still lints.
    return {ResponseStatus::kFindings, parsed.status().ToString() + "\n"};
  }
  const std::string name = parsed->name;
  session.schema.emplace(std::move(parsed.value()));
  return {ResponseStatus::kOk, "parsed schema '" + name + "'\n"};
}

// kCheck (witness_mode empty) and kWitness: the text path of the CLI's
// RunCheck, with stdout captured into the response payload.
HandlerResult HandleCheck(Session& session, const std::string& witness_mode,
                          ResourceGuard* guard) {
  const NamedSchema& parsed = *session.schema;
  const Schema& schema = parsed.schema;
  std::optional<std::vector<bool>> satisfiable;
  if (witness_mode.empty()) {
    Result<std::optional<std::vector<bool>>> fast =
        TryLnSatisfiableClasses(schema);
    if (!fast.ok()) {
      return {ResponseStatus::kFindings, fast.status().ToString() + "\n"};
    }
    satisfiable = std::move(fast.value());
  }
  std::optional<Expansion> expansion;
  std::optional<SatisfiabilityChecker> checker;
  std::vector<bool> known_empty;
  if (!satisfiable.has_value()) {
    known_empty = ComputeProvablyEmpty(schema).class_empty;
    ExpansionOptions options;
    options.guard = guard;
    options.known_empty_classes = &known_empty;
    Result<Expansion> built = Expansion::Build(schema, options);
    if (!built.ok()) {
      if (guard != nullptr && guard->tripped()) {
        return TripResult(*guard, /*json=*/false);
      }
      return {IsResourceLimitStatus(built.status().code())
                  ? ResponseStatus::kResource
                  : ResponseStatus::kFindings,
              built.status().ToString() + "\n"};
    }
    expansion.emplace(std::move(built.value()));
    checker.emplace(*expansion);
    checker->SetKnownEmptyClasses(known_empty);
    Result<std::vector<bool>> verdicts = checker->SatisfiableClasses();
    if (!verdicts.ok()) {
      if (guard != nullptr && guard->tripped()) {
        return TripResult(*guard, /*json=*/false);
      }
      return {IsResourceLimitStatus(verdicts.status().code())
                  ? ResponseStatus::kResource
                  : ResponseStatus::kFindings,
              verdicts.status().ToString() + "\n"};
    }
    satisfiable.emplace(std::move(verdicts.value()));
  }
  bool all_ok = true;
  bool any_satisfiable = false;
  for (ClassId cls : schema.AllClasses()) {
    all_ok = all_ok && (*satisfiable)[cls.value];
    any_satisfiable = any_satisfiable || (*satisfiable)[cls.value];
  }

  std::optional<CertifiedWitness> witness;
  bool witness_downgraded = false;
  if (!witness_mode.empty() && any_satisfiable) {
    WitnessSynthesizer synthesizer(*checker);
    WitnessOptions witness_options;
    witness_options.guard = guard;
    witness_options.source_map = &parsed.source_map;
    Result<CertifiedWitness> result = synthesizer.Synthesize(witness_options);
    if (result.ok()) {
      witness.emplace(std::move(result.value()));
    } else if (IsResourceLimitStatus(result.status().code())) {
      // The verdict predates the trip and stands (the CLI reports the
      // trip on stderr; the response payload carries only the stdout
      // text, so parity holds).
      witness_downgraded = true;
    } else {
      return {ResponseStatus::kFindings, result.status().ToString() + "\n"};
    }
  }

  std::ostringstream out;
  for (ClassId cls : schema.AllClasses()) {
    const bool ok = (*satisfiable)[cls.value];
    out << (ok ? "  satisfiable    " : "  UNSATISFIABLE  ")
        << schema.ClassName(cls) << "\n";
  }
  out << (all_ok ? "schema is strongly satisfiable"
                 : "schema has unpopulatable classes (see 'debug')")
      << "\n";
  if (witness.has_value()) {
    if (witness_mode == "json") {
      out << WitnessToJson(*witness) << "\n";
    } else if (witness_mode == "dot") {
      out << WitnessToDot(*witness);
    } else {
      out << "witness (certified): " << witness->stats().individuals
          << " individual(s), " << witness->stats().tuples << " tuple(s)\n"
          << witness->interpretation().ToString();
    }
  } else if (!witness_mode.empty() && !witness_downgraded) {
    out << "no witness: no class is satisfiable\n";
  }
  return {all_ok ? ResponseStatus::kOk : ResponseStatus::kFindings,
          out.str()};
}

HandlerResult HandleLint(Session& session, bool json, ResourceGuard* guard) {
  // The CLI lints a *leniently* re-parsed schema so empty ranges reach
  // the empty-range rule; re-parse the stored text the same way.
  ParseSchemaOptions options;
  options.permit_empty_ranges = true;
  Result<NamedSchema> parsed = ParseSchema(session.schema_text, options);
  if (!parsed.ok()) {
    // The one-shot CLI reports a lint parse failure on *stderr* with
    // exit 1; the payload mirrors stdout bytes, so it stays empty (the
    // parse error text already went out on this session's parse reply).
    return {ResponseStatus::kFindings, ""};
  }
  LintOptions lint_options;
  lint_options.guard = guard;
  std::vector<Diagnostic> diagnostics = RunLint(*parsed, lint_options);
  if (guard != nullptr && guard->tripped()) {
    return TripResult(*guard, json);
  }
  std::ostringstream out;
  if (json) {
    out << DiagnosticsToJson(diagnostics) << "\n";
  } else {
    int errors = 0, warnings = 0, notes = 0;
    for (const Diagnostic& diagnostic : diagnostics) {
      out << FormatDiagnostic(diagnostic, session.display_name) << "\n";
      switch (diagnostic.severity) {
        case Severity::kError:
          ++errors;
          break;
        case Severity::kWarning:
          ++warnings;
          break;
        case Severity::kNote:
          ++notes;
          break;
      }
    }
    if (diagnostics.empty()) {
      out << "schema '" << parsed->name << "': no findings\n";
    } else {
      out << errors << " error(s), " << warnings << " warning(s), " << notes
          << " note(s)\n";
    }
  }
  return {HasErrors(diagnostics) ? ResponseStatus::kFindings
                                 : ResponseStatus::kOk,
          out.str()};
}

HandlerResult HandleImplications(Session& session,
                                 const std::string& payload) {
  const Schema& schema = session.schema->schema;
  std::istringstream in(payload);
  std::string mode;
  in >> mode;
  auto resolve = [&schema](const std::string& name,
                           std::optional<ClassId>* out) {
    std::optional<ClassId> cls = schema.FindClass(name);
    *out = cls;
    return cls.has_value();
  };
  if (mode == "isa") {
    std::string sub_name, super_name;
    in >> sub_name >> super_name;
    std::optional<ClassId> sub, super;
    if (sub_name.empty() || super_name.empty() || !resolve(sub_name, &sub) ||
        !resolve(super_name, &super)) {
      return BadRequest("implications isa: unknown class");
    }
    Result<bool> implied = ImplicationChecker::ImpliesIsa(schema, *sub, *super);
    if (!implied.ok()) {
      return BadRequest(implied.status().ToString());
    }
    std::ostringstream out;
    out << sub_name << " <= " << super_name << ": "
        << (*implied ? "implied" : "not implied") << "\n";
    return {ResponseStatus::kOk, out.str()};
  }
  if (mode == "card") {
    std::string class_name, rel_name, role_name;
    in >> class_name >> rel_name >> role_name;
    std::optional<ClassId> cls;
    std::optional<RelationshipId> rel = schema.FindRelationship(rel_name);
    std::optional<RoleId> role = schema.FindRole(role_name);
    if (class_name.empty() || !resolve(class_name, &cls) ||
        !rel.has_value() || !role.has_value()) {
      return BadRequest("implications card: unknown class, relationship "
                        "or role");
    }
    Result<std::uint64_t> min =
        ImplicationChecker::TightestImpliedMin(schema, *cls, *rel, *role);
    Result<std::optional<std::uint64_t>> max =
        ImplicationChecker::TightestImpliedMax(schema, *cls, *rel, *role);
    if (!min.ok() || !max.ok()) {
      return BadRequest((min.ok() ? max.status() : min.status()).ToString());
    }
    std::ostringstream out;
    out << "tightest implied cardinality of (" << class_name << ", "
        << rel_name << ", " << role_name << "): (" << *min << ", "
        << (max->has_value() ? std::to_string(**max) : "*") << ")\n";
    return {ResponseStatus::kOk, out.str()};
  }
  return BadRequest("implications payload must start with 'isa' or 'card'");
}

}  // namespace

HandlerResult HandleRequest(Session& session, const Frame& request,
                            const ResourceLimits& caps) {
  const RequestType type = request.request_type();
  if (type == RequestType::kParse) {
    return HandleParse(session, request.payload);
  }
  // Lint needs only the stored text (lenient re-parse); everything else
  // needs the strictly-parsed schema.
  if (type == RequestType::kLint ? !session.text_loaded
                                 : !session.schema.has_value()) {
    return BadRequest(
        "no schema on this session (send a parse request first)");
  }
  // A guard only exists when some limit is effective — a null guard is
  // the zero-overhead "unlimited" convention of the whole pipeline.
  const ResourceLimits limits = ClampBudget(request, caps);
  const bool limited = limits.timeout.has_value() ||
                       limits.max_compounds.has_value() ||
                       limits.max_memory_bytes.has_value();
  std::optional<ResourceGuard> guard;
  if (limited) {
    guard.emplace(limits);
  }
  ResourceGuard* guard_ptr = guard.has_value() ? &*guard : nullptr;
  switch (type) {
    case RequestType::kCheck:
      return HandleCheck(session, /*witness_mode=*/"", guard_ptr);
    case RequestType::kWitness: {
      std::string mode = request.payload.empty() ? "text" : request.payload;
      if (mode != "text" && mode != "json" && mode != "dot") {
        return BadRequest("witness mode must be text, json or dot");
      }
      return HandleCheck(session, mode, guard_ptr);
    }
    case RequestType::kLint: {
      if (!request.payload.empty() && request.payload != "json") {
        return BadRequest("lint payload must be empty or \"json\"");
      }
      return HandleLint(session, request.payload == "json", guard_ptr);
    }
    case RequestType::kImplications:
      return HandleImplications(session, request.payload);
    case RequestType::kParse:
    case RequestType::kStats:
    case RequestType::kShutdown:
      break;  // kParse handled above; the rest are service-level.
  }
  return BadRequest("request type is not a session request");
}

}  // namespace server
}  // namespace crsat
