#ifndef CRSAT_SERVER_PROTOCOL_H_
#define CRSAT_SERVER_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/base/resource_guard.h"

namespace crsat {
namespace server {

/// The crsatd wire protocol (DESIGN.md §15): length-prefixed binary
/// frames over a byte stream (TCP or AF_UNIX). One frame = one request
/// or one response; a connection is a *session* that carries state (the
/// parsed schema) between frames.
///
/// Frame layout, little-endian, 32-byte fixed header + payload:
///
///   offset  size  field
///   0       4     magic 0x44535243 ("CRSD")
///   4       1     protocol version (kProtocolVersion)
///   5       1     type (RequestType; responses set kResponseBit)
///   6       1     status (ResponseStatus on responses, 0 on requests)
///   7       1     reserved, must be 0
///   8       4     deadline_ms   (request budget; 0 = no request limit)
///   12      8     max_compounds (request budget; 0 = no request limit)
///   20      8     max_memory_bytes (request budget; 0 = no request limit)
///   28      4     payload size N (<= kMaxPayloadBytes)
///   32      N     payload bytes
///
/// The three budget fields become a per-request `ResourceGuard`, clamped
/// by the server-wide caps (`ClampBudget`); the CLI's 0/1/2/3 exit-code
/// contract is carried verbatim in the response status byte, extended
/// with the service-only statuses (protocol error, load shed, draining).
///
/// Response ordering: within one connection, admitted (session-level)
/// requests are answered in submission order — the scheduler runs at
/// most one per session at a time — but service-level requests
/// (`stats`, `shutdown`), protocol errors, and admission refusals are
/// answered directly from the connection's reader thread and may
/// overtake responses to earlier admitted requests still queued.
/// Strict request-reply usage (one outstanding request per connection,
/// as `Client::Call` enforces) always reads its own response next; a
/// pipelining peer must not assume global FIFO and would need its own
/// correlation scheme.

inline constexpr std::uint32_t kMagic = 0x44535243u;  // "CRSD"
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 32;
/// Hard cap on one frame's payload; a declared size beyond it is a
/// protocol error (a length-prefixed protocol must never trust the
/// prefix with its allocator).
inline constexpr std::uint32_t kMaxPayloadBytes = 16u << 20;

/// Set on the `type` byte of every response frame.
inline constexpr std::uint8_t kResponseBit = 0x80;

/// What the client asks the session to do.
enum class RequestType : std::uint8_t {
  /// Payload: "<display-name>\n<schema DSL text>". Parses and stores the
  /// schema on the session; every later request runs against it.
  kParse = 1,
  /// Payload empty. Class-satisfiability verdicts, byte-identical to
  /// `crsat_cli check <file>` stdout.
  kCheck = 2,
  /// Payload: "" or "json". Structural diagnostics, byte-identical to
  /// `crsat_cli lint <file> [--json]` stdout.
  kLint = 3,
  /// Payload: "isa <Sub> <Super>" or "card <Class> <Rel> <Role>",
  /// mirroring `crsat_cli implies`.
  kImplications = 4,
  /// Payload: "text", "json" or "dot" (empty = "text"): verdicts plus a
  /// certified witness, byte-identical to `crsat_cli check --witness=M`.
  kWitness = 5,
  /// Payload empty. Server/scheduler counters as JSON.
  kStats = 6,
  /// Payload empty. Begins graceful drain: in-flight requests finish,
  /// new ones are refused with kShuttingDown.
  kShutdown = 7,
};

/// True iff `type` (with kResponseBit stripped) names a request type.
bool IsKnownRequestType(std::uint8_t type);

/// Response status byte. Values 0..3 mirror the CLI exit-code contract
/// (0 ok, 1 findings, 2 bad request, 3 resource limit / honest UNKNOWN);
/// the rest are service-level outcomes with no one-shot equivalent.
enum class ResponseStatus : std::uint8_t {
  kOk = 0,
  kFindings = 1,
  kBadRequest = 2,
  /// A ResourceGuard limit tripped (degradation-ladder rung 3): the
  /// payload carries the trip report, never a guessed verdict.
  kResource = 3,
  /// The peer broke the framing contract (bad magic/version/length).
  kProtocolError = 4,
  /// Admission control shed the request (queue bound reached). A
  /// resource-family refusal: retry later, nothing was computed.
  kOverloaded = 5,
  /// The server is draining and accepts no new work.
  kShuttingDown = 6,
};

/// Stable name for a status ("ok", "findings", "overloaded", ...).
const char* ResponseStatusToString(ResponseStatus status);

/// One decoded frame. Requests leave `status` 0; responses leave the
/// budget fields 0.
struct Frame {
  std::uint8_t version = kProtocolVersion;
  std::uint8_t type = 0;  ///< RequestType value; | kResponseBit on responses.
  std::uint8_t status = 0;
  std::uint32_t deadline_ms = 0;
  std::uint64_t max_compounds = 0;
  std::uint64_t max_memory_bytes = 0;
  std::string payload;

  bool is_response() const { return (type & kResponseBit) != 0; }
  RequestType request_type() const {
    return static_cast<RequestType>(type & ~kResponseBit);
  }
  ResponseStatus response_status() const {
    return static_cast<ResponseStatus>(status);
  }
};

/// Convenience factories.
Frame MakeRequest(RequestType type, std::string payload);
Frame MakeResponse(RequestType type, ResponseStatus status,
                   std::string payload);

/// Serializes `frame` into wire bytes (header + payload). The payload
/// must already respect `kMaxPayloadBytes` — encoding never truncates
/// (a silently clipped frame would decode "successfully" to the wrong
/// bytes). `Client::Call` refuses oversized request payloads up front
/// with a status; the server substitutes an explicit error response
/// for an oversized response payload.
std::string EncodeFrame(const Frame& frame);

/// Outcome of `DecodeFrame` over a reassembly buffer.
enum class DecodeResult {
  kFrame,     ///< One complete frame decoded; `*consumed` bytes eaten.
  kNeedMore,  ///< The buffer holds a valid prefix; read more bytes.
  kError,     ///< The buffer can never become a valid frame.
};

/// Decodes one frame from the front of `buffer`. On `kFrame` fills
/// `*frame` and `*consumed`; on `kError` fills `*error` with a
/// human-readable reason (bad magic, unsupported version, oversized
/// payload, nonzero reserved byte). `kNeedMore` means the caller should
/// append more bytes and retry — short reads are normal operation, not
/// errors (the `server/short-read` failpoint exercises exactly this).
DecodeResult DecodeFrame(std::string_view buffer, Frame* frame,
                         std::size_t* consumed, std::string* error);

/// The request-budget headers as `ResourceLimits`, clamped field-wise by
/// the server-wide caps: a request may always *tighten* a cap, never
/// exceed it (0 in a request field means "use the cap"; an unset cap
/// field means the request value passes through).
ResourceLimits ClampBudget(const Frame& request, const ResourceLimits& caps);

}  // namespace server
}  // namespace crsat

#endif  // CRSAT_SERVER_PROTOCOL_H_
