#ifndef CRSAT_SERVER_SERVER_H_
#define CRSAT_SERVER_SERVER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/base/annotations.h"
#include "src/base/mutex.h"
#include "src/base/resource_guard.h"
#include "src/base/status.h"
#include "src/server/scheduler.h"
#include "src/server/session.h"

namespace crsat {
namespace server {

/// crsatd configuration.
struct ServerOptions {
  /// TCP listener on 127.0.0.1 when >= 0 (0 = kernel-assigned ephemeral
  /// port, reported by `Server::port()` after `Start`). Exactly one of
  /// `port` / `unix_socket` must be set.
  int port = -1;
  /// AF_UNIX listener at this path (unlinked on shutdown).
  std::string unix_socket;
  /// Reasoning-pool parallelism, resolved via `SetGlobalThreadCount`
  /// *before* the listener accepts its first connection (0 = auto:
  /// CRSAT_THREADS or the hardware). Frozen for the daemon's lifetime —
  /// see the ordering contract on SetGlobalThreadCount.
  int threads = 0;
  /// Admission control + fair queueing knobs.
  RequestScheduler::Options scheduler;
  /// Server-wide resource caps; each request's budget headers are
  /// clamped by these (protocol.h `ClampBudget`). Unset = uncapped.
  ResourceLimits caps;
};

/// The crsatd daemon (DESIGN.md §15): a listener, one session +
/// scheduler lane per connection, and the shared request scheduler in
/// front of the process-wide reasoning pool.
///
/// Lifecycle:
///   Server server(options);
///   CRSAT_RETURN_IF_ERROR(server.Start());   // binds, spawns accept loop
///   ... server.BeginDrain() from a signal handler or kShutdown ...
///   server.Wait();                           // drains and joins
///
/// Threading: one accept thread; one thread per live connection reading
/// frames and writing admission refusals; pool workers execute admitted
/// requests and write their responses (a per-connection write mutex
/// keeps the two writers' frames from interleaving).
class Server {
 public:
  explicit Server(const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Resolves the thread count, binds the listener, starts accepting.
  Status Start();

  /// The bound TCP port (meaningful after Start on a TCP listener;
  /// resolves `port = 0` to the kernel-assigned port).
  int port() const { return bound_port_; }

  /// "127.0.0.1:<port>" or "unix:<path>".
  std::string endpoint() const;

  /// Graceful drain: stop accepting connections, refuse new requests
  /// with kShuttingDown, let in-flight requests finish. Idempotent;
  /// callable from any thread (a signal-watching loop, a kShutdown
  /// request's connection thread).
  void BeginDrain();

  /// True once `BeginDrain` ran (from a signal or a shutdown request).
  bool draining() const;

  /// Connections currently tracked: live readers plus closed ones the
  /// accept thread has not reaped yet. Dead connections are reaped
  /// between accept polls (fd closed, thread joined), so this returns
  /// to zero shortly after clients disconnect — a long-running daemon
  /// never accumulates dead fds.
  std::size_t live_connections() const;

  /// Blocks until drained: accept loop exited, every admitted request
  /// completed, every connection thread joined. Call once, after Start.
  void Wait();

  /// Scheduler counters (the `stats` request serves these as JSON).
  RequestScheduler::Stats scheduler_stats() const {
    return scheduler_->stats();
  }

 private:
  struct Connection;

  void AcceptLoop();
  void ConnectionLoop(Connection* connection);
  /// Routes one decoded request frame: service-level types are answered
  /// inline, session types go through admission control.
  void DispatchFrame(Connection* connection, Frame frame);
  /// Erases, joins and closes every connection whose reader exited and
  /// whose last in-flight response has been written. Runs on the accept
  /// thread between polls; `Wait` handles whatever is left at drain.
  void ReapDeadConnections();

  const ServerOptions options_;
  std::unique_ptr<RequestScheduler> scheduler_;
  int listen_fd_ = -1;
  int bound_port_ = -1;
  std::thread accept_thread_;

  mutable Mutex mutex_;
  CondVar drain_cv_;  ///< Signaled when draining_ flips to true.
  bool draining_ CRSAT_GUARDED_BY(mutex_) = false;
  std::vector<std::unique_ptr<Connection>> connections_
      CRSAT_GUARDED_BY(mutex_);
  std::uint64_t next_session_id_ CRSAT_GUARDED_BY(mutex_) = 1;
};

}  // namespace server
}  // namespace crsat

#endif  // CRSAT_SERVER_SERVER_H_
