#include "src/server/protocol.h"

#include <algorithm>

namespace crsat {
namespace server {

namespace {

void PutU32(std::string* out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void PutU64(std::string* out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

std::uint32_t GetU32(std::string_view bytes, std::size_t at) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(bytes[at + i]))
             << (8 * i);
  }
  return value;
}

std::uint64_t GetU64(std::string_view bytes, std::size_t at) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(bytes[at + i]))
             << (8 * i);
  }
  return value;
}

}  // namespace

bool IsKnownRequestType(std::uint8_t type) {
  const std::uint8_t bare = type & ~kResponseBit;
  return bare >= static_cast<std::uint8_t>(RequestType::kParse) &&
         bare <= static_cast<std::uint8_t>(RequestType::kShutdown);
}

const char* ResponseStatusToString(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk:
      return "ok";
    case ResponseStatus::kFindings:
      return "findings";
    case ResponseStatus::kBadRequest:
      return "bad-request";
    case ResponseStatus::kResource:
      return "resource-limit";
    case ResponseStatus::kProtocolError:
      return "protocol-error";
    case ResponseStatus::kOverloaded:
      return "overloaded";
    case ResponseStatus::kShuttingDown:
      return "shutting-down";
  }
  return "unknown";
}

Frame MakeRequest(RequestType type, std::string payload) {
  Frame frame;
  frame.type = static_cast<std::uint8_t>(type);
  frame.payload = std::move(payload);
  return frame;
}

Frame MakeResponse(RequestType type, ResponseStatus status,
                   std::string payload) {
  Frame frame;
  frame.type = static_cast<std::uint8_t>(type) | kResponseBit;
  frame.status = static_cast<std::uint8_t>(status);
  frame.payload = std::move(payload);
  return frame;
}

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  PutU32(&out, kMagic);
  out.push_back(static_cast<char>(frame.version));
  out.push_back(static_cast<char>(frame.type));
  out.push_back(static_cast<char>(frame.status));
  out.push_back(0);  // Reserved.
  PutU32(&out, frame.deadline_ms);
  PutU64(&out, frame.max_compounds);
  PutU64(&out, frame.max_memory_bytes);
  PutU32(&out, static_cast<std::uint32_t>(frame.payload.size()));
  out.append(frame.payload);
  return out;
}

DecodeResult DecodeFrame(std::string_view buffer, Frame* frame,
                         std::size_t* consumed, std::string* error) {
  // Validate eagerly: bad magic / version / reserved are detectable from
  // the first bytes, before the full header arrives, so a garbage peer is
  // rejected without waiting for 32 bytes that may never come.
  if (!buffer.empty()) {
    static constexpr char kMagicBytes[4] = {'C', 'R', 'S', 'D'};
    const std::size_t check = std::min<std::size_t>(buffer.size(), 4);
    for (std::size_t i = 0; i < check; ++i) {
      if (buffer[i] != kMagicBytes[i]) {
        *error = "bad magic (expected \"CRSD\")";
        return DecodeResult::kError;
      }
    }
    if (buffer.size() >= 5 &&
        static_cast<std::uint8_t>(buffer[4]) != kProtocolVersion) {
      *error = "unsupported protocol version " +
               std::to_string(static_cast<unsigned>(
                   static_cast<std::uint8_t>(buffer[4]))) +
               " (speaking " + std::to_string(unsigned{kProtocolVersion}) +
               ")";
      return DecodeResult::kError;
    }
    if (buffer.size() >= 8 && buffer[7] != 0) {
      *error = "nonzero reserved byte";
      return DecodeResult::kError;
    }
  }
  if (buffer.size() < kFrameHeaderBytes) {
    return DecodeResult::kNeedMore;
  }
  const std::uint32_t payload_size = GetU32(buffer, 28);
  if (payload_size > kMaxPayloadBytes) {
    *error = "oversized payload: " + std::to_string(payload_size) +
             " bytes (cap " + std::to_string(kMaxPayloadBytes) + ")";
    return DecodeResult::kError;
  }
  if (buffer.size() < kFrameHeaderBytes + payload_size) {
    return DecodeResult::kNeedMore;
  }
  frame->version = static_cast<std::uint8_t>(buffer[4]);
  frame->type = static_cast<std::uint8_t>(buffer[5]);
  frame->status = static_cast<std::uint8_t>(buffer[6]);
  frame->deadline_ms = GetU32(buffer, 8);
  frame->max_compounds = GetU64(buffer, 12);
  frame->max_memory_bytes = GetU64(buffer, 20);
  frame->payload.assign(buffer.substr(kFrameHeaderBytes, payload_size));
  *consumed = kFrameHeaderBytes + payload_size;
  return DecodeResult::kFrame;
}

ResourceLimits ClampBudget(const Frame& request, const ResourceLimits& caps) {
  ResourceLimits limits;
  // Deadline: the tighter of the request budget and the server cap.
  if (request.deadline_ms > 0) {
    limits.timeout = std::chrono::milliseconds(request.deadline_ms);
  }
  if (caps.timeout.has_value() &&
      (!limits.timeout.has_value() || *caps.timeout < *limits.timeout)) {
    limits.timeout = caps.timeout;
  }
  if (request.max_compounds > 0) {
    limits.max_compounds = request.max_compounds;
  }
  if (caps.max_compounds.has_value() &&
      (!limits.max_compounds.has_value() ||
       *caps.max_compounds < *limits.max_compounds)) {
    limits.max_compounds = caps.max_compounds;
  }
  if (request.max_memory_bytes > 0) {
    limits.max_memory_bytes = request.max_memory_bytes;
  }
  if (caps.max_memory_bytes.has_value() &&
      (!limits.max_memory_bytes.has_value() ||
       *caps.max_memory_bytes < *limits.max_memory_bytes)) {
    limits.max_memory_bytes = caps.max_memory_bytes;
  }
  return limits;
}

}  // namespace server
}  // namespace crsat
