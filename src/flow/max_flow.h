#ifndef CRSAT_FLOW_MAX_FLOW_H_
#define CRSAT_FLOW_MAX_FLOW_H_

#include <cstdint>
#include <vector>

#include "src/base/resource_guard.h"
#include "src/base/result.h"

namespace crsat {

/// Exact integer maximum flow (Dinic's algorithm).
///
/// Used by the model builder to realize relationship extensions as *sets*
/// of distinct tuples under per-individual degree quotas: picking which
/// individual fills which tuple slot is a bipartite degree-constrained
/// assignment, which is a unit-capacity-style flow problem. The graph is
/// small (nodes are tuples and individuals of one compound relationship),
/// so a straightforward adjacency-list Dinic suffices.
class MaxFlowGraph {
 public:
  /// Creates a graph with `num_nodes` nodes (ids `0 .. num_nodes-1`).
  explicit MaxFlowGraph(int num_nodes);

  /// Adds a directed edge with the given capacity and returns its id, which
  /// can be used with `EdgeFlow` after solving. Capacity must be >= 0.
  int AddEdge(int from, int to, std::int64_t capacity);

  /// Computes the maximum flow from `source` to `sink`. `guard`, when
  /// non-null, is polled once per Dinic phase (level-graph rebuild); a trip
  /// aborts the solve with the guard's status. Dinic runs O(V^2) phases, so
  /// per-phase polling bounds unguarded work by one augmentation sweep.
  Result<std::int64_t> Solve(int source, int sink,
                             ResourceGuard* guard = nullptr);

  /// Flow routed through edge `edge_id` by the last `Solve` call.
  std::int64_t EdgeFlow(int edge_id) const;

  int num_nodes() const { return static_cast<int>(adjacency_.size()); }

 private:
  struct Edge {
    int to;
    std::int64_t capacity;  // Residual capacity.
    int reverse;            // Index of the reverse edge in adjacency_[to].
    std::int64_t original_capacity;
  };

  bool BuildLevels(int source, int sink);
  std::int64_t SendFlow(int node, int sink, std::int64_t limit);

  std::vector<std::vector<Edge>> adjacency_;
  // (node, index-in-adjacency) per public edge id, in insertion order.
  std::vector<std::pair<int, int>> edge_handles_;
  std::vector<int> levels_;
  std::vector<size_t> next_edge_;
};

}  // namespace crsat

#endif  // CRSAT_FLOW_MAX_FLOW_H_
