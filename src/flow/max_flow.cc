#include "src/flow/max_flow.h"

#include <algorithm>
#include <deque>
#include <limits>

namespace crsat {

MaxFlowGraph::MaxFlowGraph(int num_nodes) : adjacency_(num_nodes) {}

int MaxFlowGraph::AddEdge(int from, int to, std::int64_t capacity) {
  Edge forward{to, capacity, static_cast<int>(adjacency_[to].size()),
               capacity};
  Edge backward{from, 0, static_cast<int>(adjacency_[from].size()), 0};
  adjacency_[from].push_back(forward);
  adjacency_[to].push_back(backward);
  edge_handles_.emplace_back(from, static_cast<int>(adjacency_[from].size()) - 1);
  return static_cast<int>(edge_handles_.size()) - 1;
}

bool MaxFlowGraph::BuildLevels(int source, int sink) {
  levels_.assign(adjacency_.size(), -1);
  std::deque<int> queue;
  levels_[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    int node = queue.front();
    queue.pop_front();
    for (const Edge& edge : adjacency_[node]) {
      if (edge.capacity > 0 && levels_[edge.to] < 0) {
        levels_[edge.to] = levels_[node] + 1;
        queue.push_back(edge.to);
      }
    }
  }
  return levels_[sink] >= 0;
}

std::int64_t MaxFlowGraph::SendFlow(int node, int sink, std::int64_t limit) {
  if (node == sink) {
    return limit;
  }
  for (size_t& i = next_edge_[node]; i < adjacency_[node].size(); ++i) {
    Edge& edge = adjacency_[node][i];
    if (edge.capacity <= 0 || levels_[edge.to] != levels_[node] + 1) {
      continue;
    }
    std::int64_t pushed =
        SendFlow(edge.to, sink, std::min(limit, edge.capacity));
    if (pushed > 0) {
      edge.capacity -= pushed;
      adjacency_[edge.to][edge.reverse].capacity += pushed;
      return pushed;
    }
  }
  return 0;
}

Result<std::int64_t> MaxFlowGraph::Solve(int source, int sink,
                                         ResourceGuard* guard) {
  if (source < 0 || source >= num_nodes() || sink < 0 || sink >= num_nodes()) {
    return InvalidArgumentError("MaxFlowGraph::Solve: node id out of range");
  }
  if (source == sink) {
    return InvalidArgumentError("MaxFlowGraph::Solve: source equals sink");
  }
  std::int64_t total = 0;
  while (BuildLevels(source, sink)) {
    if (guard != nullptr) {
      CRSAT_RETURN_IF_ERROR(guard->Check("flow/phase"));
    }
    next_edge_.assign(adjacency_.size(), 0);
    while (std::int64_t pushed = SendFlow(
               source, sink, std::numeric_limits<std::int64_t>::max())) {
      total += pushed;
    }
  }
  return total;
}

std::int64_t MaxFlowGraph::EdgeFlow(int edge_id) const {
  const auto& [node, index] = edge_handles_[edge_id];
  const Edge& edge = adjacency_[node][index];
  return edge.original_capacity - edge.capacity;
}

}  // namespace crsat
