#include "src/math/bigint.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <limits>

namespace crsat {

namespace {

constexpr std::uint64_t kLimbBase = std::uint64_t{1} << 32;
constexpr std::int64_t kInt64Min = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kInt64Max = std::numeric_limits<std::int64_t>::max();

[[noreturn]] void DieDivisionByZero() {
  std::cerr << "crsat: BigInt division by zero" << std::endl;
  std::abort();
}

bool FitsInt64(__int128 value) {
  return value >= static_cast<__int128>(kInt64Min) &&
         value <= static_cast<__int128>(kInt64Max);
}

}  // namespace

BigInt BigInt::FromMagnitude(int sign, std::vector<std::uint32_t> limbs) {
  TrimZeros(&limbs);
  if (limbs.empty()) {
    return BigInt(0);
  }
  // Collapse to the small form when the magnitude fits in int64.
  if (limbs.size() <= 2) {
    std::uint64_t magnitude = limbs[0];
    if (limbs.size() == 2) {
      magnitude |= static_cast<std::uint64_t>(limbs[1]) << 32;
    }
    if (sign > 0 && magnitude <= static_cast<std::uint64_t>(kInt64Max)) {
      return BigInt(static_cast<std::int64_t>(magnitude));
    }
    if (sign < 0 && magnitude <= static_cast<std::uint64_t>(kInt64Max) + 1) {
      return BigInt(static_cast<std::int64_t>(~magnitude + 1));
    }
  }
  BigInt result;
  result.is_small_ = false;
  result.small_ = 0;
  result.sign_ = sign;
  result.limbs_ = std::move(limbs);
  return result;
}

BigInt BigInt::FromInt128(__int128 value) {
  if (FitsInt64(value)) {
    return BigInt(static_cast<std::int64_t>(value));
  }
  int sign = value < 0 ? -1 : 1;
  unsigned __int128 magnitude =
      value < 0 ? -static_cast<unsigned __int128>(value)
                : static_cast<unsigned __int128>(value);
  std::vector<std::uint32_t> limbs;
  while (magnitude != 0) {
    limbs.push_back(static_cast<std::uint32_t>(magnitude & 0xffffffffu));
    magnitude >>= 32;
  }
  return FromMagnitude(sign, std::move(limbs));
}

std::vector<std::uint32_t> BigInt::MagnitudeLimbs() const {
  if (!is_small_) {
    return limbs_;
  }
  std::vector<std::uint32_t> limbs;
  std::uint64_t magnitude =
      small_ >= 0 ? static_cast<std::uint64_t>(small_)
                  : ~static_cast<std::uint64_t>(small_) + 1;
  while (magnitude != 0) {
    limbs.push_back(static_cast<std::uint32_t>(magnitude & 0xffffffffu));
    magnitude >>= 32;
  }
  return limbs;
}

Result<BigInt> BigInt::FromString(std::string_view text) {
  if (text.empty()) {
    return ParseError("empty string is not a valid integer");
  }
  size_t pos = 0;
  int sign = 1;
  if (text[0] == '+' || text[0] == '-') {
    sign = text[0] == '-' ? -1 : 1;
    pos = 1;
  }
  if (pos == text.size()) {
    return ParseError("integer literal has no digits: '" + std::string(text) +
                      "'");
  }
  BigInt result;
  const BigInt ten(10);
  for (; pos < text.size(); ++pos) {
    char c = text[pos];
    if (c < '0' || c > '9') {
      return ParseError("invalid character in integer literal: '" +
                        std::string(text) + "'");
    }
    result = result * ten + BigInt(c - '0');
  }
  if (sign < 0) {
    result = -result;
  }
  return result;
}

BigInt BigInt::Abs() const {
  if (is_small_) {
    if (small_ == kInt64Min) {
      // |INT64_MIN| does not fit; go through the big path.
      return FromMagnitude(1, MagnitudeLimbs());
    }
    return BigInt(small_ < 0 ? -small_ : small_);
  }
  return FromMagnitude(1, limbs_);
}

BigInt BigInt::operator-() const {
  if (is_small_) {
    if (small_ == kInt64Min) {
      return FromMagnitude(1, MagnitudeLimbs());
    }
    return BigInt(-small_);
  }
  // Through FromMagnitude so values that now fit in int64 (only
  // -(2^63) == INT64_MIN) collapse back to the canonical small form.
  return FromMagnitude(-sign_, limbs_);
}

int BigInt::CompareMagnitude(const std::vector<std::uint32_t>& a,
                             const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) {
    return a.size() < b.size() ? -1 : 1;
  }
  for (size_t i = a.size(); i > 0; --i) {
    if (a[i - 1] != b[i - 1]) {
      return a[i - 1] < b[i - 1] ? -1 : 1;
    }
  }
  return 0;
}

std::vector<std::uint32_t> BigInt::AddMagnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  const std::vector<std::uint32_t>& longer = a.size() >= b.size() ? a : b;
  const std::vector<std::uint32_t>& shorter = a.size() >= b.size() ? b : a;
  std::vector<std::uint32_t> result;
  result.reserve(longer.size() + 1);
  std::uint64_t carry = 0;
  for (size_t i = 0; i < longer.size(); ++i) {
    std::uint64_t sum = carry + longer[i];
    if (i < shorter.size()) {
      sum += shorter[i];
    }
    result.push_back(static_cast<std::uint32_t>(sum & 0xffffffffu));
    carry = sum >> 32;
  }
  if (carry != 0) {
    result.push_back(static_cast<std::uint32_t>(carry));
  }
  return result;
}

std::vector<std::uint32_t> BigInt::SubMagnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> result;
  result.reserve(a.size());
  std::int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow;
    if (i < b.size()) {
      diff -= static_cast<std::int64_t>(b[i]);
    }
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    result.push_back(static_cast<std::uint32_t>(diff));
  }
  TrimZeros(&result);
  return result;
}

std::vector<std::uint32_t> BigInt::MulMagnitude(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  if (a.empty() || b.empty()) {
    return {};
  }
  std::vector<std::uint32_t> result(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    std::uint64_t ai = a[i];
    for (size_t j = 0; j < b.size(); ++j) {
      std::uint64_t cur = result[i + j] + ai * b[j] + carry;
      result[i + j] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    size_t k = i + b.size();
    while (carry != 0) {
      std::uint64_t cur = result[k] + carry;
      result[k] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  TrimZeros(&result);
  return result;
}

void BigInt::DivModMagnitude(const std::vector<std::uint32_t>& a,
                             const std::vector<std::uint32_t>& b,
                             std::vector<std::uint32_t>* quotient,
                             std::vector<std::uint32_t>* remainder) {
  quotient->clear();
  remainder->clear();
  if (b.empty()) {
    DieDivisionByZero();
  }
  if (CompareMagnitude(a, b) < 0) {
    *remainder = a;
    return;
  }
  if (b.size() == 1) {
    // Fast path: single-limb divisor.
    std::uint64_t divisor = b[0];
    quotient->assign(a.size(), 0);
    std::uint64_t rem = 0;
    for (size_t i = a.size(); i > 0; --i) {
      std::uint64_t cur = (rem << 32) | a[i - 1];
      (*quotient)[i - 1] = static_cast<std::uint32_t>(cur / divisor);
      rem = cur % divisor;
    }
    TrimZeros(quotient);
    if (rem != 0) {
      remainder->push_back(static_cast<std::uint32_t>(rem));
    }
    return;
  }

  // Knuth TAOCP vol. 2, algorithm D. Normalize so the top limb of the
  // divisor has its high bit set.
  int shift = 0;
  {
    std::uint32_t top = b.back();
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  auto shift_left = [shift](const std::vector<std::uint32_t>& v,
                            bool extra_limb) {
    std::vector<std::uint32_t> out(v.size() + (extra_limb ? 1 : 0), 0);
    for (size_t i = 0; i < v.size(); ++i) {
      out[i] |= shift == 0 ? v[i] : (v[i] << shift);
      if (shift != 0 && i + 1 < out.size()) {
        out[i + 1] = static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(v[i]) >> (32 - shift)));
      }
    }
    return out;
  };
  std::vector<std::uint32_t> u = shift_left(a, /*extra_limb=*/true);
  std::vector<std::uint32_t> v = shift_left(b, /*extra_limb=*/false);
  TrimZeros(&v);
  const size_t n = v.size();
  const size_t m = u.size() - n;

  quotient->assign(m, 0);
  const std::uint64_t v_high = v[n - 1];
  const std::uint64_t v_next = v[n - 2];
  for (size_t j = m; j > 0; --j) {
    const size_t jj = j - 1;
    // Estimate the quotient digit from the top limbs.
    std::uint64_t numerator =
        (static_cast<std::uint64_t>(u[jj + n]) << 32) | u[jj + n - 1];
    std::uint64_t qhat = numerator / v_high;
    std::uint64_t rhat = numerator % v_high;
    if (qhat >= kLimbBase) {
      qhat = kLimbBase - 1;
      rhat = numerator - qhat * v_high;
    }
    while (rhat < kLimbBase &&
           qhat * v_next > ((rhat << 32) | u[jj + n - 2])) {
      --qhat;
      rhat += v_high;
    }
    // Multiply-subtract qhat * v from u[jj .. jj+n].
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      std::uint64_t product = qhat * v[i] + carry;
      carry = product >> 32;
      std::int64_t diff = static_cast<std::int64_t>(u[jj + i]) -
                          static_cast<std::int64_t>(product & 0xffffffffu) -
                          borrow;
      if (diff < 0) {
        diff += static_cast<std::int64_t>(kLimbBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[jj + i] = static_cast<std::uint32_t>(diff);
    }
    std::int64_t top_diff = static_cast<std::int64_t>(u[jj + n]) -
                            static_cast<std::int64_t>(carry) - borrow;
    if (top_diff < 0) {
      // qhat was one too large; add v back.
      top_diff += static_cast<std::int64_t>(kLimbBase);
      --qhat;
      std::uint64_t add_carry = 0;
      for (size_t i = 0; i < n; ++i) {
        std::uint64_t sum =
            static_cast<std::uint64_t>(u[jj + i]) + v[i] + add_carry;
        u[jj + i] = static_cast<std::uint32_t>(sum & 0xffffffffu);
        add_carry = sum >> 32;
      }
      top_diff += static_cast<std::int64_t>(add_carry);
      top_diff &= 0xffffffff;
    }
    u[jj + n] = static_cast<std::uint32_t>(top_diff);
    (*quotient)[jj] = static_cast<std::uint32_t>(qhat);
  }
  TrimZeros(quotient);

  // Denormalize the remainder (bottom n limbs of u, shifted back).
  remainder->assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    std::uint64_t limb = u[i] >> shift;
    if (shift != 0 && i + 1 < u.size()) {
      limb |= static_cast<std::uint64_t>(u[i + 1]) << (32 - shift);
    }
    (*remainder)[i] = static_cast<std::uint32_t>(limb & 0xffffffffu);
  }
  TrimZeros(remainder);
}

void BigInt::TrimZeros(std::vector<std::uint32_t>* limbs) {
  while (!limbs->empty() && limbs->back() == 0) {
    limbs->pop_back();
  }
}

BigInt BigInt::AddSlow(const BigInt& other) const {
  int sign_a = sign();
  int sign_b = other.sign();
  if (sign_a == 0) {
    return other;
  }
  if (sign_b == 0) {
    return *this;
  }
  std::vector<std::uint32_t> mag_a = MagnitudeLimbs();
  std::vector<std::uint32_t> mag_b = other.MagnitudeLimbs();
  if (sign_a == sign_b) {
    return FromMagnitude(sign_a, AddMagnitude(mag_a, mag_b));
  }
  int cmp = CompareMagnitude(mag_a, mag_b);
  if (cmp == 0) {
    return BigInt(0);
  }
  if (cmp > 0) {
    return FromMagnitude(sign_a, SubMagnitude(mag_a, mag_b));
  }
  return FromMagnitude(sign_b, SubMagnitude(mag_b, mag_a));
}

BigInt BigInt::MulSlow(const BigInt& other) const {
  int result_sign = sign() * other.sign();
  if (result_sign == 0) {
    return BigInt(0);
  }
  return FromMagnitude(result_sign,
                       MulMagnitude(MagnitudeLimbs(), other.MagnitudeLimbs()));
}

BigInt BigInt::operator+(const BigInt& other) const {
  if (is_small_ && other.is_small_) {
    return FromInt128(static_cast<__int128>(small_) + other.small_);
  }
  return AddSlow(other);
}

BigInt BigInt::operator-(const BigInt& other) const {
  if (is_small_ && other.is_small_) {
    return FromInt128(static_cast<__int128>(small_) - other.small_);
  }
  return AddSlow(-other);
}

BigInt BigInt::operator*(const BigInt& other) const {
  if (is_small_ && other.is_small_) {
    return FromInt128(static_cast<__int128>(small_) * other.small_);
  }
  return MulSlow(other);
}

BigInt BigInt::operator/(const BigInt& other) const {
  if (other.IsZero()) {
    DieDivisionByZero();
  }
  if (is_small_ && other.is_small_) {
    if (small_ == kInt64Min && other.small_ == -1) {
      return FromInt128(-static_cast<__int128>(kInt64Min));
    }
    return BigInt(small_ / other.small_);
  }
  Result<DivModResult> result = DivMod(other);
  return std::move(result).value().quotient;
}

BigInt BigInt::operator%(const BigInt& other) const {
  if (other.IsZero()) {
    DieDivisionByZero();
  }
  if (is_small_ && other.is_small_) {
    if (small_ == kInt64Min && other.small_ == -1) {
      return BigInt(0);
    }
    return BigInt(small_ % other.small_);
  }
  Result<DivModResult> result = DivMod(other);
  return std::move(result).value().remainder;
}

BigInt& BigInt::operator+=(const BigInt& other) {
  *this = *this + other;
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& other) {
  *this = *this - other;
  return *this;
}

BigInt& BigInt::operator*=(const BigInt& other) {
  *this = *this * other;
  return *this;
}

BigInt& BigInt::operator/=(const BigInt& other) {
  *this = *this / other;
  return *this;
}

BigInt& BigInt::operator%=(const BigInt& other) {
  *this = *this % other;
  return *this;
}

Result<BigInt::DivModResult> BigInt::DivMod(const BigInt& divisor) const {
  if (divisor.IsZero()) {
    return InvalidArgumentError("BigInt::DivMod: division by zero");
  }
  DivModResult result;
  if (is_small_ && divisor.is_small_) {
    if (small_ == kInt64Min && divisor.small_ == -1) {
      result.quotient = FromInt128(-static_cast<__int128>(kInt64Min));
      result.remainder = BigInt(0);
    } else {
      result.quotient = BigInt(small_ / divisor.small_);
      result.remainder = BigInt(small_ % divisor.small_);
    }
    return result;
  }
  std::vector<std::uint32_t> quotient_limbs;
  std::vector<std::uint32_t> remainder_limbs;
  DivModMagnitude(MagnitudeLimbs(), divisor.MagnitudeLimbs(),
                  &quotient_limbs, &remainder_limbs);
  int quotient_sign = sign() * divisor.sign();
  result.quotient =
      FromMagnitude(quotient_sign == 0 ? 1 : quotient_sign,
                    std::move(quotient_limbs));
  result.remainder = FromMagnitude(sign() == 0 ? 1 : sign(),
                                   std::move(remainder_limbs));
  return result;
}

bool BigInt::operator==(const BigInt& other) const {
  if (is_small_ && other.is_small_) {
    return small_ == other.small_;
  }
  if (is_small_ != other.is_small_) {
    // Canonical representation: big form never fits in int64.
    return false;
  }
  return sign_ == other.sign_ && limbs_ == other.limbs_;
}

bool BigInt::operator<(const BigInt& other) const {
  if (is_small_ && other.is_small_) {
    return small_ < other.small_;
  }
  int sign_a = sign();
  int sign_b = other.sign();
  if (sign_a != sign_b) {
    return sign_a < sign_b;
  }
  // Same sign; at least one is big. A small value always has smaller
  // magnitude than a big one (canonical forms).
  if (is_small_ != other.is_small_) {
    bool this_smaller_magnitude = is_small_;
    return sign_a >= 0 ? this_smaller_magnitude : !this_smaller_magnitude;
  }
  int cmp = CompareMagnitude(limbs_, other.limbs_);
  return sign_a >= 0 ? cmp < 0 : cmp > 0;
}

std::string BigInt::ToString() const {
  if (is_small_) {
    return std::to_string(small_);
  }
  // Convert by repeated division by 10^9 (largest power of 10 in a limb).
  constexpr std::uint32_t kChunk = 1000000000u;
  std::vector<std::uint32_t> magnitude = limbs_;
  std::vector<std::uint32_t> chunks;
  while (!magnitude.empty()) {
    std::uint64_t rem = 0;
    for (size_t i = magnitude.size(); i > 0; --i) {
      std::uint64_t cur = (rem << 32) | magnitude[i - 1];
      magnitude[i - 1] = static_cast<std::uint32_t>(cur / kChunk);
      rem = cur % kChunk;
    }
    chunks.push_back(static_cast<std::uint32_t>(rem));
    TrimZeros(&magnitude);
  }
  std::string text = sign_ < 0 ? "-" : "";
  text += std::to_string(chunks.back());
  for (size_t i = chunks.size() - 1; i > 0; --i) {
    std::string part = std::to_string(chunks[i - 1]);
    text.append(9 - part.size(), '0');
    text += part;
  }
  return text;
}

Result<std::int64_t> BigInt::ToInt64() const {
  if (is_small_) {
    return small_;
  }
  // Canonical: big representation never fits.
  return InvalidArgumentError("BigInt does not fit in int64: " + ToString());
}

size_t BigInt::BitLength() const {
  if (is_small_) {
    std::uint64_t magnitude =
        small_ >= 0 ? static_cast<std::uint64_t>(small_)
                    : ~static_cast<std::uint64_t>(small_) + 1;
    size_t bits = 0;
    while (magnitude != 0) {
      ++bits;
      magnitude >>= 1;
    }
    return bits;
  }
  size_t bits = (limbs_.size() - 1) * 32;
  std::uint32_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.ToString();
}

BigInt Gcd(const BigInt& a, const BigInt& b) {
  if (a.is_small_ && b.is_small_) {
    // Euclid on unsigned 64-bit magnitudes; no allocation at all. This is
    // the hottest function in Rational normalization.
    std::uint64_t x = a.small_ >= 0 ? static_cast<std::uint64_t>(a.small_)
                                    : ~static_cast<std::uint64_t>(a.small_) + 1;
    std::uint64_t y = b.small_ >= 0 ? static_cast<std::uint64_t>(b.small_)
                                    : ~static_cast<std::uint64_t>(b.small_) + 1;
    while (y != 0) {
      std::uint64_t r = x % y;
      x = y;
      y = r;
    }
    if (x <= static_cast<std::uint64_t>(
                 std::numeric_limits<std::int64_t>::max())) {
      return BigInt(static_cast<std::int64_t>(x));
    }
    // Only reachable for gcd(INT64_MIN, 0) or gcd(INT64_MIN, INT64_MIN).
    return BigInt(std::numeric_limits<std::int64_t>::min()).Abs();
  }
  BigInt x = a.Abs();
  BigInt y = b.Abs();
  while (!y.IsZero()) {
    BigInt r = x % y;
    x = y;
    y = r;
  }
  return x;
}

BigInt Lcm(const BigInt& a, const BigInt& b) {
  if (a.IsZero() || b.IsZero()) {
    return BigInt();
  }
  return (a.Abs() / Gcd(a, b)) * b.Abs();
}

}  // namespace crsat
