#ifndef CRSAT_MATH_RATIONAL_H_
#define CRSAT_MATH_RATIONAL_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

#include "src/base/result.h"
#include "src/math/bigint.h"

namespace crsat {

/// Exact rational number backed by `BigInt`.
///
/// Invariants: the denominator is strictly positive and the fraction is
/// fully reduced (gcd(|num|, den) == 1, and 0 is stored as 0/1). All
/// arithmetic is exact; there is no rounding anywhere in crsat's reasoning
/// pipeline.
class Rational {
 public:
  /// Constructs zero.
  Rational() : numerator_(0), denominator_(1) {}

  /// Constructs the integer `value`.
  Rational(std::int64_t value)  // NOLINT(runtime/explicit): deliberate.
      : numerator_(value), denominator_(1) {}

  /// Constructs the integer `value`.
  Rational(BigInt value)  // NOLINT(runtime/explicit): deliberate.
      : numerator_(std::move(value)), denominator_(1) {}

  /// Constructs `numerator / denominator`, normalizing sign and gcd.
  /// Aborts if `denominator` is zero (programming error).
  Rational(BigInt numerator, BigInt denominator);

  /// Convenience fixed-width constructor.
  Rational(std::int64_t numerator, std::int64_t denominator)
      : Rational(BigInt(numerator), BigInt(denominator)) {}

  /// Parses "a", "-a", or "a/b" in decimal.
  static Result<Rational> FromString(std::string_view text);

  const BigInt& numerator() const { return numerator_; }
  const BigInt& denominator() const { return denominator_; }

  bool IsZero() const { return numerator_.IsZero(); }
  bool IsNegative() const { return numerator_.IsNegative(); }
  bool IsPositive() const { return numerator_.IsPositive(); }
  /// True iff the denominator is 1.
  bool IsInteger() const;

  /// -1, 0 or +1.
  int sign() const { return numerator_.sign(); }

  Rational operator-() const;
  Rational operator+(const Rational& other) const;
  Rational operator-(const Rational& other) const;
  Rational operator*(const Rational& other) const;
  /// Aborts on division by zero.
  Rational operator/(const Rational& other) const;

  Rational& operator+=(const Rational& other);
  Rational& operator-=(const Rational& other);
  Rational& operator*=(const Rational& other);
  Rational& operator/=(const Rational& other);

  bool operator==(const Rational& other) const;
  bool operator!=(const Rational& other) const { return !(*this == other); }
  bool operator<(const Rational& other) const;
  bool operator<=(const Rational& other) const { return !(other < *this); }
  bool operator>(const Rational& other) const { return other < *this; }
  bool operator>=(const Rational& other) const { return !(*this < other); }

  /// Largest integer <= this value.
  BigInt Floor() const;

  /// Smallest integer >= this value.
  BigInt Ceil() const;

  /// Renders "a" for integers, "a/b" otherwise.
  std::string ToString() const;

 private:
  void Normalize();

  BigInt numerator_;
  BigInt denominator_;
};

std::ostream& operator<<(std::ostream& os, const Rational& value);

}  // namespace crsat

#endif  // CRSAT_MATH_RATIONAL_H_
