#ifndef CRSAT_MATH_BIGINT_H_
#define CRSAT_MATH_BIGINT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/result.h"

namespace crsat {

/// Arbitrary-precision signed integer.
///
/// Two representations, switched automatically:
///  * **small**: any value that fits in `int64` lives inline (no heap
///    traffic). This is the common case in the exact-LP pipeline, where
///    almost all coefficients stay word-sized, and is what makes the
///    simplex fast.
///  * **big**: sign-magnitude over 32-bit limbs (little-endian), used only
///    when a value outgrows `int64`. Results that shrink back collapse to
///    the small form, so representation is canonical: small whenever
///    possible, and the magnitude never stores trailing zero limbs.
///
/// `BigInt` backs the exact `Rational` arithmetic used by the simplex and
/// Fourier-Motzkin solvers, where pivoting can grow coefficients beyond
/// any fixed-width integer type. Division truncates toward zero (like
/// built-in integer division); `DivMod` returns both quotient and
/// remainder, and the remainder has the sign of the dividend.
class BigInt {
 public:
  /// Constructs zero.
  BigInt() : small_(0), is_small_(true), sign_(0) {}

  /// Constructs from a built-in integer.
  BigInt(std::int64_t value)  // NOLINT(runtime/explicit): deliberate.
      : small_(value), is_small_(true), sign_(0) {}

  BigInt(const BigInt&) = default;
  BigInt& operator=(const BigInt&) = default;
  BigInt(BigInt&&) = default;
  BigInt& operator=(BigInt&&) = default;

  /// Parses an optionally signed decimal string ("-123", "+7", "0").
  /// Rejects empty input, stray characters, and digitless strings.
  static Result<BigInt> FromString(std::string_view text);

  /// -1, 0 or +1.
  int sign() const {
    if (is_small_) {
      return small_ > 0 ? 1 : (small_ < 0 ? -1 : 0);
    }
    return sign_;
  }

  /// True iff the value is zero.
  bool IsZero() const { return is_small_ && small_ == 0; }

  /// True iff the value is strictly negative.
  bool IsNegative() const { return sign() < 0; }

  /// True iff the value is strictly positive.
  bool IsPositive() const { return sign() > 0; }

  /// Absolute value.
  BigInt Abs() const;

  /// Arithmetic negation.
  BigInt operator-() const;

  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;

  /// Quotient truncated toward zero. Aborts on division by zero
  /// (programming error; use `DivMod` + an explicit check if the divisor
  /// is untrusted).
  BigInt operator/(const BigInt& other) const;

  /// Remainder with the sign of the dividend: `a == (a/b)*b + a%b`.
  BigInt operator%(const BigInt& other) const;

  BigInt& operator+=(const BigInt& other);
  BigInt& operator-=(const BigInt& other);
  BigInt& operator*=(const BigInt& other);
  BigInt& operator/=(const BigInt& other);
  BigInt& operator%=(const BigInt& other);

  struct DivModResult;

  /// Computes quotient and remainder in one pass (truncated division).
  /// `divisor` must be nonzero.
  Result<DivModResult> DivMod(const BigInt& divisor) const;

  bool operator==(const BigInt& other) const;
  bool operator!=(const BigInt& other) const { return !(*this == other); }
  bool operator<(const BigInt& other) const;
  bool operator<=(const BigInt& other) const { return !(other < *this); }
  bool operator>(const BigInt& other) const { return other < *this; }
  bool operator>=(const BigInt& other) const { return !(*this < other); }

  /// Decimal rendering, e.g. "-42".
  std::string ToString() const;

  /// Converts to int64 if the value fits, otherwise an error.
  Result<std::int64_t> ToInt64() const;

  /// Number of significant bits of the magnitude (0 for zero).
  size_t BitLength() const;

  /// True iff the value is stored inline (testing/diagnostic hook).
  bool is_small_for_testing() const { return is_small_; }

 private:
  friend BigInt Gcd(const BigInt& a, const BigInt& b);

  // Builds a big-representation value; collapses to small when it fits.
  static BigInt FromMagnitude(int sign, std::vector<std::uint32_t> limbs);
  // Builds from a 128-bit signed product.
  static BigInt FromInt128(__int128 value);

  // Magnitude of this value as limbs (materializes for small values).
  std::vector<std::uint32_t> MagnitudeLimbs() const;

  // Magnitude comparison: -1, 0, +1 as |a| <=> |b|.
  static int CompareMagnitude(const std::vector<std::uint32_t>& a,
                              const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> AddMagnitude(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<std::uint32_t> SubMagnitude(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> MulMagnitude(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  // Knuth algorithm D; b must be nonzero.
  static void DivModMagnitude(const std::vector<std::uint32_t>& a,
                              const std::vector<std::uint32_t>& b,
                              std::vector<std::uint32_t>* quotient,
                              std::vector<std::uint32_t>* remainder);
  static void TrimZeros(std::vector<std::uint32_t>* limbs);

  // Big-path slow implementations (operands in any representation).
  BigInt AddSlow(const BigInt& other) const;
  BigInt MulSlow(const BigInt& other) const;

  // Small representation: value in small_ (is_small_ == true).
  std::int64_t small_;
  bool is_small_;
  // Big representation: sign_ in {-1, +1} and nonempty limbs_.
  int sign_;
  std::vector<std::uint32_t> limbs_;
};

/// Quotient and remainder of a truncated division.
struct BigInt::DivModResult {
  BigInt quotient;
  BigInt remainder;
};

std::ostream& operator<<(std::ostream& os, const BigInt& value);

/// Greatest common divisor of |a| and |b|; Gcd(0, 0) == 0.
BigInt Gcd(const BigInt& a, const BigInt& b);

/// Least common multiple of |a| and |b|; Lcm(x, 0) == 0.
BigInt Lcm(const BigInt& a, const BigInt& b);

}  // namespace crsat

#endif  // CRSAT_MATH_BIGINT_H_
