#include "src/math/rational.h"

#include <cstdlib>
#include <iostream>
#include <utility>

namespace crsat {

Rational::Rational(BigInt numerator, BigInt denominator)
    : numerator_(std::move(numerator)), denominator_(std::move(denominator)) {
  if (denominator_.IsZero()) {
    std::cerr << "crsat: Rational constructed with zero denominator"
              << std::endl;
    std::abort();
  }
  Normalize();
}

Result<Rational> Rational::FromString(std::string_view text) {
  size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    CRSAT_ASSIGN_OR_RETURN(BigInt value, BigInt::FromString(text));
    return Rational(std::move(value));
  }
  CRSAT_ASSIGN_OR_RETURN(BigInt numerator,
                         BigInt::FromString(text.substr(0, slash)));
  CRSAT_ASSIGN_OR_RETURN(BigInt denominator,
                         BigInt::FromString(text.substr(slash + 1)));
  if (denominator.IsZero()) {
    return ParseError("rational literal has zero denominator: '" +
                      std::string(text) + "'");
  }
  return Rational(std::move(numerator), std::move(denominator));
}

void Rational::Normalize() {
  if (denominator_.IsNegative()) {
    numerator_ = -numerator_;
    denominator_ = -denominator_;
  }
  if (numerator_.IsZero()) {
    denominator_ = BigInt(1);
    return;
  }
  BigInt divisor = Gcd(numerator_, denominator_);
  if (divisor != BigInt(1)) {
    numerator_ /= divisor;
    denominator_ /= divisor;
  }
}

bool Rational::IsInteger() const { return denominator_ == BigInt(1); }

Rational Rational::operator-() const {
  Rational result = *this;
  result.numerator_ = -result.numerator_;
  return result;
}

Rational Rational::operator+(const Rational& other) const {
  return Rational(
      numerator_ * other.denominator_ + other.numerator_ * denominator_,
      denominator_ * other.denominator_);
}

Rational Rational::operator-(const Rational& other) const {
  return *this + (-other);
}

Rational Rational::operator*(const Rational& other) const {
  return Rational(numerator_ * other.numerator_,
                  denominator_ * other.denominator_);
}

Rational Rational::operator/(const Rational& other) const {
  if (other.IsZero()) {
    std::cerr << "crsat: Rational division by zero" << std::endl;
    std::abort();
  }
  return Rational(numerator_ * other.denominator_,
                  denominator_ * other.numerator_);
}

Rational& Rational::operator+=(const Rational& other) {
  *this = *this + other;
  return *this;
}

Rational& Rational::operator-=(const Rational& other) {
  *this = *this - other;
  return *this;
}

Rational& Rational::operator*=(const Rational& other) {
  *this = *this * other;
  return *this;
}

Rational& Rational::operator/=(const Rational& other) {
  *this = *this / other;
  return *this;
}

bool Rational::operator==(const Rational& other) const {
  return numerator_ == other.numerator_ && denominator_ == other.denominator_;
}

bool Rational::operator<(const Rational& other) const {
  return numerator_ * other.denominator_ < other.numerator_ * denominator_;
}

BigInt Rational::Floor() const {
  Result<BigInt::DivModResult> result = numerator_.DivMod(denominator_);
  BigInt::DivModResult divmod = std::move(result).value();
  if (divmod.remainder.IsNegative()) {
    return divmod.quotient - BigInt(1);
  }
  return divmod.quotient;
}

BigInt Rational::Ceil() const {
  Result<BigInt::DivModResult> result = numerator_.DivMod(denominator_);
  BigInt::DivModResult divmod = std::move(result).value();
  if (divmod.remainder.IsPositive()) {
    return divmod.quotient + BigInt(1);
  }
  return divmod.quotient;
}

std::string Rational::ToString() const {
  if (IsInteger()) {
    return numerator_.ToString();
  }
  return numerator_.ToString() + "/" + denominator_.ToString();
}

std::ostream& operator<<(std::ostream& os, const Rational& value) {
  return os << value.ToString();
}

}  // namespace crsat
