#include "src/expansion/expansion.h"

#include <algorithm>
#include <new>
#include <utility>

#include "src/base/degradation.h"
#include "src/base/failpoint.h"
#include "src/base/incremental.h"

namespace crsat {

void ExpansionStats::Reset() {
  derived_disjoint_pairs.store(0, std::memory_order_relaxed);
  pruned_subtrees.store(0, std::memory_order_relaxed);
}

ExpansionStats& GetExpansionStats() {
  static ExpansionStats stats;
  return stats;
}

namespace {

// Enumerates consistent compound classes by deciding class membership one
// class at a time, propagating ISA closure in both directions and pruning
// on disjointness conflicts.
class ConsistentClassEnumerator {
 public:
  ConsistentClassEnumerator(const Schema& schema,
                            const ExpansionOptions& options)
      : schema_(schema), options_(options), n_(schema.num_classes()) {
    super_mask_.assign(n_, 0);
    sub_mask_.assign(n_, 0);
    for (int c = 0; c < n_; ++c) {
      for (int d = 0; d < n_; ++d) {
        if (schema.IsSubclassOf(ClassId(c), ClassId(d))) {
          super_mask_[c] |= std::uint64_t{1} << d;
          sub_mask_[d] |= std::uint64_t{1} << c;
        }
      }
    }
    if (options.use_extensions) {
      for (const DisjointnessConstraint& group :
           schema.disjointness_constraints()) {
        std::uint64_t mask = 0;
        for (ClassId cls : group.classes) {
          mask |= std::uint64_t{1} << cls.value;
        }
        disjoint_masks_.push_back(mask);
      }
    }
    if (options.prune_structurally_empty && IncrementalReasoningEnabled()) {
      DeriveEmptinessFacts();
    }
  }

  Result<std::vector<CompoundClass>> Enumerate() {
    result_.clear();
    CRSAT_RETURN_IF_ERROR(Recurse(0, 0, 0));
    std::sort(result_.begin(), result_.end());
    return result_;
  }

 private:
  Status Recurse(int next, std::uint64_t included, std::uint64_t excluded) {
    if (options_.guard != nullptr) {
      CRSAT_RETURN_IF_ERROR(options_.guard->Check("expansion/classes"));
    }
    while (next < n_ &&
           ((included | excluded) & (std::uint64_t{1} << next)) != 0) {
      ++next;
    }
    if (next == n_) {
      if (included == 0) {
        return OkStatus();
      }
      CompoundClass compound(included);
      if (options_.use_extensions) {
        // Disjointness was pruned during the search; coverings are not
        // monotone, so they are checked at the leaves.
        for (const CoveringConstraint& constraint :
             schema_.covering_constraints()) {
          if (!compound.Contains(constraint.covered)) {
            continue;
          }
          bool covered = false;
          for (ClassId coverer : constraint.coverers) {
            if (compound.Contains(coverer)) {
              covered = true;
              break;
            }
          }
          if (!covered) {
            return OkStatus();
          }
        }
      }
      if (result_.size() >= options_.max_consistent_classes) {
        return UnavailableError(
            "expansion exceeds max_consistent_classes = " +
            std::to_string(options_.max_consistent_classes));
      }
      if (options_.guard != nullptr) {
        options_.guard->AddCompounds(1);
        options_.guard->AddMemory(sizeof(CompoundClass));
      }
      result_.push_back(compound);
      return OkStatus();
    }

    // Branch 1: include `next`, along with all its superclasses.
    std::uint64_t with_supers = included | super_mask_[next];
    if ((with_supers & excluded) == 0 && !ViolatesDisjointness(with_supers)) {
      if (ViolatesDerivedEmptiness(with_supers)) {
        // Every compound under this branch is provably empty in every
        // model (Lemma 3.2 applied to derived facts) — cut the subtree
        // before any of its unknowns reach the disequation system.
        GetExpansionStats().pruned_subtrees.fetch_add(
            1, std::memory_order_relaxed);
      } else {
        CRSAT_RETURN_IF_ERROR(Recurse(next + 1, with_supers, excluded));
      }
    }
    // Branch 2: exclude `next`, along with all its subclasses.
    std::uint64_t with_subs = excluded | sub_mask_[next];
    if ((with_subs & included) == 0) {
      CRSAT_RETURN_IF_ERROR(Recurse(next + 1, included, with_subs));
    }
    return OkStatus();
  }

  bool ViolatesDisjointness(std::uint64_t included) const {
    for (std::uint64_t group : disjoint_masks_) {
      if (__builtin_popcountll(included & group) > 1) {
        return true;
      }
    }
    return false;
  }

  // Derives, from cardinality declarations alone, (a) classes empty in
  // every model — an empty declared range `minc(a) > maxc(a)`, or a
  // caller-supplied `known_empty_classes` fact — and (b) disjoint pairs
  // `{a, b}`: distinct subclasses of one role's primary class with
  // `minc(a) > maxc(b)` declared, so any compound containing both has an
  // empty lifted range. This is the paper's Section 5 observation
  // ("Talk ∦ Speaker") turned into an enumeration-time filter; pairwise
  // derivation is complete for declared-range emptiness (see
  // `ExpansionOptions::prune_structurally_empty`).
  void DeriveEmptinessFacts() {
    if (options_.known_empty_classes != nullptr) {
      const std::vector<bool>& known = *options_.known_empty_classes;
      for (int c = 0; c < n_ && c < static_cast<int>(known.size()); ++c) {
        if (known[c]) {
          derived_empty_mask_ |= std::uint64_t{1} << c;
        }
      }
    }
    ExpansionStats& stats = GetExpansionStats();
    for (RelationshipId rel : schema_.AllRelationships()) {
      for (RoleId role : schema_.RolesOf(rel)) {
        ClassId primary = schema_.PrimaryClass(role);
        for (int a = 0; a < n_; ++a) {
          if (!schema_.IsSubclassOf(ClassId(a), primary)) {
            continue;
          }
          Cardinality decl_a = schema_.GetCardinality(ClassId(a), rel, role);
          if (decl_a.min == 0) {
            continue;
          }
          for (int b = 0; b < n_; ++b) {
            if (!schema_.IsSubclassOf(ClassId(b), primary)) {
              continue;
            }
            Cardinality decl_b =
                schema_.GetCardinality(ClassId(b), rel, role);
            if (!decl_b.max.has_value() || *decl_b.max >= decl_a.min) {
              continue;
            }
            if (a == b) {
              derived_empty_mask_ |= std::uint64_t{1} << a;
            } else {
              const std::uint64_t pair =
                  (std::uint64_t{1} << a) | (std::uint64_t{1} << b);
              if (std::find(derived_pair_masks_.begin(),
                            derived_pair_masks_.end(),
                            pair) == derived_pair_masks_.end()) {
                derived_pair_masks_.push_back(pair);
                stats.derived_disjoint_pairs.fetch_add(
                    1, std::memory_order_relaxed);
              }
            }
          }
        }
      }
    }
  }

  bool ViolatesDerivedEmptiness(std::uint64_t included) const {
    if ((included & derived_empty_mask_) != 0) {
      return true;
    }
    for (std::uint64_t pair : derived_pair_masks_) {
      if ((included & pair) == pair) {
        return true;
      }
    }
    return false;
  }

  const Schema& schema_;
  const ExpansionOptions& options_;
  int n_;
  std::vector<std::uint64_t> super_mask_;
  std::vector<std::uint64_t> sub_mask_;
  std::vector<std::uint64_t> disjoint_masks_;
  // Derived facts (see DeriveEmptinessFacts); empty unless pruning is on.
  std::uint64_t derived_empty_mask_ = 0;
  std::vector<std::uint64_t> derived_pair_masks_;
  std::vector<CompoundClass> result_;
};

}  // namespace

Result<Expansion> Expansion::BuildImpl(const Schema& schema,
                                       const ExpansionOptions& options) {
  if (schema.num_classes() > CompoundClass::kMaxClasses) {
    return InvalidArgumentError(
        "expansion supports at most " +
        std::to_string(CompoundClass::kMaxClasses) + " classes, got " +
        std::to_string(schema.num_classes()));
  }
  if (options.guard != nullptr) {
    // Unconditional clock read at the layer boundary, so an
    // already-expired deadline trips before any enumeration starts.
    CRSAT_RETURN_IF_ERROR(options.guard->CheckNow("expansion/build"));
  }
  Expansion expansion;
  expansion.schema_ = &schema;
  expansion.options_ = options;

  ConsistentClassEnumerator enumerator(schema, options);
  CRSAT_ASSIGN_OR_RETURN(expansion.classes_, enumerator.Enumerate());
  for (size_t i = 0; i < expansion.classes_.size(); ++i) {
    expansion.class_index_by_mask_[expansion.classes_[i].mask()] =
        static_cast<int>(i);
  }
  expansion.class_indices_containing_.assign(schema.num_classes(), {});
  for (size_t i = 0; i < expansion.classes_.size(); ++i) {
    for (ClassId cls : expansion.classes_[i].Members()) {
      expansion.class_indices_containing_[cls.value].push_back(
          static_cast<int>(i));
    }
  }

  // Consistent compound relationships: the cartesian product, per
  // relationship, of the consistent compound classes containing the
  // primary class of each role.
  expansion.relationship_indices_by_rel_.assign(schema.num_relationships(),
                                                {});
  for (RelationshipId rel : schema.AllRelationships()) {
    const std::vector<RoleId>& roles = schema.RolesOf(rel);
    std::vector<const std::vector<int>*> candidates;
    candidates.reserve(roles.size());
    bool any_empty = false;
    for (RoleId role : roles) {
      const std::vector<int>& list =
          expansion
              .class_indices_containing_[schema.PrimaryClass(role).value];
      if (list.empty()) {
        any_empty = true;
      }
      candidates.push_back(&list);
    }
    if (any_empty) {
      continue;  // No consistent compound relationship for `rel`.
    }
    std::vector<size_t> odometer(roles.size(), 0);
    while (true) {
      if (expansion.relationships_.size() >=
          options.max_compound_relationships) {
        return UnavailableError(
            "expansion exceeds max_compound_relationships = " +
            std::to_string(options.max_compound_relationships));
      }
      if (options.guard != nullptr) {
        CRSAT_RETURN_IF_ERROR(
            options.guard->Check("expansion/relationships"));
        options.guard->AddCompounds(1);
        options.guard->AddMemory(sizeof(CompoundRelationship) +
                                 roles.size() * sizeof(CompoundClass) +
                                 roles.size() * sizeof(int));
      }
      CompoundRelationship compound;
      compound.rel = rel;
      compound.components.reserve(roles.size());
      int index = static_cast<int>(expansion.relationships_.size());
      for (size_t k = 0; k < roles.size(); ++k) {
        int class_index = (*candidates[k])[odometer[k]];
        compound.components.push_back(expansion.classes_[class_index]);
        expansion
            .with_lists_[std::make_tuple(rel.value, static_cast<int>(k),
                                         class_index)]
            .push_back(index);
      }
      expansion.relationships_.push_back(std::move(compound));
      expansion.relationship_indices_by_rel_[rel.value].push_back(index);
      // Advance the odometer.
      size_t k = 0;
      while (k < roles.size()) {
        if (++odometer[k] < candidates[k]->size()) {
          break;
        }
        odometer[k] = 0;
        ++k;
      }
      if (k == roles.size()) {
        break;
      }
    }
  }
  return expansion;
}

Result<Expansion> Expansion::Build(const Schema& schema,
                                   const ExpansionOptions& options) {
  // Allocation-failure boundary (rung 3 of the degradation ladder): the
  // enumeration is worst-case exponential, so a genuine std::bad_alloc —
  // or the injected `alloc/expansion` fault standing in for one — must
  // become an honest kResourceExhausted refusal here, inside the
  // subsystem, before it can escape a ThreadPool worker and terminate
  // the process.
  try {
    if (CRSAT_FAILPOINT("alloc/expansion")) {
      throw std::bad_alloc();
    }
    return BuildImpl(schema, options);
  } catch (const std::bad_alloc&) {
    GetRecoveryStats().bad_alloc_conversions.fetch_add(
        1, std::memory_order_relaxed);
    return ResourceExhaustedError(
        "expansion: allocation failed; returning UNKNOWN instead of "
        "crashing");
  }
}

int Expansion::ClassIndexOf(const CompoundClass& compound) const {
  auto it = class_index_by_mask_.find(compound.mask());
  return it == class_index_by_mask_.end() ? -1 : it->second;
}

const std::vector<int>& Expansion::RelationshipsWith(RelationshipId rel,
                                                     int position,
                                                     int class_index) const {
  auto it =
      with_lists_.find(std::make_tuple(rel.value, position, class_index));
  return it == with_lists_.end() ? empty_list_ : it->second;
}

Cardinality Expansion::LiftedCardinality(
    int class_index, RelationshipId rel, RoleId role,
    const std::vector<CardinalityOverride>* overrides) const {
  const CompoundClass& compound = classes_[class_index];
  ClassId primary = schema_->PrimaryClass(role);
  Cardinality lifted;  // Starts at the default (0, inf).
  for (ClassId member : compound.Members()) {
    if (!schema_->IsSubclassOf(member, primary)) {
      continue;
    }
    Cardinality declared = schema_->GetCardinality(member, rel, role);
    if (overrides != nullptr) {
      for (const CardinalityOverride& override : *overrides) {
        if (override.cls == member && override.rel == rel &&
            override.role == role) {
          declared = override.cardinality;
          break;
        }
      }
    }
    lifted.min = std::max(lifted.min, declared.min);
    if (declared.max.has_value() &&
        (!lifted.max.has_value() || *declared.max < *lifted.max)) {
      lifted.max = declared.max;
    }
  }
  return lifted;
}

std::uint64_t Expansion::total_compound_class_count() const {
  int n = schema_->num_classes();
  if (n >= 64) {
    return ~std::uint64_t{0};
  }
  return (std::uint64_t{1} << n) - 1;
}

std::uint64_t Expansion::total_compound_relationship_count() const {
  const std::uint64_t all_classes = total_compound_class_count();
  std::uint64_t total = 0;
  for (RelationshipId rel : schema_->AllRelationships()) {
    std::uint64_t product = 1;
    for (size_t k = 0; k < schema_->RolesOf(rel).size(); ++k) {
      if (all_classes != 0 && product > ~std::uint64_t{0} / all_classes) {
        return ~std::uint64_t{0};  // Saturate.
      }
      product *= all_classes;
    }
    if (total > ~std::uint64_t{0} - product) {
      return ~std::uint64_t{0};
    }
    total += product;
  }
  return total;
}

std::string Expansion::ToString() const {
  std::string text = "Consistent compound classes (" +
                     std::to_string(classes_.size()) + "):\n";
  for (size_t i = 0; i < classes_.size(); ++i) {
    text += "  C" + std::to_string(i) + " = " +
            classes_[i].ToString(*schema_) + "\n";
  }
  text += "Consistent compound relationships (" +
          std::to_string(relationships_.size()) + "):\n";
  for (size_t i = 0; i < relationships_.size(); ++i) {
    text += "  R" + std::to_string(i) + " = " +
            relationships_[i].ToString(*schema_) + "\n";
  }
  text += "Lifted cardinalities (non-default):\n";
  for (RelationshipId rel : schema_->AllRelationships()) {
    const std::vector<RoleId>& roles = schema_->RolesOf(rel);
    for (RoleId role : roles) {
      ClassId primary = schema_->PrimaryClass(role);
      for (int class_index :
           class_indices_containing_[primary.value]) {
        Cardinality lifted = LiftedCardinality(class_index, rel, role);
        if (lifted.IsDefault()) {
          continue;
        }
        text += "  card " + classes_[class_index].ToString(*schema_) +
                " in " + schema_->RelationshipName(rel) + "." +
                schema_->RoleName(role) + " = " + lifted.ToString() + "\n";
      }
    }
  }
  return text;
}

Result<std::vector<CompoundClass>> AllCompoundClasses(const Schema& schema) {
  if (schema.num_classes() > 20) {
    return UnavailableError(
        "AllCompoundClasses is exponential and capped at 20 classes");
  }
  std::uint64_t count = (std::uint64_t{1} << schema.num_classes()) - 1;
  std::vector<CompoundClass> result;
  result.reserve(count);
  for (std::uint64_t mask = 1; mask <= count; ++mask) {
    result.push_back(CompoundClass(mask));
  }
  return result;
}

Result<std::vector<CompoundRelationship>> AllCompoundRelationships(
    const Schema& schema, RelationshipId rel) {
  CRSAT_ASSIGN_OR_RETURN(std::vector<CompoundClass> all,
                         AllCompoundClasses(schema));
  const std::vector<RoleId>& roles = schema.RolesOf(rel);
  std::uint64_t count = 1;
  for (size_t k = 0; k < roles.size(); ++k) {
    if (count > (std::uint64_t{1} << 22) / all.size()) {
      return UnavailableError(
          "AllCompoundRelationships result would exceed 2^22 entries");
    }
    count *= all.size();
  }
  std::vector<CompoundRelationship> result;
  result.reserve(count);
  std::vector<size_t> odometer(roles.size(), 0);
  while (true) {
    CompoundRelationship compound;
    compound.rel = rel;
    for (size_t k = 0; k < roles.size(); ++k) {
      compound.components.push_back(all[odometer[k]]);
    }
    result.push_back(std::move(compound));
    size_t k = 0;
    while (k < roles.size()) {
      if (++odometer[k] < all.size()) {
        break;
      }
      odometer[k] = 0;
      ++k;
    }
    if (k == roles.size()) {
      break;
    }
  }
  return result;
}

}  // namespace crsat
