#include "src/expansion/compound.h"

// srclint: allow(unguarded-loop): per-object helpers, O(classes +
// constraints) each; the exponential enumeration over compound classes
// lives in expansion.cc and polls its ResourceGuard there.

namespace crsat {

CompoundClass CompoundClass::Of(const std::vector<ClassId>& classes) {
  std::uint64_t mask = 0;
  for (ClassId cls : classes) {
    mask |= std::uint64_t{1} << cls.value;
  }
  return CompoundClass(mask);
}

std::vector<ClassId> CompoundClass::Members() const {
  std::vector<ClassId> members;
  std::uint64_t mask = mask_;
  while (mask != 0) {
    int bit = __builtin_ctzll(mask);
    members.push_back(ClassId(bit));
    mask &= mask - 1;
  }
  return members;
}

bool CompoundClass::IsConsistentIn(const Schema& schema) const {
  for (const IsaStatement& isa : schema.isa_statements()) {
    if (Contains(isa.subclass) && !Contains(isa.superclass)) {
      return false;
    }
  }
  return true;
}

bool CompoundClass::IsExtendedConsistentIn(const Schema& schema) const {
  if (!IsConsistentIn(schema)) {
    return false;
  }
  for (const DisjointnessConstraint& group :
       schema.disjointness_constraints()) {
    int members_in_group = 0;
    for (ClassId cls : group.classes) {
      if (Contains(cls)) {
        ++members_in_group;
        if (members_in_group > 1) {
          return false;
        }
      }
    }
  }
  for (const CoveringConstraint& constraint : schema.covering_constraints()) {
    if (!Contains(constraint.covered)) {
      continue;
    }
    bool covered = false;
    for (ClassId coverer : constraint.coverers) {
      if (Contains(coverer)) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      return false;
    }
  }
  return true;
}

std::string CompoundClass::ToString(const Schema& schema) const {
  std::string text = "{";
  bool first = true;
  for (ClassId cls : Members()) {
    if (!first) {
      text += ",";
    }
    first = false;
    text += schema.ClassName(cls);
  }
  text += "}";
  return text;
}

bool CompoundRelationship::IsConsistentIn(const Schema& schema,
                                          bool extended) const {
  const std::vector<RoleId>& roles = schema.RolesOf(rel);
  for (size_t k = 0; k < roles.size(); ++k) {
    const CompoundClass& component = components[k];
    if (component.IsEmpty()) {
      return false;
    }
    if (extended ? !component.IsExtendedConsistentIn(schema)
                 : !component.IsConsistentIn(schema)) {
      return false;
    }
    if (!component.Contains(schema.PrimaryClass(roles[k]))) {
      return false;
    }
  }
  return true;
}

std::string CompoundRelationship::ToString(const Schema& schema) const {
  std::string text = schema.RelationshipName(rel) + "<";
  const std::vector<RoleId>& roles = schema.RolesOf(rel);
  for (size_t k = 0; k < components.size(); ++k) {
    if (k > 0) {
      text += ", ";
    }
    text += schema.RoleName(roles[k]) + ": " + components[k].ToString(schema);
  }
  text += ">";
  return text;
}

}  // namespace crsat
