#ifndef CRSAT_EXPANSION_EXPANSION_H_
#define CRSAT_EXPANSION_EXPANSION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "src/base/resource_guard.h"
#include "src/base/result.h"
#include "src/cr/schema.h"
#include "src/expansion/compound.h"

namespace crsat {

/// Process-wide counters for the expansion-level pruning. Same policy as
/// `SimplexStats`: relaxed atomics, exact totals, `Reset()` must not race
/// with running builds.
struct ExpansionStats {
  /// Disjointness facts *derived* from cardinality declarations (pairs
  /// `{a, b}` with `minc(a) > maxc(b)` for a shared role), counted once
  /// per `Expansion::Build`.
  std::atomic<std::uint64_t> derived_disjoint_pairs{0};
  /// Enumeration subtrees cut by derived-disjointness / known-empty
  /// pruning (each would have produced at least one compound class that
  /// the disequation system then proved empty the hard way).
  std::atomic<std::uint64_t> pruned_subtrees{0};

  /// Zeroes every counter.
  void Reset();
};

/// Returns a mutable reference to the process-wide expansion counters.
ExpansionStats& GetExpansionStats();

/// A cardinality declaration applied on top of a schema's own declarations
/// (replacing the schema's value for the same triple, if any) when
/// deriving lifted cardinalities. Lets callers probe candidate bounds —
/// the implication engine's gallop/bisection — against one prebuilt
/// expansion: compound-class consistency never depends on cardinalities,
/// so the expansion is reusable across probes.
struct CardinalityOverride {
  ClassId cls;
  RelationshipId rel;
  RoleId role;
  Cardinality cardinality;
};

/// Options controlling expansion construction.
struct ExpansionOptions {
  /// Honor the Section 5 extensions (disjointness, covering) when deciding
  /// compound-class consistency. Disjointness in particular prunes the
  /// expansion dramatically (the paper's Section 5 observation).
  bool use_extensions = true;

  /// Hard caps: `Build` fails with `Unavailable` instead of exhausting
  /// memory when the (intrinsically exponential) expansion exceeds them.
  std::size_t max_consistent_classes = std::size_t{1} << 20;
  std::size_t max_compound_relationships = std::size_t{1} << 22;

  /// Prune compound classes that are *provably empty in every model* from
  /// declared cardinalities alone: a compound containing classes `a, b`
  /// (possibly `a == b`) with `minc(a) > maxc(b)` declared for a shared
  /// role has an empty lifted range, so Lemma 3.2 applies to it exactly as
  /// to an inconsistent compound — skipping it never changes a verdict, it
  /// only keeps the disequation system from carrying unknowns the LP would
  /// prove zero. Pairwise checking is complete: an empty lifted range
  /// always has a max-of-mins contributor `a` and a min-of-maxes
  /// contributor `b` forming such a pair. Effective only while
  /// `IncrementalReasoningEnabled()` (src/base/incremental.h), so the
  /// forced-cold reference path builds the historical expansion.
  ///
  /// Soundness caveat: the derivation reads the *declared* schema bounds,
  /// so callers probing the expansion with `CardinalityOverride`s must
  /// only override triples whose declared bounds do not contribute (the
  /// implication engine overrides its fresh auxiliary class, whose
  /// declared bounds are the default `(0, inf)`) — an override that
  /// *relaxed* a declared bound could resurrect a pruned compound.
  bool prune_structurally_empty = true;

  /// Optional per-schema-class "provably empty in every model" facts (from
  /// `ComputeProvablyEmpty`'s fixpoint, src/analysis/empty_classes.h, which
  /// sees rules the local pairwise derivation cannot). Indexed by ClassId;
  /// may be shorter than `num_classes()` (missing entries mean "unknown").
  /// Compounds containing a flagged class are pruned like derived-disjoint
  /// ones, under the same incremental gate. The pointee must outlive
  /// `Build`. The facts must be sound — an unsound entry changes verdicts.
  const std::vector<bool>* known_empty_classes = nullptr;

  /// Optional resource guard (deadline / compound budget / memory budget /
  /// cancellation, src/base/resource_guard.h). Polled throughout expansion
  /// construction, and — because the options travel with the built
  /// `Expansion` — by every reasoning layer downstream of it
  /// (`SatisfiabilityChecker`, the LP probes, the implication engine). The
  /// pointee must outlive the expansion and all reasoning over it; null
  /// means unlimited. A guarded run that does not trip computes exactly
  /// what an unguarded run would.
  ResourceGuard* guard = nullptr;
};

/// The *expansion* of a CR-schema (Definition 3.1): the consistent compound
/// classes, the consistent compound relationships, and the lifted
/// cardinalities. Inconsistent compound objects are never materialized —
/// they are empty in every model (Lemma 3.2, conditions A'/B'), so the
/// disequation system simply has no unknowns for them.
///
/// Enumeration of consistent compound classes is a backtracking search with
/// ISA upward-closure propagation (including a class forces its
/// superclasses in; excluding one forces its subclasses out), plus
/// disjointness pruning in extended mode, so cost is proportional to the
/// number of consistent compound classes rather than to 2^|C|.
class Expansion {
 public:
  /// Builds the expansion of `schema`. Fails if the schema has more than
  /// `CompoundClass::kMaxClasses` classes or the caps are exceeded. An
  /// allocation failure inside the (worst-case exponential) enumeration —
  /// genuine or injected via the `alloc/expansion` failpoint — surfaces
  /// as `kResourceExhausted`, never as an escaped `std::bad_alloc`.
  static Result<Expansion> Build(const Schema& schema,
                                 const ExpansionOptions& options = {});

  const Schema& schema() const { return *schema_; }
  const ExpansionOptions& options() const { return options_; }

  /// Consistent compound classes, ascending by mask. Their position in
  /// this vector is their *class index*, used throughout the reasoner.
  const std::vector<CompoundClass>& classes() const { return classes_; }

  /// Index of `compound` among `classes()`, or -1 when it is not a
  /// consistent compound class of this expansion.
  int ClassIndexOf(const CompoundClass& compound) const;

  /// Consistent compound relationships (all relationships interleaved).
  /// Their position is their *relationship index*.
  const std::vector<CompoundRelationship>& relationships() const {
    return relationships_;
  }

  /// Indices (into `relationships()`) of the compound relationships of
  /// `rel`.
  const std::vector<int>& RelationshipIndicesOf(RelationshipId rel) const {
    return relationship_indices_by_rel_[rel.value];
  }

  /// Indices of the compound relationships of `rel` whose component at
  /// role position `position` is the compound class with index
  /// `class_index`. These are exactly the terms of the sums in the
  /// disequation system (Section 3.2).
  const std::vector<int>& RelationshipsWith(RelationshipId rel, int position,
                                            int class_index) const;

  /// Indices of the compound classes containing `cls` (the union defining
  /// `C^I` in Section 3.1, and the sum in Theorem 3.3).
  const std::vector<int>& ClassIndicesContaining(ClassId cls) const {
    return class_indices_containing_[cls.value];
  }

  /// Lifted cardinality of the compound class `class_index` for role
  /// `role` of `rel` (Definition 3.1): max of the member `minc`s and min
  /// of the member `maxc`s, over members that may carry a declaration
  /// (subclasses of the role's primary class). The compound class must
  /// contain the primary class. `overrides`, when non-null, replace the
  /// schema's declarations for matching triples.
  Cardinality LiftedCardinality(
      int class_index, RelationshipId rel, RoleId role,
      const std::vector<CardinalityOverride>* overrides = nullptr) const;

  /// Total number of compound classes, consistent or not (2^|C| - 1).
  std::uint64_t total_compound_class_count() const;

  /// Total number of compound relationships, consistent or not
  /// (sum over R of (2^|C| - 1)^arity(R)), saturating at uint64 max.
  std::uint64_t total_compound_relationship_count() const;

  /// Figure 4-style dump: consistent compound classes, consistent compound
  /// relationships, and all non-default lifted cardinalities.
  std::string ToString() const;

 private:
  Expansion() = default;

  // The body of `Build`, wrapped by the std::bad_alloc ->
  // kResourceExhausted boundary in the public entry point.
  static Result<Expansion> BuildImpl(const Schema& schema,
                                     const ExpansionOptions& options);

  const Schema* schema_ = nullptr;
  ExpansionOptions options_;
  std::vector<CompoundClass> classes_;
  std::map<std::uint64_t, int> class_index_by_mask_;
  std::vector<CompoundRelationship> relationships_;
  std::vector<std::vector<int>> relationship_indices_by_rel_;
  std::vector<std::vector<int>> class_indices_containing_;
  // Keyed by (relationship id, role position, class index).
  std::map<std::tuple<int, int, int>, std::vector<int>> with_lists_;
  std::vector<int> empty_list_;
};

/// Enumerates *all* nonempty compound classes of `schema`, consistent or
/// not, ascending by mask. Exponential by construction; fails for schemas
/// with more than 20 classes. Used to reproduce the paper's Figure 4/5
/// presentation, which lists inconsistent compound objects explicitly.
Result<std::vector<CompoundClass>> AllCompoundClasses(const Schema& schema);

/// Enumerates all compound relationships of `rel` (components range over
/// all nonempty compound classes). Fails when the count would exceed 2^22.
Result<std::vector<CompoundRelationship>> AllCompoundRelationships(
    const Schema& schema, RelationshipId rel);

}  // namespace crsat

#endif  // CRSAT_EXPANSION_EXPANSION_H_
