#ifndef CRSAT_EXPANSION_COMPOUND_H_
#define CRSAT_EXPANSION_COMPOUND_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cr/schema.h"

namespace crsat {

/// A *compound class* (Section 3.1): a nonempty subset of the schema's
/// classes, denoting the individuals that are instances of exactly the
/// member classes (and of no other class). Compound classes are the atoms
/// of the Venn diagram of class extensions; their extensions are pairwise
/// disjoint in every interpretation, which is what makes one unknown per
/// compound class sound in the disequation system.
///
/// Represented as a 64-bit membership mask, which caps schemas at 64
/// classes — far beyond the reach of the (intrinsically exponential)
/// expansion anyway. `Expansion::Build` enforces the cap.
class CompoundClass {
 public:
  /// Maximum number of classes a schema may have for expansion purposes.
  static constexpr int kMaxClasses = 64;

  /// Constructs the empty set (not a valid compound class by itself; used
  /// as a builder seed).
  CompoundClass() : mask_(0) {}

  /// Constructs from a membership mask (bit `i` set iff class `i` is in).
  explicit CompoundClass(std::uint64_t mask) : mask_(mask) {}

  /// Constructs from an explicit member list.
  static CompoundClass Of(const std::vector<ClassId>& classes);

  std::uint64_t mask() const { return mask_; }
  bool IsEmpty() const { return mask_ == 0; }
  int size() const { return __builtin_popcountll(mask_); }

  bool Contains(ClassId cls) const {
    return (mask_ >> cls.value) & std::uint64_t{1};
  }

  /// Returns a copy with `cls` added.
  CompoundClass With(ClassId cls) const {
    return CompoundClass(mask_ | (std::uint64_t{1} << cls.value));
  }

  /// The member classes, ascending by id.
  std::vector<ClassId> Members() const;

  /// Consistency per Section 3.1: for every ISA statement `C1 <= C2`,
  /// membership of `C1` implies membership of `C2`.
  bool IsConsistentIn(const Schema& schema) const;

  /// Consistency including the Section 5 extensions: additionally, no two
  /// members are declared disjoint, and every member with a covering
  /// constraint has at least one coverer among the members.
  bool IsExtendedConsistentIn(const Schema& schema) const;

  /// Renders "{Speaker,Discussant}".
  std::string ToString(const Schema& schema) const;

  bool operator==(const CompoundClass& other) const {
    return mask_ == other.mask_;
  }
  bool operator!=(const CompoundClass& other) const {
    return mask_ != other.mask_;
  }
  bool operator<(const CompoundClass& other) const {
    return mask_ < other.mask_;
  }

 private:
  std::uint64_t mask_;
};

/// A *compound relationship* (Section 3.1): a relationship symbol together
/// with one compound class per role. Extensions of distinct compound
/// relationships of the same relationship are pairwise disjoint, because
/// each individual belongs to exactly one compound class.
struct CompoundRelationship {
  RelationshipId rel;
  /// One compound class per role, aligned with `Schema::RolesOf(rel)`.
  std::vector<CompoundClass> components;

  /// Consistency per Section 3.1: every component is consistent and
  /// contains the primary class of its role. `extended` selects whether
  /// component consistency includes the Section 5 extensions.
  bool IsConsistentIn(const Schema& schema, bool extended) const;

  /// Renders e.g. "Holds<U1: {Speaker}, U2: {Talk}>".
  std::string ToString(const Schema& schema) const;

  bool operator==(const CompoundRelationship& other) const {
    return rel == other.rel && components == other.components;
  }
};

}  // namespace crsat

#endif  // CRSAT_EXPANSION_COMPOUND_H_
