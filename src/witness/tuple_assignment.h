#ifndef CRSAT_WITNESS_TUPLE_ASSIGNMENT_H_
#define CRSAT_WITNESS_TUPLE_ASSIGNMENT_H_

#include "src/base/result.h"
#include "src/cr/interpretation.h"
#include "src/expansion/expansion.h"
#include "src/reasoner/satisfiability.h"
#include "src/witness/witness.h"

namespace crsat {

/// Stage 2 of witness synthesis: materializes an interpretation realizing
/// `solution` (possibly scaled up — acceptable solutions of the
/// homogeneous system stay acceptable under positive scaling).
///
/// For each consistent compound class with count `t`, `t` fresh
/// individuals are created and added to the member classes' extensions.
/// Tuples of each compound relationship draw their role fillers
/// round-robin from a global per-(relationship, role, compound class)
/// rotation, which keeps every individual's tuple count within the lifted
/// `[minc, maxc]` window. Relationship extensions are sets, so tuples
/// within one compound relationship must also be pairwise distinct; when
/// round-robin collides, the compound relationship is re-realized
/// coordinate by coordinate with a min-congestion max-flow assignment
/// (counted in `stats->flow_refinements`), and as a last resort the whole
/// solution is doubled and retried up to `options.max_scaling_attempts`
/// times (`stats->scaling_attempts`).
///
/// `guard` is polled per individual block and per tuple batch, charged for
/// the interpretation's dominant allocations, and handed down to every
/// max-flow solve; a trip unwinds with the guard's resource-limit status.
/// The result is NOT certified — stage 3 (`CertifiedWitness::Certify`) is
/// the only path from here to an emitted witness.
///
/// Fails with `kUnavailable` when the retry budget or
/// `options.max_model_size` is exhausted, and `kInvalidArgument` when
/// `solution` has the wrong shape for `expansion` or is not acceptable.
Result<Interpretation> AssignTuples(const Expansion& expansion,
                                    const IntegerSolution& solution,
                                    const WitnessOptions& options,
                                    WitnessStats* stats, ResourceGuard* guard);

}  // namespace crsat

#endif  // CRSAT_WITNESS_TUPLE_ASSIGNMENT_H_
