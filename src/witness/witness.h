#ifndef CRSAT_WITNESS_WITNESS_H_
#define CRSAT_WITNESS_WITNESS_H_

#include <cstdint>
#include <utility>

#include "src/base/resource_guard.h"
#include "src/base/result.h"
#include "src/cr/interpretation.h"
#include "src/cr/model_checker.h"
#include "src/expansion/expansion.h"
#include "src/reasoner/satisfiability.h"
#include "src/witness/certify.h"

namespace crsat {

/// Knobs for witness synthesis (src/witness/).
struct WitnessOptions {
  /// How many times the integer solution may be doubled when
  /// tuple-distinctness cannot be realized at the current scale (solutions
  /// of the homogeneous system are closed under positive scaling).
  int max_scaling_attempts = 8;

  /// Refuse to materialize witnesses larger than this many individuals
  /// plus tuples (the decision procedure never needs materialization; this
  /// is a safety valve for the constructive API).
  std::uint64_t max_model_size = 1000000;

  /// Optional resource guard; overrides the expansion's own
  /// `ExpansionOptions::guard` when non-null. Every stage — the minimal
  /// integer LP, tuple assignment (including its max-flow refinements),
  /// and certification — polls it, so `--witness` work respects the same
  /// deadlines/budgets as the verdict it decorates. A trip surfaces as a
  /// resource-limit status and no witness is produced.
  ResourceGuard* guard = nullptr;

  /// Optional declaration-site map (from `NamedSchema::source_map`). Only
  /// consulted if certification ever fails: the refusal message then
  /// points at the violated declarations.
  const SchemaSourceMap* source_map = nullptr;
};

// `WitnessStats` and `CertifiedWitness` live in src/witness/certify.h —
// the certification stage owns them, and srclint's certify-non-bypass
// rule pins the class definition there.

/// The constructive half of the paper's completeness proof (Section 3.3),
/// as a three-stage pipeline over a satisfiable schema's expansion:
///
///   1. *Integer solution*: the checker's cached maximal acceptable
///      support is turned into a minimal rational witness (one LP, warm
///      started across calls), then scaled to nonnegative integers by the
///      LCM of denominators — int64 fast path, exact BigInt fallback. The
///      acceptability side-condition (a zero compound-class count forces
///      every dependent relationship count to zero) is re-verified on the
///      integers.
///   2. *Tuple assignment*: compound-class populations are materialized
///      and relationship tuples distributed across role slots round-robin,
///      falling back to a min-congestion max-flow per compound
///      relationship when bounds are tight, and doubling the whole
///      solution when distinctness is unrealizable at the current scale.
///   3. *Certification*: the interpretation is run back through
///      `ModelChecker`; only a zero-violation result is emitted (as a
///      `CertifiedWitness` — uncertified witnesses cannot be constructed).
///
/// The synthesizer reuses the `SatisfiabilityChecker`'s cached support, so
/// after a SAT verdict no support LP is re-run; on an all-UNSAT schema it
/// refuses immediately without any solver work (tests assert this via
/// `SimplexStats`).
class WitnessSynthesizer {
 public:
  /// The checker (and its expansion) must outlive the synthesizer.
  explicit WitnessSynthesizer(const SatisfiabilityChecker& checker)
      : checker_(&checker) {}

  /// Runs the full pipeline. Fails with `kInvalidArgument` when no class
  /// is satisfiable (nothing to witness), `kUnavailable` when the retry
  /// budget or `max_model_size` is exhausted, a resource-limit status when
  /// the guard trips, and `kInternal` when certification refuses.
  Result<CertifiedWitness> Synthesize(const WitnessOptions& options = {});

  /// Stages 2–3 only, from a caller-provided acceptable integer solution.
  static Result<CertifiedWitness> SynthesizeFromSolution(
      const Expansion& expansion, const IntegerSolution& solution,
      const WitnessOptions& options = {});

 private:
  const SatisfiabilityChecker* checker_;
  // Warm-start carry for the minimal-witness LP across successive
  // `Synthesize` calls on this (same-shaped) system.
  WarmStartBasis minimal_witness_carry_;
};

}  // namespace crsat

#endif  // CRSAT_WITNESS_WITNESS_H_
