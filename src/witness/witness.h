#ifndef CRSAT_WITNESS_WITNESS_H_
#define CRSAT_WITNESS_WITNESS_H_

#include <cstdint>
#include <utility>

#include "src/base/resource_guard.h"
#include "src/base/result.h"
#include "src/cr/interpretation.h"
#include "src/cr/model_checker.h"
#include "src/expansion/expansion.h"
#include "src/reasoner/satisfiability.h"

namespace crsat {

/// Knobs for witness synthesis (src/witness/).
struct WitnessOptions {
  /// How many times the integer solution may be doubled when
  /// tuple-distinctness cannot be realized at the current scale (solutions
  /// of the homogeneous system are closed under positive scaling).
  int max_scaling_attempts = 8;

  /// Refuse to materialize witnesses larger than this many individuals
  /// plus tuples (the decision procedure never needs materialization; this
  /// is a safety valve for the constructive API).
  std::uint64_t max_model_size = 1000000;

  /// Optional resource guard; overrides the expansion's own
  /// `ExpansionOptions::guard` when non-null. Every stage — the minimal
  /// integer LP, tuple assignment (including its max-flow refinements),
  /// and certification — polls it, so `--witness` work respects the same
  /// deadlines/budgets as the verdict it decorates. A trip surfaces as a
  /// resource-limit status and no witness is produced.
  ResourceGuard* guard = nullptr;

  /// Optional declaration-site map (from `NamedSchema::source_map`). Only
  /// consulted if certification ever fails: the refusal message then
  /// points at the violated declarations.
  const SchemaSourceMap* source_map = nullptr;
};

/// Deterministic accounting of one synthesis run.
struct WitnessStats {
  /// The LCM/scaling stage completed on the overflow-checked int64
  /// (`SmallRational`) fast path.
  bool integer_fast_path = false;
  /// The fast path overflowed and the exact BigInt path ran instead.
  bool integer_exact_fallback = false;
  /// Doublings performed beyond the initial scale during tuple assignment.
  int scaling_attempts = 0;
  /// Compound relationships whose tuples needed the min-congestion
  /// max-flow refinement (round-robin alone collided).
  std::uint64_t flow_refinements = 0;
  /// Size of the certified witness.
  std::uint64_t individuals = 0;
  std::uint64_t tuples = 0;
};

/// A finite interpretation that passed `ModelChecker` with zero
/// violations. The constructor is private and `Certify` is the only
/// factory, so holding a `CertifiedWitness` *is* the certificate: there is
/// no code path that emits an unchecked interpretation as a witness.
class CertifiedWitness {
 public:
  /// Runs `interpretation` through `ModelChecker::CheckModel` and wraps it
  /// on success. Any violation refuses certification with `kInternal`
  /// (an uncertifiable synthesis result is a bug in the pipeline, never a
  /// user error); the message lists every violation, with declaration
  /// sites when `source_map` is supplied.
  static Result<CertifiedWitness> Certify(
      const Schema& schema, Interpretation interpretation, WitnessStats stats,
      const SchemaSourceMap* source_map = nullptr);

  const Interpretation& interpretation() const { return interpretation_; }
  const WitnessStats& stats() const { return stats_; }

  /// Moves the interpretation out (for callers that only need the model,
  /// e.g. the legacy `ModelBuilder` facade).
  Interpretation&& TakeInterpretation() && {
    return std::move(interpretation_);
  }

 private:
  CertifiedWitness(Interpretation interpretation, WitnessStats stats)
      : interpretation_(std::move(interpretation)), stats_(std::move(stats)) {}

  Interpretation interpretation_;
  WitnessStats stats_;
};

/// The constructive half of the paper's completeness proof (Section 3.3),
/// as a three-stage pipeline over a satisfiable schema's expansion:
///
///   1. *Integer solution*: the checker's cached maximal acceptable
///      support is turned into a minimal rational witness (one LP, warm
///      started across calls), then scaled to nonnegative integers by the
///      LCM of denominators — int64 fast path, exact BigInt fallback. The
///      acceptability side-condition (a zero compound-class count forces
///      every dependent relationship count to zero) is re-verified on the
///      integers.
///   2. *Tuple assignment*: compound-class populations are materialized
///      and relationship tuples distributed across role slots round-robin,
///      falling back to a min-congestion max-flow per compound
///      relationship when bounds are tight, and doubling the whole
///      solution when distinctness is unrealizable at the current scale.
///   3. *Certification*: the interpretation is run back through
///      `ModelChecker`; only a zero-violation result is emitted (as a
///      `CertifiedWitness` — uncertified witnesses cannot be constructed).
///
/// The synthesizer reuses the `SatisfiabilityChecker`'s cached support, so
/// after a SAT verdict no support LP is re-run; on an all-UNSAT schema it
/// refuses immediately without any solver work (tests assert this via
/// `SimplexStats`).
class WitnessSynthesizer {
 public:
  /// The checker (and its expansion) must outlive the synthesizer.
  explicit WitnessSynthesizer(const SatisfiabilityChecker& checker)
      : checker_(&checker) {}

  /// Runs the full pipeline. Fails with `kInvalidArgument` when no class
  /// is satisfiable (nothing to witness), `kUnavailable` when the retry
  /// budget or `max_model_size` is exhausted, a resource-limit status when
  /// the guard trips, and `kInternal` when certification refuses.
  Result<CertifiedWitness> Synthesize(const WitnessOptions& options = {});

  /// Stages 2–3 only, from a caller-provided acceptable integer solution.
  static Result<CertifiedWitness> SynthesizeFromSolution(
      const Expansion& expansion, const IntegerSolution& solution,
      const WitnessOptions& options = {});

 private:
  const SatisfiabilityChecker* checker_;
  // Warm-start carry for the minimal-witness LP across successive
  // `Synthesize` calls on this (same-shaped) system.
  WarmStartBasis minimal_witness_carry_;
};

}  // namespace crsat

#endif  // CRSAT_WITNESS_WITNESS_H_
