#include "src/witness/certify.h"

#include <string>
#include <utility>
#include <vector>

namespace crsat {

Result<CertifiedWitness> CertifiedWitness::Certify(
    const Schema& schema, Interpretation interpretation, WitnessStats stats,
    const SchemaSourceMap* source_map) {
  std::vector<ModelViolation> violations =
      ModelChecker::CheckModel(schema, interpretation, source_map);
  if (!violations.empty()) {
    std::string message =
        "witness certification refused: synthesized interpretation is not a "
        "model (bug):";
    for (const ModelViolation& violation : violations) {
      message += "\n  - " + violation.message;
    }
    return InternalError(std::move(message));
  }
  stats.individuals = static_cast<std::uint64_t>(interpretation.domain_size());
  stats.tuples = 0;
  // srclint: allow(unguarded-loop): post-certification accounting over an
  // already-size-capped witness; bounded by WitnessOptions::max_model_size.
  for (RelationshipId rel : schema.AllRelationships()) {
    stats.tuples += interpretation.RelationshipExtension(rel).size();
  }
  return CertifiedWitness(std::move(interpretation), std::move(stats));
}

}  // namespace crsat
