#include "src/witness/witness_text.h"

// srclint: allow(unguarded-loop): renders an already-certified witness,
// whose size was capped by WitnessOptions::max_model_size before the
// synthesis stages would materialize it.

#include <cstdio>
#include <vector>

namespace crsat {

namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string WitnessToJson(const CertifiedWitness& witness) {
  const Interpretation& interpretation = witness.interpretation();
  const Schema& schema = interpretation.schema();
  const WitnessStats& stats = witness.stats();

  std::string json = "{\"certified\":true";
  json += ",\"individuals\":" + std::to_string(stats.individuals);
  json += ",\"tuples\":" + std::to_string(stats.tuples);
  json += ",\"stats\":{\"integer_fast_path\":";
  json += stats.integer_fast_path ? "true" : "false";
  json += ",\"integer_exact_fallback\":";
  json += stats.integer_exact_fallback ? "true" : "false";
  json += ",\"scaling_attempts\":" + std::to_string(stats.scaling_attempts);
  json += ",\"flow_refinements\":" + std::to_string(stats.flow_refinements);
  json += "}";

  json += ",\"classes\":{";
  bool first_class = true;
  for (ClassId cls : schema.AllClasses()) {
    if (!first_class) {
      json += ",";
    }
    first_class = false;
    json += "\"" + JsonEscape(schema.ClassName(cls)) + "\":[";
    bool first_member = true;
    for (Individual individual : interpretation.ClassExtension(cls)) {
      if (!first_member) {
        json += ",";
      }
      first_member = false;
      json += "\"" + JsonEscape(interpretation.IndividualName(individual)) +
              "\"";
    }
    json += "]";
  }
  json += "}";

  json += ",\"relationships\":{";
  bool first_rel = true;
  for (RelationshipId rel : schema.AllRelationships()) {
    if (!first_rel) {
      json += ",";
    }
    first_rel = false;
    json += "\"" + JsonEscape(schema.RelationshipName(rel)) + "\":[";
    bool first_tuple = true;
    for (const std::vector<Individual>& tuple :
         interpretation.RelationshipExtension(rel)) {
      if (!first_tuple) {
        json += ",";
      }
      first_tuple = false;
      json += "[";
      for (size_t k = 0; k < tuple.size(); ++k) {
        if (k > 0) {
          json += ",";
        }
        json += "\"" + JsonEscape(interpretation.IndividualName(tuple[k])) +
                "\"";
      }
      json += "]";
    }
    json += "]";
  }
  json += "}}";
  return json;
}

std::string WitnessToDot(const CertifiedWitness& witness) {
  const Interpretation& interpretation = witness.interpretation();
  const Schema& schema = interpretation.schema();

  // DOT string literals escape like JSON for the characters we emit.
  std::string dot = "digraph witness {\n  rankdir=LR;\n";
  for (Individual individual = 0; individual < interpretation.domain_size();
       ++individual) {
    std::string classes;
    for (ClassId cls : schema.AllClasses()) {
      if (interpretation.IsInstanceOf(cls, individual)) {
        if (!classes.empty()) {
          classes += ", ";
        }
        classes += schema.ClassName(cls);
      }
    }
    dot += "  i" + std::to_string(individual) + " [label=\"" +
           JsonEscape(interpretation.IndividualName(individual)) + "\\n{" +
           JsonEscape(classes) + "}\"];\n";
  }
  int tuple_id = 0;
  for (RelationshipId rel : schema.AllRelationships()) {
    const std::vector<RoleId>& roles = schema.RolesOf(rel);
    for (const std::vector<Individual>& tuple :
         interpretation.RelationshipExtension(rel)) {
      std::string node = "t" + std::to_string(tuple_id++);
      dot += "  " + node + " [shape=box, label=\"" +
             JsonEscape(schema.RelationshipName(rel)) + "\"];\n";
      for (size_t k = 0; k < tuple.size(); ++k) {
        dot += "  " + node + " -> i" + std::to_string(tuple[k]) +
               " [label=\"" + JsonEscape(schema.RoleName(roles[k])) +
               "\"];\n";
      }
    }
  }
  dot += "}\n";
  return dot;
}

}  // namespace crsat
