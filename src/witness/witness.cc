#include "src/witness/witness.h"

#include <string>
#include <utility>
#include <vector>

#include "src/witness/integer_solution.h"
#include "src/witness/tuple_assignment.h"

namespace crsat {

namespace {

ResourceGuard* ResolveGuard(const WitnessOptions& options,
                            const Expansion& expansion) {
  return options.guard != nullptr ? options.guard : expansion.options().guard;
}

}  // namespace

Result<CertifiedWitness> WitnessSynthesizer::Synthesize(
    const WitnessOptions& options) {
  const Expansion& expansion = checker_->expansion();
  ResourceGuard* guard = ResolveGuard(options, expansion);
  WitnessStats stats;
  CRSAT_ASSIGN_OR_RETURN(
      IntegerSolution solution,
      SolveIntegerStage(*checker_, options, &minimal_witness_carry_, &stats));
  CRSAT_ASSIGN_OR_RETURN(
      Interpretation interpretation,
      AssignTuples(expansion, solution, options, &stats, guard));
  if (guard != nullptr) {
    CRSAT_RETURN_IF_ERROR(guard->CheckNow("witness/certify"));
  }
  return CertifiedWitness::Certify(expansion.schema(),
                                   std::move(interpretation), stats,
                                   options.source_map);
}

Result<CertifiedWitness> WitnessSynthesizer::SynthesizeFromSolution(
    const Expansion& expansion, const IntegerSolution& solution,
    const WitnessOptions& options) {
  ResourceGuard* guard = ResolveGuard(options, expansion);
  WitnessStats stats;
  CRSAT_ASSIGN_OR_RETURN(
      Interpretation interpretation,
      AssignTuples(expansion, solution, options, &stats, guard));
  if (guard != nullptr) {
    CRSAT_RETURN_IF_ERROR(guard->CheckNow("witness/certify"));
  }
  return CertifiedWitness::Certify(expansion.schema(),
                                   std::move(interpretation), stats,
                                   options.source_map);
}

}  // namespace crsat
