#include "src/witness/integer_solution.h"

#include <utility>
#include <vector>

#include "src/lp/homogeneous.h"

namespace crsat {

Result<IntegerSolution> SolveIntegerStage(const SatisfiabilityChecker& checker,
                                          const WitnessOptions& options,
                                          WarmStartBasis* basis_carry,
                                          WitnessStats* stats) {
  ResourceGuard* guard = options.guard != nullptr
                             ? options.guard
                             : checker.expansion().options().guard;
  if (guard != nullptr) {
    CRSAT_RETURN_IF_ERROR(guard->CheckNow("witness/integer"));
  }
  CRSAT_ASSIGN_OR_RETURN(AcceptableSupport support, checker.Support());
  const CrSystem& cr_system = checker.cr_system();

  // Nothing to witness when every class unknown is zero in every
  // acceptable solution. This test comes before the minimization LP, so an
  // all-UNSAT schema triggers no solver work here at all.
  bool any_class_positive = false;
  for (VarId var : cr_system.class_vars) {
    if (support.positive[var]) {
      any_class_positive = true;
      break;
    }
  }
  if (!any_class_positive) {
    return InvalidArgumentError(
        "witness: every class is unsatisfiable; there is no nonempty finite "
        "model to synthesize");
  }

  CRSAT_ASSIGN_OR_RETURN(
      std::vector<Rational> witness,
      MinimalWitnessForSupport(cr_system.system, support.positive,
                               support.witness, guard, basis_carry));

  IntegerScaleStats scale_stats;
  std::vector<BigInt> integers = ScaleToIntegerSolution(witness, &scale_stats);
  if (stats != nullptr) {
    stats->integer_fast_path = scale_stats.used_fast_path;
    stats->integer_exact_fallback = scale_stats.exact_fallback;
  }

  // Defensive re-check of the acceptability side-condition on the scaled
  // integers (scaling by a positive constant preserves supports, so a
  // failure here is a bug, not an input property).
  for (const Dependency& dependency : checker.dependencies()) {
    if (integers[dependency.dependent].IsZero()) {
      continue;
    }
    for (VarId source : dependency.depends_on) {
      if (integers[source].IsZero()) {
        return InternalError(
            "witness: integer solution is not acceptable (populated compound "
            "relationship depends on an empty compound class)");
      }
    }
  }

  IntegerSolution solution;
  solution.class_counts.reserve(cr_system.class_vars.size());
  for (VarId var : cr_system.class_vars) {
    solution.class_counts.push_back(integers[var]);
  }
  solution.rel_counts.reserve(cr_system.rel_vars.size());
  for (VarId var : cr_system.rel_vars) {
    solution.rel_counts.push_back(integers[var]);
  }
  return solution;
}

}  // namespace crsat
