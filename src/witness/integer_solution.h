#ifndef CRSAT_WITNESS_INTEGER_SOLUTION_H_
#define CRSAT_WITNESS_INTEGER_SOLUTION_H_

#include "src/base/result.h"
#include "src/reasoner/satisfiability.h"
#include "src/witness/witness.h"

namespace crsat {

/// Stage 1 of witness synthesis: turns the checker's cached maximal
/// acceptable support into a *minimal* acceptable nonnegative integer
/// solution of Psi_S.
///
/// Refuses with `kInvalidArgument` — before any solver work — when the
/// support has no positive class variable (an all-unsatisfiable schema has
/// nothing to witness; tests assert via `SimplexStats` that this path runs
/// zero additional solves). Otherwise runs one minimization LP
/// (`MinimalWitnessForSupport`, warm started through `basis_carry`),
/// scales the rational solution to integers via the LCM of denominators
/// (int64 `SmallRational` fast path with exact BigInt fallback; recorded
/// in `stats`), and re-verifies the acceptability side-condition on the
/// integers: a zero compound-class count with a positive dependent
/// relationship count is a pipeline bug and fails with `kInternal`.
///
/// `basis_carry` and `stats` may be null.
Result<IntegerSolution> SolveIntegerStage(const SatisfiabilityChecker& checker,
                                          const WitnessOptions& options,
                                          WarmStartBasis* basis_carry,
                                          WitnessStats* stats);

}  // namespace crsat

#endif  // CRSAT_WITNESS_INTEGER_SOLUTION_H_
