#include "src/witness/tuple_assignment.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "src/base/degradation.h"
#include "src/base/failpoint.h"
#include "src/flow/max_flow.h"
#include "src/math/bigint.h"

namespace crsat {

namespace {

// Coarse per-object accounting against the guard's memory budget: the
// dominant allocations of an interpretation are the per-individual set
// entries and the per-tuple vectors inside the extension sets.
constexpr std::uint64_t kBytesPerIndividual = 80;
constexpr std::uint64_t kBytesPerTupleBase = 64;
constexpr std::uint64_t kBytesPerTupleComponent = 8;

// A partially-built tuple shared by `count` identical copies.
struct TupleGroup {
  std::vector<Individual> prefix;
  std::int64_t count = 0;
};

// Distributes the value multiset {individuals[i] with multiplicity
// multiplicities[i]} over the groups, splitting each group into subgroups
// that append one value to the prefix. Uses a min-congestion transportation
// flow so identical prefixes receive as many *different* values as
// possible. Returns the refined groups; a final group with count > 1 means
// two identical tuples (the caller treats that as failure at this scale).
Result<std::vector<TupleGroup>> RefineGroupsWithValues(
    const std::vector<TupleGroup>& groups,
    const std::vector<Individual>& individuals,
    const std::vector<std::int64_t>& multiplicities, ResourceGuard* guard) {
  const int num_groups = static_cast<int>(groups.size());
  const int num_values = static_cast<int>(individuals.size());
  std::int64_t total = 0;
  for (const TupleGroup& group : groups) {
    total += group.count;
  }

  std::int64_t max_multiplicity = 0;
  for (std::int64_t m : multiplicities) {
    max_multiplicity = std::max(max_multiplicity, m);
  }

  // Binary search the smallest per-cell cap (congestion) that still routes
  // all tuples; the cap is what bounds duplicate prefixes per value.
  auto feasible_flow =
      [&](std::int64_t cap,
          std::vector<std::vector<std::int64_t>>* cells) -> Result<bool> {
    MaxFlowGraph graph(2 + num_groups + num_values);
    const int source = 0;
    const int sink = 1;
    std::vector<std::vector<int>> edge_ids(num_groups,
                                           std::vector<int>(num_values, -1));
    for (int g = 0; g < num_groups; ++g) {
      graph.AddEdge(source, 2 + g, groups[g].count);
    }
    for (int d = 0; d < num_values; ++d) {
      graph.AddEdge(2 + num_groups + d, sink, multiplicities[d]);
    }
    for (int g = 0; g < num_groups; ++g) {
      for (int d = 0; d < num_values; ++d) {
        edge_ids[g][d] =
            graph.AddEdge(2 + g, 2 + num_groups + d,
                          std::min(cap, groups[g].count));
      }
    }
    CRSAT_ASSIGN_OR_RETURN(std::int64_t flow,
                           graph.Solve(source, sink, guard));
    if (flow != total) {
      return false;
    }
    if (cells != nullptr) {
      cells->assign(num_groups, std::vector<std::int64_t>(num_values, 0));
      for (int g = 0; g < num_groups; ++g) {
        for (int d = 0; d < num_values; ++d) {
          (*cells)[g][d] = graph.EdgeFlow(edge_ids[g][d]);
        }
      }
    }
    return true;
  };

  std::int64_t low = 1;
  std::int64_t high = std::max<std::int64_t>(max_multiplicity, 1);
  CRSAT_ASSIGN_OR_RETURN(bool feasible_at_high, feasible_flow(high, nullptr));
  if (!feasible_at_high) {
    return InternalError(
        "witness: transportation flow infeasible at full capacity");
  }
  while (low < high) {
    std::int64_t mid = low + (high - low) / 2;
    CRSAT_ASSIGN_OR_RETURN(bool ok, feasible_flow(mid, nullptr));
    if (ok) {
      high = mid;
    } else {
      low = mid + 1;
    }
  }
  std::vector<std::vector<std::int64_t>> cells;
  CRSAT_ASSIGN_OR_RETURN(bool ok, feasible_flow(high, &cells));
  if (!ok) {
    return InternalError("witness: flow became infeasible on replay");
  }

  std::vector<TupleGroup> refined;
  for (int g = 0; g < num_groups; ++g) {
    for (int d = 0; d < num_values; ++d) {
      if (cells[g][d] == 0) {
        continue;
      }
      TupleGroup subgroup;
      subgroup.prefix = groups[g].prefix;
      subgroup.prefix.push_back(individuals[d]);
      subgroup.count = cells[g][d];
      refined.push_back(std::move(subgroup));
    }
  }
  return refined;
}

// One attempt at materializing the model for fixed integer counts. Returns
// Unavailable when tuple distinctness could not be realized at this scale
// (the caller scales the solution and retries). `charge` accumulates the
// interpretation's approximate footprint against the guard for the
// duration of the attempt.
Result<Interpretation> TryBuild(const Expansion& expansion,
                                const std::vector<std::int64_t>& class_counts,
                                const std::vector<std::int64_t>& rel_counts,
                                WitnessStats* stats, ResourceGuard* guard,
                                ScopedMemoryCharge* charge) {
  const Schema& schema = expansion.schema();
  Interpretation interpretation(schema);

  // Individuals per compound class. The memory charge lands before the
  // poll so an over-budget block trips on entry, not after allocating.
  std::vector<std::vector<Individual>> members_of(expansion.classes().size());
  for (size_t i = 0; i < expansion.classes().size(); ++i) {
    if (class_counts[i] > 0) {
      charge->Add(static_cast<std::uint64_t>(class_counts[i]) *
                  kBytesPerIndividual);
      if (guard != nullptr) {
        CRSAT_RETURN_IF_ERROR(guard->Check("witness/individuals"));
      }
    }
    for (std::int64_t m = 0; m < class_counts[i]; ++m) {
      Individual individual = interpretation.AddIndividual();
      members_of[i].push_back(individual);
      for (ClassId cls : expansion.classes()[i].Members()) {
        CRSAT_RETURN_IF_ERROR(interpretation.AddToClass(cls, individual));
      }
    }
  }

  // Global rotation offset per (relationship, role position, compound
  // class index): consecutive tuple slots map to consecutive individuals
  // modulo the class population, which keeps every individual's count in
  // the balanced window [floor(T/n), ceil(T/n)] within [minc, maxc].
  std::map<std::tuple<int, int, int>, std::int64_t> rotation;

  for (size_t j = 0; j < expansion.relationships().size(); ++j) {
    const std::int64_t t = rel_counts[j];
    if (t == 0) {
      continue;
    }
    const CompoundRelationship& compound = expansion.relationships()[j];
    const std::vector<RoleId>& roles = schema.RolesOf(compound.rel);
    const int arity = static_cast<int>(roles.size());

    charge->Add(static_cast<std::uint64_t>(t) *
                (kBytesPerTupleBase +
                 kBytesPerTupleComponent * static_cast<std::uint64_t>(arity)));
    if (guard != nullptr) {
      CRSAT_RETURN_IF_ERROR(guard->Check("witness/tuples"));
    }

    std::vector<int> component_index(arity);
    std::vector<std::int64_t> population(arity);
    std::vector<std::int64_t> offsets(arity);
    for (int k = 0; k < arity; ++k) {
      component_index[k] = expansion.ClassIndexOf(compound.components[k]);
      if (component_index[k] < 0) {
        return InternalError("witness: unknown compound component");
      }
      population[k] = class_counts[component_index[k]];
      if (population[k] == 0) {
        return InvalidArgumentError(
            "witness: solution is not acceptable (populated compound "
            "relationship with an empty component class)");
      }
      auto key = std::make_tuple(compound.rel.value, k, component_index[k]);
      offsets[k] = rotation[key];
      rotation[key] = (offsets[k] + t) % population[k];
    }

    // Fast path: aligned round-robin. Tuples m and m' collide only when
    // population[k] divides m'-m for every k. The failpoint simulates a
    // collision up front, forcing the min-congestion flow refinement the
    // way a genuinely misaligned rotation would.
    bool aligned_ok = !CRSAT_FAILPOINT("witness/force_flow_refine");
    if (aligned_ok) {
      std::set<std::vector<Individual>> seen;
      std::vector<std::vector<Individual>> tuples;
      tuples.reserve(t);
      for (std::int64_t m = 0; m < t && aligned_ok; ++m) {
        if (guard != nullptr && (m & 1023) == 0) {
          CRSAT_RETURN_IF_ERROR(guard->Check("witness/tuples"));
        }
        std::vector<Individual> tuple(arity);
        for (int k = 0; k < arity; ++k) {
          tuple[k] = members_of[component_index[k]]
                               [(offsets[k] + m) % population[k]];
        }
        if (!seen.insert(tuple).second) {
          aligned_ok = false;
          break;
        }
        tuples.push_back(std::move(tuple));
      }
      if (aligned_ok) {
        for (std::vector<Individual>& tuple : tuples) {
          CRSAT_RETURN_IF_ERROR(
              interpretation.AddTuple(compound.rel, tuple));
        }
        continue;
      }
    }

    // Slow path: realize this compound relationship coordinate by
    // coordinate with min-congestion flows, preserving the exact value
    // multisets of the round-robin windows.
    if (stats != nullptr) {
      ++stats->flow_refinements;
    }
    GetRecoveryStats().witness_flow_refinements.fetch_add(
        1, std::memory_order_relaxed);
    std::vector<TupleGroup> groups(1);
    groups[0].count = t;
    for (int k = 0; k < arity; ++k) {
      // Window multiset: individual (offsets[k] + s) mod n, s in [0, t).
      const std::int64_t n = population[k];
      std::vector<Individual> individuals;
      std::vector<std::int64_t> multiplicities;
      for (std::int64_t d = 0; d < n; ++d) {
        std::int64_t count = t / n;
        // Individuals hit by the remainder of the window get one extra.
        std::int64_t rem = t % n;
        std::int64_t position = (d - offsets[k] % n + n) % n;
        if (position < rem) {
          ++count;
        }
        if (count > 0) {
          individuals.push_back(members_of[component_index[k]][d]);
          multiplicities.push_back(count);
        }
      }
      CRSAT_ASSIGN_OR_RETURN(
          groups, RefineGroupsWithValues(groups, individuals, multiplicities,
                                         guard));
    }
    for (const TupleGroup& group : groups) {
      if (group.count != 1) {
        return UnavailableError(
            "witness: duplicate tuples unavoidable at this scale");
      }
      CRSAT_RETURN_IF_ERROR(
          interpretation.AddTuple(compound.rel, group.prefix));
    }
  }
  return interpretation;
}

}  // namespace

Result<Interpretation> AssignTuples(const Expansion& expansion,
                                    const IntegerSolution& solution,
                                    const WitnessOptions& options,
                                    WitnessStats* stats,
                                    ResourceGuard* guard) {
  if (solution.class_counts.size() != expansion.classes().size() ||
      solution.rel_counts.size() != expansion.relationships().size()) {
    return InvalidArgumentError(
        "witness: solution size does not match the expansion");
  }
  BigInt scale(1);
  // The retry budget is the smaller of the caller's request and the
  // process-wide DegradationPolicy rung-2 bound (both default to 8).
  const int max_attempts =
      std::min(options.max_scaling_attempts,
               GetDegradationPolicy().max_witness_rescales);
  for (int attempt = 0; attempt <= max_attempts; ++attempt) {
    if (guard != nullptr) {
      CRSAT_RETURN_IF_ERROR(guard->CheckNow("witness/attempt"));
    }
    if (stats != nullptr) {
      stats->scaling_attempts = attempt;
    }
    if (CRSAT_FAILPOINT("witness/force_rescale")) {
      // Injected duplicate collision: double the scale exactly as if
      // TryBuild had returned kUnavailable at this scale. Firing on
      // every hit exhausts the budget into the honest kUnavailable
      // refusal below — never a wrong witness.
      GetRecoveryStats().witness_rescales.fetch_add(
          1, std::memory_order_relaxed);
      scale *= BigInt(2);
      continue;
    }
    // Convert scaled counts to int64 and enforce the size cap.
    std::vector<std::int64_t> class_counts;
    std::vector<std::int64_t> rel_counts;
    BigInt total;
    bool fits = true;
    auto convert = [&](const std::vector<BigInt>& source,
                       std::vector<std::int64_t>* target) {
      for (const BigInt& value : source) {
        BigInt scaled = value * scale;
        total += scaled;
        Result<std::int64_t> narrow = scaled.ToInt64();
        if (!narrow.ok()) {
          fits = false;
          return;
        }
        target->push_back(narrow.value());
      }
    };
    convert(solution.class_counts, &class_counts);
    if (fits) {
      convert(solution.rel_counts, &rel_counts);
    }
    if (!fits ||
        total > BigInt(static_cast<std::int64_t>(options.max_model_size))) {
      return UnavailableError("witness: model size exceeds max_model_size");
    }

    ScopedMemoryCharge charge(guard, 0);
    Result<Interpretation> built =
        TryBuild(expansion, class_counts, rel_counts, stats, guard, &charge);
    if (built.ok() || built.status().code() != StatusCode::kUnavailable) {
      return built;
    }
    GetRecoveryStats().witness_rescales.fetch_add(1,
                                                  std::memory_order_relaxed);
    scale *= BigInt(2);
  }
  return UnavailableError(
      "witness: retry budget exhausted without a duplicate-free realization");
}

}  // namespace crsat
