#ifndef CRSAT_WITNESS_CERTIFY_H_
#define CRSAT_WITNESS_CERTIFY_H_

// Stage 3 of witness synthesis: certification. This header is the ONLY
// place `CertifiedWitness` is defined, and certify.cc the only place one
// is constructed — `tools/srclint` (certify-non-bypass rule) rejects
// definitions, `friend` declarations, or direct constructions of the
// type anywhere else in src/, so the compiler-level guarantee (private
// constructor, single factory) cannot be quietly widened.

#include <cstdint>
#include <utility>

#include "src/base/result.h"
#include "src/cr/interpretation.h"
#include "src/cr/model_checker.h"
#include "src/cr/schema.h"

namespace crsat {

/// Deterministic accounting of one synthesis run.
struct WitnessStats {
  /// The LCM/scaling stage completed on the overflow-checked int64
  /// (`SmallRational`) fast path.
  bool integer_fast_path = false;
  /// The fast path overflowed and the exact BigInt path ran instead.
  bool integer_exact_fallback = false;
  /// Doublings performed beyond the initial scale during tuple assignment.
  int scaling_attempts = 0;
  /// Compound relationships whose tuples needed the min-congestion
  /// max-flow refinement (round-robin alone collided).
  std::uint64_t flow_refinements = 0;
  /// Size of the certified witness.
  std::uint64_t individuals = 0;
  std::uint64_t tuples = 0;
};

/// A finite interpretation that passed `ModelChecker` with zero
/// violations. The constructor is private and `Certify` is the only
/// factory, so holding a `CertifiedWitness` *is* the certificate: there is
/// no code path that emits an unchecked interpretation as a witness.
class CertifiedWitness {
 public:
  /// Runs `interpretation` through `ModelChecker::CheckModel` and wraps it
  /// on success. Any violation refuses certification with `kInternal`
  /// (an uncertifiable synthesis result is a bug in the pipeline, never a
  /// user error); the message lists every violation, with declaration
  /// sites when `source_map` is supplied.
  static Result<CertifiedWitness> Certify(
      const Schema& schema, Interpretation interpretation, WitnessStats stats,
      const SchemaSourceMap* source_map = nullptr);

  const Interpretation& interpretation() const { return interpretation_; }
  const WitnessStats& stats() const { return stats_; }

  /// Moves the interpretation out (for callers that only need the model,
  /// e.g. the legacy `ModelBuilder` facade).
  Interpretation&& TakeInterpretation() && {
    return std::move(interpretation_);
  }

 private:
  CertifiedWitness(Interpretation interpretation, WitnessStats stats)
      : interpretation_(std::move(interpretation)), stats_(std::move(stats)) {}

  Interpretation interpretation_;
  WitnessStats stats_;
};

}  // namespace crsat

#endif  // CRSAT_WITNESS_CERTIFY_H_
