#ifndef CRSAT_WITNESS_WITNESS_TEXT_H_
#define CRSAT_WITNESS_WITNESS_TEXT_H_

#include <string>

#include "src/witness/witness.h"

namespace crsat {

/// Single-line JSON rendering of a certified witness: certification flag,
/// sizes, synthesis stats, class extensions, and relationship extensions
/// (each tuple in `Schema::RolesOf` order). Only a `CertifiedWitness` can
/// be rendered, so serialized output is certified by construction.
std::string WitnessToJson(const CertifiedWitness& witness);

/// Graphviz DOT rendering: one ellipse node per individual (labeled with
/// its class memberships), one box node per relationship tuple, and one
/// edge per tuple component labeled with the role name.
std::string WitnessToDot(const CertifiedWitness& witness);

}  // namespace crsat

#endif  // CRSAT_WITNESS_WITNESS_TEXT_H_
