#include <algorithm>
#include <set>
#include <utility>

#include "src/cr/schema.h"

namespace crsat {

ClassId SchemaBuilder::AddClass(const std::string& name) {
  classes_.push_back(name);
  return ClassId(static_cast<int>(classes_.size()) - 1);
}

RelationshipId SchemaBuilder::AddRelationship(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& roles) {
  relationships_.push_back(PendingRelationship{name, roles});
  return RelationshipId(static_cast<int>(relationships_.size()) - 1);
}

void SchemaBuilder::AddIsa(const std::string& subclass,
                           const std::string& superclass) {
  isa_.push_back(PendingIsa{subclass, superclass});
}

void SchemaBuilder::SetCardinality(const std::string& cls,
                                   const std::string& rel,
                                   const std::string& role,
                                   Cardinality cardinality) {
  cardinalities_.push_back(PendingCardinality{cls, rel, role, cardinality});
}

void SchemaBuilder::AddDisjointness(const std::vector<std::string>& classes) {
  disjointness_.push_back(PendingDisjointness{classes});
}

void SchemaBuilder::AddCovering(const std::string& covered,
                                const std::vector<std::string>& coverers) {
  coverings_.push_back(PendingCovering{covered, coverers});
}

SchemaBuilder Schema::ToBuilder() const {
  SchemaBuilder builder;
  for (const std::string& name : class_names_) {
    builder.AddClass(name);
  }
  for (size_t r = 0; r < relationship_names_.size(); ++r) {
    std::vector<std::pair<std::string, std::string>> roles;
    for (RoleId role : relationship_roles_[r]) {
      roles.emplace_back(role_names_[role.value],
                         class_names_[role_primary_class_[role.value].value]);
    }
    builder.AddRelationship(relationship_names_[r], roles);
  }
  for (const IsaStatement& isa : isa_statements_) {
    builder.AddIsa(class_names_[isa.subclass.value],
                   class_names_[isa.superclass.value]);
  }
  for (const CardinalityDeclaration& decl : cardinality_declarations_) {
    builder.SetCardinality(class_names_[decl.cls.value],
                           relationship_names_[decl.rel.value],
                           role_names_[decl.role.value], decl.cardinality);
  }
  for (const DisjointnessConstraint& group : disjointness_constraints_) {
    std::vector<std::string> names;
    for (ClassId cls : group.classes) {
      names.push_back(class_names_[cls.value]);
    }
    builder.AddDisjointness(names);
  }
  for (const CoveringConstraint& constraint : covering_constraints_) {
    std::vector<std::string> coverers;
    for (ClassId cls : constraint.coverers) {
      coverers.push_back(class_names_[cls.value]);
    }
    builder.AddCovering(class_names_[constraint.covered.value], coverers);
  }
  return builder;
}

Result<Schema> SchemaBuilder::Build() const {
  Schema schema;
  std::vector<std::string> errors;

  // Classes.
  for (const std::string& name : classes_) {
    if (name.empty()) {
      errors.push_back("class with empty name");
      continue;
    }
    ClassId id(static_cast<int>(schema.class_names_.size()));
    if (!schema.class_by_name_.emplace(name, id).second) {
      errors.push_back("duplicate class name '" + name + "'");
      continue;
    }
    schema.class_names_.push_back(name);
  }

  auto resolve_class = [&](const std::string& name,
                           const std::string& context) -> std::optional<ClassId> {
    auto it = schema.class_by_name_.find(name);
    if (it == schema.class_by_name_.end()) {
      errors.push_back(context + ": unknown class '" + name + "'");
      return std::nullopt;
    }
    return it->second;
  };

  // Relationships and roles.
  for (const PendingRelationship& pending : relationships_) {
    if (pending.name.empty()) {
      errors.push_back("relationship with empty name");
      continue;
    }
    RelationshipId rel_id(static_cast<int>(schema.relationship_names_.size()));
    if (!schema.relationship_by_name_.emplace(pending.name, rel_id).second) {
      errors.push_back("duplicate relationship name '" + pending.name + "'");
      continue;
    }
    if (pending.roles.size() < 2) {
      errors.push_back("relationship '" + pending.name +
                       "' must have arity >= 2 (Definition 2.1)");
      // Still register it so later name lookups don't cascade, but with the
      // roles it has.
    }
    schema.relationship_names_.push_back(pending.name);
    schema.relationship_roles_.emplace_back();
    for (const auto& [role_name, class_name] : pending.roles) {
      if (role_name.empty()) {
        errors.push_back("relationship '" + pending.name +
                         "' has a role with empty name");
        continue;
      }
      RoleId role_id(static_cast<int>(schema.role_names_.size()));
      if (!schema.role_by_name_.emplace(role_name, role_id).second) {
        errors.push_back(
            "role name '" + role_name +
            "' reused; roles must be specific to one relationship "
            "(Definition 2.1)");
        continue;
      }
      std::optional<ClassId> primary = resolve_class(
          class_name, "relationship '" + pending.name + "', role '" +
                          role_name + "'");
      schema.role_names_.push_back(role_name);
      schema.role_relationship_.push_back(rel_id);
      schema.role_primary_class_.push_back(primary.value_or(ClassId(0)));
      schema.role_position_.push_back(
          static_cast<int>(schema.relationship_roles_[rel_id.value].size()));
      schema.relationship_roles_[rel_id.value].push_back(role_id);
    }
  }

  // ISA statements and reflexive-transitive closure (Floyd-Warshall style;
  // schemas are small and the closure is queried heavily downstream).
  const int n = schema.num_classes();
  schema.isa_closure_.assign(n, std::vector<bool>(n, false));
  for (int c = 0; c < n; ++c) {
    schema.isa_closure_[c][c] = true;
  }
  for (const PendingIsa& pending : isa_) {
    std::optional<ClassId> sub = resolve_class(pending.subclass, "isa");
    std::optional<ClassId> super = resolve_class(pending.superclass, "isa");
    if (!sub.has_value() || !super.has_value()) {
      continue;
    }
    schema.isa_statements_.push_back(IsaStatement{*sub, *super});
    schema.isa_closure_[sub->value][super->value] = true;
  }
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      if (!schema.isa_closure_[i][k]) {
        continue;
      }
      for (int j = 0; j < n; ++j) {
        if (schema.isa_closure_[k][j]) {
          schema.isa_closure_[i][j] = true;
        }
      }
    }
  }

  // Cardinality declarations.
  for (const PendingCardinality& pending : cardinalities_) {
    std::optional<ClassId> cls =
        resolve_class(pending.cls, "cardinality declaration");
    auto rel_it = schema.relationship_by_name_.find(pending.rel);
    if (rel_it == schema.relationship_by_name_.end()) {
      errors.push_back("cardinality declaration: unknown relationship '" +
                       pending.rel + "'");
      continue;
    }
    auto role_it = schema.role_by_name_.find(pending.role);
    if (role_it == schema.role_by_name_.end()) {
      errors.push_back("cardinality declaration: unknown role '" +
                       pending.role + "'");
      continue;
    }
    if (!cls.has_value()) {
      continue;
    }
    RelationshipId rel = rel_it->second;
    RoleId role = role_it->second;
    if (schema.RelationshipOf(role) != rel) {
      errors.push_back("cardinality declaration: role '" + pending.role +
                       "' does not belong to relationship '" + pending.rel +
                       "'");
      continue;
    }
    ClassId primary = schema.PrimaryClass(role);
    if (!schema.IsSubclassOf(*cls, primary)) {
      errors.push_back(
          "cardinality declaration on ('" + pending.cls + "', '" +
          pending.rel + "', '" + pending.role + "'): class must be a "
          "subclass of the role's primary class '" +
          schema.ClassName(primary) + "' (Definition 2.1)");
      continue;
    }
    if (!permit_empty_ranges_ && pending.cardinality.max.has_value() &&
        *pending.cardinality.max < pending.cardinality.min) {
      errors.push_back("cardinality declaration on ('" + pending.cls +
                       "', '" + pending.rel + "', '" + pending.role +
                       "'): max < min");
      continue;
    }
    auto key = std::make_tuple(cls->value, rel.value, role.value);
    if (!schema.cardinality_by_key_.emplace(key, pending.cardinality).second) {
      errors.push_back("duplicate cardinality declaration on ('" +
                       pending.cls + "', '" + pending.rel + "', '" +
                       pending.role + "')");
      continue;
    }
    schema.cardinality_declarations_.push_back(
        CardinalityDeclaration{*cls, rel, role, pending.cardinality});
  }

  // Disjointness groups.
  for (const PendingDisjointness& pending : disjointness_) {
    if (pending.classes.size() < 2) {
      errors.push_back("disjointness group needs at least two classes");
      continue;
    }
    DisjointnessConstraint group;
    std::set<int> seen;
    bool valid = true;
    for (const std::string& name : pending.classes) {
      std::optional<ClassId> cls = resolve_class(name, "disjointness");
      if (!cls.has_value()) {
        valid = false;
        continue;
      }
      if (!seen.insert(cls->value).second) {
        errors.push_back("disjointness group repeats class '" + name + "'");
        valid = false;
        continue;
      }
      group.classes.push_back(*cls);
    }
    if (valid) {
      schema.disjointness_constraints_.push_back(std::move(group));
    }
  }

  // Covering constraints.
  for (const PendingCovering& pending : coverings_) {
    std::optional<ClassId> covered = resolve_class(pending.covered, "cover");
    if (pending.coverers.empty()) {
      errors.push_back("covering of '" + pending.covered +
                       "' needs at least one coverer");
      continue;
    }
    CoveringConstraint constraint;
    bool valid = covered.has_value();
    if (covered.has_value()) {
      constraint.covered = *covered;
    }
    for (const std::string& name : pending.coverers) {
      std::optional<ClassId> cls = resolve_class(name, "cover");
      if (!cls.has_value()) {
        valid = false;
        continue;
      }
      constraint.coverers.push_back(*cls);
    }
    if (valid) {
      schema.covering_constraints_.push_back(std::move(constraint));
    }
  }

  if (!errors.empty()) {
    std::string message = "schema validation failed:";
    for (const std::string& error : errors) {
      message += "\n  - " + error;
    }
    return InvalidArgumentError(std::move(message));
  }
  return schema;
}

}  // namespace crsat
