#ifndef CRSAT_CR_SOURCE_LOCATION_H_
#define CRSAT_CR_SOURCE_LOCATION_H_

#include <string>

namespace crsat {

/// A 1-based line/column position in schema DSL text. Schemas built
/// programmatically (via `SchemaBuilder`) have no locations; `IsKnown()`
/// distinguishes the two so diagnostics degrade gracefully.
struct SourceLocation {
  int line = 0;
  int column = 0;

  bool IsKnown() const { return line > 0; }

  /// Renders "line:column", or "?" when unknown.
  std::string ToString() const {
    if (!IsKnown()) {
      return "?";
    }
    return std::to_string(line) + ":" + std::to_string(column);
  }

  bool operator==(const SourceLocation& other) const {
    return line == other.line && column == other.column;
  }
};

}  // namespace crsat

#endif  // CRSAT_CR_SOURCE_LOCATION_H_
