#ifndef CRSAT_CR_STATE_TEXT_H_
#define CRSAT_CR_STATE_TEXT_H_

#include <string>
#include <string_view>

#include "src/base/result.h"
#include "src/cr/interpretation.h"
#include "src/cr/schema.h"

namespace crsat {

/// A parsed database state together with its declared name and the name of
/// the schema it claims to instantiate.
struct NamedState {
  std::string name;
  std::string schema_name;
  Interpretation interpretation;
};

/// Parses the crsat database-state DSL against `schema` (comments: `//` or
/// `#`). The grammar:
///
///   state MeetingDay of Meeting {
///     individual John, Mary, talk1, talk2;
///     class Speaker: John, Mary;
///     class Discussant: John, Mary;
///     class Talk: talk1, talk2;
///     rel Holds: (John, talk1), (Mary, talk2);
///     rel Participates: (John, talk2), (Mary, talk1);
///   }
///
/// Tuples list one individual per role, in the relationship's declared
/// role order. Unknown classes/relationships/individuals, arity
/// mismatches, and duplicate tuples are reported as errors. Whether the
/// state is a *model* of the schema is a separate question — run
/// `ModelChecker::Violations` on the result (this is the integrity-check
/// workflow of `crsat_cli checkstate`).
Result<NamedState> ParseState(std::string_view text, const Schema& schema);

/// Renders an interpretation in the state DSL (round-trips through
/// `ParseState` up to formatting; unnamed individuals get their default
/// "d<i>" names).
std::string StateToText(const Interpretation& interpretation,
                        const std::string& name,
                        const std::string& schema_name);

}  // namespace crsat

#endif  // CRSAT_CR_STATE_TEXT_H_
