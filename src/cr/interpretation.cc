#include "src/cr/interpretation.h"

namespace crsat {

Interpretation::Interpretation(const Schema& schema)
    : schema_(&schema),
      class_extensions_(schema.num_classes()),
      relationship_extensions_(schema.num_relationships()) {}

Individual Interpretation::AddIndividual(std::string name) {
  individual_names_.push_back(std::move(name));
  return static_cast<Individual>(individual_names_.size()) - 1;
}

std::string Interpretation::IndividualName(Individual individual) const {
  const std::string& name = individual_names_[individual];
  if (!name.empty()) {
    return name;
  }
  return "d" + std::to_string(individual);
}

Status Interpretation::AddToClass(ClassId cls, Individual individual) {
  if (cls.value < 0 || cls.value >= schema_->num_classes()) {
    return InvalidArgumentError("AddToClass: class id out of range");
  }
  if (individual < 0 || individual >= domain_size()) {
    return InvalidArgumentError("AddToClass: individual out of range");
  }
  class_extensions_[cls.value].insert(individual);
  return OkStatus();
}

Status Interpretation::AddTuple(RelationshipId rel,
                                const std::vector<Individual>& components) {
  if (rel.value < 0 || rel.value >= schema_->num_relationships()) {
    return InvalidArgumentError("AddTuple: relationship id out of range");
  }
  if (components.size() != schema_->RolesOf(rel).size()) {
    return InvalidArgumentError(
        "AddTuple: component count does not match the arity of '" +
        schema_->RelationshipName(rel) + "'");
  }
  for (Individual individual : components) {
    if (individual < 0 || individual >= domain_size()) {
      return InvalidArgumentError("AddTuple: individual out of range");
    }
  }
  if (!relationship_extensions_[rel.value].insert(components).second) {
    return AlreadyExistsError(
        "AddTuple: duplicate tuple in relationship '" +
        schema_->RelationshipName(rel) + "' (extensions are sets)");
  }
  return OkStatus();
}

bool Interpretation::IsInstanceOf(ClassId cls, Individual individual) const {
  return class_extensions_[cls.value].count(individual) > 0;
}

std::uint64_t Interpretation::CountTuplesAt(RelationshipId rel, int position,
                                            Individual individual) const {
  std::uint64_t count = 0;
  for (const std::vector<Individual>& tuple :
       relationship_extensions_[rel.value]) {
    if (tuple[position] == individual) {
      ++count;
    }
  }
  return count;
}

std::string Interpretation::ToString() const {
  std::string text;
  for (int c = 0; c < schema_->num_classes(); ++c) {
    text += schema_->ClassName(ClassId(c)) + " = {";
    bool first = true;
    for (Individual individual : class_extensions_[c]) {
      if (!first) {
        text += ", ";
      }
      first = false;
      text += IndividualName(individual);
    }
    text += "}\n";
  }
  for (int r = 0; r < schema_->num_relationships(); ++r) {
    RelationshipId rel(r);
    text += schema_->RelationshipName(rel) + " = {";
    bool first_tuple = true;
    for (const std::vector<Individual>& tuple : relationship_extensions_[r]) {
      if (!first_tuple) {
        text += ", ";
      }
      first_tuple = false;
      text += "<";
      const std::vector<RoleId>& roles = schema_->RolesOf(rel);
      for (size_t k = 0; k < tuple.size(); ++k) {
        if (k > 0) {
          text += ", ";
        }
        text += schema_->RoleName(roles[k]) + ": " + IndividualName(tuple[k]);
      }
      text += ">";
    }
    text += "}\n";
  }
  return text;
}

}  // namespace crsat
