#include "src/cr/schema_text.h"

#include "src/cr/text_lexer.h"

#include <utility>
#include <vector>

namespace crsat {

namespace {

using internal_text::Lexer;
using internal_text::Token;
using internal_text::TokenCursor;
using internal_text::TokenKind;

class Parser : private TokenCursor {
 public:
  Parser(std::vector<Token> tokens, const ParseSchemaOptions& options)
      : TokenCursor(std::move(tokens)) {
    builder_.set_permit_empty_ranges(options.permit_empty_ranges);
  }

  Result<NamedSchema> Parse() {
    CRSAT_RETURN_IF_ERROR(ExpectKeyword("schema"));
    CRSAT_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("schema name"));
    CRSAT_RETURN_IF_ERROR(ExpectPunct("{"));
    while (!IsPunct("}")) {
      CRSAT_RETURN_IF_ERROR(ParseDeclaration());
    }
    CRSAT_RETURN_IF_ERROR(ExpectPunct("}"));
    if (Current().kind != TokenKind::kEnd) {
      return ErrorHere("expected end of input after '}'");
    }
    CRSAT_ASSIGN_OR_RETURN(Schema schema, builder_.Build());
    // A successful Build keeps every pending declaration, so the location
    // vectors recorded during parsing line up 1:1 with the schema's
    // declaration lists.
    return NamedSchema{std::move(name), std::move(schema),
                       std::move(source_map_)};
  }

 private:
  SourceLocation Here() const {
    return SourceLocation{Current().line, Current().column};
  }

  Status ParseDeclaration() {
    SourceLocation loc = Here();
    CRSAT_ASSIGN_OR_RETURN(std::string keyword,
                           ExpectIdentifier("declaration keyword"));
    if (keyword == "class") {
      return ParseClassDeclaration();
    }
    if (keyword == "isa") {
      return ParseIsaDeclaration(loc);
    }
    if (keyword == "relationship") {
      return ParseRelationshipDeclaration(loc);
    }
    if (keyword == "card") {
      return ParseCardDeclaration(loc);
    }
    if (keyword == "disjoint") {
      return ParseDisjointDeclaration(loc);
    }
    if (keyword == "cover") {
      return ParseCoverDeclaration(loc);
    }
    return ErrorHere("unknown declaration keyword '" + keyword + "'");
  }

  Status ParseClassDeclaration() {
    while (true) {
      SourceLocation loc = Here();
      CRSAT_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("class name"));
      builder_.AddClass(name);
      source_map_.classes.push_back(loc);
      if (IsPunct(",")) {
        Consume();
        continue;
      }
      return ExpectPunct(";");
    }
  }

  Status ParseIsaDeclaration(SourceLocation loc) {
    CRSAT_ASSIGN_OR_RETURN(std::string sub, ExpectIdentifier("subclass name"));
    CRSAT_RETURN_IF_ERROR(ExpectPunct("<"));
    CRSAT_ASSIGN_OR_RETURN(std::string super,
                           ExpectIdentifier("superclass name"));
    builder_.AddIsa(sub, super);
    source_map_.isa_statements.push_back(loc);
    return ExpectPunct(";");
  }

  Status ParseRelationshipDeclaration(SourceLocation loc) {
    CRSAT_ASSIGN_OR_RETURN(std::string name,
                           ExpectIdentifier("relationship name"));
    CRSAT_RETURN_IF_ERROR(ExpectPunct("("));
    std::vector<std::pair<std::string, std::string>> roles;
    while (true) {
      SourceLocation role_loc = Here();
      CRSAT_ASSIGN_OR_RETURN(std::string role, ExpectIdentifier("role name"));
      CRSAT_RETURN_IF_ERROR(ExpectPunct(":"));
      CRSAT_ASSIGN_OR_RETURN(std::string cls,
                             ExpectIdentifier("primary class name"));
      roles.emplace_back(std::move(role), std::move(cls));
      source_map_.roles.push_back(role_loc);
      if (IsPunct(",")) {
        Consume();
        continue;
      }
      break;
    }
    CRSAT_RETURN_IF_ERROR(ExpectPunct(")"));
    builder_.AddRelationship(name, roles);
    source_map_.relationships.push_back(loc);
    return ExpectPunct(";");
  }

  Status ParseCardDeclaration(SourceLocation loc) {
    CRSAT_ASSIGN_OR_RETURN(std::string cls, ExpectIdentifier("class name"));
    CRSAT_RETURN_IF_ERROR(ExpectKeyword("in"));
    CRSAT_ASSIGN_OR_RETURN(std::string rel,
                           ExpectIdentifier("relationship name"));
    CRSAT_RETURN_IF_ERROR(ExpectPunct("."));
    CRSAT_ASSIGN_OR_RETURN(std::string role, ExpectIdentifier("role name"));
    CRSAT_RETURN_IF_ERROR(ExpectPunct("="));
    CRSAT_RETURN_IF_ERROR(ExpectPunct("("));
    CRSAT_ASSIGN_OR_RETURN(std::uint64_t min, ExpectNumber("minimum"));
    CRSAT_RETURN_IF_ERROR(ExpectPunct(","));
    Cardinality cardinality;
    cardinality.min = min;
    if (IsPunct("*")) {
      Consume();
    } else {
      CRSAT_ASSIGN_OR_RETURN(std::uint64_t max, ExpectNumber("maximum"));
      cardinality.max = max;
    }
    CRSAT_RETURN_IF_ERROR(ExpectPunct(")"));
    builder_.SetCardinality(cls, rel, role, cardinality);
    source_map_.cardinality_declarations.push_back(loc);
    return ExpectPunct(";");
  }

  Status ParseDisjointDeclaration(SourceLocation loc) {
    std::vector<std::string> classes;
    while (true) {
      CRSAT_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("class name"));
      classes.push_back(std::move(name));
      if (IsPunct(",")) {
        Consume();
        continue;
      }
      break;
    }
    builder_.AddDisjointness(classes);
    source_map_.disjointness_constraints.push_back(loc);
    return ExpectPunct(";");
  }

  Status ParseCoverDeclaration(SourceLocation loc) {
    CRSAT_ASSIGN_OR_RETURN(std::string covered,
                           ExpectIdentifier("covered class name"));
    CRSAT_RETURN_IF_ERROR(ExpectKeyword("by"));
    std::vector<std::string> coverers;
    while (true) {
      CRSAT_ASSIGN_OR_RETURN(std::string name,
                             ExpectIdentifier("coverer class name"));
      coverers.push_back(std::move(name));
      if (IsPunct(",")) {
        Consume();
        continue;
      }
      break;
    }
    builder_.AddCovering(covered, coverers);
    source_map_.covering_constraints.push_back(loc);
    return ExpectPunct(";");
  }

  SchemaBuilder builder_;
  SchemaSourceMap source_map_;
};

}  // namespace

Result<NamedSchema> ParseSchema(std::string_view text) {
  return ParseSchema(text, ParseSchemaOptions{});
}

Result<NamedSchema> ParseSchema(std::string_view text,
                                const ParseSchemaOptions& options) {
  Lexer lexer(text);
  CRSAT_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens), options);
  return parser.Parse();
}

std::string SchemaToText(const Schema& schema, const std::string& name) {
  std::string text = "schema " + name + " {\n";
  for (ClassId cls : schema.AllClasses()) {
    text += "  class " + schema.ClassName(cls) + ";\n";
  }
  for (const IsaStatement& isa : schema.isa_statements()) {
    text += "  isa " + schema.ClassName(isa.subclass) + " < " +
            schema.ClassName(isa.superclass) + ";\n";
  }
  for (RelationshipId rel : schema.AllRelationships()) {
    text += "  relationship " + schema.RelationshipName(rel) + "(";
    const std::vector<RoleId>& roles = schema.RolesOf(rel);
    for (size_t k = 0; k < roles.size(); ++k) {
      if (k > 0) {
        text += ", ";
      }
      text += schema.RoleName(roles[k]) + ": " +
              schema.ClassName(schema.PrimaryClass(roles[k]));
    }
    text += ");\n";
  }
  for (const CardinalityDeclaration& decl :
       schema.cardinality_declarations()) {
    text += "  card " + schema.ClassName(decl.cls) + " in " +
            schema.RelationshipName(decl.rel) + "." +
            schema.RoleName(decl.role) + " = (" +
            std::to_string(decl.cardinality.min) + ", ";
    text += decl.cardinality.max.has_value()
                ? std::to_string(*decl.cardinality.max)
                : "*";
    text += ");\n";
  }
  for (const DisjointnessConstraint& group :
       schema.disjointness_constraints()) {
    text += "  disjoint ";
    for (size_t i = 0; i < group.classes.size(); ++i) {
      if (i > 0) {
        text += ", ";
      }
      text += schema.ClassName(group.classes[i]);
    }
    text += ";\n";
  }
  for (const CoveringConstraint& constraint : schema.covering_constraints()) {
    text += "  cover " + schema.ClassName(constraint.covered) + " by ";
    for (size_t i = 0; i < constraint.coverers.size(); ++i) {
      if (i > 0) {
        text += ", ";
      }
      text += schema.ClassName(constraint.coverers[i]);
    }
    text += ";\n";
  }
  text += "}\n";
  return text;
}

std::string SchemaToDot(const Schema& schema, const std::string& name) {
  std::string dot = "digraph \"" + name + "\" {\n";
  dot += "  rankdir=TB;\n";
  dot += "  node [fontname=\"Helvetica\"];\n";

  for (ClassId cls : schema.AllClasses()) {
    dot += "  \"" + schema.ClassName(cls) + "\" [shape=box];\n";
  }
  for (RelationshipId rel : schema.AllRelationships()) {
    dot += "  \"" + schema.RelationshipName(rel) + "\" [shape=diamond];\n";
  }

  // ISA: solid arrow from subclass to superclass (the paper's Figure 1/2
  // arrow direction).
  for (const IsaStatement& isa : schema.isa_statements()) {
    dot += "  \"" + schema.ClassName(isa.subclass) + "\" -> \"" +
           schema.ClassName(isa.superclass) + "\" [arrowhead=onormal];\n";
  }

  // Role edges: primary class to relationship, labeled with role name and
  // the primary class's declared cardinality.
  for (RelationshipId rel : schema.AllRelationships()) {
    for (RoleId role : schema.RolesOf(rel)) {
      ClassId primary = schema.PrimaryClass(role);
      Cardinality cardinality = schema.GetCardinality(primary, rel, role);
      dot += "  \"" + schema.ClassName(primary) + "\" -> \"" +
             schema.RelationshipName(rel) + "\" [dir=none, label=\"" +
             schema.RoleName(role);
      if (!cardinality.IsDefault()) {
        dot += " " + cardinality.ToString();
      }
      dot += "\"];\n";
    }
  }

  // Refinements (declarations on proper subclasses): dashed edges, as in
  // the paper's Figure 2 (Discussant -- Holds).
  for (const CardinalityDeclaration& decl :
       schema.cardinality_declarations()) {
    if (decl.cls == schema.PrimaryClass(decl.role)) {
      continue;
    }
    dot += "  \"" + schema.ClassName(decl.cls) + "\" -> \"" +
           schema.RelationshipName(decl.rel) +
           "\" [dir=none, style=dashed, label=\"" + schema.RoleName(decl.role) +
           " " + decl.cardinality.ToString() + "\"];\n";
  }

  // Section 5 extensions as annotation nodes.
  int annotation = 0;
  for (const DisjointnessConstraint& group :
       schema.disjointness_constraints()) {
    std::string node = "__disjoint" + std::to_string(annotation++);
    dot += "  \"" + node +
           "\" [shape=circle, label=\"x\", width=0.25, fixedsize=true];\n";
    for (ClassId cls : group.classes) {
      dot += "  \"" + node + "\" -> \"" + schema.ClassName(cls) +
             "\" [dir=none, style=dotted];\n";
    }
  }
  for (const CoveringConstraint& constraint : schema.covering_constraints()) {
    std::string node = "__cover" + std::to_string(annotation++);
    dot += "  \"" + node +
           "\" [shape=circle, label=\"U\", width=0.25, fixedsize=true];\n";
    dot += "  \"" + schema.ClassName(constraint.covered) + "\" -> \"" + node +
           "\" [dir=none, style=dotted];\n";
    for (ClassId cls : constraint.coverers) {
      dot += "  \"" + node + "\" -> \"" + schema.ClassName(cls) +
             "\" [style=dotted];\n";
    }
  }

  dot += "}\n";
  return dot;
}

}  // namespace crsat
