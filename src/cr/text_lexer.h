#ifndef CRSAT_CR_TEXT_LEXER_H_
#define CRSAT_CR_TEXT_LEXER_H_

// Shared tokenizer for the crsat text formats (schema DSL, database-state
// DSL). Internal: not part of the public API.

#include <cctype>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/result.h"

namespace crsat {
namespace internal_text {

enum class TokenKind {
  kIdentifier,
  kNumber,
  kPunct,  // Single-character punctuation.
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int line = 0;
  int column = 0;
};

/// Tokenizes identifiers, decimal numbers, and single-character
/// punctuation from `{}(),;:.=<*`. Comments run from `//` or `#` to end of
/// line. Returns a trailing kEnd token.
class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespaceAndComments();
      if (pos_ >= text_.size()) {
        tokens.push_back(Token{TokenKind::kEnd, "", line_, column_});
        return tokens;
      }
      char c = text_[pos_];
      Token token;
      token.line = line_;
      token.column = column_;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        token.kind = TokenKind::kIdentifier;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_')) {
          token.text += Advance();
        }
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        token.kind = TokenKind::kNumber;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          token.text += Advance();
        }
      } else if (std::string_view("{}(),;:.=<*").find(c) !=
                 std::string_view::npos) {
        token.kind = TokenKind::kPunct;
        token.text = std::string(1, Advance());
      } else {
        // Adversarial inputs routinely contain non-ASCII and unprintable
        // bytes; describe them in escaped form so the diagnostic itself
        // stays printable ASCII.
        return ParseError("line " + std::to_string(line_) + ":" +
                          std::to_string(column_) +
                          ": unexpected character " + DescribeByte(c));
      }
      tokens.push_back(std::move(token));
    }
  }

 private:
  static std::string DescribeByte(char c) {
    const unsigned char byte = static_cast<unsigned char>(c);
    if (byte >= 0x20 && byte < 0x7f) {
      return "'" + std::string(1, c) + "'";
    }
    static constexpr char kHex[] = "0123456789abcdef";
    std::string escaped = "'\\x";
    escaped += kHex[byte >> 4];
    escaped += kHex[byte & 0xf];
    escaped += "'";
    return escaped;
  }

  char Advance() {
    char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '#' || (c == '/' && pos_ + 1 < text_.size() &&
                              text_[pos_ + 1] == '/')) {
        while (pos_ < text_.size() && text_[pos_] != '\n') {
          Advance();
        }
      } else {
        return;
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

/// Shared cursor helpers for recursive-descent parsers over `Token`s.
///
/// Hardened against runaway parsers: the token stream always ends in a
/// `kEnd` sentinel (the lexer guarantees one) and the cursor refuses to
/// advance past it, so `Current()` stays in bounds no matter how an
/// error-recovery path mis-counts `Consume()` calls. A defensively
/// constructed cursor with *no* tokens behaves as an immediate `kEnd`.
class TokenCursor {
 public:
  explicit TokenCursor(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {
    if (tokens_.empty()) {
      tokens_.push_back(Token{});  // kEnd sentinel; never trust callers.
    }
  }

  const Token& Current() const { return tokens_[index_]; }

  bool IsPunct(std::string_view punct) const {
    return Current().kind == TokenKind::kPunct && Current().text == punct;
  }

  void Consume() { Advance(); }

  Status ExpectPunct(std::string_view punct) {
    if (!IsPunct(punct)) {
      return ErrorHere("expected '" + std::string(punct) + "'");
    }
    Advance();
    return OkStatus();
  }

  Status ExpectKeyword(std::string_view keyword) {
    if (Current().kind != TokenKind::kIdentifier ||
        Current().text != keyword) {
      return ErrorHere("expected keyword '" + std::string(keyword) + "'");
    }
    Advance();
    return OkStatus();
  }

  Result<std::string> ExpectIdentifier(std::string_view what) {
    if (Current().kind != TokenKind::kIdentifier) {
      return ErrorHere("expected " + std::string(what));
    }
    std::string text = Current().text;
    Advance();
    return text;
  }

  Result<std::uint64_t> ExpectNumber(std::string_view what) {
    if (Current().kind != TokenKind::kNumber) {
      return ErrorHere("expected " + std::string(what) + " (a number)");
    }
    std::string text = Current().text;
    Advance();
    std::uint64_t value = 0;
    for (char c : text) {
      if (value > (~std::uint64_t{0} - static_cast<std::uint64_t>(c - '0')) /
                      10) {
        return ErrorHere("number out of range: " + text);
      }
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return value;
  }

  Status ErrorHere(std::string message) const {
    const Token& token = Current();
    std::string where = "line " + std::to_string(token.line) + ":" +
                        std::to_string(token.column);
    std::string got = token.kind == TokenKind::kEnd
                          ? "end of input"
                          : "'" + token.text + "'";
    return crsat::ParseError(where + ": " + message + ", got " + got);
  }

 private:
  // Never advances past the trailing kEnd sentinel: a parser that keeps
  // consuming at end-of-input sees kEnd forever instead of reading past
  // the buffer.
  void Advance() {
    if (index_ + 1 < tokens_.size()) {
      ++index_;
    }
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
};

}  // namespace internal_text
}  // namespace crsat

#endif  // CRSAT_CR_TEXT_LEXER_H_
