#include "src/cr/schema.h"

namespace crsat {

std::string Cardinality::ToString() const {
  std::string text = "(" + std::to_string(min) + ", ";
  text += max.has_value() ? std::to_string(*max) : "*";
  text += ")";
  return text;
}

std::optional<ClassId> Schema::FindClass(const std::string& name) const {
  auto it = class_by_name_.find(name);
  if (it == class_by_name_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<RelationshipId> Schema::FindRelationship(
    const std::string& name) const {
  auto it = relationship_by_name_.find(name);
  if (it == relationship_by_name_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<RoleId> Schema::FindRole(const std::string& name) const {
  auto it = role_by_name_.find(name);
  if (it == role_by_name_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<ClassId> Schema::SubclassesOf(ClassId cls) const {
  std::vector<ClassId> result;
  for (int c = 0; c < num_classes(); ++c) {
    if (isa_closure_[c][cls.value]) {
      result.push_back(ClassId(c));
    }
  }
  return result;
}

std::vector<ClassId> Schema::SuperclassesOf(ClassId cls) const {
  std::vector<ClassId> result;
  for (int c = 0; c < num_classes(); ++c) {
    if (isa_closure_[cls.value][c]) {
      result.push_back(ClassId(c));
    }
  }
  return result;
}

Cardinality Schema::GetCardinality(ClassId cls, RelationshipId rel,
                                   RoleId role) const {
  auto it = cardinality_by_key_.find(
      std::make_tuple(cls.value, rel.value, role.value));
  if (it == cardinality_by_key_.end()) {
    return Cardinality{};
  }
  return it->second;
}

bool Schema::AreDeclaredDisjoint(ClassId a, ClassId b) const {
  if (a == b) {
    return false;
  }
  for (const DisjointnessConstraint& group : disjointness_constraints_) {
    bool has_a = false;
    bool has_b = false;
    for (ClassId c : group.classes) {
      has_a = has_a || c == a;
      has_b = has_b || c == b;
    }
    if (has_a && has_b) {
      return true;
    }
  }
  return false;
}

std::vector<ClassId> Schema::AllClasses() const {
  std::vector<ClassId> result;
  result.reserve(num_classes());
  for (int c = 0; c < num_classes(); ++c) {
    result.push_back(ClassId(c));
  }
  return result;
}

std::vector<RelationshipId> Schema::AllRelationships() const {
  std::vector<RelationshipId> result;
  result.reserve(num_relationships());
  for (int r = 0; r < num_relationships(); ++r) {
    result.push_back(RelationshipId(r));
  }
  return result;
}

}  // namespace crsat
