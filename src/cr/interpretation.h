#ifndef CRSAT_CR_INTERPRETATION_H_
#define CRSAT_CR_INTERPRETATION_H_

#include <set>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/cr/schema.h"

namespace crsat {

/// An element of an interpretation's domain, identified by a dense index.
using Individual = int;

/// A (finite) interpretation of a CR-schema: a domain plus extensions for
/// every class and relationship (Section 2 of the paper).
///
/// Relationship instances are labeled tuples; here a tuple is stored as a
/// vector of individuals aligned with the relationship's role order
/// (`Schema::RolesOf`). An `Interpretation` is just data; whether it is a
/// *model* of the schema is decided by `ModelChecker`.
class Interpretation {
 public:
  /// Creates an interpretation of `schema` with an empty domain. The schema
  /// must outlive the interpretation.
  explicit Interpretation(const Schema& schema);

  /// Adds a fresh individual with an optional display name and returns it.
  Individual AddIndividual(std::string name = "");

  /// Number of domain elements.
  int domain_size() const { return static_cast<int>(individual_names_.size()); }

  /// Display name of an individual ("d<i>" when unnamed).
  std::string IndividualName(Individual individual) const;

  /// Asserts `individual` is an instance of `cls`. Idempotent.
  /// Fails if the individual or class is out of range.
  Status AddToClass(ClassId cls, Individual individual);

  /// Adds a tuple to `rel`'s extension. `components` must have one
  /// individual per role, in `Schema::RolesOf(rel)` order. Duplicate tuples
  /// are rejected (extensions are sets).
  Status AddTuple(RelationshipId rel, const std::vector<Individual>& components);

  /// True iff `individual` is in the extension of `cls`.
  bool IsInstanceOf(ClassId cls, Individual individual) const;

  /// The extension of `cls`, ascending.
  const std::set<Individual>& ClassExtension(ClassId cls) const {
    return class_extensions_[cls.value];
  }

  /// The extension of `rel` (each element aligned with the role order).
  const std::set<std::vector<Individual>>& RelationshipExtension(
      RelationshipId rel) const {
    return relationship_extensions_[rel.value];
  }

  /// Number of tuples in `rel`'s extension whose component at role
  /// position `position` is `individual`.
  std::uint64_t CountTuplesAt(RelationshipId rel, int position,
                              Individual individual) const;

  const Schema& schema() const { return *schema_; }

  /// Multi-line rendering of all extensions (used by the Figure 6 bench).
  std::string ToString() const;

 private:
  const Schema* schema_;
  std::vector<std::string> individual_names_;
  std::vector<std::set<Individual>> class_extensions_;
  std::vector<std::set<std::vector<Individual>>> relationship_extensions_;
};

}  // namespace crsat

#endif  // CRSAT_CR_INTERPRETATION_H_
