#ifndef CRSAT_CR_SCHEMA_TEXT_H_
#define CRSAT_CR_SCHEMA_TEXT_H_

#include <string>
#include <string_view>

#include "src/base/result.h"
#include "src/cr/schema.h"

namespace crsat {

/// A schema together with the name it was declared under.
struct NamedSchema {
  std::string name;
  Schema schema;
};

/// Parses the crsat schema DSL. The grammar (comments: `//` or `#` to end
/// of line):
///
///   schema Meeting {
///     class Speaker, Discussant, Talk;
///     isa Discussant < Speaker;
///     relationship Holds(U1: Speaker, U2: Talk);
///     relationship Participates(U3: Discussant, U4: Talk);
///     card Speaker in Holds.U1 = (1, *);      // * means "no maximum"
///     card Discussant in Holds.U1 = (0, 2);   // refinement on a subclass
///     card Talk in Holds.U2 = (1, 1);
///     card Discussant in Participates.U3 = (1, 1);
///     card Talk in Participates.U4 = (1, *);
///     disjoint Speaker, Talk;                 // Section 5 extension
///     cover Speaker by Discussant;            // Section 5 extension
///   }
///
/// All well-formedness rules of `SchemaBuilder` apply; errors carry
/// line/column information for syntax problems.
Result<NamedSchema> ParseSchema(std::string_view text);

/// Renders `schema` back into DSL text that `ParseSchema` accepts
/// (round-trips up to formatting).
std::string SchemaToText(const Schema& schema, const std::string& name);

/// Renders `schema` as a Graphviz DOT digraph using the paper's ER-diagram
/// conventions (Figure 2): classes as boxes, relationships as diamonds,
/// role edges labeled with the role name and its `(min, max)`, ISA as
/// solid arrows, subclass cardinality *refinements* as dashed labeled
/// edges, and disjointness/covering as annotation nodes. Pipe through
/// `dot -Tsvg` to visualize.
std::string SchemaToDot(const Schema& schema, const std::string& name);

}  // namespace crsat

#endif  // CRSAT_CR_SCHEMA_TEXT_H_
