#ifndef CRSAT_CR_SCHEMA_TEXT_H_
#define CRSAT_CR_SCHEMA_TEXT_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/base/result.h"
#include "src/cr/schema.h"
#include "src/cr/source_location.h"

namespace crsat {

/// Source positions for every declaration of a parsed schema, so
/// diagnostics (src/analysis/) can point back into the DSL text. Each
/// vector parallels the corresponding `Schema` accessor: entries are
/// indexed by id value (classes, relationships, roles) or declaration
/// order (ISA, cardinality, disjointness, covering). All vectors are empty
/// for schemas that were built programmatically.
struct SchemaSourceMap {
  std::vector<SourceLocation> classes;
  std::vector<SourceLocation> relationships;
  std::vector<SourceLocation> roles;
  std::vector<SourceLocation> isa_statements;
  std::vector<SourceLocation> cardinality_declarations;
  std::vector<SourceLocation> disjointness_constraints;
  std::vector<SourceLocation> covering_constraints;
};

/// A schema together with the name it was declared under and (when parsed
/// from text) the source positions of its declarations.
struct NamedSchema {
  std::string name;
  Schema schema;
  SchemaSourceMap source_map;
};

/// Knobs for `ParseSchema`.
struct ParseSchemaOptions {
  /// Accept `card ... = (m, n)` with `m > n`. Such a declaration forces
  /// the class empty; the default strict mode rejects it at build time,
  /// while the lint pipeline parses leniently so the `empty-range` rule
  /// can report it with a source position instead.
  bool permit_empty_ranges = false;
};

/// Parses the crsat schema DSL. The grammar (comments: `//` or `#` to end
/// of line):
///
///   schema Meeting {
///     class Speaker, Discussant, Talk;
///     isa Discussant < Speaker;
///     relationship Holds(U1: Speaker, U2: Talk);
///     relationship Participates(U3: Discussant, U4: Talk);
///     card Speaker in Holds.U1 = (1, *);      // * means "no maximum"
///     card Discussant in Holds.U1 = (0, 2);   // refinement on a subclass
///     card Talk in Holds.U2 = (1, 1);
///     card Discussant in Participates.U3 = (1, 1);
///     card Talk in Participates.U4 = (1, *);
///     disjoint Speaker, Talk;                 // Section 5 extension
///     cover Speaker by Discussant;            // Section 5 extension
///   }
///
/// All well-formedness rules of `SchemaBuilder` apply; errors carry
/// line/column information for syntax problems. The returned
/// `NamedSchema::source_map` records where each declaration appeared.
Result<NamedSchema> ParseSchema(std::string_view text);

/// As above, with parsing knobs (see `ParseSchemaOptions`).
Result<NamedSchema> ParseSchema(std::string_view text,
                                const ParseSchemaOptions& options);

/// Renders `schema` back into DSL text that `ParseSchema` accepts
/// (round-trips up to formatting).
std::string SchemaToText(const Schema& schema, const std::string& name);

/// Renders `schema` as a Graphviz DOT digraph using the paper's ER-diagram
/// conventions (Figure 2): classes as boxes, relationships as diamonds,
/// role edges labeled with the role name and its `(min, max)`, ISA as
/// solid arrows, subclass cardinality *refinements* as dashed labeled
/// edges, and disjointness/covering as annotation nodes. Pipe through
/// `dot -Tsvg` to visualize.
std::string SchemaToDot(const Schema& schema, const std::string& name);

}  // namespace crsat

#endif  // CRSAT_CR_SCHEMA_TEXT_H_
