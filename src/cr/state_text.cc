#include "src/cr/state_text.h"

#include <map>
#include <utility>
#include <vector>

#include "src/cr/text_lexer.h"

namespace crsat {

namespace {

using internal_text::Lexer;
using internal_text::Token;
using internal_text::TokenCursor;
using internal_text::TokenKind;

class StateParser : private TokenCursor {
 public:
  StateParser(std::vector<Token> tokens, const Schema& schema)
      : TokenCursor(std::move(tokens)),
        schema_(schema),
        interpretation_(schema) {}

  Result<NamedState> Parse() {
    CRSAT_RETURN_IF_ERROR(ExpectKeyword("state"));
    CRSAT_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("state name"));
    CRSAT_RETURN_IF_ERROR(ExpectKeyword("of"));
    CRSAT_ASSIGN_OR_RETURN(std::string schema_name,
                           ExpectIdentifier("schema name"));
    CRSAT_RETURN_IF_ERROR(ExpectPunct("{"));
    while (!IsPunct("}")) {
      CRSAT_RETURN_IF_ERROR(ParseDeclaration());
    }
    CRSAT_RETURN_IF_ERROR(ExpectPunct("}"));
    if (Current().kind != TokenKind::kEnd) {
      return ErrorHere("expected end of input after '}'");
    }
    return NamedState{std::move(name), std::move(schema_name),
                      std::move(interpretation_)};
  }

 private:
  Status ParseDeclaration() {
    CRSAT_ASSIGN_OR_RETURN(std::string keyword,
                           ExpectIdentifier("declaration keyword"));
    if (keyword == "individual") {
      return ParseIndividualDeclaration();
    }
    if (keyword == "class") {
      return ParseClassExtension();
    }
    if (keyword == "rel") {
      return ParseRelationshipExtension();
    }
    return ErrorHere("unknown declaration keyword '" + keyword + "'");
  }

  Status ParseIndividualDeclaration() {
    while (true) {
      CRSAT_ASSIGN_OR_RETURN(std::string name,
                             ExpectIdentifier("individual name"));
      if (individuals_.count(name) > 0) {
        return ErrorHere("duplicate individual '" + name + "'");
      }
      individuals_[name] = interpretation_.AddIndividual(name);
      if (IsPunct(",")) {
        Consume();
        continue;
      }
      return ExpectPunct(";");
    }
  }

  Status ParseClassExtension() {
    CRSAT_ASSIGN_OR_RETURN(std::string class_name,
                           ExpectIdentifier("class name"));
    std::optional<ClassId> cls = schema_.FindClass(class_name);
    if (!cls.has_value()) {
      return ErrorHere("unknown class '" + class_name + "'");
    }
    CRSAT_RETURN_IF_ERROR(ExpectPunct(":"));
    // An empty member list is written "class C: ;" — rare but allowed.
    while (!IsPunct(";")) {
      CRSAT_ASSIGN_OR_RETURN(Individual individual, ResolveIndividual());
      CRSAT_RETURN_IF_ERROR(interpretation_.AddToClass(*cls, individual));
      if (IsPunct(";")) {
        break;
      }
      CRSAT_RETURN_IF_ERROR(ExpectPunct(","));
    }
    return ExpectPunct(";");
  }

  Status ParseRelationshipExtension() {
    CRSAT_ASSIGN_OR_RETURN(std::string rel_name,
                           ExpectIdentifier("relationship name"));
    std::optional<RelationshipId> rel = schema_.FindRelationship(rel_name);
    if (!rel.has_value()) {
      return ErrorHere("unknown relationship '" + rel_name + "'");
    }
    const size_t arity = schema_.RolesOf(*rel).size();
    CRSAT_RETURN_IF_ERROR(ExpectPunct(":"));
    while (!IsPunct(";")) {
      CRSAT_RETURN_IF_ERROR(ExpectPunct("("));
      std::vector<Individual> components;
      while (!IsPunct(")")) {
        CRSAT_ASSIGN_OR_RETURN(Individual individual, ResolveIndividual());
        components.push_back(individual);
        if (IsPunct(")")) {
          break;
        }
        CRSAT_RETURN_IF_ERROR(ExpectPunct(","));
      }
      CRSAT_RETURN_IF_ERROR(ExpectPunct(")"));
      if (components.size() != arity) {
        return ErrorHere("tuple arity " + std::to_string(components.size()) +
                         " does not match relationship '" + rel_name +
                         "' (arity " + std::to_string(arity) + ")");
      }
      Status added = interpretation_.AddTuple(*rel, components);
      if (!added.ok()) {
        return ErrorHere(added.message());
      }
      if (IsPunct(";")) {
        break;
      }
      CRSAT_RETURN_IF_ERROR(ExpectPunct(","));
    }
    return ExpectPunct(";");
  }

  Result<Individual> ResolveIndividual() {
    CRSAT_ASSIGN_OR_RETURN(std::string name,
                           ExpectIdentifier("individual name"));
    auto it = individuals_.find(name);
    if (it == individuals_.end()) {
      return ErrorHere("unknown individual '" + name +
                       "' (declare it with 'individual " + name + ";')");
    }
    return it->second;
  }

  const Schema& schema_;
  Interpretation interpretation_;
  std::map<std::string, Individual> individuals_;
};

}  // namespace

Result<NamedState> ParseState(std::string_view text, const Schema& schema) {
  Lexer lexer(text);
  CRSAT_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  StateParser parser(std::move(tokens), schema);
  return parser.Parse();
}

std::string StateToText(const Interpretation& interpretation,
                        const std::string& name,
                        const std::string& schema_name) {
  const Schema& schema = interpretation.schema();
  std::string text = "state " + name + " of " + schema_name + " {\n";
  if (interpretation.domain_size() > 0) {
    text += "  individual ";
    for (Individual i = 0; i < interpretation.domain_size(); ++i) {
      if (i > 0) {
        text += ", ";
      }
      text += interpretation.IndividualName(i);
    }
    text += ";\n";
  }
  for (ClassId cls : schema.AllClasses()) {
    const auto& extension = interpretation.ClassExtension(cls);
    if (extension.empty()) {
      continue;
    }
    text += "  class " + schema.ClassName(cls) + ": ";
    bool first = true;
    for (Individual individual : extension) {
      if (!first) {
        text += ", ";
      }
      first = false;
      text += interpretation.IndividualName(individual);
    }
    text += ";\n";
  }
  for (RelationshipId rel : schema.AllRelationships()) {
    const auto& extension = interpretation.RelationshipExtension(rel);
    if (extension.empty()) {
      continue;
    }
    text += "  rel " + schema.RelationshipName(rel) + ": ";
    bool first_tuple = true;
    for (const std::vector<Individual>& tuple : extension) {
      if (!first_tuple) {
        text += ", ";
      }
      first_tuple = false;
      text += "(";
      for (size_t k = 0; k < tuple.size(); ++k) {
        if (k > 0) {
          text += ", ";
        }
        text += interpretation.IndividualName(tuple[k]);
      }
      text += ")";
    }
    text += ";\n";
  }
  text += "}\n";
  return text;
}

}  // namespace crsat
