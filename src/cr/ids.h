#ifndef CRSAT_CR_IDS_H_
#define CRSAT_CR_IDS_H_

#include <cstddef>
#include <functional>
#include <ostream>

namespace crsat {

/// Strongly-typed index. `Tag` distinguishes id spaces at compile time so a
/// `ClassId` cannot be passed where a `RoleId` is expected. A
/// default-constructed id is invalid (`value == -1`).
template <typename Tag>
struct Id {
  int value = -1;

  Id() = default;
  explicit Id(int v) : value(v) {}

  bool valid() const { return value >= 0; }

  bool operator==(const Id& other) const { return value == other.value; }
  bool operator!=(const Id& other) const { return value != other.value; }
  bool operator<(const Id& other) const { return value < other.value; }
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, const Id<Tag>& id) {
  return os << id.value;
}

struct ClassTag {};
struct RelationshipTag {};
struct RoleTag {};

/// Index of a class within a `Schema`.
using ClassId = Id<ClassTag>;
/// Index of a relationship within a `Schema`.
using RelationshipId = Id<RelationshipTag>;
/// Global index of a role within a `Schema` (roles are specific to one
/// relationship, per Definition 2.1).
using RoleId = Id<RoleTag>;

}  // namespace crsat

template <typename Tag>
struct std::hash<crsat::Id<Tag>> {
  size_t operator()(const crsat::Id<Tag>& id) const {
    return std::hash<int>()(id.value);
  }
};

#endif  // CRSAT_CR_IDS_H_
