#ifndef CRSAT_CR_MODEL_CHECKER_H_
#define CRSAT_CR_MODEL_CHECKER_H_

#include <string>
#include <vector>

#include "src/cr/interpretation.h"
#include "src/cr/schema.h"

namespace crsat {

/// Verifies whether an `Interpretation` is a *model* of a `Schema`
/// (Definition 2.2), i.e. whether it satisfies:
///
///  (A) every ISA statement (`C1^I` contained in `C2^I`),
///  (B) relationship typing (every tuple component is an instance of the
///      primary class of its role),
///  (C) every cardinality constraint, including the inherited/refined ones
///      on subclasses of primary classes,
/// plus the Section 5 extensions carried by the schema (disjointness and
/// covering constraints).
///
/// This is the ground-truth oracle the reasoning pipeline is tested
/// against: models produced by `ModelBuilder` must check clean, and
/// (un)satisfiability verdicts are validated by checking candidate models.
class ModelChecker {
 public:
  /// Returns a human-readable description of every violated condition;
  /// empty means `interpretation` is a model of `schema`.
  static std::vector<std::string> Violations(
      const Schema& schema, const Interpretation& interpretation);

  /// Convenience wrapper: true iff there are no violations.
  static bool IsModel(const Schema& schema,
                      const Interpretation& interpretation);
};

}  // namespace crsat

#endif  // CRSAT_CR_MODEL_CHECKER_H_
