#ifndef CRSAT_CR_MODEL_CHECKER_H_
#define CRSAT_CR_MODEL_CHECKER_H_

#include <string>
#include <vector>

#include "src/cr/interpretation.h"
#include "src/cr/schema.h"
#include "src/cr/schema_text.h"
#include "src/cr/source_location.h"

namespace crsat {

/// One violated model condition, tied back to the declaration that was
/// violated. When the schema came from DSL text (and a `SchemaSourceMap`
/// was supplied), `location` is the declaration site of the violated
/// statement — the ISA edge, the relationship, the cardinality
/// declaration, the disjointness group, or the covering constraint — and
/// the message carries it inline; programmatic schemas degrade to an
/// unknown location and the bare message.
struct ModelViolation {
  enum class Kind {
    kIsa,           // Condition (A): subclass extension not contained.
    kTyping,        // Condition (B): tuple component outside the primary.
    kCardinality,   // Condition (C): per-individual count outside bounds.
    kDisjointness,  // Section 5: disjoint classes share an instance.
    kCovering,      // Section 5: covered instance outside every coverer.
  };

  Kind kind;
  /// Human-readable description; includes "declared at line:column" when
  /// the location is known.
  std::string message;
  /// Declaration site of the violated statement ("?" when the schema was
  /// built programmatically or no source map was supplied).
  SourceLocation location;
};

/// Verifies whether an `Interpretation` is a *model* of a `Schema`
/// (Definition 2.2), i.e. whether it satisfies:
///
///  (A) every ISA statement (`C1^I` contained in `C2^I`),
///  (B) relationship typing (every tuple component is an instance of the
///      primary class of its role),
///  (C) every cardinality constraint, including the inherited/refined ones
///      on subclasses of primary classes,
/// plus the Section 5 extensions carried by the schema (disjointness and
/// covering constraints).
///
/// This is the ground-truth oracle the reasoning pipeline is tested
/// against: witnesses produced by `WitnessSynthesizer` (src/witness/) must
/// check clean before they may be emitted, and (un)satisfiability verdicts
/// are validated by checking candidate models.
class ModelChecker {
 public:
  /// Returns every violated condition with its kind and declaration site.
  /// Empty means `interpretation` is a model of `schema`. `source_map`,
  /// when non-null, resolves declaration sites (pass
  /// `NamedSchema::source_map` for schemas parsed from DSL text).
  static std::vector<ModelViolation> CheckModel(
      const Schema& schema, const Interpretation& interpretation,
      const SchemaSourceMap* source_map = nullptr);

  /// Returns a human-readable description of every violated condition;
  /// empty means `interpretation` is a model of `schema`.
  static std::vector<std::string> Violations(
      const Schema& schema, const Interpretation& interpretation,
      const SchemaSourceMap* source_map = nullptr);

  /// Convenience wrapper: true iff there are no violations.
  static bool IsModel(const Schema& schema,
                      const Interpretation& interpretation);
};

}  // namespace crsat

#endif  // CRSAT_CR_MODEL_CHECKER_H_
