#ifndef CRSAT_CR_SCHEMA_H_
#define CRSAT_CR_SCHEMA_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "src/base/result.h"
#include "src/cr/ids.h"

namespace crsat {

/// A `(minc, maxc)` pair. `max == std::nullopt` encodes infinity. The
/// default `(0, inf)` is the paper's implicit cardinality (Definition 2.1).
struct Cardinality {
  std::uint64_t min = 0;
  std::optional<std::uint64_t> max;

  /// True iff this is the implicit default `(0, inf)`.
  bool IsDefault() const { return min == 0 && !max.has_value(); }

  /// Renders "(m, n)" with "*" for infinity, matching the ER notation of
  /// the paper's figures.
  std::string ToString() const;

  bool operator==(const Cardinality& other) const {
    return min == other.min && max == other.max;
  }
};

/// An ISA statement `subclass <= superclass` (Sisa in Definition 2.1).
struct IsaStatement {
  ClassId subclass;
  ClassId superclass;

  bool operator==(const IsaStatement& other) const {
    return subclass == other.subclass && superclass == other.superclass;
  }
};

/// A cardinality declaration `minc/maxc(cls, rel, role)`. Legal only when
/// `cls` is (reflexively-transitively) a subclass of the role's primary
/// class; subclass declarations are the paper's *refinements*.
struct CardinalityDeclaration {
  ClassId cls;
  RelationshipId rel;
  RoleId role;
  Cardinality cardinality;
};

/// A pairwise-disjointness group (extension from the paper's Section 5).
struct DisjointnessConstraint {
  std::vector<ClassId> classes;
};

/// A covering constraint: every instance of `covered` is an instance of
/// some class in `coverers` (extension from the paper's Section 5).
struct CoveringConstraint {
  ClassId covered;
  std::vector<ClassId> coverers;
};

class SchemaBuilder;

/// An immutable CR-schema (Definition 2.1): classes, relationships with
/// named roles and primary classes, ISA statements, cardinality
/// declarations, and the Section 5 extensions (disjointness, covering).
///
/// Build instances with `SchemaBuilder`, which validates all
/// well-formedness rules; a constructed `Schema` is always well-formed.
class Schema {
 public:
  int num_classes() const { return static_cast<int>(class_names_.size()); }
  int num_relationships() const {
    return static_cast<int>(relationship_names_.size());
  }
  int num_roles() const { return static_cast<int>(role_names_.size()); }

  const std::string& ClassName(ClassId cls) const {
    return class_names_[cls.value];
  }
  const std::string& RelationshipName(RelationshipId rel) const {
    return relationship_names_[rel.value];
  }
  const std::string& RoleName(RoleId role) const {
    return role_names_[role.value];
  }

  /// Looks up ids by name.
  std::optional<ClassId> FindClass(const std::string& name) const;
  std::optional<RelationshipId> FindRelationship(const std::string& name) const;
  /// Roles are globally unique by name (roles are specific to one
  /// relationship per Definition 2.1).
  std::optional<RoleId> FindRole(const std::string& name) const;

  /// The roles of `rel`, in declaration order. Size is the arity (>= 2).
  const std::vector<RoleId>& RolesOf(RelationshipId rel) const {
    return relationship_roles_[rel.value];
  }

  /// The relationship a role belongs to.
  RelationshipId RelationshipOf(RoleId role) const {
    return role_relationship_[role.value];
  }

  /// The primary class for `role` in its relationship.
  ClassId PrimaryClass(RoleId role) const {
    return role_primary_class_[role.value];
  }

  /// Position of `role` within its relationship's role list.
  int RolePosition(RoleId role) const { return role_position_[role.value]; }

  /// The declared (direct) ISA statements, in declaration order.
  const std::vector<IsaStatement>& isa_statements() const {
    return isa_statements_;
  }

  /// True iff `sub` is a subclass of `super` under the reflexive transitive
  /// closure of the ISA statements (written `sub <=* super` in the paper).
  bool IsSubclassOf(ClassId sub, ClassId super) const {
    return isa_closure_[sub.value][super.value];
  }

  /// All classes `C` with `C <=* cls` (including `cls` itself).
  std::vector<ClassId> SubclassesOf(ClassId cls) const;

  /// All classes `C` with `cls <=* C` (including `cls` itself).
  std::vector<ClassId> SuperclassesOf(ClassId cls) const;

  /// The declared cardinality for `(cls, rel, role)`, or the implicit
  /// default `(0, inf)` when none was declared. `cls` need not be a legal
  /// refinement holder; the default is returned for any triple.
  Cardinality GetCardinality(ClassId cls, RelationshipId rel,
                             RoleId role) const;

  /// All explicit cardinality declarations, in declaration order.
  const std::vector<CardinalityDeclaration>& cardinality_declarations() const {
    return cardinality_declarations_;
  }

  const std::vector<DisjointnessConstraint>& disjointness_constraints() const {
    return disjointness_constraints_;
  }
  const std::vector<CoveringConstraint>& covering_constraints() const {
    return covering_constraints_;
  }

  /// True iff some disjointness group contains both classes.
  bool AreDeclaredDisjoint(ClassId a, ClassId b) const;

  /// All class ids `0 .. num_classes()-1`.
  std::vector<ClassId> AllClasses() const;
  /// All relationship ids.
  std::vector<RelationshipId> AllRelationships() const;

  /// Returns a builder pre-populated with all of this schema's
  /// declarations, so callers can derive extended schemas (e.g. the
  /// implication checker's auxiliary-class construction, or the unsat-core
  /// minimizer's constraint-dropping probes).
  SchemaBuilder ToBuilder() const;

 private:
  friend class SchemaBuilder;

  Schema() = default;

  std::vector<std::string> class_names_;
  std::vector<std::string> relationship_names_;
  std::vector<std::string> role_names_;
  std::map<std::string, ClassId> class_by_name_;
  std::map<std::string, RelationshipId> relationship_by_name_;
  std::map<std::string, RoleId> role_by_name_;

  std::vector<std::vector<RoleId>> relationship_roles_;
  std::vector<RelationshipId> role_relationship_;
  std::vector<ClassId> role_primary_class_;
  std::vector<int> role_position_;

  std::vector<IsaStatement> isa_statements_;
  // isa_closure_[a][b] == true iff a <=* b.
  std::vector<std::vector<bool>> isa_closure_;

  std::vector<CardinalityDeclaration> cardinality_declarations_;
  // Keyed by (class, relationship, role) values.
  std::map<std::tuple<int, int, int>, Cardinality> cardinality_by_key_;

  std::vector<DisjointnessConstraint> disjointness_constraints_;
  std::vector<CoveringConstraint> covering_constraints_;
};

/// Incremental, validating builder for `Schema`.
///
/// Usage:
///
///   SchemaBuilder builder;
///   ClassId speaker = builder.AddClass("Speaker");
///   ClassId talk = builder.AddClass("Talk");
///   RelationshipId holds = builder.AddRelationship(
///       "Holds", {{"U1", "Speaker"}, {"U2", "Talk"}}).value();
///   builder.AddIsa("Discussant", "Speaker");
///   builder.SetCardinality("Speaker", "Holds", "U1", {1, std::nullopt});
///   Result<Schema> schema = builder.Build();
///
/// Name-based overloads resolve lazily at `Build()`, so declarations can
/// reference classes introduced later. Errors accumulate and are reported
/// together by `Build()`.
class SchemaBuilder {
 public:
  SchemaBuilder() = default;

  /// Declares a class. Re-declaring the same name is an error (reported at
  /// Build). Returns the id the class will have.
  ClassId AddClass(const std::string& name);

  /// Declares a relationship with `(role name, primary class name)` pairs.
  /// Arity must be >= 2 and role names globally unique (checked at Build).
  RelationshipId AddRelationship(
      const std::string& name,
      const std::vector<std::pair<std::string, std::string>>& roles);

  /// Declares `subclass <= superclass`.
  void AddIsa(const std::string& subclass, const std::string& superclass);

  /// Declares `minc/maxc(cls, rel, role) = cardinality`. The class must be
  /// a (transitive, reflexive) subclass of the role's primary class.
  void SetCardinality(const std::string& cls, const std::string& rel,
                      const std::string& role, Cardinality cardinality);

  /// Declares the classes pairwise disjoint (Section 5 extension).
  void AddDisjointness(const std::vector<std::string>& classes);

  /// Declares that `covered`'s extension is contained in the union of the
  /// coverers' extensions (Section 5 extension).
  void AddCovering(const std::string& covered,
                   const std::vector<std::string>& coverers);

  /// When enabled, `Build()` accepts cardinality declarations with
  /// `max < min`. Such a declaration forces its class empty (no instance
  /// can satisfy the bounds); downstream reasoning handles it soundly, and
  /// the lint engine's `empty-range` rule reports it. Off by default so
  /// programmatic construction keeps failing fast on what is almost always
  /// a typo.
  void set_permit_empty_ranges(bool permit) { permit_empty_ranges_ = permit; }

  /// Validates all declarations and produces the schema. Reports every
  /// detected problem in one error message.
  Result<Schema> Build() const;

 private:
  struct PendingRelationship {
    std::string name;
    std::vector<std::pair<std::string, std::string>> roles;
  };
  struct PendingIsa {
    std::string subclass;
    std::string superclass;
  };
  struct PendingCardinality {
    std::string cls;
    std::string rel;
    std::string role;
    Cardinality cardinality;
  };
  struct PendingDisjointness {
    std::vector<std::string> classes;
  };
  struct PendingCovering {
    std::string covered;
    std::vector<std::string> coverers;
  };

  std::vector<std::string> classes_;
  std::vector<PendingRelationship> relationships_;
  std::vector<PendingIsa> isa_;
  std::vector<PendingCardinality> cardinalities_;
  std::vector<PendingDisjointness> disjointness_;
  std::vector<PendingCovering> coverings_;
  bool permit_empty_ranges_ = false;
};

}  // namespace crsat

#endif  // CRSAT_CR_SCHEMA_H_
