#include "src/cr/model_checker.h"

#include <map>
#include <utility>

namespace crsat {

namespace {

// Looks up a declaration site in one of the source map's parallel vectors;
// out-of-range (older map, programmatic schema) degrades to unknown.
SourceLocation LocationAt(const SchemaSourceMap* source_map,
                          const std::vector<SourceLocation>
                              SchemaSourceMap::*member,
                          size_t index) {
  if (source_map == nullptr) {
    return SourceLocation{};
  }
  const std::vector<SourceLocation>& locations = source_map->*member;
  if (index >= locations.size()) {
    return SourceLocation{};
  }
  return locations[index];
}

// "declared at 3:5" rendered into the message when the site is known.
std::string DeclaredAt(const SourceLocation& location) {
  if (!location.IsKnown()) {
    return "";
  }
  return " (declared at " + location.ToString() + ")";
}

// Index of the explicit declaration behind a non-default
// `GetCardinality(cls, rel, role)` answer; -1 when none exists.
int CardinalityDeclarationIndex(const Schema& schema, ClassId cls,
                                RelationshipId rel, RoleId role) {
  const std::vector<CardinalityDeclaration>& declarations =
      schema.cardinality_declarations();
  for (size_t i = 0; i < declarations.size(); ++i) {
    if (declarations[i].cls == cls && declarations[i].rel == rel &&
        declarations[i].role == role) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace

std::vector<ModelViolation> ModelChecker::CheckModel(
    const Schema& schema, const Interpretation& interpretation,
    const SchemaSourceMap* source_map) {
  std::vector<ModelViolation> violations;
  auto report = [&violations](ModelViolation::Kind kind,
                              SourceLocation location, std::string message) {
    violations.push_back(
        ModelViolation{kind, std::move(message), location});
  };

  // (A) ISA containment.
  const std::vector<IsaStatement>& isa_statements = schema.isa_statements();
  for (size_t i = 0; i < isa_statements.size(); ++i) {
    const IsaStatement& isa = isa_statements[i];
    SourceLocation location =
        LocationAt(source_map, &SchemaSourceMap::isa_statements, i);
    for (Individual individual :
         interpretation.ClassExtension(isa.subclass)) {
      if (!interpretation.IsInstanceOf(isa.superclass, individual)) {
        report(ModelViolation::Kind::kIsa, location,
               "(A) ISA violated" + DeclaredAt(location) + ": " +
                   interpretation.IndividualName(individual) + " is in " +
                   schema.ClassName(isa.subclass) + " but not in " +
                   schema.ClassName(isa.superclass));
      }
    }
  }

  // (B) Relationship typing.
  for (RelationshipId rel : schema.AllRelationships()) {
    const std::vector<RoleId>& roles = schema.RolesOf(rel);
    SourceLocation location = LocationAt(
        source_map, &SchemaSourceMap::relationships,
        static_cast<size_t>(rel.value));
    for (const std::vector<Individual>& tuple :
         interpretation.RelationshipExtension(rel)) {
      for (size_t k = 0; k < roles.size(); ++k) {
        ClassId primary = schema.PrimaryClass(roles[k]);
        if (!interpretation.IsInstanceOf(primary, tuple[k])) {
          report(ModelViolation::Kind::kTyping, location,
                 "(B) typing violated" + DeclaredAt(location) +
                     ": component " +
                     interpretation.IndividualName(tuple[k]) +
                     " of a tuple of " + schema.RelationshipName(rel) +
                     " at role " + schema.RoleName(roles[k]) +
                     " is not an instance of " + schema.ClassName(primary));
        }
      }
    }
  }

  // (C) Cardinality constraints: for every role U of every relationship R
  // with primary class C_U, and every class C <=* C_U, every instance of C
  // must appear in [minc, maxc] tuples of R at U.
  for (RelationshipId rel : schema.AllRelationships()) {
    const std::vector<RoleId>& roles = schema.RolesOf(rel);
    for (size_t k = 0; k < roles.size(); ++k) {
      RoleId role = roles[k];
      ClassId primary = schema.PrimaryClass(role);
      // One pass over the extension; per-individual counting would rescan
      // it for every instance of every subclass.
      std::map<Individual, std::uint64_t> counts;
      for (const std::vector<Individual>& tuple :
           interpretation.RelationshipExtension(rel)) {
        ++counts[tuple[k]];
      }
      for (ClassId cls : schema.SubclassesOf(primary)) {
        Cardinality cardinality = schema.GetCardinality(cls, rel, role);
        if (cardinality.IsDefault()) {
          continue;
        }
        const int declaration =
            CardinalityDeclarationIndex(schema, cls, rel, role);
        SourceLocation location =
            declaration < 0
                ? SourceLocation{}
                : LocationAt(source_map,
                             &SchemaSourceMap::cardinality_declarations,
                             static_cast<size_t>(declaration));
        for (Individual individual : interpretation.ClassExtension(cls)) {
          auto it = counts.find(individual);
          std::uint64_t count = it == counts.end() ? 0 : it->second;
          if (count < cardinality.min ||
              (cardinality.max.has_value() && count > *cardinality.max)) {
            report(ModelViolation::Kind::kCardinality, location,
                   "(C) cardinality violated" + DeclaredAt(location) + ": " +
                       interpretation.IndividualName(individual) + " in " +
                       schema.ClassName(cls) + " appears in " +
                       std::to_string(count) + " tuples of " +
                       schema.RelationshipName(rel) + " at role " +
                       schema.RoleName(role) + ", outside " +
                       cardinality.ToString());
          }
        }
      }
    }
  }

  // Disjointness extension.
  const std::vector<DisjointnessConstraint>& disjointness =
      schema.disjointness_constraints();
  for (size_t g = 0; g < disjointness.size(); ++g) {
    const DisjointnessConstraint& group = disjointness[g];
    SourceLocation location = LocationAt(
        source_map, &SchemaSourceMap::disjointness_constraints, g);
    for (size_t i = 0; i < group.classes.size(); ++i) {
      for (size_t j = i + 1; j < group.classes.size(); ++j) {
        for (Individual individual :
             interpretation.ClassExtension(group.classes[i])) {
          if (interpretation.IsInstanceOf(group.classes[j], individual)) {
            report(ModelViolation::Kind::kDisjointness, location,
                   "disjointness violated" + DeclaredAt(location) + ": " +
                       interpretation.IndividualName(individual) +
                       " is in both " +
                       schema.ClassName(group.classes[i]) + " and " +
                       schema.ClassName(group.classes[j]));
          }
        }
      }
    }
  }

  // Covering extension.
  const std::vector<CoveringConstraint>& coverings =
      schema.covering_constraints();
  for (size_t c = 0; c < coverings.size(); ++c) {
    const CoveringConstraint& constraint = coverings[c];
    SourceLocation location =
        LocationAt(source_map, &SchemaSourceMap::covering_constraints, c);
    for (Individual individual :
         interpretation.ClassExtension(constraint.covered)) {
      bool covered = false;
      for (ClassId coverer : constraint.coverers) {
        if (interpretation.IsInstanceOf(coverer, individual)) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        report(ModelViolation::Kind::kCovering, location,
               "covering violated" + DeclaredAt(location) + ": " +
                   interpretation.IndividualName(individual) + " is in " +
                   schema.ClassName(constraint.covered) +
                   " but in none of its coverers");
      }
    }
  }

  return violations;
}

std::vector<std::string> ModelChecker::Violations(
    const Schema& schema, const Interpretation& interpretation,
    const SchemaSourceMap* source_map) {
  std::vector<std::string> messages;
  for (ModelViolation& violation :
       CheckModel(schema, interpretation, source_map)) {
    messages.push_back(std::move(violation.message));
  }
  return messages;
}

bool ModelChecker::IsModel(const Schema& schema,
                           const Interpretation& interpretation) {
  return CheckModel(schema, interpretation).empty();
}

}  // namespace crsat
