#include "src/cr/model_checker.h"

#include <map>

namespace crsat {

std::vector<std::string> ModelChecker::Violations(
    const Schema& schema, const Interpretation& interpretation) {
  std::vector<std::string> violations;

  // (A) ISA containment.
  for (const IsaStatement& isa : schema.isa_statements()) {
    for (Individual individual :
         interpretation.ClassExtension(isa.subclass)) {
      if (!interpretation.IsInstanceOf(isa.superclass, individual)) {
        violations.push_back(
            "(A) ISA violated: " + interpretation.IndividualName(individual) +
            " is in " + schema.ClassName(isa.subclass) + " but not in " +
            schema.ClassName(isa.superclass));
      }
    }
  }

  // (B) Relationship typing.
  for (RelationshipId rel : schema.AllRelationships()) {
    const std::vector<RoleId>& roles = schema.RolesOf(rel);
    for (const std::vector<Individual>& tuple :
         interpretation.RelationshipExtension(rel)) {
      for (size_t k = 0; k < roles.size(); ++k) {
        ClassId primary = schema.PrimaryClass(roles[k]);
        if (!interpretation.IsInstanceOf(primary, tuple[k])) {
          violations.push_back(
              "(B) typing violated: component " +
              interpretation.IndividualName(tuple[k]) + " of a tuple of " +
              schema.RelationshipName(rel) + " at role " +
              schema.RoleName(roles[k]) + " is not an instance of " +
              schema.ClassName(primary));
        }
      }
    }
  }

  // (C) Cardinality constraints: for every role U of every relationship R
  // with primary class C_U, and every class C <=* C_U, every instance of C
  // must appear in [minc, maxc] tuples of R at U.
  for (RelationshipId rel : schema.AllRelationships()) {
    const std::vector<RoleId>& roles = schema.RolesOf(rel);
    for (size_t k = 0; k < roles.size(); ++k) {
      RoleId role = roles[k];
      ClassId primary = schema.PrimaryClass(role);
      // One pass over the extension; per-individual counting would rescan
      // it for every instance of every subclass.
      std::map<Individual, std::uint64_t> counts;
      for (const std::vector<Individual>& tuple :
           interpretation.RelationshipExtension(rel)) {
        ++counts[tuple[k]];
      }
      for (ClassId cls : schema.SubclassesOf(primary)) {
        Cardinality cardinality = schema.GetCardinality(cls, rel, role);
        if (cardinality.IsDefault()) {
          continue;
        }
        for (Individual individual : interpretation.ClassExtension(cls)) {
          auto it = counts.find(individual);
          std::uint64_t count = it == counts.end() ? 0 : it->second;
          if (count < cardinality.min ||
              (cardinality.max.has_value() && count > *cardinality.max)) {
            violations.push_back(
                "(C) cardinality violated: " +
                interpretation.IndividualName(individual) + " in " +
                schema.ClassName(cls) + " appears in " +
                std::to_string(count) + " tuples of " +
                schema.RelationshipName(rel) + " at role " +
                schema.RoleName(role) + ", outside " +
                cardinality.ToString());
          }
        }
      }
    }
  }

  // Disjointness extension.
  for (const DisjointnessConstraint& group :
       schema.disjointness_constraints()) {
    for (size_t i = 0; i < group.classes.size(); ++i) {
      for (size_t j = i + 1; j < group.classes.size(); ++j) {
        for (Individual individual :
             interpretation.ClassExtension(group.classes[i])) {
          if (interpretation.IsInstanceOf(group.classes[j], individual)) {
            violations.push_back(
                "disjointness violated: " +
                interpretation.IndividualName(individual) + " is in both " +
                schema.ClassName(group.classes[i]) + " and " +
                schema.ClassName(group.classes[j]));
          }
        }
      }
    }
  }

  // Covering extension.
  for (const CoveringConstraint& constraint : schema.covering_constraints()) {
    for (Individual individual :
         interpretation.ClassExtension(constraint.covered)) {
      bool covered = false;
      for (ClassId coverer : constraint.coverers) {
        if (interpretation.IsInstanceOf(coverer, individual)) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        violations.push_back(
            "covering violated: " +
            interpretation.IndividualName(individual) + " is in " +
            schema.ClassName(constraint.covered) +
            " but in none of its coverers");
      }
    }
  }

  return violations;
}

bool ModelChecker::IsModel(const Schema& schema,
                           const Interpretation& interpretation) {
  return Violations(schema, interpretation).empty();
}

}  // namespace crsat
