#ifndef CRSAT_CRSAT_H_
#define CRSAT_CRSAT_H_

/// crsat — reasoning about the interaction between ISA and cardinality
/// constraints in the CR data model, after:
///
///   D. Calvanese, M. Lenzerini. "On the Interaction Between ISA and
///   Cardinality Constraints". Proc. ICDE 1994, pp. 205-213.
///
/// Typical pipeline:
///
///   #include "src/crsat.h"
///
///   crsat::Result<crsat::NamedSchema> parsed = crsat::ParseSchema(text);
///   crsat::Result<crsat::Expansion> expansion =
///       crsat::Expansion::Build(parsed->schema);
///   crsat::SatisfiabilityChecker checker(*expansion);
///   crsat::Result<bool> ok = checker.IsClassSatisfiable(cls);
///   crsat::Result<crsat::Interpretation> model =
///       crsat::ModelBuilder::BuildModelForClass(checker, cls);
///
/// Implication queries live in `ImplicationChecker`, schema debugging in
/// `MinimizeUnsatCore`, and the ISA-free Lenzerini-Nobili baseline in
/// `LnReasoner`. Cheap pre-LP structural diagnostics (the lint engine)
/// live in `RunLint` / `LintRuleRegistry` (src/analysis/). The
/// independent brute-force ground truth and the differential conformance
/// harness live in `BruteForceOracle` / `RunConformance` (src/oracle/),
/// and the graph-saturation witness engine — the harness's third voice,
/// with classical (unrestricted-model) semantics — in `SaturationEngine`
/// (src/saturation/).

#include "src/analysis/diagnostics.h"
#include "src/analysis/empty_classes.h"
#include "src/analysis/lint_engine.h"
#include "src/analysis/lint_rule.h"
#include "src/analysis/rules.h"
#include "src/base/degradation.h"
#include "src/base/failpoint.h"
#include "src/base/resource_guard.h"
#include "src/base/result.h"
#include "src/base/status.h"
#include "src/base/thread_pool.h"
#include "src/base/incremental.h"
#include "src/baseline/fast_path.h"
#include "src/baseline/ln_reasoner.h"
#include "src/cr/interpretation.h"
#include "src/cr/model_checker.h"
#include "src/cr/schema.h"
#include "src/cr/schema_text.h"
#include "src/cr/state_text.h"
#include "src/expansion/compound.h"
#include "src/expansion/expansion.h"
#include "src/generator/random_schema.h"
#include "src/lp/fourier_motzkin.h"
#include "src/lp/homogeneous.h"
#include "src/lp/linear_system.h"
#include "src/lp/simplex.h"
#include "src/math/bigint.h"
#include "src/math/rational.h"
#include "src/oracle/brute_force.h"
#include "src/oracle/conformance.h"
#include "src/oracle/metamorphic.h"
#include "src/oracle/schema_parts.h"
#include "src/reasoner/implication.h"
#include "src/reasoner/implication_engine.h"
#include "src/reasoner/model_builder.h"
#include "src/reasoner/repair.h"
#include "src/reasoner/satisfiability.h"
#include "src/reasoner/system_builder.h"
#include "src/reasoner/unsat_core.h"
#include "src/saturation/graph.h"
#include "src/saturation/saturation.h"
#include "src/witness/witness.h"
#include "src/witness/witness_text.h"

#endif  // CRSAT_CRSAT_H_
