#ifndef CRSAT_LP_LINEAR_EXPR_H_
#define CRSAT_LP_LINEAR_EXPR_H_

#include <map>
#include <string>
#include <vector>

#include "src/math/rational.h"

namespace crsat {

/// Index of a variable within a `LinearSystem`.
using VarId = int;

/// A sparse linear expression `sum_i coeff_i * x_i + constant`.
///
/// Used to state constraints and objectives over a `LinearSystem`. The
/// expression owns no variable metadata; `VarId`s are resolved by the system
/// the expression is used with.
class LinearExpr {
 public:
  /// Constructs the zero expression.
  LinearExpr() = default;

  /// Constructs a constant expression.
  explicit LinearExpr(Rational constant) : constant_(std::move(constant)) {}

  /// Returns the expression `coeff * x_var`.
  static LinearExpr Term(VarId var, Rational coeff);

  /// Returns the expression `x_var`.
  static LinearExpr Var(VarId var) { return Term(var, Rational(1)); }

  /// Adds `coeff * x_var` to this expression; terms with the same variable
  /// accumulate, and zero coefficients are dropped.
  LinearExpr& AddTerm(VarId var, const Rational& coeff);

  /// Adds `value` to the constant term.
  LinearExpr& AddConstant(const Rational& value);

  /// Coefficient of `var` (zero if absent).
  Rational CoefficientOf(VarId var) const;

  /// The constant term.
  const Rational& constant() const { return constant_; }

  /// Variable terms, sorted by `VarId`; no zero coefficients.
  const std::map<VarId, Rational>& terms() const { return terms_; }

  /// True iff the expression has no variable terms and zero constant.
  bool IsZero() const { return terms_.empty() && constant_.IsZero(); }

  LinearExpr operator+(const LinearExpr& other) const;
  LinearExpr operator-(const LinearExpr& other) const;
  LinearExpr operator*(const Rational& scalar) const;
  LinearExpr operator-() const;

  LinearExpr& operator+=(const LinearExpr& other);
  LinearExpr& operator-=(const LinearExpr& other);

  bool operator==(const LinearExpr& other) const {
    return constant_ == other.constant_ && terms_ == other.terms_;
  }

  /// Evaluates the expression under the given assignment. `values[v]` is the
  /// value of variable `v`; variables beyond `values.size()` count as zero.
  Rational Evaluate(const std::vector<Rational>& values) const;

  /// Renders e.g. "2*x3 - x7 + 1" using `x<id>` variable names.
  std::string ToString() const;

 private:
  std::map<VarId, Rational> terms_;
  Rational constant_;
};

}  // namespace crsat

#endif  // CRSAT_LP_LINEAR_EXPR_H_
