#include "src/lp/linear_system.h"

// srclint: allow(unguarded-loop): construction/printing helpers, linear
// in the system size; system *growth* is charged to the guard by the
// builders (reasoner/system_builder.cc) and solvers.

namespace crsat {

const char* ConstraintSenseToString(ConstraintSense sense) {
  switch (sense) {
    case ConstraintSense::kEqual:
      return "==";
    case ConstraintSense::kLessEqual:
      return "<=";
    case ConstraintSense::kGreaterEqual:
      return ">=";
    case ConstraintSense::kGreater:
      return ">";
  }
  return "?";
}

std::string Constraint::ToString() const {
  return expr.ToString() + " " + ConstraintSenseToString(sense) + " 0";
}

bool Constraint::IsSatisfiedBy(const std::vector<Rational>& values) const {
  Rational value = expr.Evaluate(values);
  switch (sense) {
    case ConstraintSense::kEqual:
      return value.IsZero();
    case ConstraintSense::kLessEqual:
      return !value.IsPositive();
    case ConstraintSense::kGreaterEqual:
      return !value.IsNegative();
    case ConstraintSense::kGreater:
      return value.IsPositive();
  }
  return false;
}

VarId LinearSystem::AddVariable(std::string name, bool nonnegative) {
  names_.push_back(std::move(name));
  nonnegative_.push_back(nonnegative);
  return static_cast<VarId>(names_.size()) - 1;
}

void LinearSystem::AddConstraint(LinearExpr expr, ConstraintSense sense) {
  constraints_.push_back(Constraint{std::move(expr), sense});
}

bool LinearSystem::IsSatisfiedBy(const std::vector<Rational>& values) const {
  for (int v = 0; v < num_variables(); ++v) {
    if (nonnegative_[v] && values[v].IsNegative()) {
      return false;
    }
  }
  for (const Constraint& constraint : constraints_) {
    if (!constraint.IsSatisfiedBy(values)) {
      return false;
    }
  }
  return true;
}

bool LinearSystem::IsHomogeneous() const {
  for (const Constraint& constraint : constraints_) {
    if (!constraint.expr.constant().IsZero()) {
      return false;
    }
  }
  return true;
}

bool LinearSystem::HasStrictConstraints() const {
  for (const Constraint& constraint : constraints_) {
    if (constraint.sense == ConstraintSense::kGreater) {
      return true;
    }
  }
  return false;
}

std::string LinearSystem::ToString() const {
  std::string text;
  for (const Constraint& constraint : constraints_) {
    // Render with variable names (Constraint::ToString has no access to
    // them and falls back to x<id>).
    std::string line;
    for (const auto& [var, coeff] : constraint.expr.terms()) {
      if (line.empty()) {
        if (coeff.IsNegative()) {
          line += "-";
        }
      } else {
        line += coeff.IsNegative() ? " - " : " + ";
      }
      Rational magnitude = coeff.IsNegative() ? -coeff : coeff;
      if (magnitude != Rational(1)) {
        line += magnitude.ToString();
        line += "*";
      }
      line += names_[var];
    }
    const Rational& constant = constraint.expr.constant();
    if (!constant.IsZero()) {
      if (line.empty()) {
        line = constant.ToString();
      } else {
        line += constant.IsNegative() ? " - " : " + ";
        Rational magnitude = constant.IsNegative() ? -constant : constant;
        line += magnitude.ToString();
      }
    }
    if (line.empty()) {
      line = "0";
    }
    text += line;
    text += " ";
    text += ConstraintSenseToString(constraint.sense);
    text += " 0\n";
  }
  return text;
}

}  // namespace crsat
