#ifndef CRSAT_LP_LINEAR_SYSTEM_H_
#define CRSAT_LP_LINEAR_SYSTEM_H_

#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/lp/linear_expr.h"

namespace crsat {

/// Relation between a linear expression and zero.
enum class ConstraintSense {
  kEqual,         // expr == 0
  kLessEqual,     // expr <= 0
  kGreaterEqual,  // expr >= 0
  kGreater,       // expr >  0 (strict; handled by the homogeneous layer and
                  //            Fourier-Motzkin, rejected by the simplex)
};

/// Returns "==", "<=", ">=" or ">".
const char* ConstraintSenseToString(ConstraintSense sense);

/// A single constraint `expr (sense) 0`.
struct Constraint {
  LinearExpr expr;
  ConstraintSense sense = ConstraintSense::kGreaterEqual;

  /// Renders e.g. "x0 - 2*x1 >= 0".
  std::string ToString() const;

  /// True iff `values` satisfies the constraint exactly.
  bool IsSatisfiedBy(const std::vector<Rational>& values) const;
};

/// A collection of variables and linear constraints over the rationals.
///
/// Variables carry a display name and a nonnegativity flag. The reasoning
/// pipeline only ever creates nonnegative variables (they denote instance
/// counts); free variables are supported so the LP layer is usable on its
/// own.
class LinearSystem {
 public:
  LinearSystem() = default;

  /// Adds a variable and returns its id. Ids are dense, starting at 0.
  VarId AddVariable(std::string name, bool nonnegative = true);

  /// Adds the constraint `expr (sense) 0`.
  void AddConstraint(LinearExpr expr, ConstraintSense sense);

  /// Convenience wrappers.
  void AddEq(LinearExpr expr) { AddConstraint(std::move(expr), ConstraintSense::kEqual); }
  void AddLe(LinearExpr expr) { AddConstraint(std::move(expr), ConstraintSense::kLessEqual); }
  void AddGe(LinearExpr expr) { AddConstraint(std::move(expr), ConstraintSense::kGreaterEqual); }
  void AddGt(LinearExpr expr) { AddConstraint(std::move(expr), ConstraintSense::kGreater); }

  int num_variables() const { return static_cast<int>(names_.size()); }
  size_t num_constraints() const { return constraints_.size(); }

  const std::string& VariableName(VarId var) const { return names_[var]; }
  bool IsNonnegative(VarId var) const { return nonnegative_[var]; }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  /// True iff every constraint (including variable sign restrictions) holds
  /// under `values`. `values.size()` must equal `num_variables()`.
  bool IsSatisfiedBy(const std::vector<Rational>& values) const;

  /// True iff all constraints have zero constant term (so the solution set
  /// is a cone and scaling arguments apply).
  bool IsHomogeneous() const;

  /// True iff some constraint is strict.
  bool HasStrictConstraints() const;

  /// Multi-line rendering of all constraints, for debugging and the bench
  /// harnesses that print the paper's Figure 5.
  std::string ToString() const;

 private:
  std::vector<std::string> names_;
  std::vector<bool> nonnegative_;
  std::vector<Constraint> constraints_;
};

}  // namespace crsat

#endif  // CRSAT_LP_LINEAR_SYSTEM_H_
