#ifndef CRSAT_LP_SMALL_RATIONAL_H_
#define CRSAT_LP_SMALL_RATIONAL_H_

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <numeric>

namespace crsat {

/// Fixed-width exact rational over `int64`, the scalar of the simplex's
/// fast tier (src/lp/simplex.cc).
///
/// Every operation is exact or flagged: intermediates are computed in
/// 128-bit arithmetic (products of two int64 cannot overflow __int128),
/// reduced by gcd, and results that do not fit back into int64 raise a
/// sticky *thread-local* overflow flag instead of wrapping. The solver
/// checks the flag at every pivot; once it is raised the tableau values
/// are unusable and the solve restarts on the arbitrary-precision
/// `Rational` tier. Verdicts obtained *without* the flag raised are exactly
/// as trustworthy as the exact tier's — there is no rounding anywhere.
///
/// Invariants mirror `Rational`: denominator strictly positive, fraction
/// fully reduced, zero stored as 0/1.
class SmallRational {
 public:
  SmallRational() : num_(0), den_(1) {}
  explicit SmallRational(std::int64_t value) : num_(value), den_(1) {}

  /// Builds `num/den` from already-reduced parts (den > 0). Used by the
  /// tier-conversion layer; aborts on a nonpositive denominator.
  static SmallRational FromReduced(std::int64_t num, std::int64_t den) {
    if (den <= 0) {
      std::cerr << "crsat: SmallRational::FromReduced with den <= 0"
                << std::endl;
      std::abort();
    }
    SmallRational result;
    result.num_ = num;
    result.den_ = den;
    return result;
  }

  std::int64_t numerator() const { return num_; }
  std::int64_t denominator() const { return den_; }

  bool IsZero() const { return num_ == 0; }
  bool IsNegative() const { return num_ < 0; }
  bool IsPositive() const { return num_ > 0; }

  /// Sticky per-thread overflow flag management. The flag is raised by any
  /// operation whose reduced result does not fit int64, and stays raised
  /// until cleared.
  static bool OverflowSeen() { return tls_overflow_; }
  static void ClearOverflow() { tls_overflow_ = false; }

  SmallRational operator-() const {
    return Make(-static_cast<__int128>(num_), den_);
  }

  SmallRational operator+(const SmallRational& other) const {
    const __int128 num = static_cast<__int128>(num_) * other.den_ +
                         static_cast<__int128>(other.num_) * den_;
    const __int128 den = static_cast<__int128>(den_) * other.den_;
    return Make(num, den);
  }

  SmallRational operator-(const SmallRational& other) const {
    const __int128 num = static_cast<__int128>(num_) * other.den_ -
                         static_cast<__int128>(other.num_) * den_;
    const __int128 den = static_cast<__int128>(den_) * other.den_;
    return Make(num, den);
  }

  SmallRational operator*(const SmallRational& other) const {
    const __int128 num = static_cast<__int128>(num_) * other.num_;
    const __int128 den = static_cast<__int128>(den_) * other.den_;
    return Make(num, den);
  }

  /// Aborts on division by zero (programming error, as in `Rational`).
  SmallRational operator/(const SmallRational& other) const {
    if (other.num_ == 0) {
      std::cerr << "crsat: SmallRational division by zero" << std::endl;
      std::abort();
    }
    __int128 num = static_cast<__int128>(num_) * other.den_;
    __int128 den = static_cast<__int128>(den_) * other.num_;
    if (den < 0) {
      num = -num;
      den = -den;
    }
    return Make(num, den);
  }

  SmallRational& operator+=(const SmallRational& other) {
    *this = *this + other;
    return *this;
  }
  SmallRational& operator-=(const SmallRational& other) {
    *this = *this - other;
    return *this;
  }
  SmallRational& operator*=(const SmallRational& other) {
    *this = *this * other;
    return *this;
  }
  SmallRational& operator/=(const SmallRational& other) {
    *this = *this / other;
    return *this;
  }

  // Canonical representation makes equality componentwise; ordering uses
  // 128-bit cross products, which cannot overflow.
  bool operator==(const SmallRational& other) const {
    return num_ == other.num_ && den_ == other.den_;
  }
  bool operator!=(const SmallRational& other) const {
    return !(*this == other);
  }
  bool operator<(const SmallRational& other) const {
    return static_cast<__int128>(num_) * other.den_ <
           static_cast<__int128>(other.num_) * den_;
  }
  bool operator<=(const SmallRational& other) const {
    return !(other < *this);
  }
  bool operator>(const SmallRational& other) const { return other < *this; }
  bool operator>=(const SmallRational& other) const {
    return !(*this < other);
  }

 private:
  // Reduces num/den (den > 0 required) and collapses to int64, raising the
  // overflow flag when the reduced value does not fit.
  static SmallRational Make(__int128 num, __int128 den) {
    if (num == 0) {
      return SmallRational();
    }
    unsigned __int128 magnitude = num < 0
                                      ? static_cast<unsigned __int128>(-num)
                                      : static_cast<unsigned __int128>(num);
    const unsigned __int128 divisor_gcd =
        Gcd128(magnitude, static_cast<unsigned __int128>(den));
    num /= static_cast<__int128>(divisor_gcd);
    den /= static_cast<__int128>(divisor_gcd);
    if (num > kMaxInt64 || num < kMinInt64 || den > kMaxInt64) {
      tls_overflow_ = true;
      return SmallRational();  // Placeholder; caller must check the flag.
    }
    SmallRational result;
    result.num_ = static_cast<std::int64_t>(num);
    result.den_ = static_cast<std::int64_t>(den);
    return result;
  }

  static unsigned __int128 Gcd128(unsigned __int128 a, unsigned __int128 b) {
    // Drop to 64-bit Euclid as soon as both operands fit; the wide steps
    // are rare (operands start below 2^127).
    while (a > kMaxUint64 || b > kMaxUint64) {
      if (a == 0) {
        return b;
      }
      if (b == 0) {
        return a;
      }
      if (a >= b) {
        a %= b;
      } else {
        b %= a;
      }
    }
    return std::gcd(static_cast<std::uint64_t>(a),
                    static_cast<std::uint64_t>(b));
  }

  static constexpr __int128 kMaxInt64 = INT64_MAX;
  static constexpr __int128 kMinInt64 = INT64_MIN;
  static constexpr unsigned __int128 kMaxUint64 = UINT64_MAX;

  inline static thread_local bool tls_overflow_ = false;

  std::int64_t num_;
  std::int64_t den_;
};

}  // namespace crsat

#endif  // CRSAT_LP_SMALL_RATIONAL_H_
