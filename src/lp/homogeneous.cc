#include "src/lp/homogeneous.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <optional>
#include <utility>

#include "src/base/degradation.h"
#include "src/base/failpoint.h"
#include "src/base/incremental.h"
#include "src/base/resource_guard.h"
#include "src/base/thread_pool.h"
#include "src/lp/small_rational.h"

namespace crsat {

Result<LpResult> SolveHomogeneousWithStrict(const LinearSystem& system) {
  if (!system.IsHomogeneous()) {
    return InvalidArgumentError(
        "SolveHomogeneousWithStrict requires a homogeneous system");
  }
  LinearSystem relaxed;
  for (VarId v = 0; v < system.num_variables(); ++v) {
    relaxed.AddVariable(system.VariableName(v), system.IsNonnegative(v));
  }
  for (const Constraint& constraint : system.constraints()) {
    if (constraint.sense == ConstraintSense::kGreater) {
      LinearExpr shifted = constraint.expr;
      shifted.AddConstant(Rational(-1));
      relaxed.AddGe(std::move(shifted));
    } else {
      relaxed.AddConstraint(constraint.expr, constraint.sense);
    }
  }
  return SimplexSolver::CheckFeasibility(relaxed);
}

namespace {

// The int64 tier of the LCM/scaling stage. Every step is exact or
// refused: inputs that do not narrow to int64, an LCM that leaves int64,
// or a scaled numerator flagged by `SmallRational`'s sticky overflow flag
// all return false, and the caller reruns on BigInt.
bool ScaleToIntegerSolutionFast(const std::vector<Rational>& values,
                                std::vector<BigInt>* out) {
  std::vector<SmallRational> narrow;
  narrow.reserve(values.size());
  for (const Rational& value : values) {
    Result<std::int64_t> num = value.numerator().ToInt64();
    Result<std::int64_t> den = value.denominator().ToInt64();
    if (!num.ok() || !den.ok()) {
      return false;
    }
    narrow.push_back(SmallRational::FromReduced(num.value(), den.value()));
  }
  std::int64_t lcm = 1;
  for (const SmallRational& value : narrow) {
    const std::int64_t den = value.denominator();
    const std::int64_t gcd = std::gcd(lcm, den);
    const __int128 wide = static_cast<__int128>(lcm / gcd) * den;
    if (wide > std::numeric_limits<std::int64_t>::max()) {
      return false;
    }
    lcm = static_cast<std::int64_t>(wide);
  }
  SmallRational::ClearOverflow();
  const SmallRational factor(lcm);
  std::vector<std::int64_t> scaled;
  scaled.reserve(narrow.size());
  std::int64_t gcd = 0;
  for (const SmallRational& value : narrow) {
    const SmallRational integer = value * factor;
    if (SmallRational::OverflowSeen()) {
      SmallRational::ClearOverflow();
      return false;
    }
    // lcm is a multiple of every denominator, so the reduced product is
    // integral by construction.
    scaled.push_back(integer.numerator());
    gcd = std::gcd(gcd, std::abs(integer.numerator()));
  }
  out->clear();
  out->reserve(scaled.size());
  for (std::int64_t value : scaled) {
    out->push_back(BigInt(gcd > 1 ? value / gcd : value));
  }
  return true;
}

}  // namespace

std::vector<BigInt> ScaleToIntegerSolution(const std::vector<Rational>& values,
                                           IntegerScaleStats* stats) {
  std::vector<BigInt> fast;
  if (ScaleToIntegerSolutionFast(values, &fast)) {
    if (stats != nullptr) {
      stats->used_fast_path = true;
      stats->exact_fallback = false;
    }
    return fast;
  }
  if (stats != nullptr) {
    stats->used_fast_path = false;
    stats->exact_fallback = true;
  }
  BigInt denominator_lcm(1);
  for (const Rational& value : values) {
    denominator_lcm = Lcm(denominator_lcm, value.denominator());
  }
  std::vector<BigInt> scaled;
  scaled.reserve(values.size());
  BigInt numerator_gcd;
  for (const Rational& value : values) {
    BigInt integer =
        value.numerator() * (denominator_lcm / value.denominator());
    numerator_gcd = Gcd(numerator_gcd, integer);
    scaled.push_back(std::move(integer));
  }
  if (numerator_gcd > BigInt(1)) {
    for (BigInt& value : scaled) {
      value /= numerator_gcd;
    }
  }
  return scaled;
}

std::vector<BigInt> ScaleSolution(const std::vector<BigInt>& values,
                                  const BigInt& factor) {
  std::vector<BigInt> scaled;
  scaled.reserve(values.size());
  for (const BigInt& value : values) {
    scaled.push_back(value * factor);
  }
  return scaled;
}

Result<SupportResult> ComputeMaximalSupport(
    const LinearSystem& system, const std::vector<bool>& forced_zero,
    WarmStartBasisCache* basis_cache, ResourceGuard* guard) {
  if (!system.IsHomogeneous()) {
    return InvalidArgumentError(
        "ComputeMaximalSupport requires a homogeneous system");
  }
  if (system.HasStrictConstraints()) {
    return InvalidArgumentError(
        "ComputeMaximalSupport requires non-strict constraints");
  }
  if (forced_zero.size() != static_cast<size_t>(system.num_variables())) {
    return InvalidArgumentError(
        "forced_zero size must match the number of variables");
  }

  const int n = system.num_variables();
  for (VarId v = 0; v < n; ++v) {
    if (!system.IsNonnegative(v)) {
      return InvalidArgumentError(
          "ComputeMaximalSupport requires nonnegative variables");
    }
  }
  SupportResult result;
  result.positive.assign(n, false);
  result.witness.assign(n, Rational());

  // Substitute the pinned variables out: they are zero on the subspace of
  // interest, so their terms just vanish and the LP never sees them.
  std::vector<VarId> to_probe(n, -1);
  std::vector<VarId> from_probe;
  LinearSystem pinned;
  for (VarId v = 0; v < n; ++v) {
    if (!forced_zero[v]) {
      to_probe[v] = pinned.AddVariable(system.VariableName(v),
                                      /*nonnegative=*/true);
      from_probe.push_back(v);
    }
  }
  for (const Constraint& constraint : system.constraints()) {
    LinearExpr remapped;
    for (const auto& [var, coeff] : constraint.expr.terms()) {
      if (to_probe[var] >= 0) {
        remapped.AddTerm(to_probe[var], coeff);
      }
    }
    pinned.AddConstraint(std::move(remapped), constraint.sense);
  }
  // Parallel group probing. Each probe asks one feasibility question about
  // a group G of still-undetermined variables:
  //
  //   sum of G >= 1
  //
  // (equivalent by scaling to "some variable of G positive" on the cone).
  // Infeasible => *every* variable of G is zero in every solution of the
  // pinned system — certified by a single LP. Feasible => the witness is a
  // solution of the shared pinned system, so it is folded into the global
  // accumulator and marks at least one member of G (its G-sum is >= 1)
  // plus typically many other variables positive at once.
  //
  // Round 0 probes all undetermined variables as ONE group — the common
  // case (most variables supported, or the whole cone trivial) then costs
  // a single LP exactly like the serial algorithm did. Later rounds split
  // the survivors into up to kMaxGroupsPerRound groups probed concurrently
  // on the global pool: the probes share only the immutable pinned system,
  // so they are embarrassingly parallel. Every group shrinks the
  // undetermined set each round (infeasible => members removed as proven
  // zero; feasible => >= 1 member marked positive), so the loop terminates.
  //
  // Determinism: the grouping depends only on the round index and the
  // undetermined list — never on the thread count — and verdicts are
  // collected first, then applied in group-index order, so pivot counts,
  // witnesses, and verdicts are bit-identical at any parallelism.
  //
  // Warm starts: every probe in this call has the same shape (the pinned
  // system plus one `>= 1` row), so a local carry — seeded from
  // `basis_cache`, refreshed after each round from the first feasible
  // probe's export, stored back at the end — lets each probe start from
  // the previous vertex and repair primal feasibility with a few dual
  // pivots instead of a cold phase 1. Probes read the carry concurrently
  // (const access only); it is updated, and the cache touched, strictly
  // between rounds.
  // Incremental path: compute the whole maximal support with ONE LP
  // instead of O(support) feasibility probes. For each unpinned variable
  // x_u add a deficit variable y_u >= 0 with `x_u + y_u >= 1`, and
  // minimize sum(y). The cone is closed under addition and scaling, so
  // solutions positive on each supportable coordinate sum and scale to
  // ONE solution with x_u >= 1 on every supportable u at once — that
  // point has y_u = 0 on the supportable set, and an unsupportable u has
  // x_u = 0 in every solution, forcing y_u = 1. The optimum is therefore
  // exactly the number of unsupportable variables, reached only when
  // x*_u > 0 for EVERY supportable u; since supp(x*) can never exceed the
  // maximal support (x* is itself a solution of the pinned cone),
  // supp(x*) IS the maximal support. One interior-like witness replaces
  // the probe rounds below, whose feasibility vertices certify only one
  // or two variables each. Verdict-equivalent — the maximal support is
  // unique — but kept behind the incremental gate so the forced-cold
  // reference path preserves the historical probe sequence.
  // A cover-LP failure — injected via `lp/support_cover_fail`, or a
  // genuine non-resource failure — degrades to the per-group probe
  // rounds below (rung 0 -> 1) instead of erroring out: the rounds
  // compute the same unique maximal support, just slower. Resource
  // statuses still propagate (the trip is sticky; retrying would trip
  // again immediately).
  if (IncrementalReasoningEnabled() &&
      GetDegradationPolicy().allow_incremental &&
      pinned.num_variables() > 0) {
    const int nu = pinned.num_variables();
    LinearSystem covered = pinned;
    LinearExpr total_deficit;
    std::vector<VarId> crash_vars;
    crash_vars.reserve(nu);
    for (VarId u = 0; u < nu; ++u) {
      VarId y = covered.AddVariable("y_" + pinned.VariableName(u),
                                    /*nonnegative=*/true);
      LinearExpr cover = LinearExpr::Var(y);
      cover.AddTerm(u, Rational(1));
      cover.AddConstant(Rational(-1));
      covered.AddGe(std::move(cover));  // x_u + y_u >= 1
      total_deficit.AddTerm(y, Rational(1));
      crash_vars.push_back(y);
    }
    const int cover_constraints =
        static_cast<int>(covered.constraints().size());
    SimplexOptions options;
    options.guard = guard;
    // y = 1, x = 0 is feasible, and each y's unit column evicts its row's
    // artificial in one sparse pivot: the crash makes phase 1 a no-op.
    options.crash_vars = &crash_vars;
    WarmStartBasis carry;
    WarmStartBasis exported;
    if (basis_cache != nullptr) {
      const WarmStartBasis* cached =
          basis_cache->Lookup(covered.num_variables(), cover_constraints);
      if (cached != nullptr) {
        carry = *cached;
      }
      if (!carry.empty()) {
        options.warm_start = &carry;
      }
      options.export_basis = &exported;
    }
    if (!CRSAT_FAILPOINT("lp/support_cover_fail")) {
      Result<LpResult> lp = SimplexSolver::SolveWith(
          covered, total_deficit, /*maximize=*/false, options);
      if (!lp.ok() && IsResourceLimitStatus(lp.status().code())) {
        return lp.status();
      }
      // lp.ok() with a non-optimal outcome cannot happen on a sound
      // solver (x = 0, y = 1 is always feasible and the objective is
      // bounded below by zero); treat it like any other cover failure
      // and let the probe rounds decide.
      if (lp.ok() && lp->outcome == LpOutcome::kOptimal) {
        if (basis_cache != nullptr && !exported.empty()) {
          basis_cache->Store(covered.num_variables(), cover_constraints,
                             std::move(exported));
        }
        for (VarId u = 0; u < nu; ++u) {
          result.witness[from_probe[u]] = lp->values[u];
          result.positive[from_probe[u]] = lp->values[u].IsPositive();
        }
        return result;
      }
    }
    GetRecoveryStats().cover_fallbacks.fetch_add(1,
                                                 std::memory_order_relaxed);
  }

  constexpr size_t kMaxGroupsPerRound = 8;
  const int probe_constraints =
      static_cast<int>(pinned.constraints().size()) + 1;
  WarmStartBasis carry;
  if (basis_cache != nullptr) {
    const WarmStartBasis* cached =
        basis_cache->Lookup(pinned.num_variables(), probe_constraints);
    if (cached != nullptr) {
      carry = *cached;
    }
  }
  std::vector<VarId> undetermined;
  for (VarId v = 0; v < pinned.num_variables(); ++v) {
    undetermined.push_back(v);
  }
  int round = 0;
  while (!undetermined.empty()) {
    if (guard != nullptr) {
      // Round boundary: consult the clock unconditionally so deadline
      // trips surface between rounds even when probes are tiny.
      CRSAT_RETURN_IF_ERROR(guard->CheckNow("homogeneous/probe_round"));
    }
    const size_t num_groups =
        round == 0 ? 1
                   : std::min(kMaxGroupsPerRound, undetermined.size());
    ++round;
    // Contiguous chunks of the (deterministically ordered) undetermined
    // list; chunk g covers [g*U/G, (g+1)*U/G).
    std::vector<std::vector<VarId>> groups(num_groups);
    for (size_t g = 0; g < num_groups; ++g) {
      const size_t begin = g * undetermined.size() / num_groups;
      const size_t end = (g + 1) * undetermined.size() / num_groups;
      groups[g].assign(undetermined.begin() + begin,
                       undetermined.begin() + end);
    }
    std::vector<std::optional<Result<LpResult>>> verdicts(num_groups);
    std::vector<WarmStartBasis> exported(num_groups);
    GlobalThreadPool().ParallelFor(num_groups, [&](size_t g) {
      LinearSystem probe = pinned;
      LinearExpr at_least_one;
      for (VarId v : groups[g]) {
        at_least_one.AddTerm(v, Rational(1));
      }
      at_least_one.AddConstant(Rational(-1));
      probe.AddGe(std::move(at_least_one));
      SimplexOptions options;
      if (!carry.empty()) {
        options.warm_start = &carry;
      }
      options.export_basis = &exported[g];
      options.guard = guard;
      verdicts[g] = SimplexSolver::SolveWith(probe, LinearExpr(),
                                             /*maximize=*/false, options);
    }, guard);
    // Apply verdicts serially in group-index order.
    std::vector<bool> proven_zero(pinned.num_variables(), false);
    for (size_t g = 0; g < num_groups; ++g) {
      if (!verdicts[g].has_value()) {
        // The pool skipped this probe after a guard trip.
        return guard->TripStatus();
      }
      const Result<LpResult>& verdict = *verdicts[g];
      if (!verdict.ok()) {
        return verdict.status();
      }
      if (verdict->outcome != LpOutcome::kOptimal) {
        // No solution of the pinned system makes any member of this group
        // positive; they are settled (and stay out of later witnesses).
        for (VarId v : groups[g]) {
          proven_zero[v] = true;
        }
        continue;
      }
      for (VarId u = 0; u < pinned.num_variables(); ++u) {
        result.witness[from_probe[u]] += verdict->values[u];
        if (verdict->values[u].IsPositive()) {
          result.positive[from_probe[u]] = true;
        }
      }
    }
    // Adopt the first feasible probe's basis (group order, so independent
    // of scheduling) as the carry for the next round and, ultimately, the
    // caller's next same-shaped call.
    for (size_t g = 0; g < num_groups; ++g) {
      if (!exported[g].empty()) {
        carry = std::move(exported[g]);
        break;
      }
    }
    std::vector<VarId> still_undetermined;
    for (VarId v : undetermined) {
      if (!proven_zero[v] && !result.positive[from_probe[v]]) {
        still_undetermined.push_back(v);
      }
    }
    undetermined = std::move(still_undetermined);
  }
  if (basis_cache != nullptr && !carry.empty()) {
    basis_cache->Store(pinned.num_variables(), probe_constraints,
                       std::move(carry));
  }
  return result;
}

}  // namespace crsat
