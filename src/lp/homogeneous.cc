#include "src/lp/homogeneous.h"

#include <utility>

namespace crsat {

Result<LpResult> SolveHomogeneousWithStrict(const LinearSystem& system) {
  if (!system.IsHomogeneous()) {
    return InvalidArgumentError(
        "SolveHomogeneousWithStrict requires a homogeneous system");
  }
  LinearSystem relaxed;
  for (VarId v = 0; v < system.num_variables(); ++v) {
    relaxed.AddVariable(system.VariableName(v), system.IsNonnegative(v));
  }
  for (const Constraint& constraint : system.constraints()) {
    if (constraint.sense == ConstraintSense::kGreater) {
      LinearExpr shifted = constraint.expr;
      shifted.AddConstant(Rational(-1));
      relaxed.AddGe(std::move(shifted));
    } else {
      relaxed.AddConstraint(constraint.expr, constraint.sense);
    }
  }
  return SimplexSolver::CheckFeasibility(relaxed);
}

std::vector<BigInt> ScaleToIntegerSolution(
    const std::vector<Rational>& values) {
  BigInt denominator_lcm(1);
  for (const Rational& value : values) {
    denominator_lcm = Lcm(denominator_lcm, value.denominator());
  }
  std::vector<BigInt> scaled;
  scaled.reserve(values.size());
  BigInt numerator_gcd;
  for (const Rational& value : values) {
    BigInt integer =
        value.numerator() * (denominator_lcm / value.denominator());
    numerator_gcd = Gcd(numerator_gcd, integer);
    scaled.push_back(std::move(integer));
  }
  if (numerator_gcd > BigInt(1)) {
    for (BigInt& value : scaled) {
      value /= numerator_gcd;
    }
  }
  return scaled;
}

std::vector<BigInt> ScaleSolution(const std::vector<BigInt>& values,
                                  const BigInt& factor) {
  std::vector<BigInt> scaled;
  scaled.reserve(values.size());
  for (const BigInt& value : values) {
    scaled.push_back(value * factor);
  }
  return scaled;
}

Result<SupportResult> ComputeMaximalSupport(
    const LinearSystem& system, const std::vector<bool>& forced_zero) {
  if (!system.IsHomogeneous()) {
    return InvalidArgumentError(
        "ComputeMaximalSupport requires a homogeneous system");
  }
  if (system.HasStrictConstraints()) {
    return InvalidArgumentError(
        "ComputeMaximalSupport requires non-strict constraints");
  }
  if (forced_zero.size() != static_cast<size_t>(system.num_variables())) {
    return InvalidArgumentError(
        "forced_zero size must match the number of variables");
  }

  const int n = system.num_variables();
  for (VarId v = 0; v < n; ++v) {
    if (!system.IsNonnegative(v)) {
      return InvalidArgumentError(
          "ComputeMaximalSupport requires nonnegative variables");
    }
  }
  SupportResult result;
  result.positive.assign(n, false);
  result.witness.assign(n, Rational());

  // Substitute the pinned variables out: they are zero on the subspace of
  // interest, so their terms just vanish and the LP never sees them.
  std::vector<VarId> to_probe(n, -1);
  std::vector<VarId> from_probe;
  LinearSystem pinned;
  for (VarId v = 0; v < n; ++v) {
    if (!forced_zero[v]) {
      to_probe[v] = pinned.AddVariable(system.VariableName(v),
                                      /*nonnegative=*/true);
      from_probe.push_back(v);
    }
  }
  for (const Constraint& constraint : system.constraints()) {
    LinearExpr remapped;
    for (const auto& [var, coeff] : constraint.expr.terms()) {
      if (to_probe[var] >= 0) {
        remapped.AddTerm(to_probe[var], coeff);
      }
    }
    pinned.AddConstraint(std::move(remapped), constraint.sense);
  }
  // Group probing. Each round asks one feasibility question:
  //
  //   sum of the still-undetermined variables >= 1
  //
  // (equivalent by scaling to "some undetermined variable positive" on the
  // cone). Infeasible => *every* remaining variable is zero in every
  // solution — certified by a single LP, where per-variable probing would
  // pay one infeasible LP each. Feasible => the witness is folded in and
  // marks at least one new positive (its undetermined-sum is >= 1), so the
  // loop runs at most (support size + 1) rounds; in practice a couple,
  // since each vertex witness makes many variables positive at once.
  std::vector<VarId> undetermined;
  for (VarId v = 0; v < pinned.num_variables(); ++v) {
    undetermined.push_back(v);
  }
  while (!undetermined.empty()) {
    LinearSystem probe = pinned;
    LinearExpr at_least_one;
    for (VarId v : undetermined) {
      at_least_one.AddTerm(v, Rational(1));
    }
    at_least_one.AddConstant(Rational(-1));
    probe.AddGe(std::move(at_least_one));
    CRSAT_ASSIGN_OR_RETURN(LpResult lp,
                           SimplexSolver::CheckFeasibility(probe));
    if (lp.outcome != LpOutcome::kOptimal) {
      break;  // All remaining variables are zero in every solution.
    }
    for (VarId u = 0; u < pinned.num_variables(); ++u) {
      result.witness[from_probe[u]] += lp.values[u];
      if (lp.values[u].IsPositive()) {
        result.positive[from_probe[u]] = true;
      }
    }
    std::vector<VarId> still_undetermined;
    for (VarId v : undetermined) {
      if (!result.positive[from_probe[v]]) {
        still_undetermined.push_back(v);
      }
    }
    undetermined = std::move(still_undetermined);
  }
  return result;
}

}  // namespace crsat
