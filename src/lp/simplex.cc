#include "src/lp/simplex.h"

#include <utility>

namespace crsat {

SimplexStats& GetSimplexStats() {
  static SimplexStats stats;
  return stats;
}

namespace {

// Dense exact tableau for the two-phase primal simplex.
//
// Column layout: [structural columns][slack/surplus columns][artificial
// columns], plus the right-hand side kept in a separate vector. Structural
// columns encode user variables: a nonnegative variable occupies one column;
// a free variable is split into two columns (x = pos - neg).
class Tableau {
 public:
  explicit Tableau(const LinearSystem& system) : system_(system) {
    // Assign structural columns.
    column_of_var_.resize(system.num_variables());
    neg_column_of_var_.assign(system.num_variables(), -1);
    for (VarId v = 0; v < system.num_variables(); ++v) {
      column_of_var_[v] = num_columns_++;
      if (!system.IsNonnegative(v)) {
        neg_column_of_var_[v] = num_columns_++;
      }
    }
    num_structural_ = num_columns_;

    // One row per constraint, with b >= 0 after sign normalization.
    for (const Constraint& constraint : system.constraints()) {
      Row row;
      row.coeffs.assign(num_structural_, Rational());
      for (const auto& [var, coeff] : constraint.expr.terms()) {
        row.coeffs[column_of_var_[var]] += coeff;
        if (neg_column_of_var_[var] >= 0) {
          row.coeffs[neg_column_of_var_[var]] -= coeff;
        }
      }
      row.rhs = -constraint.expr.constant();
      ConstraintSense sense = constraint.sense;
      if (row.rhs.IsNegative() ||
          (row.rhs.IsZero() && sense == ConstraintSense::kGreaterEqual)) {
        // Normalize to b >= 0; additionally flip zero-RHS `>=` rows into
        // `<=` form so their slack can start basic — homogeneous systems
        // then need (almost) no artificials and phase 1 is trivial.
        for (Rational& c : row.coeffs) {
          c = -c;
        }
        row.rhs = -row.rhs;
        if (sense == ConstraintSense::kLessEqual) {
          sense = ConstraintSense::kGreaterEqual;
        } else if (sense == ConstraintSense::kGreaterEqual) {
          sense = ConstraintSense::kLessEqual;
        }
      }
      row.sense = sense;
      rows_.push_back(std::move(row));
    }

    // Slack / surplus columns.
    for (Row& row : rows_) {
      if (row.sense == ConstraintSense::kLessEqual) {
        row.slack_column = num_columns_++;
        row.slack_sign = Rational(1);
      } else if (row.sense == ConstraintSense::kGreaterEqual) {
        row.slack_column = num_columns_++;
        row.slack_sign = Rational(-1);
      }
    }
    num_with_slacks_ = num_columns_;

    // Artificial columns: needed for == rows and >= rows (whose surplus
    // enters with -1 and cannot start basic). A <= row's slack starts basic.
    for (Row& row : rows_) {
      bool needs_artificial = row.sense != ConstraintSense::kLessEqual;
      if (needs_artificial) {
        row.artificial_column = num_columns_++;
      }
    }

    // Materialize the dense tableau.
    size_t m = rows_.size();
    matrix_.assign(m, std::vector<Rational>(num_columns_, Rational()));
    rhs_.assign(m, Rational());
    basis_.assign(m, -1);
    for (size_t i = 0; i < m; ++i) {
      const Row& row = rows_[i];
      for (int j = 0; j < num_structural_; ++j) {
        matrix_[i][j] = row.coeffs[j];
      }
      if (row.slack_column >= 0) {
        matrix_[i][row.slack_column] = row.slack_sign;
      }
      if (row.artificial_column >= 0) {
        matrix_[i][row.artificial_column] = Rational(1);
        basis_[i] = row.artificial_column;
      } else {
        basis_[i] = row.slack_column;
      }
      rhs_[i] = row.rhs;
    }
  }

  // Runs phase 1. Returns false if the system is infeasible.
  bool SolvePhase1() {
    std::vector<Rational> costs(num_columns_, Rational());
    for (int j = first_artificial(); j < num_columns_; ++j) {
      costs[j] = Rational(1);
    }
    RunSimplex(costs, /*allow_artificials=*/true);
    Rational value = ObjectiveValue(costs);
    if (value.IsPositive()) {
      return false;
    }
    EliminateArtificialsFromBasis();
    return true;
  }

  // Runs phase 2 minimizing `costs` over the structural columns; returns
  // false when unbounded. `costs` has one entry per structural column.
  bool SolvePhase2(const std::vector<Rational>& structural_costs) {
    std::vector<Rational> costs(num_columns_, Rational());
    for (int j = 0; j < num_structural_; ++j) {
      costs[j] = structural_costs[j];
    }
    return RunSimplex(costs, /*allow_artificials=*/false);
  }

  // Extracts per-user-variable values from the current basic solution.
  std::vector<Rational> ExtractValues() const {
    std::vector<Rational> column_values(num_columns_, Rational());
    for (size_t i = 0; i < basis_.size(); ++i) {
      column_values[basis_[i]] = rhs_[i];
    }
    std::vector<Rational> values(system_.num_variables(), Rational());
    for (VarId v = 0; v < system_.num_variables(); ++v) {
      values[v] = column_values[column_of_var_[v]];
      if (neg_column_of_var_[v] >= 0) {
        values[v] -= column_values[neg_column_of_var_[v]];
      }
    }
    return values;
  }

  int num_structural() const { return num_structural_; }
  int column_of_var(VarId v) const { return column_of_var_[v]; }
  int neg_column_of_var(VarId v) const { return neg_column_of_var_[v]; }

 private:
  struct Row {
    std::vector<Rational> coeffs;
    Rational rhs;
    ConstraintSense sense = ConstraintSense::kEqual;
    int slack_column = -1;
    Rational slack_sign;
    int artificial_column = -1;
  };

  int first_artificial() const { return num_with_slacks_; }

  bool IsArtificial(int column) const { return column >= num_with_slacks_; }

  Rational ObjectiveValue(const std::vector<Rational>& costs) const {
    Rational total;
    for (size_t i = 0; i < basis_.size(); ++i) {
      total += costs[basis_[i]] * rhs_[i];
    }
    return total;
  }

  // Primal simplex minimizing `costs`. Returns false if unbounded.
  // Pricing: Dantzig's rule (most negative maintained reduced cost) for
  // speed, with a permanent-within-the-run switch to Bland's rule after a
  // long degenerate streak to guarantee termination (cycling can only
  // happen inside a degenerate sequence; any strict objective improvement
  // resets the streak). Artificial columns are barred from re-entering the
  // basis in phase 2.
  bool RunSimplex(const std::vector<Rational>& costs, bool allow_artificials) {
    // Initialize the maintained reduced-cost row:
    //   z_j = c_j - sum_i c_B(i) * T[i][j],
    // which Pivot then updates in O(columns) like any other row.
    reduced_.assign(num_columns_, Rational());
    for (int j = 0; j < num_columns_; ++j) {
      reduced_[j] = costs[j];
    }
    for (size_t i = 0; i < basis_.size(); ++i) {
      const Rational& basis_cost = costs[basis_[i]];
      if (basis_cost.IsZero()) {
        continue;
      }
      for (int j = 0; j < num_columns_; ++j) {
        if (!matrix_[i][j].IsZero()) {
          reduced_[j] -= basis_cost * matrix_[i][j];
        }
      }
    }

    constexpr int kBlandStreak = 30;
    int degenerate_streak = 0;
    while (true) {
      const bool use_bland = degenerate_streak >= kBlandStreak;
      int entering = -1;
      for (int j = 0; j < num_columns_; ++j) {
        if (!allow_artificials && IsArtificial(j)) {
          continue;
        }
        if (!reduced_[j].IsNegative()) {
          continue;
        }
        if (use_bland) {
          entering = j;  // First improving index.
          break;
        }
        if (entering < 0 || reduced_[j] < reduced_[entering]) {
          entering = j;  // Most negative reduced cost.
        }
      }
      if (entering < 0) {
        return true;  // Optimal.
      }
      int leaving_row = -1;
      Rational best_ratio;
      for (size_t i = 0; i < basis_.size(); ++i) {
        if (!matrix_[i][entering].IsPositive()) {
          continue;
        }
        Rational ratio = rhs_[i] / matrix_[i][entering];
        if (leaving_row < 0 || ratio < best_ratio ||
            (ratio == best_ratio && basis_[i] < basis_[leaving_row])) {
          leaving_row = static_cast<int>(i);
          best_ratio = ratio;
        }
      }
      if (leaving_row < 0) {
        return false;  // Unbounded direction.
      }
      degenerate_streak = best_ratio.IsZero() ? degenerate_streak + 1 : 0;
      ++GetSimplexStats().pivots;
      if (allow_artificials) {
        ++GetSimplexStats().phase1_pivots;
      }
      Pivot(leaving_row, entering);
    }
  }

  bool IsBasic(int column) const {
    for (int b : basis_) {
      if (b == column) {
        return true;
      }
    }
    return false;
  }

  void Pivot(int pivot_row, int pivot_column) {
    Rational pivot = matrix_[pivot_row][pivot_column];
    for (int j = 0; j < num_columns_; ++j) {
      matrix_[pivot_row][j] /= pivot;
    }
    rhs_[pivot_row] /= pivot;
    for (size_t i = 0; i < matrix_.size(); ++i) {
      if (static_cast<int>(i) == pivot_row) {
        continue;
      }
      Rational factor = matrix_[i][pivot_column];
      if (factor.IsZero()) {
        continue;
      }
      for (int j = 0; j < num_columns_; ++j) {
        if (!matrix_[pivot_row][j].IsZero()) {
          matrix_[i][j] -= factor * matrix_[pivot_row][j];
        }
      }
      rhs_[i] -= factor * rhs_[pivot_row];
    }
    // The maintained reduced-cost row is eliminated like any other row
    // (only meaningful while RunSimplex is active; stale otherwise).
    if (reduced_.size() == static_cast<size_t>(num_columns_)) {
      Rational factor = reduced_[pivot_column];
      if (!factor.IsZero()) {
        for (int j = 0; j < num_columns_; ++j) {
          if (!matrix_[pivot_row][j].IsZero()) {
            reduced_[j] -= factor * matrix_[pivot_row][j];
          }
        }
      }
    }
    basis_[pivot_row] = pivot_column;
  }

  // After a successful phase 1, pivots any (necessarily degenerate)
  // artificial variables out of the basis; rows that cannot be pivoted are
  // redundant and are dropped.
  void EliminateArtificialsFromBasis() {
    for (size_t i = 0; i < basis_.size();) {
      if (!IsArtificial(basis_[i])) {
        ++i;
        continue;
      }
      int pivot_column = -1;
      for (int j = 0; j < num_with_slacks_; ++j) {
        if (!matrix_[i][j].IsZero() && !IsBasic(j)) {
          pivot_column = j;
          break;
        }
      }
      if (pivot_column >= 0) {
        Pivot(static_cast<int>(i), pivot_column);
        ++i;
      } else {
        // Redundant constraint: remove the row.
        matrix_.erase(matrix_.begin() + i);
        rhs_.erase(rhs_.begin() + i);
        basis_.erase(basis_.begin() + i);
      }
    }
  }

  const LinearSystem& system_;
  std::vector<int> column_of_var_;
  std::vector<int> neg_column_of_var_;
  int num_columns_ = 0;
  int num_structural_ = 0;
  int num_with_slacks_ = 0;
  std::vector<Row> rows_;
  std::vector<std::vector<Rational>> matrix_;
  std::vector<Rational> rhs_;
  std::vector<int> basis_;
  std::vector<Rational> reduced_;
};

}  // namespace

Result<LpResult> SimplexSolver::Solve(const LinearSystem& system,
                                      const LinearExpr& objective,
                                      bool maximize) {
  if (system.HasStrictConstraints()) {
    return InvalidArgumentError(
        "SimplexSolver does not accept strict constraints; reduce them via "
        "the homogeneous layer first");
  }
  ++GetSimplexStats().solves;
  Tableau tableau(system);
  LpResult result;
  if (!tableau.SolvePhase1()) {
    result.outcome = LpOutcome::kInfeasible;
    return result;
  }
  // Build structural costs for minimization of +/- objective.
  std::vector<Rational> costs(tableau.num_structural(), Rational());
  for (const auto& [var, coeff] : objective.terms()) {
    Rational c = maximize ? -coeff : coeff;
    costs[tableau.column_of_var(var)] += c;
    if (tableau.neg_column_of_var(var) >= 0) {
      costs[tableau.neg_column_of_var(var)] -= c;
    }
  }
  if (!tableau.SolvePhase2(costs)) {
    result.outcome = LpOutcome::kUnbounded;
    return result;
  }
  result.outcome = LpOutcome::kOptimal;
  result.values = tableau.ExtractValues();
  result.objective = objective.Evaluate(result.values);
  return result;
}

Result<LpResult> SimplexSolver::CheckFeasibility(const LinearSystem& system) {
  return Solve(system, LinearExpr(), /*maximize=*/false);
}

}  // namespace crsat
