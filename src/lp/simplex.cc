#include "src/lp/simplex.h"

#include <utility>

#include "src/base/resource_guard.h"
#include "src/lp/small_rational.h"

namespace crsat {

void SimplexStats::Reset() {
  solves.store(0, std::memory_order_relaxed);
  pivots.store(0, std::memory_order_relaxed);
  phase1_pivots.store(0, std::memory_order_relaxed);
  fast_solves.store(0, std::memory_order_relaxed);
  fast_pivots.store(0, std::memory_order_relaxed);
  tier_fallbacks.store(0, std::memory_order_relaxed);
  warm_start_hits.store(0, std::memory_order_relaxed);
  warm_start_misses.store(0, std::memory_order_relaxed);
}

SimplexStats& GetSimplexStats() {
  static SimplexStats stats;
  return stats;
}

namespace {

void BumpStat(std::atomic<std::uint64_t>& counter, std::uint64_t amount = 1) {
  counter.fetch_add(amount, std::memory_order_relaxed);
}

// Arithmetic-tier glue. Both scalars are exact rationals; the small one
// abstains (via a sticky thread-local flag) instead of losing precision.
template <typename Scalar>
struct ScalarOps;

template <>
struct ScalarOps<Rational> {
  static bool FromRational(const Rational& value, Rational* out) {
    *out = value;
    return true;
  }
  static Rational ToRational(const Rational& value) { return value; }
  static bool Overflowed() { return false; }
  static void ClearOverflow() {}
};

template <>
struct ScalarOps<SmallRational> {
  static bool FromRational(const Rational& value, SmallRational* out) {
    Result<std::int64_t> num = value.numerator().ToInt64();
    Result<std::int64_t> den = value.denominator().ToInt64();
    if (!num.ok() || !den.ok()) {
      return false;
    }
    // Rational keeps fractions reduced with a positive denominator, so the
    // parts can be adopted verbatim.
    *out = SmallRational::FromReduced(*num, *den);
    return true;
  }
  static Rational ToRational(const SmallRational& value) {
    return Rational(BigInt(value.numerator()), BigInt(value.denominator()));
  }
  static bool Overflowed() { return SmallRational::OverflowSeen(); }
  static void ClearOverflow() { SmallRational::ClearOverflow(); }
};

// Tier-independent tableau shape: column layout and sign-normalized rows,
// still in exact `Rational` form. Computed once per solve and shared by
// both tiers (the exact fallback must see exactly the system the fast
// attempt saw).
//
// Column layout: [structural columns][slack/surplus columns][artificial
// columns], plus the right-hand side kept separately. Structural columns
// encode user variables: a nonnegative variable occupies one column; a
// free variable is split into two columns (x = pos - neg).
struct TableauLayout {
  struct Row {
    std::vector<Rational> coeffs;
    Rational rhs;
    ConstraintSense sense = ConstraintSense::kEqual;
    int slack_column = -1;
    Rational slack_sign;
    int artificial_column = -1;
  };

  std::vector<int> column_of_var;
  std::vector<int> neg_column_of_var;
  int num_columns = 0;
  int num_structural = 0;
  int num_with_slacks = 0;
  std::vector<Row> rows;

  explicit TableauLayout(const LinearSystem& system) {
    // Assign structural columns.
    column_of_var.resize(system.num_variables());
    neg_column_of_var.assign(system.num_variables(), -1);
    for (VarId v = 0; v < system.num_variables(); ++v) {
      column_of_var[v] = num_columns++;
      if (!system.IsNonnegative(v)) {
        neg_column_of_var[v] = num_columns++;
      }
    }
    num_structural = num_columns;

    // One row per constraint, with b >= 0 after sign normalization.
    for (const Constraint& constraint : system.constraints()) {
      Row row;
      row.coeffs.assign(num_structural, Rational());
      for (const auto& [var, coeff] : constraint.expr.terms()) {
        row.coeffs[column_of_var[var]] += coeff;
        if (neg_column_of_var[var] >= 0) {
          row.coeffs[neg_column_of_var[var]] -= coeff;
        }
      }
      row.rhs = -constraint.expr.constant();
      ConstraintSense sense = constraint.sense;
      if (row.rhs.IsNegative() ||
          (row.rhs.IsZero() && sense == ConstraintSense::kGreaterEqual)) {
        // Normalize to b >= 0; additionally flip zero-RHS `>=` rows into
        // `<=` form so their slack can start basic — homogeneous systems
        // then need (almost) no artificials and phase 1 is trivial.
        for (Rational& c : row.coeffs) {
          c = -c;
        }
        row.rhs = -row.rhs;
        if (sense == ConstraintSense::kLessEqual) {
          sense = ConstraintSense::kGreaterEqual;
        } else if (sense == ConstraintSense::kGreaterEqual) {
          sense = ConstraintSense::kLessEqual;
        }
      }
      row.sense = sense;
      rows.push_back(std::move(row));
    }

    // Slack / surplus columns.
    for (Row& row : rows) {
      if (row.sense == ConstraintSense::kLessEqual) {
        row.slack_column = num_columns++;
        row.slack_sign = Rational(1);
      } else if (row.sense == ConstraintSense::kGreaterEqual) {
        row.slack_column = num_columns++;
        row.slack_sign = Rational(-1);
      }
    }
    num_with_slacks = num_columns;

    // Artificial columns: needed for == rows and >= rows (whose surplus
    // enters with -1 and cannot start basic). A <= row's slack starts basic.
    for (Row& row : rows) {
      bool needs_artificial = row.sense != ConstraintSense::kLessEqual;
      if (needs_artificial) {
        row.artificial_column = num_columns++;
      }
    }
  }
};

enum class RunOutcome {
  kOptimal,
  kUnbounded,
  // A fast-tier value left the representable range; results are unusable
  // and the caller restarts the solve on the exact tier.
  kOverflow,
  // The resource guard tripped mid-run; the solve is abandoned for good
  // (no tier fallback — the trip is sticky).
  kTripped,
};

enum class Phase1Outcome { kFeasible, kInfeasible, kOverflow, kTripped };

// Dense two-phase primal simplex over an exact scalar type, materialized
// from a shared `TableauLayout`.
template <typename Scalar>
class Tableau {
 public:
  Tableau(const LinearSystem& system, const TableauLayout& layout,
          ResourceGuard* guard = nullptr)
      : system_(&system), layout_(&layout), guard_(guard) {
    const size_t m = layout.rows.size();
    matrix_.assign(m, std::vector<Scalar>(layout.num_columns, Scalar()));
    rhs_.assign(m, Scalar());
    basis_.assign(m, -1);
    for (size_t i = 0; i < m; ++i) {
      const TableauLayout::Row& row = layout.rows[i];
      for (int j = 0; j < layout.num_structural; ++j) {
        if (!ScalarOps<Scalar>::FromRational(row.coeffs[j], &matrix_[i][j])) {
          ok_ = false;
          return;
        }
      }
      if (row.slack_column >= 0 &&
          !ScalarOps<Scalar>::FromRational(row.slack_sign,
                                           &matrix_[i][row.slack_column])) {
        ok_ = false;
        return;
      }
      if (row.artificial_column >= 0) {
        matrix_[i][row.artificial_column] = Scalar(1);
        basis_[i] = row.artificial_column;
      } else {
        basis_[i] = row.slack_column;
      }
      if (!ScalarOps<Scalar>::FromRational(row.rhs, &rhs_[i])) {
        ok_ = false;
        return;
      }
    }
  }

  // False when some input coefficient was not representable in `Scalar`.
  bool ok() const { return ok_; }

  // Attempts to pivot into `basis` and skip phase 1. Returns true when the
  // basis is structurally compatible, non-singular, and feasible for this
  // system. On failure the tableau may be left mid-elimination — the
  // caller must discard it and rebuild.
  bool TryWarmStart(const WarmStartBasis& warm) {
    if (warm.num_columns != layout_->num_columns ||
        warm.basis.size() != matrix_.size()) {
      return false;
    }
    for (int column : warm.basis) {
      if (column < 0 || column >= layout_->num_with_slacks) {
        return false;  // Artificial or out-of-range column.
      }
    }
    for (size_t i = 0; i < matrix_.size(); ++i) {
      const int column = warm.basis[i];
      if (matrix_[i][column].IsZero()) {
        return false;  // Singular for this system's coefficients.
      }
      Pivot(static_cast<int>(i), column);
      if (ScalarOps<Scalar>::Overflowed()) {
        return false;
      }
    }
    for (const Scalar& rhs : rhs_) {
      if (rhs.IsNegative()) {
        return false;  // Basis no longer primal-feasible.
      }
    }
    return true;
  }

  // Runs phase 1 (minimize the sum of artificials).
  Phase1Outcome SolvePhase1() {
    std::vector<Scalar> costs(layout_->num_columns, Scalar());
    for (int j = first_artificial(); j < layout_->num_columns; ++j) {
      costs[j] = Scalar(1);
    }
    RunOutcome outcome = RunSimplex(costs, /*allow_artificials=*/true);
    if (outcome == RunOutcome::kOverflow) {
      return Phase1Outcome::kOverflow;
    }
    if (outcome == RunOutcome::kTripped) {
      return Phase1Outcome::kTripped;
    }
    // Phase 1 is bounded below by 0, so kUnbounded cannot happen.
    Scalar value = ObjectiveValue(costs);
    if (ScalarOps<Scalar>::Overflowed()) {
      return Phase1Outcome::kOverflow;
    }
    if (value.IsPositive()) {
      return Phase1Outcome::kInfeasible;
    }
    EliminateArtificialsFromBasis();
    if (ScalarOps<Scalar>::Overflowed()) {
      return Phase1Outcome::kOverflow;
    }
    return Phase1Outcome::kFeasible;
  }

  // Runs phase 2 minimizing `costs` over the structural columns; `costs`
  // has one entry per structural column.
  RunOutcome SolvePhase2(const std::vector<Scalar>& structural_costs) {
    std::vector<Scalar> costs(layout_->num_columns, Scalar());
    for (int j = 0; j < layout_->num_structural; ++j) {
      costs[j] = structural_costs[j];
    }
    return RunSimplex(costs, /*allow_artificials=*/false);
  }

  // Extracts per-user-variable values from the current basic solution.
  std::vector<Rational> ExtractValues() const {
    std::vector<Scalar> column_values(layout_->num_columns, Scalar());
    for (size_t i = 0; i < basis_.size(); ++i) {
      column_values[basis_[i]] = rhs_[i];
    }
    std::vector<Rational> values(system_->num_variables(), Rational());
    for (VarId v = 0; v < system_->num_variables(); ++v) {
      values[v] = ScalarOps<Scalar>::ToRational(
          column_values[layout_->column_of_var[v]]);
      if (layout_->neg_column_of_var[v] >= 0) {
        values[v] -= ScalarOps<Scalar>::ToRational(
            column_values[layout_->neg_column_of_var[v]]);
      }
    }
    return values;
  }

  void ExportBasis(WarmStartBasis* out) const {
    out->basis = basis_;
    out->num_columns = layout_->num_columns;
  }

  std::uint64_t pivots() const { return pivots_; }
  std::uint64_t phase1_pivots() const { return phase1_pivots_; }

 private:
  int first_artificial() const { return layout_->num_with_slacks; }

  bool IsArtificial(int column) const {
    return column >= layout_->num_with_slacks;
  }

  Scalar ObjectiveValue(const std::vector<Scalar>& costs) const {
    Scalar total;
    for (size_t i = 0; i < basis_.size(); ++i) {
      total += costs[basis_[i]] * rhs_[i];
    }
    return total;
  }

  // Primal simplex minimizing `costs`. Pricing: Dantzig's rule (most
  // negative maintained reduced cost) for speed, with a
  // permanent-within-the-run switch to Bland's rule after a long
  // degenerate streak to guarantee termination (cycling can only happen
  // inside a degenerate sequence; any strict objective improvement resets
  // the streak). Artificial columns are barred from re-entering the basis
  // in phase 2. On the fast tier the sticky overflow flag is checked once
  // per iteration: every in-range intermediate is exact, so a run that
  // finishes unflagged is bit-for-bit the exact tier's result.
  RunOutcome RunSimplex(const std::vector<Scalar>& costs,
                        bool allow_artificials) {
    const int num_columns = layout_->num_columns;
    // Initialize the maintained reduced-cost row:
    //   z_j = c_j - sum_i c_B(i) * T[i][j],
    // which Pivot then updates in O(columns) like any other row.
    reduced_.assign(num_columns, Scalar());
    for (int j = 0; j < num_columns; ++j) {
      reduced_[j] = costs[j];
    }
    for (size_t i = 0; i < basis_.size(); ++i) {
      const Scalar& basis_cost = costs[basis_[i]];
      if (basis_cost.IsZero()) {
        continue;
      }
      for (int j = 0; j < num_columns; ++j) {
        if (!matrix_[i][j].IsZero()) {
          reduced_[j] -= basis_cost * matrix_[i][j];
        }
      }
    }

    constexpr int kBlandStreak = 30;
    int degenerate_streak = 0;
    while (true) {
      if (ScalarOps<Scalar>::Overflowed()) {
        return RunOutcome::kOverflow;
      }
      if (guard_ != nullptr && !guard_->Check("simplex/pivot").ok()) {
        return RunOutcome::kTripped;
      }
      const bool use_bland = degenerate_streak >= kBlandStreak;
      int entering = -1;
      for (int j = 0; j < num_columns; ++j) {
        if (!allow_artificials && IsArtificial(j)) {
          continue;
        }
        if (!reduced_[j].IsNegative()) {
          continue;
        }
        if (use_bland) {
          entering = j;  // First improving index.
          break;
        }
        if (entering < 0 || reduced_[j] < reduced_[entering]) {
          entering = j;  // Most negative reduced cost.
        }
      }
      if (entering < 0) {
        return RunOutcome::kOptimal;
      }
      int leaving_row = -1;
      Scalar best_ratio;
      for (size_t i = 0; i < basis_.size(); ++i) {
        if (!matrix_[i][entering].IsPositive()) {
          continue;
        }
        Scalar ratio = rhs_[i] / matrix_[i][entering];
        if (leaving_row < 0 || ratio < best_ratio ||
            (ratio == best_ratio && basis_[i] < basis_[leaving_row])) {
          leaving_row = static_cast<int>(i);
          best_ratio = ratio;
        }
      }
      if (ScalarOps<Scalar>::Overflowed()) {
        return RunOutcome::kOverflow;
      }
      if (leaving_row < 0) {
        return RunOutcome::kUnbounded;
      }
      degenerate_streak = best_ratio.IsZero() ? degenerate_streak + 1 : 0;
      ++pivots_;
      if (allow_artificials) {
        ++phase1_pivots_;
      }
      Pivot(leaving_row, entering);
    }
  }

  bool IsBasic(int column) const {
    for (int b : basis_) {
      if (b == column) {
        return true;
      }
    }
    return false;
  }

  void Pivot(int pivot_row, int pivot_column) {
    const int num_columns = layout_->num_columns;
    Scalar pivot = matrix_[pivot_row][pivot_column];
    for (int j = 0; j < num_columns; ++j) {
      matrix_[pivot_row][j] /= pivot;
    }
    rhs_[pivot_row] /= pivot;
    for (size_t i = 0; i < matrix_.size(); ++i) {
      if (static_cast<int>(i) == pivot_row) {
        continue;
      }
      Scalar factor = matrix_[i][pivot_column];
      if (factor.IsZero()) {
        continue;
      }
      for (int j = 0; j < num_columns; ++j) {
        if (!matrix_[pivot_row][j].IsZero()) {
          matrix_[i][j] -= factor * matrix_[pivot_row][j];
        }
      }
      rhs_[i] -= factor * rhs_[pivot_row];
    }
    // The maintained reduced-cost row is eliminated like any other row
    // (only meaningful while RunSimplex is active; stale otherwise).
    if (reduced_.size() == static_cast<size_t>(num_columns)) {
      Scalar factor = reduced_[pivot_column];
      if (!factor.IsZero()) {
        for (int j = 0; j < num_columns; ++j) {
          if (!matrix_[pivot_row][j].IsZero()) {
            reduced_[j] -= factor * matrix_[pivot_row][j];
          }
        }
      }
    }
    basis_[pivot_row] = pivot_column;
  }

  // After a successful phase 1, pivots any (necessarily degenerate)
  // artificial variables out of the basis; rows that cannot be pivoted are
  // redundant and are dropped.
  void EliminateArtificialsFromBasis() {
    for (size_t i = 0; i < basis_.size();) {
      if (!IsArtificial(basis_[i])) {
        ++i;
        continue;
      }
      int pivot_column = -1;
      for (int j = 0; j < layout_->num_with_slacks; ++j) {
        if (!matrix_[i][j].IsZero() && !IsBasic(j)) {
          pivot_column = j;
          break;
        }
      }
      if (pivot_column >= 0) {
        Pivot(static_cast<int>(i), pivot_column);
        ++i;
      } else {
        // Redundant constraint: remove the row.
        matrix_.erase(matrix_.begin() + i);
        rhs_.erase(rhs_.begin() + i);
        basis_.erase(basis_.begin() + i);
      }
    }
  }

  const LinearSystem* system_;
  const TableauLayout* layout_;
  ResourceGuard* guard_ = nullptr;
  bool ok_ = true;
  std::uint64_t pivots_ = 0;
  std::uint64_t phase1_pivots_ = 0;
  std::vector<std::vector<Scalar>> matrix_;
  std::vector<Scalar> rhs_;
  std::vector<int> basis_;
  std::vector<Scalar> reduced_;
};

enum class TierOutcome { kCompleted, kOverflow, kTripped };

// Runs a full two-phase solve on one arithmetic tier. On kCompleted,
// `*out` holds the verdict (values filled for kOptimal) and `*tier_pivots`
// the pivot count; on kOverflow the attempt's pivots are still flushed to
// the global counters by the caller via `*tier_pivots`.
template <typename Scalar>
TierOutcome SolveOnTier(const LinearSystem& system, const TableauLayout& layout,
                        const std::vector<Rational>& structural_costs,
                        const SimplexOptions& options, LpResult* out,
                        std::uint64_t* tier_pivots,
                        std::uint64_t* tier_phase1_pivots, bool* warm_hit) {
  ScalarOps<Scalar>::ClearOverflow();
  *tier_pivots = 0;
  *tier_phase1_pivots = 0;
  *warm_hit = false;

  std::vector<Scalar> costs(structural_costs.size(), Scalar());
  for (size_t j = 0; j < structural_costs.size(); ++j) {
    if (!ScalarOps<Scalar>::FromRational(structural_costs[j], &costs[j])) {
      return TierOutcome::kOverflow;
    }
  }

  // Charge the dominant allocation (the dense tableau matrix plus the
  // maintained rows) against the guard's memory budget for the duration of
  // this tier's attempt.
  ScopedMemoryCharge tableau_charge(
      options.guard, layout.rows.size() *
                         (static_cast<std::uint64_t>(layout.num_columns) + 2) *
                         sizeof(Scalar));
  Tableau<Scalar> tableau(system, layout, options.guard);
  if (!tableau.ok()) {
    return TierOutcome::kOverflow;
  }

  bool warm = false;
  if (options.warm_start != nullptr && !options.warm_start->empty()) {
    warm = tableau.TryWarmStart(*options.warm_start);
    if (!warm) {
      // The failed attempt may have left the tableau mid-elimination (and
      // possibly overflowed); rebuild and run cold on this tier.
      ScalarOps<Scalar>::ClearOverflow();
      tableau = Tableau<Scalar>(system, layout, options.guard);
      BumpStat(GetSimplexStats().warm_start_misses);
    }
  }

  if (!warm) {
    Phase1Outcome phase1 = tableau.SolvePhase1();
    *tier_pivots = tableau.pivots();
    *tier_phase1_pivots = tableau.phase1_pivots();
    if (phase1 == Phase1Outcome::kOverflow) {
      return TierOutcome::kOverflow;
    }
    if (phase1 == Phase1Outcome::kTripped) {
      return TierOutcome::kTripped;
    }
    if (phase1 == Phase1Outcome::kInfeasible) {
      out->outcome = LpOutcome::kInfeasible;
      return TierOutcome::kCompleted;
    }
  }

  RunOutcome phase2 = tableau.SolvePhase2(costs);
  *tier_pivots = tableau.pivots();
  *tier_phase1_pivots = tableau.phase1_pivots();
  if (phase2 == RunOutcome::kOverflow) {
    return TierOutcome::kOverflow;
  }
  if (phase2 == RunOutcome::kTripped) {
    return TierOutcome::kTripped;
  }
  if (phase2 == RunOutcome::kUnbounded) {
    out->outcome = LpOutcome::kUnbounded;
    *warm_hit = warm;
    return TierOutcome::kCompleted;
  }
  out->outcome = LpOutcome::kOptimal;
  out->values = tableau.ExtractValues();
  if (ScalarOps<Scalar>::Overflowed()) {
    return TierOutcome::kOverflow;
  }
  if (options.export_basis != nullptr) {
    tableau.ExportBasis(options.export_basis);
  }
  *warm_hit = warm;
  return TierOutcome::kCompleted;
}

}  // namespace

Result<LpResult> SimplexSolver::SolveWith(const LinearSystem& system,
                                          const LinearExpr& objective,
                                          bool maximize,
                                          const SimplexOptions& options) {
  if (system.HasStrictConstraints()) {
    return InvalidArgumentError(
        "SimplexSolver does not accept strict constraints; reduce them via "
        "the homogeneous layer first");
  }
  if (options.guard != nullptr) {
    CRSAT_RETURN_IF_ERROR(options.guard->Check("simplex/solve"));
  }
  SimplexStats& stats = GetSimplexStats();
  BumpStat(stats.solves);
  TableauLayout layout(system);

  // Structural costs for minimization of +/- objective.
  std::vector<Rational> costs(layout.num_structural, Rational());
  for (const auto& [var, coeff] : objective.terms()) {
    Rational c = maximize ? -coeff : coeff;
    costs[layout.column_of_var[var]] += c;
    if (layout.neg_column_of_var[var] >= 0) {
      costs[layout.neg_column_of_var[var]] -= c;
    }
  }

  std::uint64_t tier_pivots = 0;
  std::uint64_t tier_phase1_pivots = 0;
  bool warm_hit = false;

  if (options.tier == SimplexOptions::Tier::kTwoTier) {
    LpResult fast;
    TierOutcome outcome =
        SolveOnTier<SmallRational>(system, layout, costs, options, &fast,
                                   &tier_pivots, &tier_phase1_pivots,
                                   &warm_hit);
    BumpStat(stats.pivots, tier_pivots);
    BumpStat(stats.phase1_pivots, tier_phase1_pivots);
    if (outcome == TierOutcome::kTripped) {
      // The trip is sticky; an exact-tier restart would trip immediately.
      return options.guard->TripStatus();
    }
    if (outcome == TierOutcome::kCompleted) {
      BumpStat(stats.fast_solves);
      BumpStat(stats.fast_pivots, tier_pivots);
      if (warm_hit) {
        BumpStat(stats.warm_start_hits);
      }
      if (fast.outcome == LpOutcome::kOptimal) {
        fast.objective = objective.Evaluate(fast.values);
      }
      return fast;
    }
    BumpStat(stats.tier_fallbacks);
  }

  LpResult exact;
  TierOutcome outcome =
      SolveOnTier<Rational>(system, layout, costs, options, &exact,
                            &tier_pivots, &tier_phase1_pivots, &warm_hit);
  BumpStat(stats.pivots, tier_pivots);
  BumpStat(stats.phase1_pivots, tier_phase1_pivots);
  if (outcome == TierOutcome::kTripped) {
    return options.guard->TripStatus();
  }
  (void)outcome;  // The exact tier cannot overflow.
  if (warm_hit) {
    BumpStat(stats.warm_start_hits);
  }
  if (exact.outcome == LpOutcome::kOptimal) {
    exact.objective = objective.Evaluate(exact.values);
  }
  return exact;
}

Result<LpResult> SimplexSolver::Solve(const LinearSystem& system,
                                      const LinearExpr& objective,
                                      bool maximize) {
  return SolveWith(system, objective, maximize, SimplexOptions());
}

Result<LpResult> SimplexSolver::CheckFeasibility(const LinearSystem& system) {
  return Solve(system, LinearExpr(), /*maximize=*/false);
}

}  // namespace crsat
