#include "src/lp/simplex.h"

#include <algorithm>
#include <new>
#include <utility>

#include "src/base/degradation.h"
#include "src/base/failpoint.h"
#include "src/base/incremental.h"
#include "src/base/resource_guard.h"
#include "src/lp/small_rational.h"

namespace crsat {

void SimplexStats::Reset() {
  solves.store(0, std::memory_order_relaxed);
  pivots.store(0, std::memory_order_relaxed);
  phase1_pivots.store(0, std::memory_order_relaxed);
  fast_solves.store(0, std::memory_order_relaxed);
  fast_pivots.store(0, std::memory_order_relaxed);
  tier_fallbacks.store(0, std::memory_order_relaxed);
  warm_start_hits.store(0, std::memory_order_relaxed);
  warm_start_misses.store(0, std::memory_order_relaxed);
  dual_pivots.store(0, std::memory_order_relaxed);
  incremental_hits.store(0, std::memory_order_relaxed);
  incremental_fallbacks.store(0, std::memory_order_relaxed);
}

SimplexStats& GetSimplexStats() {
  static SimplexStats stats;
  return stats;
}

const WarmStartBasis* WarmStartBasisCache::Lookup(int num_variables,
                                                  int num_constraints) {
  for (size_t i = entries_.size(); i > 0; --i) {
    Entry& entry = entries_[i - 1];
    if (entry.num_variables == num_variables &&
        entry.num_constraints == num_constraints) {
      // Move to the back (most recently used) so eviction hits stale
      // shapes first.
      std::rotate(entries_.begin() + (i - 1), entries_.begin() + i,
                  entries_.end());
      return &entries_.back().basis;
    }
  }
  return nullptr;
}

void WarmStartBasisCache::Store(int num_variables, int num_constraints,
                                WarmStartBasis basis) {
  if (basis.empty()) {
    return;
  }
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].num_variables == num_variables &&
        entries_[i].num_constraints == num_constraints) {
      entries_[i].basis = std::move(basis);
      std::rotate(entries_.begin() + i, entries_.begin() + i + 1,
                  entries_.end());
      return;
    }
  }
  if (entries_.size() >= kMaxEntries) {
    entries_.erase(entries_.begin());  // Least recently used.
  }
  entries_.push_back(Entry{num_variables, num_constraints, std::move(basis)});
}

namespace {

void BumpStat(std::atomic<std::uint64_t>& counter, std::uint64_t amount = 1) {
  counter.fetch_add(amount, std::memory_order_relaxed);
}

// Arithmetic-tier glue. Both scalars are exact rationals; the small one
// abstains (via a sticky thread-local flag) instead of losing precision.
template <typename Scalar>
struct ScalarOps;

template <>
struct ScalarOps<Rational> {
  static bool FromRational(const Rational& value, Rational* out) {
    *out = value;
    return true;
  }
  static Rational ToRational(const Rational& value) { return value; }
  static bool Overflowed() { return false; }
  static void ClearOverflow() {}
};

template <>
struct ScalarOps<SmallRational> {
  static bool FromRational(const Rational& value, SmallRational* out) {
    Result<std::int64_t> num = value.numerator().ToInt64();
    Result<std::int64_t> den = value.denominator().ToInt64();
    if (!num.ok() || !den.ok()) {
      return false;
    }
    // Rational keeps fractions reduced with a positive denominator, so the
    // parts can be adopted verbatim.
    *out = SmallRational::FromReduced(*num, *den);
    return true;
  }
  static Rational ToRational(const SmallRational& value) {
    return Rational(BigInt(value.numerator()), BigInt(value.denominator()));
  }
  static bool Overflowed() { return SmallRational::OverflowSeen(); }
  static void ClearOverflow() { SmallRational::ClearOverflow(); }
};

// Tier-independent tableau shape: column layout and sign-normalized rows,
// still in exact `Rational` form. Computed once per solve and shared by
// both tiers (the exact fallback must see exactly the system the fast
// attempt saw).
//
// Column layout: [structural columns][slack/surplus columns][artificial
// columns], plus the right-hand side kept separately. Structural columns
// encode user variables: a nonnegative variable occupies one column; a
// free variable is split into two columns (x = pos - neg).
struct TableauLayout {
  struct Row {
    std::vector<Rational> coeffs;
    Rational rhs;
    ConstraintSense sense = ConstraintSense::kEqual;
    int slack_column = -1;
    Rational slack_sign;
    int artificial_column = -1;
  };

  std::vector<int> column_of_var;
  std::vector<int> neg_column_of_var;
  int num_columns = 0;
  int num_structural = 0;
  int num_with_slacks = 0;
  std::vector<Row> rows;

  explicit TableauLayout(const LinearSystem& system) {
    // Assign structural columns.
    column_of_var.resize(system.num_variables());
    neg_column_of_var.assign(system.num_variables(), -1);
    for (VarId v = 0; v < system.num_variables(); ++v) {
      column_of_var[v] = num_columns++;
      if (!system.IsNonnegative(v)) {
        neg_column_of_var[v] = num_columns++;
      }
    }
    num_structural = num_columns;

    // One row per constraint, with b >= 0 after sign normalization.
    for (const Constraint& constraint : system.constraints()) {
      Row row;
      row.coeffs.assign(num_structural, Rational());
      for (const auto& [var, coeff] : constraint.expr.terms()) {
        row.coeffs[column_of_var[var]] += coeff;
        if (neg_column_of_var[var] >= 0) {
          row.coeffs[neg_column_of_var[var]] -= coeff;
        }
      }
      row.rhs = -constraint.expr.constant();
      ConstraintSense sense = constraint.sense;
      if (row.rhs.IsNegative() ||
          (row.rhs.IsZero() && sense == ConstraintSense::kGreaterEqual)) {
        // Normalize to b >= 0; additionally flip zero-RHS `>=` rows into
        // `<=` form so their slack can start basic — homogeneous systems
        // then need (almost) no artificials and phase 1 is trivial.
        for (Rational& c : row.coeffs) {
          c = -c;
        }
        row.rhs = -row.rhs;
        if (sense == ConstraintSense::kLessEqual) {
          sense = ConstraintSense::kGreaterEqual;
        } else if (sense == ConstraintSense::kGreaterEqual) {
          sense = ConstraintSense::kLessEqual;
        }
      }
      row.sense = sense;
      rows.push_back(std::move(row));
    }

    // Slack / surplus columns.
    for (Row& row : rows) {
      if (row.sense == ConstraintSense::kLessEqual) {
        row.slack_column = num_columns++;
        row.slack_sign = Rational(1);
      } else if (row.sense == ConstraintSense::kGreaterEqual) {
        row.slack_column = num_columns++;
        row.slack_sign = Rational(-1);
      }
    }
    num_with_slacks = num_columns;

    // Artificial columns: needed for == rows and >= rows (whose surplus
    // enters with -1 and cannot start basic). A <= row's slack starts basic.
    for (Row& row : rows) {
      bool needs_artificial = row.sense != ConstraintSense::kLessEqual;
      if (needs_artificial) {
        row.artificial_column = num_columns++;
      }
    }
  }
};

enum class RunOutcome {
  kOptimal,
  kUnbounded,
  // A fast-tier value left the representable range; results are unusable
  // and the caller restarts the solve on the exact tier.
  kOverflow,
  // The resource guard tripped mid-run; the solve is abandoned for good
  // (no tier fallback — the trip is sticky).
  kTripped,
};

enum class Phase1Outcome { kFeasible, kInfeasible, kOverflow, kTripped };

// Result of pivoting into a carried basis (see Tableau::TryWarmStart).
enum class WarmStartOutcome {
  // The basis pivoted in and is primal-feasible; skip phase 1.
  kFeasible,
  // The basis pivoted in infeasible and dual pivots repaired it; skip
  // phase 1.
  kRepaired,
  // Dual repair exposed an infeasibility certificate: the system has no
  // solution (a proof, not a heuristic — see RepairPrimalFeasibility).
  kInfeasibleProof,
  // The adopted basis is primal-feasible (rhs >= 0) but an artificial is
  // still basic: continue phase 1 from this tableau instead of rebuilding.
  kPartial,
  // Layout mismatch, overflow, or repair pivot cap; the caller discards
  // the tableau and runs cold.
  kRejected,
  // The resource guard tripped mid-repair.
  kTripped,
};

// Dense two-phase primal simplex over an exact scalar type, materialized
// from a shared `TableauLayout`.
template <typename Scalar>
class Tableau {
 public:
  Tableau(const LinearSystem& system, const TableauLayout& layout,
          ResourceGuard* guard = nullptr)
      : system_(&system), layout_(&layout), guard_(guard),
        live_columns_(layout.num_columns) {
    const size_t m = layout.rows.size();
    matrix_.assign(m, std::vector<Scalar>(layout.num_columns, Scalar()));
    rhs_.assign(m, Scalar());
    basis_.assign(m, -1);
    for (size_t i = 0; i < m; ++i) {
      const TableauLayout::Row& row = layout.rows[i];
      for (int j = 0; j < layout.num_structural; ++j) {
        if (!ScalarOps<Scalar>::FromRational(row.coeffs[j], &matrix_[i][j])) {
          ok_ = false;
          return;
        }
      }
      if (row.slack_column >= 0 &&
          !ScalarOps<Scalar>::FromRational(row.slack_sign,
                                           &matrix_[i][row.slack_column])) {
        ok_ = false;
        return;
      }
      if (row.artificial_column >= 0) {
        matrix_[i][row.artificial_column] = Scalar(1);
        basis_[i] = row.artificial_column;
      } else {
        basis_[i] = row.slack_column;
      }
      if (!ScalarOps<Scalar>::FromRational(row.rhs, &rhs_[i])) {
        ok_ = false;
        return;
      }
    }
  }

  // False when some input coefficient was not representable in `Scalar`.
  bool ok() const { return ok_; }

  // Attempts to adopt a carried basis and skip (or at least warm) phase 1.
  // The carried columns are treated as a *candidate set*, not a row
  // assignment: each is pivoted into whichever not-yet-claimed row has a
  // nonzero entry for it (preferring rows whose current basic variable is
  // an artificial, since evicting those is the whole point), and columns
  // that have gone linearly dependent under the changed system are simply
  // skipped. This makes pivot-in total: row counts may differ (redundant
  // rows get dropped from exported bases), bases may be degenerate, and
  // the order the previous solve happened to leave them in never matters.
  //
  // A landing with negative rhs entries is handed to the dual-simplex
  // repair when `allow_dual_repair` is set (`*attempted_repair` reports
  // whether that happened, for fallback accounting). If any artificial is
  // still basic afterwards the result is kPartial: the tableau is a valid
  // primal-feasible phase-1 start (rhs >= 0), so the caller continues
  // phase 1 from it instead of from scratch — phase 2 must never see a
  // basic artificial, even a degenerate one (a pivot elsewhere in its row
  // could push it positive again). On kRejected the tableau may be left
  // mid-elimination — the caller must discard it and rebuild.
  WarmStartOutcome TryWarmStart(const WarmStartBasis& warm,
                                bool allow_dual_repair,
                                bool* attempted_repair) {
    *attempted_repair = false;
    if (warm.num_columns != layout_->num_columns) {
      return WarmStartOutcome::kRejected;  // Differently-shaped system.
    }
    if (CRSAT_FAILPOINT("lp/warm_start_reject")) {
      return WarmStartOutcome::kRejected;  // Injected shape mismatch.
    }
    std::vector<bool> row_claimed(matrix_.size(), false);
    for (int column : warm.basis) {
      if (column < 0 || column >= layout_->num_with_slacks) {
        continue;  // Artificials are never adopted from a carry.
      }
      // Already basic (a slack that starts basic, or a duplicate): claim
      // its row so a later column does not evict it.
      bool already_basic = false;
      for (size_t i = 0; i < matrix_.size(); ++i) {
        if (basis_[i] == column) {
          row_claimed[i] = true;
          already_basic = true;
          break;
        }
      }
      if (already_basic) {
        continue;
      }
      int row = -1;
      for (int prefer_artificial = 1; prefer_artificial >= 0 && row < 0;
           --prefer_artificial) {
        for (size_t i = 0; i < matrix_.size(); ++i) {
          if (row_claimed[i] || matrix_[i][column].IsZero()) {
            continue;
          }
          if (prefer_artificial == 1 && !IsArtificial(basis_[i])) {
            continue;
          }
          row = static_cast<int>(i);
          break;
        }
      }
      if (row < 0) {
        continue;  // Dependent on the columns already placed; skip it.
      }
      Pivot(row, column);
      if (ScalarOps<Scalar>::Overflowed()) {
        return WarmStartOutcome::kRejected;
      }
      row_claimed[row] = true;
    }
    bool any_negative = false;
    for (const Scalar& rhs : rhs_) {
      if (rhs.IsNegative()) {
        any_negative = true;
        break;
      }
    }
    if (any_negative) {
      if (!allow_dual_repair) {
        return WarmStartOutcome::kRejected;
      }
      *attempted_repair = true;
      WarmStartOutcome repaired = RepairPrimalFeasibility();
      if (repaired != WarmStartOutcome::kRepaired) {
        return repaired;
      }
      return AnyArtificialBasic() ? WarmStartOutcome::kPartial
                                  : WarmStartOutcome::kRepaired;
    }
    return AnyArtificialBasic() ? WarmStartOutcome::kPartial
                                : WarmStartOutcome::kFeasible;
  }

  bool AnyArtificialBasic() const {
    for (int column : basis_) {
      if (IsArtificial(column)) {
        return true;
      }
    }
    return false;
  }

  // Dual-simplex repair against the zero objective. Every reduced cost is
  // zero, so the current basis is trivially dual-feasible and *stays* so
  // under any pivot; Bland-ordered dual pivots (leaving: smallest basic
  // index among negative-rhs rows; entering: smallest eligible column)
  // either restore rhs >= 0 or expose an infeasibility certificate: a row
  // with negative rhs and no negative coefficient in any real column.
  // That certificate is sound — the row reads `sum a_j x_j = b < 0` with
  // every real `a_j >= 0` over nonnegative columns, and artificial
  // columns (excluded from entering) are zero in any solution of the real
  // system. A pivot cap bounds pathological cases; the caller then falls
  // back to a cold phase 1, so the cap affects cost only, never verdicts.
  WarmStartOutcome RepairPrimalFeasibility() {
    const std::uint64_t max_pivots =
        64 + 4 * static_cast<std::uint64_t>(basis_.size());
    while (true) {
      if (ScalarOps<Scalar>::Overflowed()) {
        return WarmStartOutcome::kRejected;
      }
      if (guard_ != nullptr && !guard_->Check("simplex/dual_pivot").ok()) {
        return WarmStartOutcome::kTripped;
      }
      if (CRSAT_FAILPOINT("lp/dual_repair_abort")) {
        return WarmStartOutcome::kRejected;  // Injected mid-repair abort.
      }
      int leaving_row = -1;
      for (size_t i = 0; i < basis_.size(); ++i) {
        if (rhs_[i].IsNegative() &&
            (leaving_row < 0 || basis_[i] < basis_[leaving_row])) {
          leaving_row = static_cast<int>(i);
        }
      }
      if (leaving_row < 0) {
        return WarmStartOutcome::kRepaired;
      }
      int entering = -1;
      for (int j = 0; j < layout_->num_with_slacks; ++j) {
        if (matrix_[leaving_row][j].IsNegative()) {
          entering = j;
          break;
        }
      }
      if (ScalarOps<Scalar>::Overflowed()) {
        return WarmStartOutcome::kRejected;
      }
      if (entering < 0) {
        return WarmStartOutcome::kInfeasibleProof;
      }
      if (dual_pivots_ >= max_pivots) {
        return WarmStartOutcome::kRejected;
      }
      ++pivots_;
      ++dual_pivots_;
      Pivot(leaving_row, entering);
    }
  }

  // Runs phase 1 (minimize the sum of artificials).
  Phase1Outcome SolvePhase1() {
    std::vector<Scalar> costs(layout_->num_columns, Scalar());
    for (int j = first_artificial(); j < layout_->num_columns; ++j) {
      costs[j] = Scalar(1);
    }
    RunOutcome outcome = RunSimplex(costs, /*allow_artificials=*/true);
    if (outcome == RunOutcome::kOverflow) {
      return Phase1Outcome::kOverflow;
    }
    if (outcome == RunOutcome::kTripped) {
      return Phase1Outcome::kTripped;
    }
    // Phase 1 is bounded below by 0, so kUnbounded cannot happen.
    Scalar value = ObjectiveValue(costs);
    if (ScalarOps<Scalar>::Overflowed()) {
      return Phase1Outcome::kOverflow;
    }
    if (value.IsPositive()) {
      return Phase1Outcome::kInfeasible;
    }
    EliminateArtificialsFromBasis();
    if (ScalarOps<Scalar>::Overflowed()) {
      return Phase1Outcome::kOverflow;
    }
    return Phase1Outcome::kFeasible;
  }

  // Runs phase 2 minimizing `costs` over the structural columns; `costs`
  // has one entry per structural column.
  RunOutcome SolvePhase2(const std::vector<Scalar>& structural_costs) {
    // Once no artificial is basic, none can ever become basic again
    // (phase 2 bars them from entering), so their columns are dead
    // weight: shrink every per-column sweep — pricing, the pivot row
    // eliminations, the maintained reduced-cost row — to the structural
    // and slack range. On big phase-2-heavy solves (the maximal-support
    // cover LP) artificials are a fifth of the tableau width.
    if (!AnyArtificialBasic()) {
      live_columns_ = layout_->num_with_slacks;
    }
    std::vector<Scalar> costs(layout_->num_columns, Scalar());
    for (int j = 0; j < layout_->num_structural; ++j) {
      costs[j] = structural_costs[j];
    }
    return RunSimplex(costs, /*allow_artificials=*/false);
  }

  // Extracts per-user-variable values from the current basic solution.
  std::vector<Rational> ExtractValues() const {
    std::vector<Scalar> column_values(layout_->num_columns, Scalar());
    for (size_t i = 0; i < basis_.size(); ++i) {
      column_values[basis_[i]] = rhs_[i];
    }
    std::vector<Rational> values(system_->num_variables(), Rational());
    for (VarId v = 0; v < system_->num_variables(); ++v) {
      values[v] = ScalarOps<Scalar>::ToRational(
          column_values[layout_->column_of_var[v]]);
      if (layout_->neg_column_of_var[v] >= 0) {
        values[v] -= ScalarOps<Scalar>::ToRational(
            column_values[layout_->neg_column_of_var[v]]);
      }
    }
    return values;
  }

  void ExportBasis(WarmStartBasis* out) const {
    out->basis = basis_;
    out->num_columns = layout_->num_columns;
  }

  std::uint64_t pivots() const { return pivots_; }
  std::uint64_t phase1_pivots() const { return phase1_pivots_; }
  std::uint64_t dual_pivots() const { return dual_pivots_; }

 private:
  int first_artificial() const { return layout_->num_with_slacks; }

  bool IsArtificial(int column) const {
    return column >= layout_->num_with_slacks;
  }

  Scalar ObjectiveValue(const std::vector<Scalar>& costs) const {
    Scalar total;
    for (size_t i = 0; i < basis_.size(); ++i) {
      total += costs[basis_[i]] * rhs_[i];
    }
    return total;
  }

  // Primal simplex minimizing `costs`. Pricing: Dantzig's rule (most
  // negative maintained reduced cost) for speed, with a
  // permanent-within-the-run switch to Bland's rule after a long
  // degenerate streak to guarantee termination (cycling can only happen
  // inside a degenerate sequence; any strict objective improvement resets
  // the streak). Artificial columns are barred from re-entering the basis
  // in phase 2. On the fast tier the sticky overflow flag is checked once
  // per iteration: every in-range intermediate is exact, so a run that
  // finishes unflagged is bit-for-bit the exact tier's result.
  RunOutcome RunSimplex(const std::vector<Scalar>& costs,
                        bool allow_artificials) {
    const int num_columns = live_columns_;
    // Initialize the maintained reduced-cost row:
    //   z_j = c_j - sum_i c_B(i) * T[i][j],
    // which Pivot then updates in O(columns) like any other row.
    reduced_.assign(num_columns, Scalar());
    for (int j = 0; j < num_columns; ++j) {
      reduced_[j] = costs[j];
    }
    for (size_t i = 0; i < basis_.size(); ++i) {
      const Scalar& basis_cost = costs[basis_[i]];
      if (basis_cost.IsZero()) {
        continue;
      }
      for (int j = 0; j < num_columns; ++j) {
        if (!matrix_[i][j].IsZero()) {
          reduced_[j] -= basis_cost * matrix_[i][j];
        }
      }
    }

    constexpr int kBlandStreak = 30;
    int degenerate_streak = 0;
    while (true) {
      if (ScalarOps<Scalar>::Overflowed()) {
        return RunOutcome::kOverflow;
      }
      if (guard_ != nullptr && !guard_->Check("simplex/pivot").ok()) {
        return RunOutcome::kTripped;
      }
      const bool use_bland = degenerate_streak >= kBlandStreak;
      int entering = -1;
      for (int j = 0; j < num_columns; ++j) {
        if (!allow_artificials && IsArtificial(j)) {
          continue;
        }
        if (!reduced_[j].IsNegative()) {
          continue;
        }
        if (use_bland) {
          entering = j;  // First improving index.
          break;
        }
        if (entering < 0 || reduced_[j] < reduced_[entering]) {
          entering = j;  // Most negative reduced cost.
        }
      }
      if (entering < 0) {
        return RunOutcome::kOptimal;
      }
      int leaving_row = -1;
      Scalar best_ratio;
      for (size_t i = 0; i < basis_.size(); ++i) {
        if (!matrix_[i][entering].IsPositive()) {
          continue;
        }
        Scalar ratio = rhs_[i] / matrix_[i][entering];
        if (leaving_row < 0 || ratio < best_ratio ||
            (ratio == best_ratio && basis_[i] < basis_[leaving_row])) {
          leaving_row = static_cast<int>(i);
          best_ratio = ratio;
        }
      }
      if (ScalarOps<Scalar>::Overflowed()) {
        return RunOutcome::kOverflow;
      }
      if (leaving_row < 0) {
        return RunOutcome::kUnbounded;
      }
      degenerate_streak = best_ratio.IsZero() ? degenerate_streak + 1 : 0;
      ++pivots_;
      if (allow_artificials) {
        ++phase1_pivots_;
      }
      Pivot(leaving_row, entering);
    }
  }

  bool IsBasic(int column) const {
    for (int b : basis_) {
      if (b == column) {
        return true;
      }
    }
    return false;
  }

  void Pivot(int pivot_row, int pivot_column) {
    const int num_columns = live_columns_;
    Scalar pivot = matrix_[pivot_row][pivot_column];
    for (int j = 0; j < num_columns; ++j) {
      matrix_[pivot_row][j] /= pivot;
    }
    rhs_[pivot_row] /= pivot;
    for (size_t i = 0; i < matrix_.size(); ++i) {
      if (static_cast<int>(i) == pivot_row) {
        continue;
      }
      Scalar factor = matrix_[i][pivot_column];
      if (factor.IsZero()) {
        continue;
      }
      for (int j = 0; j < num_columns; ++j) {
        if (!matrix_[pivot_row][j].IsZero()) {
          matrix_[i][j] -= factor * matrix_[pivot_row][j];
        }
      }
      rhs_[i] -= factor * rhs_[pivot_row];
    }
    // The maintained reduced-cost row is eliminated like any other row
    // (only meaningful while RunSimplex is active; stale otherwise).
    if (reduced_.size() == static_cast<size_t>(num_columns)) {
      Scalar factor = reduced_[pivot_column];
      if (!factor.IsZero()) {
        for (int j = 0; j < num_columns; ++j) {
          if (!matrix_[pivot_row][j].IsZero()) {
            reduced_[j] -= factor * matrix_[pivot_row][j];
          }
        }
      }
    }
    basis_[pivot_row] = pivot_column;
  }

  // After a successful phase 1, pivots any (necessarily degenerate)
  // artificial variables out of the basis; rows that cannot be pivoted are
  // redundant and are dropped.
  void EliminateArtificialsFromBasis() {
    for (size_t i = 0; i < basis_.size();) {
      if (!IsArtificial(basis_[i])) {
        ++i;
        continue;
      }
      int pivot_column = -1;
      for (int j = 0; j < layout_->num_with_slacks; ++j) {
        if (!matrix_[i][j].IsZero() && !IsBasic(j)) {
          pivot_column = j;
          break;
        }
      }
      if (pivot_column >= 0) {
        Pivot(static_cast<int>(i), pivot_column);
        ++i;
      } else {
        // Redundant constraint: remove the row.
        matrix_.erase(matrix_.begin() + i);
        rhs_.erase(rhs_.begin() + i);
        basis_.erase(basis_.begin() + i);
      }
    }
  }

  const LinearSystem* system_;
  const TableauLayout* layout_;
  ResourceGuard* guard_ = nullptr;
  // Upper bound of every per-column sweep; shrunk to num_with_slacks by
  // SolvePhase2 once artificial columns can never be touched again.
  int live_columns_ = 0;
  bool ok_ = true;
  std::uint64_t pivots_ = 0;
  std::uint64_t phase1_pivots_ = 0;
  std::uint64_t dual_pivots_ = 0;
  std::vector<std::vector<Scalar>> matrix_;
  std::vector<Scalar> rhs_;
  std::vector<int> basis_;
  std::vector<Scalar> reduced_;
};

enum class TierOutcome { kCompleted, kOverflow, kTripped };

// What happened to the caller-provided basis during one tier's attempt.
// The completing tier's disposition drives the warm-start accounting in
// `SolveWith`: exactly one of hits/misses per attempted solve, plus the
// incremental (dual-repair) sub-counters.
struct WarmDisposition {
  bool attempted = false;        // A non-empty basis was handed in.
  bool used = false;             // It replaced phase 1 (as-is or repaired).
  bool repaired = false;         // Dual pivots were needed (subset of used;
                                 // includes infeasibility proofs).
  bool repair_fallback = false;  // Repair was attempted but abandoned and
                                 // this tier ran a cold phase 1 instead.
};

// Runs a full two-phase solve on one arithmetic tier. On kCompleted,
// `*out` holds the verdict (values filled for kOptimal) and the pivot
// out-params the tier's counts; on kOverflow the attempt's pivots are
// still flushed to the global counters by the caller.
template <typename Scalar>
TierOutcome SolveOnTier(const LinearSystem& system, const TableauLayout& layout,
                        const std::vector<Rational>& structural_costs,
                        const SimplexOptions& options, LpResult* out,
                        std::uint64_t* tier_pivots,
                        std::uint64_t* tier_phase1_pivots,
                        std::uint64_t* tier_dual_pivots,
                        WarmDisposition* warm) {
  ScalarOps<Scalar>::ClearOverflow();
  *tier_pivots = 0;
  *tier_phase1_pivots = 0;
  *tier_dual_pivots = 0;
  *warm = WarmDisposition();

  std::vector<Scalar> costs(structural_costs.size(), Scalar());
  for (size_t j = 0; j < structural_costs.size(); ++j) {
    if (!ScalarOps<Scalar>::FromRational(structural_costs[j], &costs[j])) {
      return TierOutcome::kOverflow;
    }
  }

  // Charge the dominant allocation (the dense tableau matrix plus the
  // maintained rows) against the guard's memory budget for the duration of
  // this tier's attempt.
  ScopedMemoryCharge tableau_charge(
      options.guard, layout.rows.size() *
                         (static_cast<std::uint64_t>(layout.num_columns) + 2) *
                         sizeof(Scalar));
  Tableau<Scalar> tableau(system, layout, options.guard);
  if (!tableau.ok()) {
    return TierOutcome::kOverflow;
  }

  // Pivots spent on a warm-start attempt whose tableau was then discarded
  // (repair cap / overflow); still real work, still reported.
  std::uint64_t discarded_pivots = 0;
  std::uint64_t discarded_dual_pivots = 0;

  bool skip_phase1 = false;
  bool tableau_adopted = false;  // Carried-basis pivots applied (not fresh).
  if (options.warm_start != nullptr && !options.warm_start->empty()) {
    warm->attempted = true;
    bool attempted_repair = false;
    WarmStartOutcome pivot_in = tableau.TryWarmStart(
        *options.warm_start, /*allow_dual_repair=*/true, &attempted_repair);
    *tier_pivots = tableau.pivots();
    *tier_dual_pivots = tableau.dual_pivots();
    switch (pivot_in) {
      case WarmStartOutcome::kFeasible:
        skip_phase1 = true;
        warm->used = true;
        break;
      case WarmStartOutcome::kRepaired:
        skip_phase1 = true;
        warm->used = true;
        warm->repaired = true;
        break;
      case WarmStartOutcome::kPartial:
        // Primal-feasible but an artificial survived: run phase 1 from
        // the adopted tableau (it converges in a handful of pivots from
        // here — the whole point of carrying the basis).
        warm->used = true;
        warm->repaired = attempted_repair;
        tableau_adopted = true;
        break;
      case WarmStartOutcome::kInfeasibleProof:
        warm->used = true;
        warm->repaired = true;
        out->outcome = LpOutcome::kInfeasible;
        return TierOutcome::kCompleted;
      case WarmStartOutcome::kTripped:
        return TierOutcome::kTripped;
      case WarmStartOutcome::kRejected:
        // The failed attempt may have left the tableau mid-elimination
        // (and possibly overflowed); rebuild and run cold on this tier.
        // Rung 0 -> 1 of the degradation ladder (DESIGN.md §14).
        BumpStat(GetRecoveryStats().warm_start_fallbacks);
        warm->repair_fallback = attempted_repair;
        discarded_pivots = tableau.pivots();
        discarded_dual_pivots = tableau.dual_pivots();
        ScalarOps<Scalar>::ClearOverflow();
        tableau = Tableau<Scalar>(system, layout, options.guard);
        if (!tableau.ok()) {
          return TierOutcome::kOverflow;
        }
        break;
    }
  }

  // Crash basis: only on a fresh tableau (a partially-adopted carry is
  // already a better phase-1 start than any crash). Outcomes that are not
  // immediately primal-feasible just fall through to the cold phase 1;
  // kRejected means the greedy pivot-in left the tableau mid-elimination,
  // so rebuild first. Never touches the warm-start disposition — a crash
  // is a structural hint from the caller, not a carried basis.
  if (!skip_phase1 && !tableau_adopted && options.crash_vars != nullptr &&
      !options.crash_vars->empty()) {
    WarmStartBasis crash;
    crash.num_columns = layout.num_columns;
    crash.basis.reserve(options.crash_vars->size());
    for (VarId v : *options.crash_vars) {
      crash.basis.push_back(layout.column_of_var[v]);
    }
    bool crash_repair = false;
    const WarmStartOutcome crashed =
        tableau.TryWarmStart(crash, /*allow_dual_repair=*/false,
                             &crash_repair);
    if (crashed == WarmStartOutcome::kFeasible) {
      skip_phase1 = true;
    } else if (crashed == WarmStartOutcome::kTripped) {
      return TierOutcome::kTripped;
    } else if (crashed == WarmStartOutcome::kRejected) {
      discarded_pivots += tableau.pivots();
      discarded_dual_pivots += tableau.dual_pivots();
      ScalarOps<Scalar>::ClearOverflow();
      tableau = Tableau<Scalar>(system, layout, options.guard);
      if (!tableau.ok()) {
        return TierOutcome::kOverflow;
      }
    }
    // kPartial: rhs >= 0 with some artificial still basic — a valid (and
    // cheaper) phase-1 start; keep the tableau.
  }

  if (!skip_phase1) {
    Phase1Outcome phase1 = tableau.SolvePhase1();
    *tier_pivots = discarded_pivots + tableau.pivots();
    *tier_phase1_pivots = tableau.phase1_pivots();
    *tier_dual_pivots = discarded_dual_pivots + tableau.dual_pivots();
    if (phase1 == Phase1Outcome::kOverflow) {
      return TierOutcome::kOverflow;
    }
    if (phase1 == Phase1Outcome::kTripped) {
      return TierOutcome::kTripped;
    }
    if (phase1 == Phase1Outcome::kInfeasible) {
      out->outcome = LpOutcome::kInfeasible;
      return TierOutcome::kCompleted;
    }
  }

  RunOutcome phase2 = tableau.SolvePhase2(costs);
  *tier_pivots = discarded_pivots + tableau.pivots();
  *tier_phase1_pivots = tableau.phase1_pivots();
  *tier_dual_pivots = discarded_dual_pivots + tableau.dual_pivots();
  if (phase2 == RunOutcome::kOverflow) {
    return TierOutcome::kOverflow;
  }
  if (phase2 == RunOutcome::kTripped) {
    return TierOutcome::kTripped;
  }
  if (phase2 == RunOutcome::kUnbounded) {
    out->outcome = LpOutcome::kUnbounded;
    return TierOutcome::kCompleted;
  }
  out->outcome = LpOutcome::kOptimal;
  out->values = tableau.ExtractValues();
  if (ScalarOps<Scalar>::Overflowed()) {
    return TierOutcome::kOverflow;
  }
  if (options.export_basis != nullptr) {
    tableau.ExportBasis(options.export_basis);
  }
  return TierOutcome::kCompleted;
}

// Records the completing tier's warm-start disposition: one hit or miss
// per solve that attempted reuse, plus the dual-repair sub-counters.
void RecordWarmDisposition(SimplexStats& stats, const WarmDisposition& warm) {
  if (!warm.attempted) {
    return;
  }
  if (warm.used) {
    BumpStat(stats.warm_start_hits);
    if (warm.repaired) {
      BumpStat(stats.incremental_hits);
    }
  } else {
    BumpStat(stats.warm_start_misses);
    if (warm.repair_fallback) {
      BumpStat(stats.incremental_fallbacks);
    }
  }
}

// The body of SolveWith. Kept separate so the public entry point can
// wrap it in the std::bad_alloc -> kResourceExhausted boundary: callers
// fan solves out over ThreadPool workers, and an exception escaping a
// worker would std::terminate the process, so the conversion must happen
// here inside the subsystem, not at the CLI.
Result<LpResult> SolveWithImpl(const LinearSystem& system,
                               const LinearExpr& objective, bool maximize,
                               const SimplexOptions& options) {
  if (system.HasStrictConstraints()) {
    return InvalidArgumentError(
        "SimplexSolver does not accept strict constraints; reduce them via "
        "the homogeneous layer first");
  }
  if (options.guard != nullptr) {
    CRSAT_RETURN_IF_ERROR(options.guard->Check("simplex/solve"));
  }
  SimplexStats& stats = GetSimplexStats();
  BumpStat(stats.solves);

  // The forced-cold reference path (CRSAT_NO_INCREMENTAL /
  // ScopedIncrementalOverride) ignores carried bases entirely so every
  // solve runs the exact code path the differential tests compare against.
  SimplexOptions effective = options;
  const DegradationPolicy policy = GetDegradationPolicy();
  if (effective.warm_start != nullptr &&
      (!IncrementalReasoningEnabled() || !policy.allow_incremental)) {
    effective.warm_start = nullptr;
  }

  TableauLayout layout(system);

  // Structural costs for minimization of +/- objective.
  std::vector<Rational> costs(layout.num_structural, Rational());
  for (const auto& [var, coeff] : objective.terms()) {
    Rational c = maximize ? -coeff : coeff;
    costs[layout.column_of_var[var]] += c;
    if (layout.neg_column_of_var[var] >= 0) {
      costs[layout.neg_column_of_var[var]] -= c;
    }
  }

  std::uint64_t tier_pivots = 0;
  std::uint64_t tier_phase1_pivots = 0;
  std::uint64_t tier_dual_pivots = 0;
  WarmDisposition warm;

  bool try_fast_tier = effective.tier == SimplexOptions::Tier::kTwoTier;
  if (try_fast_tier &&
      (!policy.allow_fast_tier || CRSAT_FAILPOINT("lp/fast_tier_overflow"))) {
    // Rung 1 -> 2 without attempting the int64 tier: the policy forbids
    // it, or an injected overflow simulates the fast tier failing at the
    // earliest possible point. Either way the exact re-solve below is the
    // same code the genuine overflow path runs.
    try_fast_tier = false;
    BumpStat(stats.tier_fallbacks);
    BumpStat(GetRecoveryStats().tier_fallbacks);
  }
  if (try_fast_tier) {
    LpResult fast;
    TierOutcome outcome = SolveOnTier<SmallRational>(
        system, layout, costs, effective, &fast, &tier_pivots,
        &tier_phase1_pivots, &tier_dual_pivots, &warm);
    BumpStat(stats.pivots, tier_pivots);
    BumpStat(stats.phase1_pivots, tier_phase1_pivots);
    BumpStat(stats.dual_pivots, tier_dual_pivots);
    if (outcome == TierOutcome::kTripped) {
      // The trip is sticky; an exact-tier restart would trip immediately.
      return effective.guard->TripStatus();
    }
    if (outcome == TierOutcome::kCompleted) {
      BumpStat(stats.fast_solves);
      BumpStat(stats.fast_pivots, tier_pivots);
      RecordWarmDisposition(stats, warm);
      if (fast.outcome == LpOutcome::kOptimal) {
        fast.objective = objective.Evaluate(fast.values);
      }
      return fast;
    }
    BumpStat(stats.tier_fallbacks);
    BumpStat(GetRecoveryStats().tier_fallbacks);
  }

  LpResult exact;
  TierOutcome outcome = SolveOnTier<Rational>(
      system, layout, costs, effective, &exact, &tier_pivots,
      &tier_phase1_pivots, &tier_dual_pivots, &warm);
  BumpStat(stats.pivots, tier_pivots);
  BumpStat(stats.phase1_pivots, tier_phase1_pivots);
  BumpStat(stats.dual_pivots, tier_dual_pivots);
  if (outcome == TierOutcome::kTripped) {
    return effective.guard->TripStatus();
  }
  (void)outcome;  // The exact tier cannot overflow.
  RecordWarmDisposition(stats, warm);
  if (exact.outcome == LpOutcome::kOptimal) {
    exact.objective = objective.Evaluate(exact.values);
  }
  return exact;
}

}  // namespace

Result<LpResult> SimplexSolver::SolveWith(const LinearSystem& system,
                                          const LinearExpr& objective,
                                          bool maximize,
                                          const SimplexOptions& options) {
  // Allocation-failure boundary (rung 3 of the degradation ladder): a
  // genuine std::bad_alloc anywhere in the solve — or the injected
  // `alloc/simplex` fault standing in for one — becomes an honest
  // kResourceExhausted refusal instead of a crash.
  try {
    if (CRSAT_FAILPOINT("alloc/simplex")) {
      throw std::bad_alloc();
    }
    return SolveWithImpl(system, objective, maximize, options);
  } catch (const std::bad_alloc&) {
    BumpStat(GetRecoveryStats().bad_alloc_conversions);
    return ResourceExhaustedError(
        "simplex: allocation failed; returning UNKNOWN instead of "
        "crashing");
  }
}

Result<LpResult> SimplexSolver::Solve(const LinearSystem& system,
                                      const LinearExpr& objective,
                                      bool maximize) {
  return SolveWith(system, objective, maximize, SimplexOptions());
}

Result<LpResult> SimplexSolver::CheckFeasibility(const LinearSystem& system) {
  return Solve(system, LinearExpr(), /*maximize=*/false);
}

}  // namespace crsat
