#ifndef CRSAT_LP_HOMOGENEOUS_H_
#define CRSAT_LP_HOMOGENEOUS_H_

#include <vector>

#include "src/base/result.h"
#include "src/lp/simplex.h"
#include "src/math/bigint.h"

namespace crsat {

/// Helpers for homogeneous linear systems (all constant terms zero), whose
/// solution sets are convex cones closed under addition and positive
/// scaling. The paper's systems Psi_S are of exactly this shape, which is
/// what lets strict constraints and integrality be handled by scaling.

/// Decides feasibility of a homogeneous `system` that may contain strict
/// (`expr > 0`) constraints, returning a satisfying assignment when one
/// exists. Each strict constraint is replaced by `expr >= 1`: sound because
/// scaling any solution with `expr > 0` for all strict rows makes every
/// such expression reach 1 without affecting the homogeneous rows.
/// Fails with `InvalidArgument` if `system` is not homogeneous.
Result<LpResult> SolveHomogeneousWithStrict(const LinearSystem& system);

/// Accounting for one `ScaleToIntegerSolution` run. The witness pipeline's
/// integer-solution stage surfaces these so tests can pin down which
/// arithmetic tier actually produced a scaling.
struct IntegerScaleStats {
  /// The overflow-checked int64 (`SmallRational`) fast path produced the
  /// result.
  bool used_fast_path = false;
  /// The fast path overflowed (LCM or a scaled numerator left the int64
  /// range) and the exact BigInt path was run instead.
  bool exact_fallback = false;
};

/// Scales a rational solution of a homogeneous system to an integer one:
/// multiplies by the lcm of all denominators, then divides by the gcd of
/// the numerators (keeping the vector minimal). All-zero input stays zero.
///
/// Mirrors the simplex's two-tier arithmetic: the LCM/scaling runs on the
/// overflow-checked int64 `SmallRational` path first (src/lp/
/// small_rational.h) and falls back to exact `Rational`/`BigInt`
/// arithmetic when any intermediate leaves the representable range. Both
/// tiers compute the identical vector; `stats`, when non-null, records
/// which tier ran.
std::vector<BigInt> ScaleToIntegerSolution(const std::vector<Rational>& values,
                                           IntegerScaleStats* stats = nullptr);

/// Multiplies an integer solution by `factor` (solutions of homogeneous
/// systems are closed under positive scaling).
std::vector<BigInt> ScaleSolution(const std::vector<BigInt>& values,
                                  const BigInt& factor);

/// Result of a maximal-support computation.
struct SupportResult {
  /// `positive[v]` is true iff some solution of the restricted system
  /// assigns a strictly positive value to variable `v`.
  std::vector<bool> positive;
  /// A single solution realizing the full support simultaneously (the sum
  /// of per-variable witnesses; valid because the solution set is a cone).
  std::vector<Rational> witness;
};

/// Computes, for a homogeneous non-strict `system` with nonnegative
/// variables, which variables can be strictly positive once the variables
/// in `forced_zero` are pinned to 0. This is the LP core of the paper's
/// acceptable-solution search (Theorem 3.4): each probe solves
/// `system + {x_u = 0 : forced} + {sum of a group >= 1}`.
/// `forced_zero.size()` must equal `system.num_variables()`.
///
/// Probes within a round are independent (they share only the immutable
/// pinned system) and run concurrently on the global thread pool. Grouping
/// and verdict application are independent of the thread count, so results
/// are bit-identical at any parallelism.
///
/// `basis_cache`, when non-null, threads warm-start bases across
/// *successive calls* (e.g. the implication engine's bisection probes,
/// which differ only in one overridden cardinality coefficient, or a
/// satisfiability fixpoint whose pinned-out set grows between iterations).
/// Every probe of this call shares one shape — the pinned system plus a
/// single `>= 1` row — so the call keeps a local carry: it is seeded from
/// the cache entry for that shape, every probe (in every round) offers it
/// to the solver, after each round the first feasible probe's exported
/// basis (in group order, so deterministic at any thread count) becomes
/// the new carry, and the final carry is stored back. A carried basis that
/// is no longer primal-feasible for a probe is repaired by dual pivots
/// (see `SimplexOptions::warm_start`); reuse affects cost only, never
/// verdicts. The cache is touched only outside the parallel region —
/// concurrent probes share the carry read-only.
///
/// `guard`, when non-null, is polled between probe rounds, by every lane of
/// the parallel probe sweep, and per pivot inside each probe's solve; a
/// trip aborts the computation with the guard's status.
Result<SupportResult> ComputeMaximalSupport(
    const LinearSystem& system, const std::vector<bool>& forced_zero,
    WarmStartBasisCache* basis_cache = nullptr,
    ResourceGuard* guard = nullptr);

}  // namespace crsat

#endif  // CRSAT_LP_HOMOGENEOUS_H_
