#ifndef CRSAT_LP_SIMPLEX_H_
#define CRSAT_LP_SIMPLEX_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/base/result.h"
#include "src/lp/linear_system.h"

namespace crsat {

class ResourceGuard;

/// Outcome classification of an LP solve.
enum class LpOutcome {
  /// A feasible (and, when optimizing, optimal) assignment was found.
  kOptimal,
  /// No assignment satisfies the constraints.
  kInfeasible,
  /// Feasible, but the objective can be improved without bound.
  kUnbounded,
};

/// Result of an LP solve.
struct LpResult {
  LpOutcome outcome = LpOutcome::kInfeasible;
  /// One value per system variable; meaningful when `outcome == kOptimal`.
  std::vector<Rational> values;
  /// Objective value at `values`; zero for pure feasibility checks.
  Rational objective;
};

/// Cumulative counters for diagnosing solver behaviour. Process-wide and
/// safe to update from concurrent solves (relaxed atomics: totals are
/// exact, momentary reads may be mid-solve). `Reset()` is for benchmarks
/// and must not race with running solves.
///
/// Thread-safety annotation policy (src/base/annotations.h): every field
/// is its own `std::atomic` capability, so no `CRSAT_GUARDED_BY` mutex is
/// involved — the type system already forbids unsynchronized access, and
/// Clang `-Wthread-safety` has nothing further to prove here. Keep it
/// that way: adding a non-atomic field to this struct would require a
/// `Mutex` + `CRSAT_GUARDED_BY` or it will race under TSan.
struct SimplexStats {
  /// Total `Solve`/`SolveWith` calls.
  std::atomic<std::uint64_t> solves{0};
  /// Simplex iterations across both tiers, including those of fast-tier
  /// attempts later abandoned to overflow.
  std::atomic<std::uint64_t> pivots{0};
  /// Subset of `pivots` spent in phase 1.
  std::atomic<std::uint64_t> phase1_pivots{0};
  /// Solves completed entirely on the int64 fast tier.
  std::atomic<std::uint64_t> fast_solves{0};
  /// Subset of `pivots` performed by *completed* fast-tier solves.
  std::atomic<std::uint64_t> fast_pivots{0};
  /// Fast-tier attempts abandoned (overflow or unrepresentable input),
  /// each followed by an exact-tier solve.
  std::atomic<std::uint64_t> tier_fallbacks{0};
  /// Solves that reused a caller-provided basis and skipped phase 1 —
  /// either because the basis was still primal-feasible or because dual
  /// pivots repaired it (see `incremental_hits`).
  std::atomic<std::uint64_t> warm_start_hits{0};
  /// Warm-start attempts that ended in a cold phase 1: layout mismatch,
  /// singular basis, fast-tier overflow during pivot-in, or a dual repair
  /// that hit its pivot cap. Exactly one of hits/misses is recorded per
  /// solve that was handed a non-empty basis, so hits + misses = attempts.
  std::atomic<std::uint64_t> warm_start_misses{0};
  /// Dual-simplex pivots spent repairing carried bases (subset of
  /// `pivots`, disjoint from `phase1_pivots`).
  std::atomic<std::uint64_t> dual_pivots{0};
  /// Subset of `warm_start_hits` where the carried basis was *not* primal
  /// feasible and dual pivots repaired it (or proved the system
  /// infeasible) in place of a cold phase 1.
  std::atomic<std::uint64_t> incremental_hits{0};
  /// Dual repairs abandoned (pivot cap or fast-tier overflow) that fell
  /// back to a cold phase 1; subset of `warm_start_misses`.
  std::atomic<std::uint64_t> incremental_fallbacks{0};

  /// Zeroes every counter.
  void Reset();
};

/// Returns a mutable reference to the process-wide solver counters.
SimplexStats& GetSimplexStats();

/// A feasible basis exported from a completed solve, reusable to skip
/// phase 1 on later solves of a system with the *same shape* (identical
/// variables, constraint count, and per-row senses — e.g. successive
/// support probes that differ only in one row's coefficients). Opaque to
/// callers; validated structurally before reuse, and rejected bases simply
/// cost one cold phase 1.
struct WarmStartBasis {
  std::vector<int> basis;  // Basic column per tableau row.
  int num_columns = 0;     // Column-layout fingerprint.

  bool empty() const { return basis.empty(); }
};

/// A small shape-keyed store of exported bases. Successive reasoner probes
/// alternate between a handful of system shapes (the pinned-out variable
/// set varies with the probed bound and the fixpoint iteration), so a
/// single carried `WarmStartBasis` thrashes: each differently-shaped solve
/// overwrites the carry the next same-shaped solve needed. Keying by
/// (variable count, constraint count) lets every shape family warm-start
/// within itself; the dual-repair path then absorbs the remaining
/// same-shape coefficient differences. Thread-compatible, not thread-safe:
/// confine a cache to one thread, and give concurrent probes private
/// copies (see `CardinalityImplicationEngine::CheckAllPartial`).
class WarmStartBasisCache {
 public:
  /// The stored basis for this shape, or nullptr. The pointer is
  /// invalidated by the next non-const call.
  const WarmStartBasis* Lookup(int num_variables, int num_constraints);

  /// Stores (or replaces) the basis for this shape, evicting the least
  /// recently used entry when full. Empty bases are ignored.
  void Store(int num_variables, int num_constraints, WarmStartBasis basis);

  bool empty() const { return entries_.empty(); }

 private:
  struct Entry {
    int num_variables = 0;
    int num_constraints = 0;
    WarmStartBasis basis;
  };
  static constexpr std::size_t kMaxEntries = 8;
  std::vector<Entry> entries_;  // Most recently used at the back.
};

/// Knobs for a single solve.
struct SimplexOptions {
  enum class Tier {
    /// Try the overflow-checked int64 tier first, fall back to exact
    /// `Rational` pivoting when any value leaves the representable range.
    /// Verdicts are exact either way (the fast tier is exact-or-flagged).
    kTwoTier,
    /// Exact `Rational` pivoting only (reference behaviour; used by the
    /// cross-tier property tests).
    kExactOnly,
  };
  Tier tier = Tier::kTwoTier;
  /// When non-null and structurally compatible, the solve pivots into this
  /// basis and skips phase 1. A basis that pivots in cleanly but is no
  /// longer primal-feasible (the common case after a probe bound changed)
  /// is repaired by dual-simplex pivots against the zero objective instead
  /// of being rejected; only a layout mismatch, a singular basis, or a
  /// repair that exceeds its pivot cap falls back to a cold start. Ignored
  /// entirely when `IncrementalReasoningEnabled()` is false
  /// (src/base/incremental.h) — the forced-cold reference path.
  const WarmStartBasis* warm_start = nullptr;
  /// When non-null, receives the final basis of an optimal solve.
  WarmStartBasis* export_basis = nullptr;
  /// Optional crash basis: structural variables to pivot into the initial
  /// basis when no carried basis applied (absent or rejected). Callers use
  /// this for variables they KNOW form a cheap feasible basis — e.g. the
  /// per-row cover variables of the maximal-support LP, whose unit columns
  /// evict every artificial in one pivot each — turning phase 1 into a
  /// no-op. Purely an acceleration: a crash that does not land feasible
  /// falls through to the ordinary cold phase 1.
  const std::vector<VarId>* crash_vars = nullptr;
  /// Optional resource guard (src/base/resource_guard.h), polled once per
  /// pivot. A tripped guard aborts the solve — including the exact-tier
  /// fallback — and `SolveWith` returns the guard's trip status
  /// (`kDeadlineExceeded` / `kResourceExhausted` / `kCancelled`).
  /// Tableau storage is charged against the guard's memory budget for the
  /// duration of the solve.
  ResourceGuard* guard = nullptr;
};

/// Exact two-phase primal simplex with Bland's anti-cycling rule and a
/// two-tier arithmetic scheme.
///
/// Pivoting runs on an overflow-checked `int64` rational fast tier first;
/// any value that leaves the representable range raises a sticky flag and
/// the solve transparently restarts on exact `Rational` (BigInt-backed)
/// arithmetic. Both tiers are exact — the fast tier either computes the
/// same numbers the exact tier would or abstains — so `kInfeasible` is
/// always a proof, never a numeric judgement. Strict (`>`) constraints are
/// rejected with `InvalidArgument`; the homogeneous layer
/// (`src/lp/homogeneous.h`) reduces them to non-strict ones before calling
/// in, exploiting that the paper's systems are homogeneous (conic).
class SimplexSolver {
 public:
  /// Minimizes or maximizes `objective` subject to `system`. The objective's
  /// constant term is included in the reported objective value.
  static Result<LpResult> Solve(const LinearSystem& system,
                                const LinearExpr& objective, bool maximize);

  /// Pure feasibility check (zero objective).
  static Result<LpResult> CheckFeasibility(const LinearSystem& system);

  /// `Solve` with explicit tier selection and warm-start plumbing.
  static Result<LpResult> SolveWith(const LinearSystem& system,
                                    const LinearExpr& objective, bool maximize,
                                    const SimplexOptions& options);
};

}  // namespace crsat

#endif  // CRSAT_LP_SIMPLEX_H_
