#ifndef CRSAT_LP_SIMPLEX_H_
#define CRSAT_LP_SIMPLEX_H_

#include <cstdint>
#include <vector>

#include "src/base/result.h"
#include "src/lp/linear_system.h"

namespace crsat {

/// Outcome classification of an LP solve.
enum class LpOutcome {
  /// A feasible (and, when optimizing, optimal) assignment was found.
  kOptimal,
  /// No assignment satisfies the constraints.
  kInfeasible,
  /// Feasible, but the objective can be improved without bound.
  kUnbounded,
};

/// Result of an LP solve.
struct LpResult {
  LpOutcome outcome = LpOutcome::kInfeasible;
  /// One value per system variable; meaningful when `outcome == kOptimal`.
  std::vector<Rational> values;
  /// Objective value at `values`; zero for pure feasibility checks.
  Rational objective;
};

/// Cumulative counters for diagnosing solver behaviour (process-wide,
/// not thread-safe; intended for benchmarks and performance debugging).
struct SimplexStats {
  std::uint64_t solves = 0;
  std::uint64_t pivots = 0;
  std::uint64_t phase1_pivots = 0;
};

/// Returns a mutable reference to the process-wide solver counters.
SimplexStats& GetSimplexStats();

/// Exact-rational two-phase primal simplex with Bland's anti-cycling rule.
///
/// All arithmetic is over `Rational`, so results are exact: `kInfeasible`
/// is a proof of infeasibility, not a numeric judgement. Strict (`>`)
/// constraints are rejected with `InvalidArgument`; the homogeneous layer
/// (`src/lp/homogeneous.h`) reduces them to non-strict ones before calling
/// in, exploiting that the paper's systems are homogeneous (conic).
class SimplexSolver {
 public:
  /// Minimizes or maximizes `objective` subject to `system`. The objective's
  /// constant term is included in the reported objective value.
  static Result<LpResult> Solve(const LinearSystem& system,
                                const LinearExpr& objective, bool maximize);

  /// Pure feasibility check (zero objective).
  static Result<LpResult> CheckFeasibility(const LinearSystem& system);
};

}  // namespace crsat

#endif  // CRSAT_LP_SIMPLEX_H_
