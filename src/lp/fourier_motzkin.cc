#include "src/lp/fourier_motzkin.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/base/resource_guard.h"

namespace crsat {

namespace {

// Internal normalized inequality: expr >= 0 (strict => expr > 0).
struct Inequality {
  LinearExpr expr;
  bool strict = false;
};

// Canonicalizes by dividing through by the gcd of all numerators times the
// lcm of denominators, so duplicates can be pruned.
Inequality Canonicalize(Inequality ineq) {
  BigInt denominator_lcm(1);
  for (const auto& [var, coeff] : ineq.expr.terms()) {
    denominator_lcm = Lcm(denominator_lcm, coeff.denominator());
  }
  denominator_lcm = Lcm(denominator_lcm, ineq.expr.constant().denominator());
  BigInt numerator_gcd;
  auto fold = [&](const Rational& coeff) {
    if (!coeff.IsZero()) {
      numerator_gcd =
          Gcd(numerator_gcd,
              coeff.numerator() * (denominator_lcm / coeff.denominator()));
    }
  };
  for (const auto& [var, coeff] : ineq.expr.terms()) {
    fold(coeff);
  }
  fold(ineq.expr.constant());
  if (numerator_gcd.IsZero()) {
    return ineq;  // Expression is identically zero.
  }
  Rational scale(denominator_lcm, numerator_gcd);
  ineq.expr = ineq.expr * scale;
  return ineq;
}

std::string KeyOf(const Inequality& ineq) {
  return (ineq.strict ? "s " : "n ") + ineq.expr.ToString();
}

}  // namespace

Result<FmResult> FourierMotzkinSolver::Solve(const LinearSystem& system,
                                             ResourceGuard* guard) {
  // Normalize all constraints to `expr >= 0` / `expr > 0` form. Equalities
  // become two opposite inequalities.
  std::vector<Inequality> pool;
  auto push = [&pool](LinearExpr expr, bool strict) {
    pool.push_back(Canonicalize(Inequality{std::move(expr), strict}));
  };
  for (const Constraint& constraint : system.constraints()) {
    switch (constraint.sense) {
      case ConstraintSense::kGreaterEqual:
        push(constraint.expr, /*strict=*/false);
        break;
      case ConstraintSense::kGreater:
        push(constraint.expr, /*strict=*/true);
        break;
      case ConstraintSense::kLessEqual:
        push(-constraint.expr, /*strict=*/false);
        break;
      case ConstraintSense::kEqual:
        push(constraint.expr, /*strict=*/false);
        push(-constraint.expr, /*strict=*/false);
        break;
    }
  }
  for (VarId v = 0; v < system.num_variables(); ++v) {
    if (system.IsNonnegative(v)) {
      push(LinearExpr::Var(v), /*strict=*/false);
    }
  }

  // Eliminate variables highest-id first; record each stage for the
  // back-substitution pass.
  std::vector<std::vector<Inequality>> stages;
  for (VarId v = system.num_variables() - 1; v >= 0; --v) {
    if (guard != nullptr) {
      CRSAT_RETURN_IF_ERROR(guard->CheckNow("fm/eliminate"));
    }
    stages.push_back(pool);
    std::vector<Inequality> lower;   // coeff(v) > 0: v >= -rest/coeff.
    std::vector<Inequality> upper;   // coeff(v) < 0.
    std::vector<Inequality> others;
    for (Inequality& ineq : pool) {
      Rational coeff = ineq.expr.CoefficientOf(v);
      if (coeff.IsPositive()) {
        lower.push_back(std::move(ineq));
      } else if (coeff.IsNegative()) {
        upper.push_back(std::move(ineq));
      } else {
        others.push_back(std::move(ineq));
      }
    }
    std::set<std::string> seen;
    std::vector<Inequality> next;
    auto add_unique = [&](Inequality ineq) {
      ineq = Canonicalize(std::move(ineq));
      std::string key = KeyOf(ineq);
      if (seen.insert(std::move(key)).second) {
        next.push_back(std::move(ineq));
      }
    };
    for (Inequality& ineq : others) {
      add_unique(std::move(ineq));
    }
    for (const Inequality& lo : lower) {
      for (const Inequality& hi : upper) {
        // The lower×upper product is where the constraint count squares
        // per stage; poll the guard on every combination.
        if (guard != nullptr) {
          CRSAT_RETURN_IF_ERROR(guard->Check("fm/combine"));
        }
        Rational a = lo.expr.CoefficientOf(v);        // > 0
        Rational b = hi.expr.CoefficientOf(v);        // < 0
        // (-b) * lo + a * hi eliminates v and preserves direction.
        Inequality combined;
        combined.expr = lo.expr * (-b) + hi.expr * a;
        combined.strict = lo.strict || hi.strict;
        add_unique(std::move(combined));
      }
    }
    pool = std::move(next);
  }

  // All variables eliminated: every remaining constraint is a constant.
  FmResult result;
  for (const Inequality& ineq : pool) {
    const Rational& c = ineq.expr.constant();
    bool holds = ineq.strict ? c.IsPositive() : !c.IsNegative();
    if (!holds) {
      result.feasible = false;
      return result;
    }
  }
  result.feasible = true;

  // Back-substitute a witness, assigning variables in increasing id order
  // (the reverse of elimination order).
  result.witness.assign(system.num_variables(), Rational());
  for (VarId v = 0; v < system.num_variables(); ++v) {
    const std::vector<Inequality>& stage =
        stages[system.num_variables() - 1 - v];
    // Bounds may involve variables > v, already assigned... Variables are
    // eliminated from high id to low, so stage constraints mention only
    // variables <= v; lower ids are already assigned in `witness`.
    bool has_lower = false, has_upper = false;
    bool lower_strict = false, upper_strict = false;
    Rational lower_bound, upper_bound;
    for (const Inequality& ineq : stage) {
      Rational coeff = ineq.expr.CoefficientOf(v);
      if (coeff.IsZero()) {
        continue;
      }
      // rest = expr - coeff * v evaluated at already-chosen values.
      LinearExpr rest = ineq.expr - LinearExpr::Term(v, coeff);
      Rational rest_value = rest.Evaluate(result.witness);
      Rational bound = -rest_value / coeff;
      if (coeff.IsPositive()) {
        if (!has_lower || bound > lower_bound ||
            (bound == lower_bound && ineq.strict)) {
          lower_bound = bound;
          lower_strict = ineq.strict;
          has_lower = true;
        }
      } else {
        if (!has_upper || bound < upper_bound ||
            (bound == upper_bound && ineq.strict)) {
          upper_bound = bound;
          upper_strict = ineq.strict;
          has_upper = true;
        }
      }
    }
    Rational value;
    if (has_lower && has_upper) {
      if (!lower_strict && !upper_strict) {
        value = lower_bound;
      } else {
        value = (lower_bound + upper_bound) / Rational(2);
      }
    } else if (has_lower) {
      value = lower_strict ? lower_bound + Rational(1) : lower_bound;
    } else if (has_upper) {
      value = upper_strict ? upper_bound - Rational(1) : upper_bound;
    }
    result.witness[v] = value;
  }
  return result;
}

}  // namespace crsat
