#ifndef CRSAT_LP_FOURIER_MOTZKIN_H_
#define CRSAT_LP_FOURIER_MOTZKIN_H_

#include <optional>
#include <vector>

#include "src/base/result.h"
#include "src/lp/linear_system.h"

namespace crsat {

class ResourceGuard;

/// Result of a Fourier-Motzkin feasibility check.
struct FmResult {
  bool feasible = false;
  /// A satisfying assignment when feasible (one value per variable).
  std::vector<Rational> witness;
};

/// Decides feasibility of a linear system over the rationals by
/// Fourier-Motzkin variable elimination.
///
/// Unlike the simplex, this solver handles strict (`>`) constraints
/// natively, which makes it an independent oracle for cross-checking the
/// homogeneous strict-to-`>=1` reduction used elsewhere. Worst-case cost is
/// doubly exponential in the number of variables, so it is intended for
/// small systems (tests, debugging) only. When the system is feasible a
/// witness assignment is produced by back-substitution.
class FourierMotzkinSolver {
 public:
  /// Decides feasibility of `system` (variable nonnegativity flags are
  /// honored as additional constraints). `guard`, when non-null, is
  /// polled once per eliminated variable and once per lower×upper
  /// combination — the doubly-exponential step — so a deadline or memory
  /// budget bounds the elimination; a trip aborts with the guard's
  /// status.
  static Result<FmResult> Solve(const LinearSystem& system,
                                ResourceGuard* guard = nullptr);
};

}  // namespace crsat

#endif  // CRSAT_LP_FOURIER_MOTZKIN_H_
