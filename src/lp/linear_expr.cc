#include "src/lp/linear_expr.h"

// srclint: allow(unguarded-loop): all loops are O(terms) over one
// expression; the solvers that multiply expressions together poll their
// ResourceGuard per pivot/combination instead.

namespace crsat {

LinearExpr LinearExpr::Term(VarId var, Rational coeff) {
  LinearExpr expr;
  expr.AddTerm(var, coeff);
  return expr;
}

LinearExpr& LinearExpr::AddTerm(VarId var, const Rational& coeff) {
  if (coeff.IsZero()) {
    return *this;
  }
  auto [it, inserted] = terms_.emplace(var, coeff);
  if (!inserted) {
    it->second += coeff;
    if (it->second.IsZero()) {
      terms_.erase(it);
    }
  }
  return *this;
}

LinearExpr& LinearExpr::AddConstant(const Rational& value) {
  constant_ += value;
  return *this;
}

Rational LinearExpr::CoefficientOf(VarId var) const {
  auto it = terms_.find(var);
  return it == terms_.end() ? Rational() : it->second;
}

LinearExpr LinearExpr::operator+(const LinearExpr& other) const {
  LinearExpr result = *this;
  result += other;
  return result;
}

LinearExpr LinearExpr::operator-(const LinearExpr& other) const {
  LinearExpr result = *this;
  result -= other;
  return result;
}

LinearExpr LinearExpr::operator*(const Rational& scalar) const {
  LinearExpr result;
  if (scalar.IsZero()) {
    return result;
  }
  for (const auto& [var, coeff] : terms_) {
    result.terms_.emplace(var, coeff * scalar);
  }
  result.constant_ = constant_ * scalar;
  return result;
}

LinearExpr LinearExpr::operator-() const { return *this * Rational(-1); }

LinearExpr& LinearExpr::operator+=(const LinearExpr& other) {
  for (const auto& [var, coeff] : other.terms_) {
    AddTerm(var, coeff);
  }
  constant_ += other.constant_;
  return *this;
}

LinearExpr& LinearExpr::operator-=(const LinearExpr& other) {
  for (const auto& [var, coeff] : other.terms_) {
    AddTerm(var, -coeff);
  }
  constant_ -= other.constant_;
  return *this;
}

Rational LinearExpr::Evaluate(const std::vector<Rational>& values) const {
  Rational total = constant_;
  for (const auto& [var, coeff] : terms_) {
    if (var >= 0 && static_cast<size_t>(var) < values.size()) {
      total += coeff * values[var];
    }
  }
  return total;
}

std::string LinearExpr::ToString() const {
  std::string text;
  for (const auto& [var, coeff] : terms_) {
    if (text.empty()) {
      if (coeff.IsNegative()) {
        text += "-";
      }
    } else {
      text += coeff.IsNegative() ? " - " : " + ";
    }
    Rational magnitude = coeff.IsNegative() ? -coeff : coeff;
    if (magnitude != Rational(1)) {
      text += magnitude.ToString();
      text += "*";
    }
    text += "x" + std::to_string(var);
  }
  if (!constant_.IsZero()) {
    if (text.empty()) {
      text = constant_.ToString();
    } else {
      text += constant_.IsNegative() ? " - " : " + ";
      Rational magnitude = constant_.IsNegative() ? -constant_ : constant_;
      text += magnitude.ToString();
    }
  }
  if (text.empty()) {
    text = "0";
  }
  return text;
}

}  // namespace crsat
