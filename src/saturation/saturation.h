#ifndef CRSAT_SATURATION_SATURATION_H_
#define CRSAT_SATURATION_SATURATION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/base/resource_guard.h"
#include "src/cr/interpretation.h"
#include "src/cr/schema.h"
#include "src/saturation/graph.h"

namespace crsat {

/// What graph saturation concluded about one queried class (Joosten,
/// "Finding models through graph saturation" — PAPERS.md). Unlike the
/// reasoner and the brute-force oracle, which answer *finite*
/// satisfiability, the saturation engine answers *classical*
/// satisfiability and additionally reports whether it could pin the
/// answer down with a finite witness. That split is what gives the
/// conformance harness its finitely-unsat/classically-sat contrast
/// class (DESIGN.md §16).
enum class SaturationVerdict {
  /// A concrete finite model was found and certified by `ModelChecker`.
  /// Implies both classical and finite satisfiability.
  kFiniteModel,
  /// A valid saturation graph exists but it needed blocking (a cyclic
  /// back-edge to a saturated template), and the finite-materialization
  /// phase found no finite model within its budget. The class is
  /// classically satisfiable; finite satisfiability is NOT claimed
  /// either way. When the reasoner says finitely-UNSAT for the same
  /// class, this is the infinite-model contrast verdict, not a
  /// disagreement.
  kSatWithReuse,
  /// Exhaustive saturation failed: every ISA/covering-complete labeling
  /// clashes on disjointness or effective cardinality bounds. The class
  /// is classically (hence also finitely) unsatisfiable.
  kUnsat,
  /// A resource limit, cancellation, injected fault, or the engine's own
  /// step budget stopped the search before an answer. Never a guess.
  kUnknown,
};

/// Stable lowercase name ("finite-model", "sat-with-reuse", ...).
const char* SaturationVerdictToString(SaturationVerdict verdict);

/// Knobs for one saturation run. Defaults are sized so generated
/// conformance schemas (≤ 8 classes) decide instantly while adversarial
/// inputs degrade to `kUnknown` instead of running away.
struct SaturationOptions {
  /// Optional resource guard, polled at every template expansion and
  /// materialization step; null means unlimited.
  ResourceGuard* guard = nullptr;
  /// Hard cap on saturation-graph templates per class.
  int max_nodes = 512;
  /// Combined step budget (phase A expansions + phase B repairs) per
  /// class; exhaustion yields `kUnknown`.
  std::uint64_t max_steps = 200000;
  /// Individual cap for the finite-materialization phase; reaching it
  /// degrades `kFiniteModel` to `kSatWithReuse`, never to a wrong
  /// verdict.
  int finite_node_cap = 24;

  /// Mutation hook for the conformance harness's teeth test: phase B
  /// ignores effective max-cardinality when reusing an individual and
  /// skips the engine's own `ModelChecker` certification, so broken
  /// models reach the harness — which must flag
  /// `saturation-missed-violation`. Never set outside tests.
  bool weaken_merge_rule = false;
  /// Mutation hook, other direction: phase A blocks every nested
  /// expansion against the innermost in-progress template without
  /// checking that labels and anchors match. Flips genuine UNSATs to
  /// `kSatWithReuse` with an invalid graph — the harness must flag
  /// `saturation-claims-sat-oracle-unsat`. Never set outside tests.
  bool overeager_blocking = false;
};

/// Saturation outcome for one class.
struct SaturationClassResult {
  ClassId cls;
  SaturationVerdict verdict = SaturationVerdict::kUnknown;
  /// The certified finite model (`kFiniteModel` only).
  std::optional<Interpretation> model;
  /// The saturation graph: the classical-satisfiability certificate for
  /// `kFiniteModel` and `kSatWithReuse` (audit it with
  /// `ValidateSaturationGraph`); empty otherwise.
  SaturationGraph graph;
  /// Why the verdict is `kUnknown` (guard trip site, step budget, ...).
  std::string unknown_reason;
};

/// Per-run statistics plus one result per class, classes in id order
/// regardless of thread count.
struct SaturationReport {
  std::vector<SaturationClassResult> classes;
  std::uint64_t templates_created = 0;  ///< Phase A nodes materialized.
  std::uint64_t blocked_edges = 0;      ///< Phase A back-edges (reuse).
  std::uint64_t individuals_reused = 0; ///< Phase B merge-style fills.
  std::uint64_t individuals_spawned = 0;///< Phase B fresh individuals.

  /// One line per class plus a counters line, deterministic.
  std::string Summary(const Schema& schema) const;
};

/// The saturation engine. Stateless; both entry points are pure
/// functions of (schema, options) apart from guard accounting.
class SaturationEngine {
 public:
  /// Decides every class of `schema`, fanning classes across the global
  /// thread pool. Results land in class-id order and each class's
  /// outcome is independent of scheduling, so reports are bit-identical
  /// at any thread count.
  static SaturationReport Decide(const Schema& schema,
                                 const SaturationOptions& options = {});

  /// Decides a single class.
  static SaturationClassResult DecideClass(const Schema& schema, ClassId cls,
                                           const SaturationOptions& options = {});
};

}  // namespace crsat

#endif  // CRSAT_SATURATION_SATURATION_H_
