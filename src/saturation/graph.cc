#include "src/saturation/graph.h"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>
#include <utility>

// srclint: allow(unguarded-loop): the validator and unraveler are linear
// passes over a graph phase A already built under the engine's guarded
// budget; no loop here can outgrow max_nodes * roles * tuples, and the
// unraveler additionally cuts at max_individuals.

namespace crsat {

namespace {

/// Effective cardinality bounds for one (relationship, role) over a whole
/// label: the tightest combination of every declaration carried by any
/// class in the label (refinements tighten their superclass bounds, per
/// the paper's Definition 2.1). `max == nullopt` is infinity.
struct EffectiveBounds {
  std::uint64_t min = 0;
  std::optional<std::uint64_t> max;

  bool Admits(std::uint64_t have) const {
    return have >= min && (!max.has_value() || have <= *max);
  }

  std::string ToString() const {
    std::ostringstream out;
    out << "[" << min << ", " << (max.has_value() ? std::to_string(*max) : "*")
        << "]";
    return out.str();
  }
};

EffectiveBounds BoundsOver(const Schema& schema, const std::vector<bool>& label,
                           RelationshipId rel, RoleId role) {
  EffectiveBounds bounds;
  for (int c = 0; c < schema.num_classes(); ++c) {
    if (!label[static_cast<size_t>(c)]) {
      continue;
    }
    const Cardinality card = schema.GetCardinality(ClassId{c}, rel, role);
    bounds.min = std::max(bounds.min, card.min);
    if (card.max.has_value() &&
        (!bounds.max.has_value() || *card.max < *bounds.max)) {
      bounds.max = card.max;
    }
  }
  return bounds;
}

std::string LabelToText(const Schema& schema, const std::vector<bool>& label) {
  std::string out = "{";
  bool first = true;
  for (int c = 0; c < schema.num_classes(); ++c) {
    if (c < static_cast<int>(label.size()) && label[static_cast<size_t>(c)]) {
      out += (first ? "" : ", ") + schema.ClassName(ClassId{c});
      first = false;
    }
  }
  return out + "}";
}

}  // namespace

std::string SaturationGraph::ToText(const Schema& schema) const {
  std::ostringstream out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const SaturationNode& node = nodes[i];
    out << "node " << i << ": " << LabelToText(schema, node.label);
    if (node.anchor.has_value()) {
      out << " anchor "
          << schema.RelationshipName(schema.RelationshipOf(*node.anchor)) << "."
          << schema.RoleName(*node.anchor);
    } else {
      out << " root";
    }
    out << "\n";
    for (const SaturationTuple& tuple : node.tuples) {
      out << "  " << schema.RelationshipName(tuple.rel) << "(";
      const std::vector<RoleId>& roles = schema.RolesOf(tuple.rel);
      for (size_t q = 0; q < tuple.components.size(); ++q) {
        out << (q == 0 ? "" : ", ")
            << (q < roles.size() ? schema.RoleName(roles[q]) : "?") << "=";
        if (static_cast<int>(q) == tuple.owner_position) {
          out << "this";
        } else {
          out << "node " << tuple.components[q];
        }
      }
      out << ")\n";
    }
  }
  return out.str();
}

std::vector<std::string> ValidateSaturationGraph(const Schema& schema,
                                                 const SaturationGraph& graph,
                                                 ClassId root_class) {
  std::vector<std::string> violations;
  auto violate = [&violations](const std::string& message) {
    violations.push_back(message);
  };
  if (graph.nodes.empty()) {
    violate("graph is empty: no root template for class " +
            schema.ClassName(root_class));
    return violations;
  }
  const size_t num_classes = static_cast<size_t>(schema.num_classes());
  if (graph.nodes[0].anchor.has_value()) {
    violate("node 0 must be the unanchored root template");
  }
  if (graph.nodes[0].label.size() == num_classes &&
      root_class.valid() &&
      !graph.nodes[0].label[static_cast<size_t>(root_class.value)]) {
    violate("root label does not contain the queried class " +
            schema.ClassName(root_class));
  }

  for (size_t i = 0; i < graph.nodes.size(); ++i) {
    const SaturationNode& node = graph.nodes[i];
    const std::string who = "node " + std::to_string(i);
    if (node.label.size() != num_classes) {
      violate(who + ": label has " + std::to_string(node.label.size()) +
              " entries for " + std::to_string(num_classes) + " classes");
      continue;
    }
    bool any_class = false;
    for (size_t c = 0; c < num_classes; ++c) {
      any_class = any_class || node.label[c];
    }
    if (!any_class) {
      violate(who + ": empty label");
      continue;
    }

    // ISA closure, disjointness, covering — the label-level conditions.
    for (int c = 0; c < schema.num_classes(); ++c) {
      if (!node.label[static_cast<size_t>(c)]) {
        continue;
      }
      for (int d = 0; d < schema.num_classes(); ++d) {
        if (d == c || node.label[static_cast<size_t>(d)]) {
          continue;
        }
        if (schema.IsSubclassOf(ClassId{c}, ClassId{d})) {
          violate(who + ": label not ISA-closed: has " +
                  schema.ClassName(ClassId{c}) + " but not its superclass " +
                  schema.ClassName(ClassId{d}));
        }
      }
      for (int d = c + 1; d < schema.num_classes(); ++d) {
        if (node.label[static_cast<size_t>(d)] &&
            schema.AreDeclaredDisjoint(ClassId{c}, ClassId{d})) {
          violate(who + ": label holds declared-disjoint classes " +
                  schema.ClassName(ClassId{c}) + " and " +
                  schema.ClassName(ClassId{d}));
        }
      }
    }
    for (const CoveringConstraint& covering : schema.covering_constraints()) {
      if (!node.label[static_cast<size_t>(covering.covered.value)]) {
        continue;
      }
      const bool covered = std::any_of(
          covering.coverers.begin(), covering.coverers.end(),
          [&node](ClassId coverer) {
            return node.label[static_cast<size_t>(coverer.value)];
          });
      if (!covered) {
        violate(who + ": label holds covered class " +
                schema.ClassName(covering.covered) +
                " but none of its coverers");
      }
    }

    if (node.anchor.has_value()) {
      const ClassId primary = schema.PrimaryClass(*node.anchor);
      if (!node.label[static_cast<size_t>(primary.value)]) {
        violate(who + ": anchored at role " + schema.RoleName(*node.anchor) +
                " without its primary class " + schema.ClassName(primary) +
                " in the label");
      }
    }

    // Tuple shape + participation counts per (relationship, position).
    std::map<std::pair<int, int>, std::uint64_t> have;
    for (const SaturationTuple& tuple : node.tuples) {
      if (!tuple.rel.valid() || tuple.rel.value >= schema.num_relationships()) {
        violate(who + ": tuple names an invalid relationship");
        continue;
      }
      const std::vector<RoleId>& roles = schema.RolesOf(tuple.rel);
      if (tuple.components.size() != roles.size() ||
          tuple.owner_position < 0 ||
          tuple.owner_position >= static_cast<int>(roles.size())) {
        violate(who + ": malformed tuple for " +
                schema.RelationshipName(tuple.rel));
        continue;
      }
      if (tuple.components[static_cast<size_t>(tuple.owner_position)] !=
          static_cast<int>(i)) {
        violate(who + ": tuple owner position does not reference the owner");
        continue;
      }
      ++have[{tuple.rel.value, tuple.owner_position}];
      for (size_t q = 0; q < tuple.components.size(); ++q) {
        if (static_cast<int>(q) == tuple.owner_position) {
          continue;
        }
        const int target = tuple.components[q];
        if (target < 0 || target >= static_cast<int>(graph.nodes.size())) {
          violate(who + ": tuple component references missing node " +
                  std::to_string(target));
          continue;
        }
        const SaturationNode& filler = graph.nodes[static_cast<size_t>(target)];
        const RoleId role = roles[q];
        if (!filler.anchor.has_value() || *filler.anchor != role) {
          // A template's cardinality arithmetic budgets exactly one
          // incoming participation, at its anchor role. Referencing it at
          // any other role (or referencing the root) would give its
          // unraveled copies an unbudgeted count — the over-eager-blocking
          // bug class this validator exists to catch.
          violate(who + ": tuple for " + schema.RelationshipName(tuple.rel) +
                  " references node " + std::to_string(target) +
                  " at role " + schema.RoleName(role) +
                  " but that template is anchored at " +
                  (filler.anchor.has_value() ? schema.RoleName(*filler.anchor)
                                             : std::string("<root>")));
        }
        if (filler.label.size() == num_classes &&
            !filler.label[static_cast<size_t>(
                schema.PrimaryClass(role).value)]) {
          violate(who + ": tuple filler node " + std::to_string(target) +
                  " is not typed for role " + schema.RoleName(role));
        }
      }
    }

    // Cardinality arithmetic over the label for every (rel, role).
    for (RelationshipId rel : schema.AllRelationships()) {
      const std::vector<RoleId>& roles = schema.RolesOf(rel);
      for (size_t pos = 0; pos < roles.size(); ++pos) {
        const RoleId role = roles[pos];
        std::uint64_t count = 0;
        auto it = have.find({rel.value, static_cast<int>(pos)});
        if (it != have.end()) {
          count = it->second;
        }
        const bool anchored_here =
            node.anchor.has_value() && *node.anchor == role;
        const std::uint64_t total = count + (anchored_here ? 1 : 0);
        const ClassId primary = schema.PrimaryClass(role);
        if (!node.label[static_cast<size_t>(primary.value)]) {
          if (total > 0) {
            violate(who + ": participates at " + schema.RelationshipName(rel) +
                    "." + schema.RoleName(role) +
                    " without the role's primary class " +
                    schema.ClassName(primary));
          }
          continue;
        }
        const EffectiveBounds bounds = BoundsOver(schema, node.label, rel, role);
        if (!bounds.Admits(total)) {
          violate(who + ": count " + std::to_string(total) + " at " +
                  schema.RelationshipName(rel) + "." + schema.RoleName(role) +
                  " outside effective bounds " + bounds.ToString() +
                  " for label " + LabelToText(schema, node.label));
        }
      }
    }
  }
  return violations;
}

Result<Interpretation> UnravelPrefix(const Schema& schema,
                                     const SaturationGraph& graph,
                                     int max_individuals) {
  if (graph.nodes.empty()) {
    return InvalidArgumentError("cannot unravel an empty saturation graph");
  }
  Interpretation interpretation(schema);
  // BFS over (template, instantiated individual). Every tuple reference
  // instantiates a fresh copy of its target template; a copy allocated
  // after the budget ran out is never created — its whole tuple is
  // dropped, leaving only min-cardinality deficits on the frontier.
  std::deque<std::pair<int, Individual>> frontier;
  Status instantiation_failure = OkStatus();
  auto instantiate = [&](int template_id) -> Individual {
    const SaturationNode& node = graph.nodes[static_cast<size_t>(template_id)];
    Individual individual = interpretation.AddIndividual(
        "t" + std::to_string(template_id) + "_" +
        std::to_string(interpretation.domain_size()));
    for (int c = 0;
         c < schema.num_classes() && c < static_cast<int>(node.label.size());
         ++c) {
      if (node.label[static_cast<size_t>(c)]) {
        Status added = interpretation.AddToClass(ClassId{c}, individual);
        if (!added.ok() && instantiation_failure.ok()) {
          instantiation_failure = std::move(added);
        }
      }
    }
    frontier.emplace_back(template_id, individual);
    return individual;
  };
  instantiate(0);
  while (!frontier.empty()) {
    const auto [template_id, individual] = frontier.front();
    frontier.pop_front();
    const SaturationNode& node = graph.nodes[static_cast<size_t>(template_id)];
    for (const SaturationTuple& tuple : node.tuples) {
      const std::vector<RoleId>& roles = schema.RolesOf(tuple.rel);
      if (tuple.components.size() != roles.size()) {
        return InternalError("malformed tuple in saturation graph");
      }
      const int fresh_needed = static_cast<int>(roles.size()) - 1;
      if (interpretation.domain_size() + fresh_needed > max_individuals) {
        continue;  // Budget cut: owner keeps a min deficit, nothing else.
      }
      std::vector<Individual> components(roles.size());
      for (size_t q = 0; q < roles.size(); ++q) {
        if (static_cast<int>(q) == tuple.owner_position) {
          components[q] = individual;
        } else {
          const int target = tuple.components[q];
          if (target < 0 || target >= static_cast<int>(graph.nodes.size())) {
            return InternalError("dangling tuple component in saturation graph");
          }
          components[q] = instantiate(target);
        }
      }
      CRSAT_RETURN_IF_ERROR(interpretation.AddTuple(tuple.rel, components));
      if (!instantiation_failure.ok()) {
        return instantiation_failure;
      }
    }
  }
  if (!instantiation_failure.ok()) {
    return instantiation_failure;
  }
  return interpretation;
}

}  // namespace crsat
