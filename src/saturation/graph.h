#ifndef CRSAT_SATURATION_GRAPH_H_
#define CRSAT_SATURATION_GRAPH_H_

#include <optional>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/cr/interpretation.h"
#include "src/cr/schema.h"

namespace crsat {

/// One tuple a saturation node spawned to satisfy a min-cardinality
/// deficit. `components[i]` is the node id filling role position `i` of
/// `rel`; the spawning node fills `owner_position` (so
/// `components[owner_position]` is the owner's own id).
struct SaturationTuple {
  RelationshipId rel;
  int owner_position = -1;
  std::vector<int> components;
};

/// One node of a saturation graph. A node is an individual *template*,
/// not an individual: an edge into a node instantiates a fresh copy of
/// it, so a node referenced from two tuples stands for two distinct
/// individuals in the unraveled model. That indirection is exactly what
/// lets a finite graph describe an infinite model — a back-edge to an
/// in-progress ancestor (blocking) unravels into an infinite path of
/// fresh copies.
struct SaturationNode {
  /// ISA-closed class membership, indexed by class id.
  std::vector<bool> label;
  /// The role this template fills for the tuple that created it, or
  /// `nullopt` for the root (the seed individual of the queried class).
  /// An anchored template owes exactly one participation at this role to
  /// its creator; that count is part of its cardinality arithmetic.
  std::optional<RoleId> anchor;
  /// Tuples this template spawns itself (min-deficit repairs).
  std::vector<SaturationTuple> tuples;
};

/// A saturated graph: the certificate the saturation engine emits for
/// "classically satisfiable". `nodes[0]` is the root template seeded
/// with the queried class. The graph is a blueprint: unraveling it —
/// root once, then a fresh copy of the target template per tuple
/// reference, recursively — yields a (finite iff the graph is acyclic)
/// model in which every class in every reachable label is populated.
struct SaturationGraph {
  std::vector<SaturationNode> nodes;

  bool empty() const { return nodes.empty(); }

  /// Deterministic multi-line rendering (labels, anchors, tuples), used
  /// by the thread-count determinism tests and disagreement reports.
  std::string ToText(const Schema& schema) const;
};

/// Independently re-checks a saturation graph against the bare schema
/// semantics, declaration by declaration — the graph-level analogue of
/// `ModelChecker` re-judging a finite witness. Returns every violated
/// local condition; empty means the graph is a valid blueprint and every
/// class in node 0's label is classically satisfiable:
///
///   - node 0 exists, has no anchor, and its label contains `root_class`;
///   - every label is ISA-closed, disjointness-free, and covering-closed;
///   - anchored nodes are typed for their anchor role;
///   - for every node and every (relationship, role) with the role's
///     primary class in the label, the participation count — own tuples
///     at that role plus one for the anchor — lies within the effective
///     [max-of-mins, min-of-maxes] bounds over the whole label;
///   - every tuple is well-formed: arity matches, the owner fills its
///     own position, and each other component references a node anchored
///     at exactly that role with the role's primary class in its label.
///
/// All conditions are local to one template, which is what makes the
/// unraveling argument sound (DESIGN.md §16): each unraveled copy sees
/// the same counts its template was validated with.
std::vector<std::string> ValidateSaturationGraph(const Schema& schema,
                                                 const SaturationGraph& graph,
                                                 ClassId root_class);

/// Unravels the blueprint into a finite interpretation for auditing:
/// breadth-first from the root, instantiating a fresh individual per
/// tuple reference, stopping once `max_individuals` templates have been
/// copied. On a *valid* graph the result can only violate
/// min-cardinality conditions, and only on the frontier individuals
/// whose spawns were cut off — `ModelChecker::CheckModel` on the prefix
/// of a valid cyclic graph reports `kCardinality` violations and nothing
/// else (the curated contrast tests assert exactly that). Fails with
/// `kInvalidArgument` on an empty graph.
Result<Interpretation> UnravelPrefix(const Schema& schema,
                                     const SaturationGraph& graph,
                                     int max_individuals);

}  // namespace crsat

#endif  // CRSAT_SATURATION_GRAPH_H_
