#include "src/saturation/saturation.h"

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "src/base/failpoint.h"
#include "src/base/thread_pool.h"
#include "src/cr/model_checker.h"

namespace crsat {

const char* SaturationVerdictToString(SaturationVerdict verdict) {
  switch (verdict) {
    case SaturationVerdict::kFiniteModel:
      return "finite-model";
    case SaturationVerdict::kSatWithReuse:
      return "sat-with-reuse";
    case SaturationVerdict::kUnsat:
      return "unsat";
    case SaturationVerdict::kUnknown:
      return "unknown";
  }
  return "unknown";
}

namespace {

using Label = std::vector<bool>;

/// (label, anchor role id or -1): the template identity that blocking and
/// reuse compare. Exact-match blocking is what keeps saturation sound — a
/// blocked template replays its blocker's exact count profile when the
/// graph is unraveled (DESIGN.md §16).
using TemplateKey = std::pair<Label, int>;

Label CloseUp(const Schema& schema, Label label) {
  const int n = schema.num_classes();
  for (int c = 0; c < n; ++c) {
    if (!label[static_cast<size_t>(c)]) {
      continue;
    }
    for (int d = 0; d < n; ++d) {
      if (!label[static_cast<size_t>(d)] &&
          schema.IsSubclassOf(ClassId{c}, ClassId{d})) {
        label[static_cast<size_t>(d)] = true;
      }
    }
  }
  return label;
}

Label ClosureOf(const Schema& schema, ClassId cls) {
  Label label(static_cast<size_t>(schema.num_classes()), false);
  label[static_cast<size_t>(cls.value)] = true;
  return CloseUp(schema, std::move(label));
}

struct EffectiveBounds {
  std::uint64_t min = 0;
  std::optional<std::uint64_t> max;
};

/// Tightest bounds for (rel, role) over every declaration in the label —
/// refinements tighten their superclass declarations (Definition 2.1).
EffectiveBounds BoundsOver(const Schema& schema, const Label& label,
                           RelationshipId rel, RoleId role) {
  EffectiveBounds bounds;
  for (int c = 0; c < schema.num_classes(); ++c) {
    if (!label[static_cast<size_t>(c)]) {
      continue;
    }
    const Cardinality card = schema.GetCardinality(ClassId{c}, rel, role);
    bounds.min = std::max(bounds.min, card.min);
    if (card.max.has_value() &&
        (!bounds.max.has_value() || *card.max < *bounds.max)) {
      bounds.max = card.max;
    }
  }
  return bounds;
}

/// Context-independent death of a label: a disjointness clash, an empty
/// effective range at an applicable role, or an anchor the label cannot
/// afford. Such a label can never head a viable template in any context,
/// which is what makes memoizing it sound.
bool LabelClashes(const Schema& schema, const Label& label, int anchor_role) {
  for (int c = 0; c < schema.num_classes(); ++c) {
    if (!label[static_cast<size_t>(c)]) {
      continue;
    }
    for (int d = c + 1; d < schema.num_classes(); ++d) {
      if (label[static_cast<size_t>(d)] &&
          schema.AreDeclaredDisjoint(ClassId{c}, ClassId{d})) {
        return true;
      }
    }
  }
  if (anchor_role >= 0 &&
      !label[static_cast<size_t>(
          schema.PrimaryClass(RoleId{anchor_role}).value)]) {
    return true;
  }
  for (RelationshipId rel : schema.AllRelationships()) {
    for (RoleId role : schema.RolesOf(rel)) {
      if (!label[static_cast<size_t>(schema.PrimaryClass(role).value)]) {
        continue;
      }
      const EffectiveBounds bounds = BoundsOver(schema, label, rel, role);
      if (bounds.max.has_value() && bounds.min > *bounds.max) {
        return true;
      }
      if (anchor_role == role.value && bounds.max.has_value() &&
          *bounds.max < 1) {
        return true;
      }
    }
  }
  return false;
}

/// First covering constraint the label leaves unsatisfied, or -1.
int FirstUnsatisfiedCovering(const Schema& schema, const Label& label) {
  const auto& coverings = schema.covering_constraints();
  for (size_t i = 0; i < coverings.size(); ++i) {
    if (!label[static_cast<size_t>(coverings[i].covered.value)]) {
      continue;
    }
    const bool satisfied = std::any_of(
        coverings[i].coverers.begin(), coverings[i].coverers.end(),
        [&label](ClassId coverer) {
          return label[static_cast<size_t>(coverer.value)];
        });
    if (!satisfied) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

/// Every minimal covering-completion of `label` (ISA-closed, covering
/// obligations repaired by branching over coverers), deduplicated, capped.
void CompleteLabels(const Schema& schema, const Label& label,
                    std::vector<Label>* out, size_t cap) {
  if (out->size() >= cap) {
    return;
  }
  const int covering = FirstUnsatisfiedCovering(schema, label);
  if (covering < 0) {
    if (std::find(out->begin(), out->end(), label) == out->end()) {
      out->push_back(label);
    }
    return;
  }
  for (ClassId coverer :
       schema.covering_constraints()[static_cast<size_t>(covering)].coverers) {
    Label widened = label;
    widened[static_cast<size_t>(coverer.value)] = true;
    CompleteLabels(schema, CloseUp(schema, std::move(widened)), out, cap);
  }
}

// ---------------------------------------------------------------------------
// Phase A: classical viability. Depth-first construction of a saturation
// graph over minimal templates. Returns a template id on success, kDeadEnd
// when no completion is viable (classical UNSAT once it reaches the root),
// kStopped when a resource limit / fault / budget ended the search.
// ---------------------------------------------------------------------------

constexpr int kDeadEnd = -1;
constexpr int kStopped = -2;

class ClassSaturation {
 public:
  ClassSaturation(const Schema& schema, const SaturationOptions& options)
      : schema_(schema), options_(options) {}

  SaturationClassResult Run(ClassId cls) {
    SaturationClassResult result;
    result.cls = cls;
    const int root = Expand(ClosureOf(schema_, cls), /*anchor_role=*/-1);
    if (root == kStopped) {
      result.verdict = SaturationVerdict::kUnknown;
      result.unknown_reason = stop_.ToString();
      return result;
    }
    if (root == kDeadEnd) {
      result.verdict = SaturationVerdict::kUnsat;
      return result;
    }
    result.graph = graph_;
    if (Materialize(&result)) {
      result.verdict = SaturationVerdict::kFiniteModel;
    } else {
      // Phase B ran out of road (budget, node cap, injected fault, guard
      // trip): the classical certificate from phase A stands, the finite
      // claim is simply not made. This is the honest degradation rung.
      result.verdict = SaturationVerdict::kSatWithReuse;
      result.model.reset();
    }
    return result;
  }

  std::uint64_t templates_created() const { return templates_created_; }
  std::uint64_t blocked_edges() const { return blocked_edges_; }
  std::uint64_t individuals_reused() const { return individuals_reused_; }
  std::uint64_t individuals_spawned() const { return individuals_spawned_; }

 private:
  bool Stop(Status status) {
    if (stop_.ok()) {
      stop_ = std::move(status);
    }
    return true;
  }

  /// Expands the template for (label, anchor), recursively expanding the
  /// fillers of every min-deficit tuple it must spawn. `label` need not
  /// be covering-closed; unsatisfied coverings branch here.
  int Expand(Label label, int anchor_role) {
    if (++steps_ > options_.max_steps) {
      Stop(ResourceExhaustedError("saturation step budget exhausted"));
      return kStopped;
    }
    if (CRSAT_FAILPOINT("saturation/expand")) {
      Stop(ResourceExhaustedError("injected fault at saturation/expand"));
      return kStopped;
    }
    if (options_.guard != nullptr) {
      Status status = options_.guard->Check("saturation/phase_a");
      if (!status.ok()) {
        Stop(std::move(status));
        return kStopped;
      }
    }
    if (options_.overeager_blocking && !path_stack_.empty()) {
      // Mutation hook: block against the innermost in-progress template
      // without comparing labels or anchors. On an unsatisfiable class
      // this manufactures a graph whose back-edges land on templates
      // anchored at the wrong role — exactly what
      // ValidateSaturationGraph exists to catch downstream.
      ++blocked_edges_;
      return path_stack_.back();
    }
    const TemplateKey key{label, anchor_role};
    if (auto it = on_path_.find(key); it != on_path_.end()) {
      ++blocked_edges_;
      return it->second;
    }
    if (auto it = completed_.find(key); it != completed_.end()) {
      return it->second;
    }
    if (clash_memo_.count(key) > 0) {
      return kDeadEnd;
    }
    if (LabelClashes(schema_, label, anchor_role)) {
      clash_memo_.insert(key);
      return kDeadEnd;
    }
    const int covering = FirstUnsatisfiedCovering(schema_, label);
    if (covering >= 0) {
      // Branch over the coverers; the label strictly grows, so this
      // terminates. Failures below are context-dependent (a deeper
      // ancestor could have offered a back-edge), so they are not
      // memoized — only local clashes are.
      for (ClassId coverer :
           schema_.covering_constraints()[static_cast<size_t>(covering)]
               .coverers) {
        Label widened = label;
        widened[static_cast<size_t>(coverer.value)] = true;
        const int child =
            Expand(CloseUp(schema_, std::move(widened)), anchor_role);
        if (child != kDeadEnd) {
          return child;  // A template id, or kStopped.
        }
      }
      return kDeadEnd;
    }

    if (static_cast<int>(graph_.nodes.size()) >= options_.max_nodes) {
      Stop(ResourceExhaustedError("saturation template cap exhausted"));
      return kStopped;
    }
    const int id = static_cast<int>(graph_.nodes.size());
    SaturationNode node;
    node.label = label;
    if (anchor_role >= 0) {
      node.anchor = RoleId{anchor_role};
    }
    graph_.nodes.push_back(std::move(node));
    ++templates_created_;
    if (options_.guard != nullptr) {
      options_.guard->AddCompounds(1);
    }
    on_path_[key] = id;
    path_stack_.push_back(id);

    for (RelationshipId rel : schema_.AllRelationships()) {
      const std::vector<RoleId>& roles = schema_.RolesOf(rel);
      for (size_t pos = 0; pos < roles.size(); ++pos) {
        const RoleId role = roles[pos];
        if (!label[static_cast<size_t>(schema_.PrimaryClass(role).value)]) {
          continue;
        }
        const EffectiveBounds bounds = BoundsOver(schema_, label, rel, role);
        const std::uint64_t anchored = (anchor_role == role.value) ? 1 : 0;
        const std::uint64_t need =
            bounds.min > anchored ? bounds.min - anchored : 0;
        for (std::uint64_t t = 0; t < need; ++t) {
          SaturationTuple tuple;
          tuple.rel = rel;
          tuple.owner_position = static_cast<int>(pos);
          tuple.components.assign(roles.size(), id);
          for (size_t q = 0; q < roles.size(); ++q) {
            if (q == pos) {
              continue;
            }
            const int child = Expand(
                ClosureOf(schema_, schema_.PrimaryClass(roles[q])),
                roles[q].value);
            if (child == kStopped) {
              return kStopped;
            }
            if (child == kDeadEnd) {
              Rollback(id, key);
              return kDeadEnd;
            }
            tuple.components[q] = child;
          }
          graph_.nodes[static_cast<size_t>(id)].tuples.push_back(
              std::move(tuple));
        }
      }
    }

    path_stack_.pop_back();
    on_path_.erase(key);
    completed_[key] = id;
    return id;
  }

  /// Undoes a failed template: drops it and every descendant from the
  /// arena (they occupy a contiguous id suffix in DFS order), along with
  /// any completion memo entries that pointed into the dropped suffix.
  void Rollback(int id, const TemplateKey& key) {
    path_stack_.pop_back();
    on_path_.erase(key);
    graph_.nodes.resize(static_cast<size_t>(id));
    for (auto it = completed_.begin(); it != completed_.end();) {
      it = it->second >= id ? completed_.erase(it) : std::next(it);
    }
  }

  // -------------------------------------------------------------------------
  // Phase B: finite materialization. Concrete individuals, reuse-first
  // ("merge") deficit repair with chronological backtracking. True on a
  // certified finite model (stored into `result`).
  // -------------------------------------------------------------------------

  struct FiniteState {
    std::vector<Label> labels;
    /// counts[node][role.value]: tuples of role's relationship whose
    /// component at role's position is `node`.
    std::vector<std::vector<std::uint64_t>> counts;
    std::vector<std::set<std::vector<int>>> tuples;  // Per relationship.
  };

  bool Materialize(SaturationClassResult* result) {
    std::vector<Label> roots;
    CompleteLabels(schema_, ClosureOf(schema_, result->cls), &roots,
                   /*cap=*/16);
    for (const Label& root : roots) {
      if (LabelClashes(schema_, root, /*anchor_role=*/-1)) {
        continue;
      }
      FiniteState state;
      state.tuples.resize(static_cast<size_t>(schema_.num_relationships()));
      AddFiniteNode(&state, root);
      if (Solve(&state) && Certify(state, result)) {
        return true;
      }
    }
    return false;
  }

  int AddFiniteNode(FiniteState* state, const Label& label) {
    state->labels.push_back(label);
    state->counts.emplace_back(static_cast<size_t>(schema_.num_roles()), 0);
    ++individuals_spawned_;
    if (options_.guard != nullptr) {
      options_.guard->AddCompounds(1);
    }
    return static_cast<int>(state->labels.size()) - 1;
  }

  void PopFiniteNode(FiniteState* state) {
    state->labels.pop_back();
    state->counts.pop_back();
  }

  /// First (node, rel, position) whose count is below its effective min,
  /// in deterministic scan order; false when none (model complete).
  bool FindDeficit(const FiniteState& state, int* node, RelationshipId* rel,
                   int* pos) const {
    for (size_t n = 0; n < state.labels.size(); ++n) {
      for (RelationshipId r : schema_.AllRelationships()) {
        const std::vector<RoleId>& roles = schema_.RolesOf(r);
        for (size_t q = 0; q < roles.size(); ++q) {
          if (!state.labels[n][static_cast<size_t>(
                  schema_.PrimaryClass(roles[q]).value)]) {
            continue;
          }
          const EffectiveBounds bounds =
              BoundsOver(schema_, state.labels[n], r, roles[q]);
          if (state.counts[n][static_cast<size_t>(roles[q].value)] <
              bounds.min) {
            *node = static_cast<int>(n);
            *rel = r;
            *pos = static_cast<int>(q);
            return true;
          }
        }
      }
    }
    return false;
  }

  bool Solve(FiniteState* state) {
    if (++steps_ > options_.max_steps) {
      return false;
    }
    if (CRSAT_FAILPOINT("saturation/materialize")) {
      return false;
    }
    if (options_.guard != nullptr &&
        !options_.guard->Check("saturation/phase_b").ok()) {
      return false;
    }
    int node = -1;
    RelationshipId rel;
    int pos = -1;
    if (!FindDeficit(*state, &node, &rel, &pos)) {
      return true;
    }
    std::vector<int> components(schema_.RolesOf(rel).size(), node);
    return FillFrom(state, rel, pos, 0, &components);
  }

  /// Chooses a filler for position `q` of the deficit tuple (owner fixed
  /// at `pos`), reuse-first then fresh, and recurses to the next
  /// position; at the end commits the tuple and re-enters `Solve`.
  bool FillFrom(FiniteState* state, RelationshipId rel, int pos, size_t q,
                std::vector<int>* components) {
    const std::vector<RoleId>& roles = schema_.RolesOf(rel);
    if (q == roles.size()) {
      return CommitTuple(state, rel, *components);
    }
    if (static_cast<int>(q) == pos) {
      return FillFrom(state, rel, pos, q + 1, components);
    }
    const RoleId role = roles[q];
    const ClassId primary = schema_.PrimaryClass(role);
    // Reuse an existing, typed individual with spare max-capacity — the
    // "merge" move. The weaken_merge_rule hook drops the capacity check
    // (and the certification below), so over-merged models escape to the
    // harness, which must catch them.
    for (size_t m = 0; m < state->labels.size(); ++m) {
      if (!state->labels[m][static_cast<size_t>(primary.value)]) {
        continue;
      }
      if (!options_.weaken_merge_rule) {
        const EffectiveBounds bounds =
            BoundsOver(schema_, state->labels[m], rel, role);
        if (bounds.max.has_value() &&
            state->counts[m][static_cast<size_t>(role.value)] + 1 >
                *bounds.max) {
          continue;
        }
      }
      (*components)[q] = static_cast<int>(m);
      ++individuals_reused_;
      if (FillFrom(state, rel, pos, q + 1, components)) {
        return true;
      }
      --individuals_reused_;  // Net counter: merges in the final model.
    }
    // Spawn a fresh individual, one candidate per covering-completion of
    // the role's minimal label.
    if (static_cast<int>(state->labels.size()) < options_.finite_node_cap) {
      std::vector<Label> fresh;
      CompleteLabels(schema_, ClosureOf(schema_, primary), &fresh, /*cap=*/16);
      for (const Label& label : fresh) {
        if (LabelClashes(schema_, label, /*anchor_role=*/-1)) {
          continue;
        }
        (*components)[q] = AddFiniteNode(state, label);
        const bool done = FillFrom(state, rel, pos, q + 1, components);
        if (done) {
          return true;
        }
        PopFiniteNode(state);
      }
    }
    return false;
  }

  bool CommitTuple(FiniteState* state, RelationshipId rel,
                   const std::vector<int>& components) {
    auto& extension = state->tuples[static_cast<size_t>(rel.value)];
    if (extension.count(components) > 0) {
      return false;  // Extensions are sets; a duplicate repairs nothing.
    }
    const std::vector<RoleId>& roles = schema_.RolesOf(rel);
    for (size_t q = 0; q < roles.size(); ++q) {
      ++state->counts[static_cast<size_t>(components[q])]
                     [static_cast<size_t>(roles[q].value)];
    }
    bool admissible = true;
    if (!options_.weaken_merge_rule) {
      for (size_t q = 0; q < roles.size() && admissible; ++q) {
        const size_t m = static_cast<size_t>(components[q]);
        const EffectiveBounds bounds =
            BoundsOver(schema_, state->labels[m], rel, roles[q]);
        admissible = !bounds.max.has_value() ||
                     state->counts[m][static_cast<size_t>(roles[q].value)] <=
                         *bounds.max;
      }
    }
    if (admissible) {
      extension.insert(components);
      if (Solve(state)) {
        return true;
      }
      extension.erase(components);
    }
    for (size_t q = 0; q < roles.size(); ++q) {
      --state->counts[static_cast<size_t>(components[q])]
                     [static_cast<size_t>(roles[q].value)];
    }
    return false;
  }

  bool Certify(const FiniteState& state, SaturationClassResult* result) {
    Interpretation model(schema_);
    for (size_t n = 0; n < state.labels.size(); ++n) {
      const Individual individual = model.AddIndividual();
      for (int c = 0; c < schema_.num_classes(); ++c) {
        if (state.labels[n][static_cast<size_t>(c)] &&
            !model.AddToClass(ClassId{c}, individual).ok()) {
          return false;
        }
      }
    }
    for (int r = 0; r < schema_.num_relationships(); ++r) {
      for (const std::vector<int>& tuple :
           state.tuples[static_cast<size_t>(r)]) {
        if (!model.AddTuple(RelationshipId{r}, tuple).ok()) {
          return false;
        }
      }
    }
    // The engine's own non-bypass discipline: no finite-model claim
    // leaves this function without ModelChecker agreeing. (The
    // conformance harness re-judges independently on top — same
    // discipline as CertifiedWitness.) The weaken hook skips this so the
    // harness-level re-judging has something to catch.
    if (!options_.weaken_merge_rule &&
        !ModelChecker::IsModel(schema_, model)) {
      return false;
    }
    result->model.emplace(std::move(model));
    return true;
  }

  const Schema& schema_;
  const SaturationOptions& options_;
  SaturationGraph graph_;
  std::map<TemplateKey, int> on_path_;
  std::map<TemplateKey, int> completed_;
  std::set<TemplateKey> clash_memo_;
  std::vector<int> path_stack_;
  Status stop_ = OkStatus();
  std::uint64_t steps_ = 0;
  std::uint64_t templates_created_ = 0;
  std::uint64_t blocked_edges_ = 0;
  std::uint64_t individuals_reused_ = 0;
  std::uint64_t individuals_spawned_ = 0;
};

}  // namespace

SaturationClassResult SaturationEngine::DecideClass(
    const Schema& schema, ClassId cls, const SaturationOptions& options) {
  ClassSaturation saturation(schema, options);
  return saturation.Run(cls);
}

SaturationReport SaturationEngine::Decide(const Schema& schema,
                                          const SaturationOptions& options) {
  SaturationReport report;
  const size_t n = static_cast<size_t>(schema.num_classes());
  report.classes.resize(n);
  std::vector<std::array<std::uint64_t, 4>> stats(n, {0, 0, 0, 0});
  GlobalThreadPool().ParallelFor(
      n,
      [&](size_t i) {
        ClassSaturation saturation(schema, options);
        report.classes[i] = saturation.Run(ClassId{static_cast<int>(i)});
        stats[i] = {saturation.templates_created(), saturation.blocked_edges(),
                    saturation.individuals_reused(),
                    saturation.individuals_spawned()};
      },
      options.guard);
  for (size_t i = 0; i < n; ++i) {
    // A class skipped by a guard trip mid-ParallelFor keeps the default
    // kUnknown verdict; name the trip so the report is self-explanatory.
    if (report.classes[i].verdict == SaturationVerdict::kUnknown &&
        report.classes[i].unknown_reason.empty()) {
      report.classes[i].cls = ClassId{static_cast<int>(i)};
      report.classes[i].unknown_reason =
          options.guard != nullptr && options.guard->tripped()
              ? options.guard->TripStatus().ToString()
              : "skipped";
    }
    report.templates_created += stats[i][0];
    report.blocked_edges += stats[i][1];
    report.individuals_reused += stats[i][2];
    report.individuals_spawned += stats[i][3];
  }
  return report;
}

std::string SaturationReport::Summary(const Schema& schema) const {
  int finite = 0, reuse = 0, unsat = 0, unknown = 0;
  for (const SaturationClassResult& result : classes) {
    switch (result.verdict) {
      case SaturationVerdict::kFiniteModel:
        ++finite;
        break;
      case SaturationVerdict::kSatWithReuse:
        ++reuse;
        break;
      case SaturationVerdict::kUnsat:
        ++unsat;
        break;
      case SaturationVerdict::kUnknown:
        ++unknown;
        break;
    }
  }
  std::ostringstream out;
  out << "saturation: " << classes.size() << " classes — " << finite
      << " finite-model, " << reuse << " sat-with-reuse, " << unsat
      << " unsat, " << unknown << " unknown; " << templates_created
      << " templates, " << blocked_edges << " blocked edges, "
      << individuals_spawned << " spawned, " << individuals_reused
      << " merged fills\n";
  for (const SaturationClassResult& result : classes) {
    out << "  " << schema.ClassName(result.cls) << ": "
        << SaturationVerdictToString(result.verdict);
    if (result.verdict == SaturationVerdict::kFiniteModel &&
        result.model.has_value()) {
      out << " (" << result.model->domain_size() << " individuals)";
    }
    if (result.verdict == SaturationVerdict::kUnknown &&
        !result.unknown_reason.empty()) {
      out << " (" << result.unknown_reason << ")";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace crsat
