#ifndef CRSAT_BASELINE_LN_REASONER_H_
#define CRSAT_BASELINE_LN_REASONER_H_

#include <vector>

#include "src/base/result.h"
#include "src/cr/schema.h"
#include "src/lp/linear_system.h"
#include "src/math/bigint.h"

namespace crsat {

/// The Lenzerini–Nobili 1990 decision procedure (reference [15] of the
/// paper): satisfiability of cardinality constraints in ER schemas
/// *without* ISA.
///
/// With no ISA (and hence no class overlap forced by the schema), one
/// unknown per class and one per relationship suffices: each tuple of `R`
/// contributes exactly one filler at role `U`, so
/// `minc * x_C <= x_R <= maxc * x_C` for the role's primary class `C`.
/// Acceptability is the same dependency condition as in the full method.
/// This is the baseline the paper builds on — and the one its Figure 1
/// shows to be insufficient once ISA enters (the baseline checker refuses
/// schemas with ISA, disjointness, covering or refinements).
class LnReasoner {
 public:
  /// Fails with `InvalidArgument` if the schema uses any feature outside
  /// the Lenzerini-Nobili fragment (ISA statements, subclass refinements,
  /// Section 5 extensions).
  static Result<LnReasoner> Create(const Schema& schema);

  /// True iff `cls` can be populated in some finite model.
  Result<bool> IsClassSatisfiable(ClassId cls) const;

  /// One flag per class, from a single support computation.
  Result<std::vector<bool>> SatisfiableClasses() const;

  /// The per-class / per-relationship instance counts of an acceptable
  /// integer solution with maximal support.
  struct Solution {
    std::vector<BigInt> class_counts;
    std::vector<BigInt> rel_counts;
  };
  Result<Solution> AcceptableIntegerSolution() const;

  /// The underlying (small) linear system: one variable per class followed
  /// by one per relationship.
  const LinearSystem& system() const { return system_; }

 private:
  explicit LnReasoner(const Schema& schema);

  const Schema* schema_;
  LinearSystem system_;
  std::vector<VarId> class_vars_;
  std::vector<VarId> rel_vars_;
};

}  // namespace crsat

#endif  // CRSAT_BASELINE_LN_REASONER_H_
