#include "src/baseline/ln_reasoner.h"

#include <utility>

#include "src/lp/homogeneous.h"
#include "src/reasoner/satisfiability.h"

namespace crsat {

Result<LnReasoner> LnReasoner::Create(const Schema& schema) {
  if (!schema.isa_statements().empty()) {
    return InvalidArgumentError(
        "Lenzerini-Nobili baseline does not support ISA statements");
  }
  if (!schema.disjointness_constraints().empty() ||
      !schema.covering_constraints().empty()) {
    return InvalidArgumentError(
        "Lenzerini-Nobili baseline does not support Section 5 extensions");
  }
  for (const CardinalityDeclaration& decl :
       schema.cardinality_declarations()) {
    if (decl.cls != schema.PrimaryClass(decl.role)) {
      return InvalidArgumentError(
          "Lenzerini-Nobili baseline does not support refinements on "
          "subclasses");
    }
  }
  return LnReasoner(schema);
}

LnReasoner::LnReasoner(const Schema& schema) : schema_(&schema) {
  for (ClassId cls : schema.AllClasses()) {
    class_vars_.push_back(
        system_.AddVariable(schema.ClassName(cls), /*nonnegative=*/true));
  }
  for (RelationshipId rel : schema.AllRelationships()) {
    rel_vars_.push_back(system_.AddVariable(schema.RelationshipName(rel),
                                            /*nonnegative=*/true));
  }
  for (RelationshipId rel : schema.AllRelationships()) {
    const std::vector<RoleId>& roles = schema.RolesOf(rel);
    for (RoleId role : roles) {
      ClassId primary = schema.PrimaryClass(role);
      Cardinality cardinality = schema.GetCardinality(primary, rel, role);
      if (cardinality.min > 0) {
        // x_R - min * x_C >= 0.
        LinearExpr expr = LinearExpr::Var(rel_vars_[rel.value]);
        expr.AddTerm(class_vars_[primary.value],
                     -Rational(static_cast<std::int64_t>(cardinality.min)));
        system_.AddGe(std::move(expr));
      }
      if (cardinality.max.has_value()) {
        // max * x_C - x_R >= 0.
        LinearExpr expr = LinearExpr::Term(
            class_vars_[primary.value],
            Rational(static_cast<std::int64_t>(*cardinality.max)));
        expr.AddTerm(rel_vars_[rel.value], Rational(-1));
        system_.AddGe(std::move(expr));
      }
    }
  }
}

namespace {

std::vector<Dependency> BuildDependencies(const Schema& schema,
                                          const std::vector<VarId>& class_vars,
                                          const std::vector<VarId>& rel_vars) {
  std::vector<Dependency> dependencies;
  for (RelationshipId rel : schema.AllRelationships()) {
    Dependency dependency;
    dependency.dependent = rel_vars[rel.value];
    for (RoleId role : schema.RolesOf(rel)) {
      dependency.depends_on.push_back(
          class_vars[schema.PrimaryClass(role).value]);
    }
    dependencies.push_back(std::move(dependency));
  }
  return dependencies;
}

}  // namespace

Result<bool> LnReasoner::IsClassSatisfiable(ClassId cls) const {
  CRSAT_ASSIGN_OR_RETURN(std::vector<bool> satisfiable, SatisfiableClasses());
  return static_cast<bool>(satisfiable[cls.value]);
}

Result<std::vector<bool>> LnReasoner::SatisfiableClasses() const {
  CRSAT_ASSIGN_OR_RETURN(
      AcceptableSupport support,
      ComputeAcceptableSupport(
          system_, BuildDependencies(*schema_, class_vars_, rel_vars_)));
  std::vector<bool> satisfiable(schema_->num_classes(), false);
  for (int c = 0; c < schema_->num_classes(); ++c) {
    satisfiable[c] = support.positive[class_vars_[c]];
  }
  return satisfiable;
}

Result<LnReasoner::Solution> LnReasoner::AcceptableIntegerSolution() const {
  CRSAT_ASSIGN_OR_RETURN(
      AcceptableSupport support,
      ComputeAcceptableSupport(
          system_, BuildDependencies(*schema_, class_vars_, rel_vars_)));
  CRSAT_ASSIGN_OR_RETURN(
      std::vector<Rational> witness,
      MinimalWitnessForSupport(system_, support.positive, support.witness));
  std::vector<BigInt> integers = ScaleToIntegerSolution(witness);
  Solution solution;
  for (VarId var : class_vars_) {
    solution.class_counts.push_back(integers[var]);
  }
  for (VarId var : rel_vars_) {
    solution.rel_counts.push_back(integers[var]);
  }
  return solution;
}

}  // namespace crsat
