#ifndef CRSAT_BASELINE_FAST_PATH_H_
#define CRSAT_BASELINE_FAST_PATH_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/base/result.h"
#include "src/cr/schema.h"

namespace crsat {

/// Process-wide counter for the ISA-free short-circuit. Same policy as
/// `SimplexStats`: relaxed atomics, exact totals, `Reset()` must not race
/// with running checks.
struct FastPathStats {
  /// Satisfiability checks answered by the Lenzerini–Nobili baseline
  /// instead of the full expansion pipeline.
  std::atomic<std::uint64_t> ln_short_circuits{0};

  /// Zeroes every counter.
  void Reset();
};

/// Returns a mutable reference to the process-wide fast-path counters.
FastPathStats& GetFastPathStats();

/// Answers `SatisfiableClasses` for ISA-free schemas via the
/// Lenzerini–Nobili baseline (src/baseline/ln_reasoner.h), skipping the
/// expansion pipeline entirely: with no ISA, disjointness, covering or
/// refinements, the expansion is the identity (one singleton compound per
/// class) and the full method's disequation system collapses to the
/// baseline's, so both compute the same verdicts — the baseline just does
/// it with one unknown per class instead of per compound.
///
/// Returns `nullopt` when the schema is outside the Lenzerini–Nobili
/// fragment or `IncrementalReasoningEnabled()` is false (the forced-cold
/// reference path always runs the full pipeline); the caller then falls
/// through to the expansion-based checker. Any other error from the
/// baseline is propagated.
Result<std::optional<std::vector<bool>>> TryLnSatisfiableClasses(
    const Schema& schema);

}  // namespace crsat

#endif  // CRSAT_BASELINE_FAST_PATH_H_
