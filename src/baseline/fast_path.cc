#include "src/baseline/fast_path.h"

#include <utility>

#include "src/base/incremental.h"
#include "src/baseline/ln_reasoner.h"

namespace crsat {

void FastPathStats::Reset() {
  ln_short_circuits.store(0, std::memory_order_relaxed);
}

FastPathStats& GetFastPathStats() {
  static FastPathStats stats;
  return stats;
}

Result<std::optional<std::vector<bool>>> TryLnSatisfiableClasses(
    const Schema& schema) {
  if (!IncrementalReasoningEnabled()) {
    return std::optional<std::vector<bool>>();
  }
  Result<LnReasoner> baseline = LnReasoner::Create(schema);
  if (!baseline.ok()) {
    if (baseline.status().code() == StatusCode::kInvalidArgument) {
      // Outside the ISA-free fragment; the full pipeline must run.
      return std::optional<std::vector<bool>>();
    }
    return baseline.status();
  }
  CRSAT_ASSIGN_OR_RETURN(std::vector<bool> satisfiable,
                         baseline->SatisfiableClasses());
  GetFastPathStats().ln_short_circuits.fetch_add(1,
                                                 std::memory_order_relaxed);
  return std::optional<std::vector<bool>>(std::move(satisfiable));
}

}  // namespace crsat
