#ifndef CRSAT_BASE_DETERMINISTIC_H_
#define CRSAT_BASE_DETERMINISTIC_H_

#include <cstdint>
#include <random>

namespace crsat {

/// Cross-platform deterministic random draws.
///
/// The `std::mt19937` *engine* is fully specified by the standard (same
/// seed, same 32-bit output stream everywhere), but the *distributions*
/// (`std::uniform_int_distribution`, `std::uniform_real_distribution`) are
/// implementation-defined: libstdc++, libc++ and MSVC consume the stream
/// differently, so a seed reproduces a different schema per toolchain.
/// This wrapper draws raw engine words and maps them itself (Lemire's
/// multiply-shift rejection for integers, a fixed-point threshold for
/// coins), so every draw sequence is identical on gcc/clang/libc++/MSVC.
/// The seeded generator, the metamorphic mutator, the conformance driver
/// and the failpoint probability schedules all route their randomness
/// through it — a reported failing seed reproduces the exact same schema
/// (and the exact same fault schedule) on any platform.
class DeterministicRng {
 public:
  explicit DeterministicRng(std::uint32_t seed) : engine_(seed) {}

  /// The next raw 32-bit engine word.
  std::uint32_t NextWord() { return engine_(); }

  /// Uniform draw from the inclusive range [low, high]. Requires
  /// low <= high. Unbiased (Lemire 2019 rejection method).
  int UniformInt(int low, int high) {
    const std::uint32_t range =
        static_cast<std::uint32_t>(high - low) + 1u;  // 0 encodes 2^32.
    if (range == 0) {
      return low + static_cast<int>(NextWord());
    }
    std::uint64_t product =
        static_cast<std::uint64_t>(NextWord()) * range;
    std::uint32_t fraction = static_cast<std::uint32_t>(product);
    if (fraction < range) {
      const std::uint32_t threshold = (0u - range) % range;
      while (fraction < threshold) {
        product = static_cast<std::uint64_t>(NextWord()) * range;
        fraction = static_cast<std::uint32_t>(product);
      }
    }
    return low + static_cast<int>(product >> 32);
  }

  /// True with probability `probability` (clamped to [0, 1]). The
  /// threshold comparison is a single IEEE-754 multiply, identical on
  /// every conforming platform.
  bool Coin(double probability) {
    if (probability >= 1.0) {
      return true;
    }
    if (probability <= 0.0) {
      return false;
    }
    const std::uint64_t threshold =
        static_cast<std::uint64_t>(probability * 4294967296.0);
    return NextWord() < threshold;
  }

 private:
  std::mt19937 engine_;
};

}  // namespace crsat

#endif  // CRSAT_BASE_DETERMINISTIC_H_
