#ifndef CRSAT_BASE_ANNOTATIONS_H_
#define CRSAT_BASE_ANNOTATIONS_H_

// Clang thread-safety-analysis attribute macros (no-ops on other
// compilers). The analysis is purely static: annotations declare which
// capability (lock) protects which state, and `-Wthread-safety` then
// proves every access happens under the right lock at compile time.
// Clang builds promote the warnings to errors (`-Werror=thread-safety`,
// see the top-level CMakeLists); GCC builds compile the macros away.
//
// crsat uses the `CRSAT_`-prefixed subset below. Annotate with the
// wrappers from src/base/mutex.h (`crsat::Mutex`, `crsat::MutexLock`) —
// `std::mutex` itself is not an annotated capability under libstdc++, so
// guarding state with it hides the acquisition from the analysis.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && !defined(SWIG)
#define CRSAT_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CRSAT_THREAD_ANNOTATION_(x)  // no-op
#endif

/// Declares a type to be a capability ("mutex" in diagnostics).
#define CRSAT_CAPABILITY(x) CRSAT_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor.
#define CRSAT_SCOPED_CAPABILITY CRSAT_THREAD_ANNOTATION_(scoped_lockable)

/// The annotated field may only be read or written while holding `x`.
#define CRSAT_GUARDED_BY(x) CRSAT_THREAD_ANNOTATION_(guarded_by(x))

/// The annotated pointer field may only be *dereferenced* while holding
/// `x` (the pointer itself is unguarded).
#define CRSAT_PT_GUARDED_BY(x) CRSAT_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The annotated function may only be called while holding the listed
/// capabilities (which it does not release).
#define CRSAT_REQUIRES(...) \
  CRSAT_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// The annotated function acquires the listed capabilities (held on
/// return). With no argument on a member function: `this`.
#define CRSAT_ACQUIRE(...) \
  CRSAT_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// The annotated function releases the listed capabilities.
#define CRSAT_RELEASE(...) \
  CRSAT_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The annotated function attempts to acquire the capability; the first
/// argument is the return value meaning "acquired".
#define CRSAT_TRY_ACQUIRE(...) \
  CRSAT_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// The annotated function must NOT be called while holding the listed
/// capabilities (deadlock prevention for self-locking functions).
#define CRSAT_EXCLUDES(...) CRSAT_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// The annotated function returns a reference to the listed capability.
#define CRSAT_RETURN_CAPABILITY(x) \
  CRSAT_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function body is not analyzed. Every use must carry
/// a comment justifying why the analysis cannot see the invariant.
#define CRSAT_NO_THREAD_SAFETY_ANALYSIS \
  CRSAT_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // CRSAT_BASE_ANNOTATIONS_H_
