#include "src/base/degradation.h"

namespace crsat {

namespace {

// The policy decomposed into lock-free cells so hot paths (SolveWith,
// AssignTuples) can read it without a mutex. Mirrors the
// incremental-override idiom in src/base/incremental.cc.
std::atomic<int> g_allow_incremental{1};
std::atomic<int> g_allow_fast_tier{1};
std::atomic<int> g_max_witness_rescales{8};

void StorePolicy(const DegradationPolicy& policy) {
  g_allow_incremental.store(policy.allow_incremental ? 1 : 0,
                            std::memory_order_release);
  g_allow_fast_tier.store(policy.allow_fast_tier ? 1 : 0,
                          std::memory_order_release);
  g_max_witness_rescales.store(policy.max_witness_rescales,
                               std::memory_order_release);
}

}  // namespace

DegradationPolicy GetDegradationPolicy() {
  DegradationPolicy policy;
  policy.allow_incremental =
      g_allow_incremental.load(std::memory_order_acquire) != 0;
  policy.allow_fast_tier =
      g_allow_fast_tier.load(std::memory_order_acquire) != 0;
  policy.max_witness_rescales =
      g_max_witness_rescales.load(std::memory_order_acquire);
  return policy;
}

ScopedDegradationPolicy::ScopedDegradationPolicy(
    const DegradationPolicy& policy)
    : previous_(GetDegradationPolicy()) {
  StorePolicy(policy);
}

ScopedDegradationPolicy::~ScopedDegradationPolicy() { StorePolicy(previous_); }

RecoveryStats& GetRecoveryStats() {
  static RecoveryStats* stats = new RecoveryStats;
  return *stats;
}

}  // namespace crsat
