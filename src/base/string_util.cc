#include "src/base/string_util.h"

#include <cctype>

namespace crsat {

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      result.append(separator);
    }
    result.append(parts[i]);
  }
  return result;
}

std::vector<std::string> Split(std::string_view text, char separator) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(separator, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      return fields;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace crsat
