#ifndef CRSAT_BASE_THREAD_POOL_H_
#define CRSAT_BASE_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "src/base/annotations.h"
#include "src/base/mutex.h"

namespace crsat {

class ResourceGuard;

/// Fixed-size task pool used by the reasoning core to fan independent LP
/// probes and implication queries across cores.
///
/// A pool of parallelism `n` owns `n - 1` worker threads; the thread that
/// calls `ParallelFor` participates as the n-th lane, so `ThreadPool(1)`
/// owns no threads and runs everything inline. Nested `ParallelFor` calls
/// issued from inside a worker run inline on that worker (no deadlock, no
/// oversubscription) — the reasoner relies on this when a parallel
/// implication sweep reaches the parallel probe rounds underneath it.
///
/// Determinism contract: `ParallelFor` only schedules; callers that need
/// bit-identical results across thread counts must make their *work*
/// independent of scheduling (crsat's probe rounds collect per-index
/// results and apply them in index order afterwards).
///
/// Lock discipline (statically checked under Clang `-Wthread-safety`):
/// `mutex_` guards the task queue and the stop flag; `wake_` signals
/// queue-not-empty or stopping. Workers never hold `mutex_` while running
/// a task.
class ThreadPool {
 public:
  /// Creates a pool of parallelism `num_threads` (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Joins all workers; pending tasks are drained first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The pool's parallelism (worker threads + the calling thread).
  int num_threads() const { return num_threads_; }

  /// Runs `fn(0) .. fn(n - 1)`, distributing indices across the pool, and
  /// blocks until every call has returned. The calling thread executes
  /// work too. `fn` must be safe to invoke concurrently from multiple
  /// threads for distinct indices.
  ///
  /// When `guard` is non-null, every lane polls it between items
  /// (`ResourceGuard::Check`): once the guard trips, remaining items are
  /// *skipped* — never invoked — while the loop still drains cleanly (the
  /// call returns only after every index was either executed or skipped,
  /// and the pool is reusable afterwards). Callers detect skipped items by
  /// their unset per-index results and consult `guard->TripStatus()`.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   ResourceGuard* guard = nullptr) CRSAT_EXCLUDES(mutex_);

  /// Fire-and-forget dispatch: hands `task` to a worker thread and
  /// returns immediately. Used by the crsatd request scheduler
  /// (src/server/scheduler.*) to run admitted requests on the reasoning
  /// pool; completion tracking is the caller's job. A pool of
  /// parallelism 1 owns no workers, so `Post` there runs the task
  /// *inline* before returning — callers that must not block (and the
  /// scheduler's pump loop) are written to tolerate that.
  void Post(std::function<void()> task) CRSAT_EXCLUDES(mutex_);

  /// The parallelism requested by the environment: `CRSAT_THREADS` when it
  /// parses to a positive integer, otherwise `hardware_concurrency()`
  /// (never less than 1).
  static int DefaultThreadCount();

 private:
  struct ForState;

  void WorkerLoop() CRSAT_EXCLUDES(mutex_);
  void Enqueue(std::function<void()> task) CRSAT_EXCLUDES(mutex_);

  const int num_threads_;
  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar wake_;  // Signaled on enqueue and on stop, under mutex_.
  std::deque<std::function<void()>> tasks_ CRSAT_GUARDED_BY(mutex_);
  bool stopping_ CRSAT_GUARDED_BY(mutex_) = false;
};

/// The process-wide pool used by the reasoning core. Lazily constructed at
/// `DefaultThreadCount()` parallelism on first use.
ThreadPool& GlobalThreadPool();

/// Replaces the global pool with one of parallelism `num_threads`
/// (`num_threads <= 0` means `DefaultThreadCount()`).
///
/// Ordering contract (load-bearing for daemon use): the swap destroys the
/// old pool, which *joins its workers* — so this call must happen-before
/// any `ParallelFor`/`Post` that should run at the new parallelism, and
/// must never race with in-flight work on the old pool (a task still
/// executing there would be joined mid-dispatch). One-shot CLI commands
/// call it once at startup; `crsat_cli serve` resolves `--threads` /
/// `CRSAT_THREADS` and calls this *before* the listener accepts its first
/// connection, after which the count is frozen for the daemon's lifetime
/// (the `stats` request reports the effective value). Tests may call it
/// between (never during) dispatches.
void SetGlobalThreadCount(int num_threads);

/// The global pool's current parallelism (constructs the pool if needed).
int GlobalThreadCount();

}  // namespace crsat

#endif  // CRSAT_BASE_THREAD_POOL_H_
