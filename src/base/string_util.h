#ifndef CRSAT_BASE_STRING_UTIL_H_
#define CRSAT_BASE_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace crsat {

/// Joins the elements of `parts` with `separator` between consecutive items.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Splits `text` on `separator`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// True iff `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace crsat

#endif  // CRSAT_BASE_STRING_UTIL_H_
