#include "src/base/status.h"

namespace crsat {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}

Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}

Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}

Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}

Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

Status ParseError(std::string message) {
  return Status(StatusCode::kParseError, std::move(message));
}

Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}

Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}

Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}

}  // namespace crsat
