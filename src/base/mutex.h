#ifndef CRSAT_BASE_MUTEX_H_
#define CRSAT_BASE_MUTEX_H_

// Annotated mutex wrappers for Clang thread-safety analysis
// (src/base/annotations.h). libstdc++'s `std::mutex`/`std::lock_guard`
// carry no capability attributes, so state guarded by a bare `std::mutex`
// is invisible to `-Wthread-safety`; crsat's concurrency surfaces use
// these zero-overhead wrappers instead. Condition variables pair with
// `MutexLock` through `std::condition_variable_any` (any BasicLockable),
// so waits keep the scoped capability visible to the analysis.

#include <condition_variable>
#include <mutex>

#include "src/base/annotations.h"

namespace crsat {

/// An annotated `std::mutex`: a thread-safety *capability*. Prefer
/// `MutexLock` over calling `lock()`/`unlock()` directly.
class CRSAT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CRSAT_ACQUIRE() { mutex_.lock(); }
  void unlock() CRSAT_RELEASE() { mutex_.unlock(); }
  bool try_lock() CRSAT_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// RAII lock over a `Mutex`, annotated as a scoped capability. Also a
/// BasicLockable (`lock()`/`unlock()`), so `std::condition_variable_any`
/// can release and reacquire it inside `wait` — the analysis sees the
/// capability held across the wait, which matches the caller's view.
class CRSAT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) CRSAT_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() CRSAT_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// For `std::condition_variable_any` only (it unlocks around the block
  /// and relocks before returning); user code should rely on RAII.
  void lock() CRSAT_ACQUIRE() { mutex_.lock(); }
  void unlock() CRSAT_RELEASE() { mutex_.unlock(); }

 private:
  Mutex& mutex_;
};

/// The condition variable that pairs with `Mutex`/`MutexLock`. Waits take
/// the `MutexLock` itself, keeping the capability visible to the
/// thread-safety analysis; use explicit `while (!predicate) cv.Wait(lock)`
/// loops rather than predicate lambdas (a lambda body is analyzed as an
/// unlocked context and would defeat `CRSAT_GUARDED_BY`).
class CondVar {
 public:
  void Wait(MutexLock& lock) { cv_.wait(lock); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace crsat

#endif  // CRSAT_BASE_MUTEX_H_
