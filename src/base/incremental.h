#ifndef CRSAT_BASE_INCREMENTAL_H_
#define CRSAT_BASE_INCREMENTAL_H_

namespace crsat {

/// True when the incremental reasoning fast paths are enabled: dual-simplex
/// warm-start repair (src/lp/simplex.cc), bound-dominance memoization
/// (src/reasoner/implication_engine.h), declared-bound expansion pruning
/// (src/expansion/expansion.cc) and the Lenzerini–Nobili ISA-free
/// short-circuit (src/baseline/fast_path.h).
///
/// Defaults to true. Setting the environment variable
/// `CRSAT_NO_INCREMENTAL` to any value other than empty or `0` forces
/// every layer onto the cold reference path — verdicts are identical
/// either way (the fast paths are exact), so the toggle exists for the
/// incremental-vs-cold differential tests and for bisecting perf
/// regressions, not for correctness. The environment is read once per
/// process.
bool IncrementalReasoningEnabled();

/// Scoped programmatic override of `IncrementalReasoningEnabled`, for the
/// differential tests (flipping an environment variable mid-process races
/// with `getenv` on other threads; this does not). Overrides nest by
/// restoring the previous state on destruction. Create and destroy only
/// from a single thread, outside `ParallelFor` regions — concurrent
/// reasoning *reads* are fine (the state is atomic), concurrent overrides
/// are not meaningful.
class ScopedIncrementalOverride {
 public:
  explicit ScopedIncrementalOverride(bool enabled);
  ~ScopedIncrementalOverride();

  ScopedIncrementalOverride(const ScopedIncrementalOverride&) = delete;
  ScopedIncrementalOverride& operator=(const ScopedIncrementalOverride&) =
      delete;

 private:
  int previous_;  // -1 = no override, otherwise 0/1.
};

}  // namespace crsat

#endif  // CRSAT_BASE_INCREMENTAL_H_
