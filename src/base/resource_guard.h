#ifndef CRSAT_BASE_RESOURCE_GUARD_H_
#define CRSAT_BASE_RESOURCE_GUARD_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "src/base/annotations.h"
#include "src/base/mutex.h"
#include "src/base/status.h"

namespace crsat {

/// Which resource limit a `ResourceGuard` tripped on.
enum class ResourceLimitKind {
  kNone = 0,
  /// The wall-clock deadline passed.
  kDeadline,
  /// The compound-object budget (consistent compound classes +
  /// relationships materialized by the expansion) was exceeded.
  kCompounds,
  /// The instrumented-allocation memory budget was exceeded.
  kMemory,
  /// `RequestCancel()` was observed.
  kCancelled,
  /// An injected fault (the `guard/trip` failpoint, src/base/failpoint.h)
  /// tripped the guard mid-batch. Surfaces as `kResourceExhausted`, so to
  /// every caller it is indistinguishable from a genuine budget trip —
  /// which is the point: the chaos sweep proves mid-batch trips degrade
  /// to honest UNKNOWN verdicts, never to flipped ones.
  kInjected,
};

/// Stable name for a limit kind ("deadline", "compounds", ...).
const char* ResourceLimitKindToString(ResourceLimitKind kind);

/// Limits for a `ResourceGuard`. Unset fields are unlimited; a
/// default-constructed `ResourceLimits` guards nothing but still supports
/// cooperative cancellation.
struct ResourceLimits {
  /// Wall-clock budget, measured from guard construction (monotonic clock).
  std::optional<std::chrono::milliseconds> timeout;
  /// Maximum compound objects (classes + relationships) the expansion may
  /// materialize.
  std::optional<std::uint64_t> max_compounds;
  /// Approximate cap on instrumented live allocations (expansion tables,
  /// simplex tableaus). Accounting is deliberately coarse — it bounds the
  /// dominant allocations, not every byte.
  std::optional<std::uint64_t> max_memory_bytes;
};

/// Structured account of a guard trip (or of a guard's current counters
/// when it has not tripped). Returned by `ResourceGuard::report()` and
/// surfaced by the CLI as JSON so callers can see which limit tripped,
/// where in the pipeline, and what the counters were at that moment.
struct ResourceReport {
  /// The limit that tripped (`kNone` when the guard has not tripped).
  ResourceLimitKind tripped = ResourceLimitKind::kNone;
  /// The check site that observed the trip, e.g. "expansion/classes" or
  /// "simplex/pivot". Empty when not tripped.
  std::string site;
  /// Compound objects accounted so far.
  std::uint64_t compounds = 0;
  /// Instrumented live bytes at snapshot time, and the high-water mark.
  std::uint64_t memory_bytes = 0;
  std::uint64_t peak_memory_bytes = 0;
  /// Wall-clock milliseconds since guard construction.
  double elapsed_ms = 0;
  /// Total `Check` calls observed (a proxy for how often the guarded code
  /// polls; useful when tuning check placement).
  std::uint64_t checks = 0;

  /// "deadline exceeded at simplex/pivot after 102.4 ms ..." (or a
  /// counters-only summary when not tripped).
  std::string ToString() const;
  /// Single-line JSON object with every field above.
  std::string ToJson() const;
};

/// A resource guard: monotonic deadline + compound budget + approximate
/// memory budget + cooperative cancellation token, threaded by pointer
/// through the expansion, LP, and reasoning layers. A null
/// `ResourceGuard*` everywhere means "unlimited" and costs nothing.
///
/// Thread safety: all methods are safe to call concurrently; accounting
/// uses relaxed atomics and the first trip is recorded exactly once.
/// Checks never affect computed *results* — a guarded run that does not
/// trip is bit-identical to an unguarded one — they only decide whether
/// the computation is allowed to continue.
///
/// Once tripped, a guard stays tripped: every later `Check` returns the
/// same status (same code, same site), so each layer of a deep call stack
/// reports the one underlying trip instead of inventing its own.
class ResourceGuard {
 public:
  /// An unlimited guard (still cancellable via `RequestCancel`).
  ResourceGuard() : ResourceGuard(ResourceLimits{}) {}

  explicit ResourceGuard(const ResourceLimits& limits);

  ResourceGuard(const ResourceGuard&) = delete;
  ResourceGuard& operator=(const ResourceGuard&) = delete;

  const ResourceLimits& limits() const { return limits_; }

  /// Cooperative cancellation: guarded loops observe the token at their
  /// next `Check` and unwind with `kCancelled`. Safe from any thread (e.g.
  /// a signal-handler-adjacent watchdog or another request).
  void RequestCancel() { cancel_.store(true, std::memory_order_release); }
  bool cancel_requested() const {
    return cancel_.load(std::memory_order_acquire);
  }

  /// Accounting. `AddCompounds` counts expansion-materialized compound
  /// objects; `AddMemory`/`SubMemory` track instrumented allocations.
  /// Accounting never trips by itself — the next `Check` does — so
  /// counters may briefly overshoot their budget by one allocation.
  void AddCompounds(std::uint64_t n) {
    compounds_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddMemory(std::uint64_t bytes);
  void SubMemory(std::uint64_t bytes) {
    memory_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// The guard's poll point. Returns OK while every limit holds; on the
  /// first violation records a `ResourceReport` naming `site` and returns
  /// `kDeadlineExceeded` / `kResourceExhausted` / `kCancelled`; after
  /// that, always returns the recorded trip. Cheap enough for per-pivot
  /// use: a few relaxed loads, with the clock consulted once every
  /// `kDeadlineStride` calls (and always on the first).
  Status Check(const char* site);

  /// `Check` that always consults the clock — for coarse boundaries
  /// (entering a build, finishing a round) where a prompt deadline trip
  /// matters more than the nanoseconds saved by striding.
  Status CheckNow(const char* site);

  /// True once any limit has tripped (or cancellation was observed by a
  /// check).
  bool tripped() const {
    return tripped_kind_.load(std::memory_order_acquire) !=
           ResourceLimitKind::kNone;
  }

  /// The status every post-trip `Check` returns; OK when not tripped.
  Status TripStatus() const;

  /// Counter snapshot; `tripped`/`site` filled in when tripped.
  ResourceReport report() const;

  std::uint64_t compounds() const {
    return compounds_.load(std::memory_order_relaxed);
  }
  std::uint64_t memory_bytes() const {
    return memory_bytes_.load(std::memory_order_relaxed);
  }
  double elapsed_ms() const;

  /// How many `Check` calls share one clock read (see `Check`).
  static constexpr std::uint64_t kDeadlineStride = 16;

 private:
  using Clock = std::chrono::steady_clock;

  Status Trip(ResourceLimitKind kind, const char* site);
  Status MakeStatus(ResourceLimitKind kind, const std::string& site) const;

  const ResourceLimits limits_;
  const Clock::time_point start_;
  Clock::time_point deadline_;  // Meaningful iff limits_.timeout.
  std::atomic<bool> cancel_{false};
  std::atomic<std::uint64_t> compounds_{0};
  std::atomic<std::uint64_t> memory_bytes_{0};
  std::atomic<std::uint64_t> peak_memory_bytes_{0};
  std::atomic<std::uint64_t> checks_{0};
  std::atomic<ResourceLimitKind> tripped_kind_{ResourceLimitKind::kNone};
  // Written exactly once (by the winning Trip); the mutex makes that
  // write visible to every later reader, and the annotation makes the
  // discipline machine-checked.
  mutable Mutex trip_mutex_;
  std::string trip_site_ CRSAT_GUARDED_BY(trip_mutex_);
};

/// RAII memory charge against a guard: adds `bytes` on construction and
/// releases them on destruction. Null guard => no-op. Move-only.
class ScopedMemoryCharge {
 public:
  ScopedMemoryCharge() = default;
  ScopedMemoryCharge(ResourceGuard* guard, std::uint64_t bytes)
      : guard_(guard), bytes_(bytes) {
    if (guard_ != nullptr) {
      guard_->AddMemory(bytes_);
    }
  }
  ~ScopedMemoryCharge() { Release(); }

  ScopedMemoryCharge(ScopedMemoryCharge&& other) noexcept
      : guard_(std::exchange(other.guard_, nullptr)),
        bytes_(std::exchange(other.bytes_, 0)) {}
  ScopedMemoryCharge& operator=(ScopedMemoryCharge&& other) noexcept {
    if (this != &other) {
      Release();
      guard_ = std::exchange(other.guard_, nullptr);
      bytes_ = std::exchange(other.bytes_, 0);
    }
    return *this;
  }

  /// Charges `more` additional bytes under the same scope.
  void Add(std::uint64_t more) {
    if (guard_ != nullptr) {
      guard_->AddMemory(more);
    }
    bytes_ += more;
  }

 private:
  void Release() {
    if (guard_ != nullptr) {
      guard_->SubMemory(bytes_);
      guard_ = nullptr;
    }
  }

  ResourceGuard* guard_ = nullptr;
  std::uint64_t bytes_ = 0;
};

/// True for the status codes a guard trip surfaces as. Batch APIs use this
/// to turn per-item trips into `UNKNOWN` verdicts while still propagating
/// genuine errors (`kInternal`, `kInvalidArgument`, ...).
inline bool IsResourceLimitStatus(StatusCode code) {
  return code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kResourceExhausted ||
         code == StatusCode::kCancelled;
}

}  // namespace crsat

#endif  // CRSAT_BASE_RESOURCE_GUARD_H_
