#ifndef CRSAT_BASE_DEGRADATION_H_
#define CRSAT_BASE_DEGRADATION_H_

#include <atomic>
#include <cstdint>

namespace crsat {

/// The graceful-degradation ladder (DESIGN.md §14).
///
/// Worst-case exponential inputs make fallbacks *normal operation*, not
/// edge cases, so the recovery order is a first-class contract:
///
///   rung 0  incremental   warm-start bases, memoized bounds, pruning
///   rung 1  cold          same algorithms, no carried state
///   rung 2  exact tier    Rational re-solve after SmallRational overflow
///   rung 3  UNKNOWN       honest resource-status refusal, never a guess
///
/// Dropping a rung must never change a verdict — only cost — and running
/// out of rungs must surface as a resource-limit `Status`
/// (`IsResourceLimitStatus`), which the CLI maps to exit code 3 and the
/// conformance harness treats as benign. The chaos conformance sweep
/// (`crsat_cli conform --chaos-seeds N`) is the proof: under randomized
/// fault schedules every verdict either matches the fault-free run or is
/// such an UNKNOWN, never a flip.

/// Bounds on how hard each rung retries before dropping to the next.
/// The defaults match the historical hard-coded values; tests and the
/// future crsatd admission controller tighten them per request.
struct DegradationPolicy {
  /// Rung 0 permitted (warm starts, memoization, pruning). When false,
  /// every layer behaves as if `IncrementalReasoningEnabled()` were off.
  bool allow_incremental = true;
  /// Rung 1 -> 2: permit the overflow-checked int64 SmallRational tier.
  /// When false, every solve starts on exact Rational arithmetic.
  bool allow_fast_tier = true;
  /// Rung 2 retry budget for witness construction: how many doublings of
  /// the scale factor tuple assignment may try before refusing.
  int max_witness_rescales = 8;
};

/// Process-wide policy. Reads are lock-free; see ScopedDegradationPolicy
/// for the only supported way to change it.
DegradationPolicy GetDegradationPolicy();

/// Scoped override of the process-wide policy, for tests and the chaos
/// harness. Create and destroy from a single thread outside parallel
/// regions (reads from worker threads are safe; concurrent overrides are
/// not meaningful).
class ScopedDegradationPolicy {
 public:
  explicit ScopedDegradationPolicy(const DegradationPolicy& policy);
  ~ScopedDegradationPolicy();

  ScopedDegradationPolicy(const ScopedDegradationPolicy&) = delete;
  ScopedDegradationPolicy& operator=(const ScopedDegradationPolicy&) =
      delete;

 private:
  DegradationPolicy previous_;
};

/// Process-wide counters recording every rung transition actually taken.
/// Exposed in `crsat_cli --json` (object "recovery") and alongside
/// `SimplexStats` in the conformance stats block; the failpoint tests
/// assert on deltas to prove each seam really degraded instead of
/// silently succeeding.
struct RecoveryStats {
  /// Rung 0 -> 1: carried warm-start basis rejected or repair aborted;
  /// solve fell back to cold phase 1.
  std::atomic<std::uint64_t> warm_start_fallbacks{0};
  /// Rung 0 -> 1: support-cover LP failed; expansion fell back to
  /// per-group probe rounds.
  std::atomic<std::uint64_t> cover_fallbacks{0};
  /// Rung 1 -> 2: SmallRational tier overflowed (or was skipped by
  /// policy/fault); solve re-ran on exact Rational.
  std::atomic<std::uint64_t> tier_fallbacks{0};
  /// Witness stage: aligned fast path failed; min-congestion max-flow
  /// refinement ran.
  std::atomic<std::uint64_t> witness_flow_refinements{0};
  /// Witness stage: duplicate tuples forced a scale doubling.
  std::atomic<std::uint64_t> witness_rescales{0};
  /// A std::bad_alloc was caught at a tier boundary and converted to
  /// kResourceExhausted (rung 3) instead of crashing.
  std::atomic<std::uint64_t> bad_alloc_conversions{0};
  /// ResourceGuard trips observed while converting work to UNKNOWN
  /// (includes injected `guard/trip` fires).
  std::atomic<std::uint64_t> guard_trips{0};

  void Reset() {
    warm_start_fallbacks.store(0, std::memory_order_relaxed);
    cover_fallbacks.store(0, std::memory_order_relaxed);
    tier_fallbacks.store(0, std::memory_order_relaxed);
    witness_flow_refinements.store(0, std::memory_order_relaxed);
    witness_rescales.store(0, std::memory_order_relaxed);
    bad_alloc_conversions.store(0, std::memory_order_relaxed);
    guard_trips.store(0, std::memory_order_relaxed);
  }
};

/// The process-wide recovery record. Counters are relaxed atomics;
/// increments from worker threads are safe.
RecoveryStats& GetRecoveryStats();

}  // namespace crsat

#endif  // CRSAT_BASE_DEGRADATION_H_
