#ifndef CRSAT_BASE_RESULT_H_
#define CRSAT_BASE_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <utility>

#include "src/base/status.h"

namespace crsat {

/// Either a value of type `T` or an error `Status`.
///
/// `Result` is the value-carrying companion of `Status` (analogous to
/// `absl::StatusOr` / `arrow::Result`). Accessing the value of an error
/// result aborts the process with a diagnostic; callers must check `ok()`
/// first or use `CRSAT_ASSIGN_OR_RETURN`.
///
/// `[[nodiscard]]` for the same reason as `Status`: a discarded
/// `Result<T>` throws away both the value and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs an error result. `status` must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    if (status_.ok()) {
      std::cerr << "crsat: Result constructed from OK status without a value"
                << std::endl;
      std::abort();
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  /// True iff a value is present.
  [[nodiscard]] bool ok() const { return value_.has_value(); }

  /// The error status (OK when a value is present).
  const Status& status() const { return status_; }

  /// The contained value. Aborts if `!ok()`.
  const T& value() const& {
    CheckHasValue();
    return *value_;
  }

  /// The contained value, moved out. Aborts if `!ok()`.
  T&& value() && {
    CheckHasValue();
    return *std::move(value_);
  }

  /// Mutable access to the contained value. Aborts if `!ok()`.
  T& value() & {
    CheckHasValue();
    return *value_;
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckHasValue() const {
    if (!value_.has_value()) {
      std::cerr << "crsat: accessed value of error Result: "
                << status_.ToString() << std::endl;
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a `Result<T>` expression); on error returns its status
/// from the current function, otherwise moves the value into `lhs`.
#define CRSAT_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  CRSAT_ASSIGN_OR_RETURN_IMPL_(                                   \
      CRSAT_RESULT_CONCAT_(_crsat_result, __LINE__), lhs, rexpr)

#define CRSAT_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) {                                    \
    return tmp.status();                              \
  }                                                   \
  lhs = std::move(tmp).value()

#define CRSAT_RESULT_CONCAT_INNER_(a, b) a##b
#define CRSAT_RESULT_CONCAT_(a, b) CRSAT_RESULT_CONCAT_INNER_(a, b)

}  // namespace crsat

#endif  // CRSAT_BASE_RESULT_H_
