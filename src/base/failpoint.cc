#include "src/base/failpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <utility>

#include "src/base/annotations.h"
#include "src/base/deterministic.h"
#include "src/base/mutex.h"

namespace crsat {

namespace {

// The static catalog. Sorted; every CRSAT_FAILPOINT site in src/ names
// one of these (srclint failpoint-hygiene cross-checks the literals).
// Grouped by the degradation-ladder rung the fault exercises:
//
//   alloc/*       simulated std::bad_alloc at a subsystem boundary,
//                 converted to kResourceExhausted instead of a crash
//   guard/trip    spurious ResourceGuard trip mid-batch (kInjected)
//   incremental/* force the incremental -> cold rung
//   lp/*          warm-start rejection, mid-repair abort, fast-tier
//                 overflow, support-cover LP failure
//   saturation/*  graph-saturation seams: template expansion aborts
//                 (phase A -> UNKNOWN) and finite-materialization aborts
//                 (phase B degrades finite-model to sat-with-reuse)
//   server/*      crsatd serving seams: transient accept failure
//                 (connection stays in the backlog and is retried),
//                 short socket reads (frame reassembly re-loops), and
//                 forced admission-control sheds (kOverloaded response)
//   witness/*     aligned fast path -> flow refinement, rescale retry
constexpr const char* kRegisteredFailpoints[] = {
    "alloc/expansion",
    "alloc/simplex",
    "guard/trip",
    "incremental/force_cold",
    "lp/dual_repair_abort",
    "lp/fast_tier_overflow",
    "lp/support_cover_fail",
    "lp/warm_start_reject",
    "saturation/expand",
    "saturation/materialize",
    "server/accept",
    "server/queue-full",
    "server/short-read",
    "witness/force_flow_refine",
    "witness/force_rescale",
};

// One armed failpoint's schedule position.
struct ActiveEntry {
  FailpointSpec spec;
  std::uint64_t hits_this_activation = 0;
  std::unique_ptr<DeterministicRng> rng;  // kProbability only.
};

struct Registry {
  Mutex mu;
  std::map<std::string, ActiveEntry> active CRSAT_GUARDED_BY(mu);
  std::map<std::string, FailpointCounters> counters CRSAT_GUARDED_BY(mu);
};

Registry& GetRegistry() {
  static Registry* registry = new Registry;
  return *registry;
}

Status ValidateSpec(const FailpointSpec& spec) {
  if (!IsFailpointRegistered(spec.id)) {
    return InvalidArgumentError("unregistered failpoint id '" + spec.id +
                                "' (see RegisteredFailpoints() in "
                                "src/base/failpoint.cc)");
  }
  switch (spec.mode) {
    case FailpointMode::kNth:
    case FailpointMode::kEveryK:
      if (spec.n == 0) {
        return InvalidArgumentError("failpoint '" + spec.id +
                                    "': hit index/period must be >= 1");
      }
      break;
    case FailpointMode::kProbability:
      if (!(spec.probability >= 0.0 && spec.probability <= 1.0)) {
        return InvalidArgumentError("failpoint '" + spec.id +
                                    "': probability must be in [0, 1]");
      }
      break;
  }
  return OkStatus();
}

// Parses one `id[=schedule]` entry from the environment grammar.
Status ParseOneSpec(std::string_view entry, FailpointSpec* out) {
  const size_t eq = entry.find('=');
  out->id = std::string(entry.substr(0, eq));
  if (eq == std::string_view::npos) {
    out->mode = FailpointMode::kNth;  // Bare id: fire on the first hit.
    out->n = 1;
    return OkStatus();
  }
  const std::string_view schedule = entry.substr(eq + 1);
  auto parse_u64 = [](std::string_view text, std::uint64_t* value) {
    if (text.empty()) {
      return false;
    }
    std::uint64_t parsed = 0;
    for (char c : text) {
      if (c < '0' || c > '9') {
        return false;
      }
      parsed = parsed * 10 + static_cast<std::uint64_t>(c - '0');
    }
    *value = parsed;
    return true;
  };
  if (schedule.rfind("nth:", 0) == 0 || schedule.rfind("every:", 0) == 0) {
    const bool nth = schedule[0] == 'n';
    out->mode = nth ? FailpointMode::kNth : FailpointMode::kEveryK;
    if (!parse_u64(schedule.substr(nth ? 4 : 6), &out->n)) {
      return InvalidArgumentError("failpoint '" + out->id +
                                  "': malformed count in schedule '" +
                                  std::string(schedule) + "'");
    }
    return OkStatus();
  }
  if (schedule.rfind("p:", 0) == 0) {
    out->mode = FailpointMode::kProbability;
    std::string_view rest = schedule.substr(2);
    const size_t at = rest.find('@');
    std::string_view prob_text = rest.substr(0, at);
    char* end = nullptr;
    std::string prob_copy(prob_text);
    out->probability = std::strtod(prob_copy.c_str(), &end);
    if (end == prob_copy.c_str() || *end != '\0') {
      return InvalidArgumentError("failpoint '" + out->id +
                                  "': malformed probability '" +
                                  prob_copy + "'");
    }
    out->seed = 0;
    if (at != std::string_view::npos) {
      std::uint64_t seed = 0;
      if (!parse_u64(rest.substr(at + 1), &seed)) {
        return InvalidArgumentError("failpoint '" + out->id +
                                    "': malformed seed in schedule '" +
                                    std::string(schedule) + "'");
      }
      out->seed = static_cast<std::uint32_t>(seed);
    }
    return OkStatus();
  }
  return InvalidArgumentError(
      "failpoint '" + out->id + "': unknown schedule '" +
      std::string(schedule) +
      "' (expected nth:N, every:K, or p:P@SEED)");
}

// Reads CRSAT_FAILPOINTS once at process start, before main. A parse
// error is reported on stderr rather than aborting: fault injection is
// test machinery and must never take production down by itself.
struct EnvActivator {
  EnvActivator() {
    const char* value = std::getenv("CRSAT_FAILPOINTS");
    if (value == nullptr || value[0] == '\0') {
      return;
    }
    const Status status = ActivateFailpointsFromSpec(value);
    if (!status.ok()) {
      std::fprintf(stderr, "crsat: CRSAT_FAILPOINTS: %s\n",
                   status.ToString().c_str());
    }
  }
};
const EnvActivator g_env_activator;

}  // namespace

namespace failpoint_internal {

std::atomic<int> g_any_active{0};

bool ShouldFireSlow(const char* id) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  auto it = registry.active.find(id);
  if (it == registry.active.end()) {
    return false;  // Some other failpoint is armed, not this one.
  }
  ActiveEntry& entry = it->second;
  ++entry.hits_this_activation;
  ++registry.counters[id].hits;
  bool fire = false;
  switch (entry.spec.mode) {
    case FailpointMode::kNth:
      fire = entry.hits_this_activation == entry.spec.n;
      break;
    case FailpointMode::kEveryK:
      fire = entry.hits_this_activation % entry.spec.n == 0;
      break;
    case FailpointMode::kProbability:
      fire = entry.rng->Coin(entry.spec.probability);
      break;
  }
  if (fire) {
    ++registry.counters[id].fires;
  }
  return fire;
}

}  // namespace failpoint_internal

const std::vector<std::string>& RegisteredFailpoints() {
  static const std::vector<std::string>* ids = [] {
    auto* list = new std::vector<std::string>(
        std::begin(kRegisteredFailpoints), std::end(kRegisteredFailpoints));
    return list;
  }();
  return *ids;
}

bool IsFailpointRegistered(std::string_view id) {
  const std::vector<std::string>& ids = RegisteredFailpoints();
  return std::binary_search(ids.begin(), ids.end(), id);
}

Status ActivateFailpoint(const FailpointSpec& spec) {
  CRSAT_RETURN_IF_ERROR(ValidateSpec(spec));
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  ActiveEntry& entry = registry.active[spec.id];
  entry.spec = spec;
  entry.hits_this_activation = 0;
  entry.rng = spec.mode == FailpointMode::kProbability
                  ? std::make_unique<DeterministicRng>(spec.seed)
                  : nullptr;
  failpoint_internal::g_any_active.store(
      static_cast<int>(registry.active.size()), std::memory_order_relaxed);
  return OkStatus();
}

Status DeactivateFailpoint(std::string_view id) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  registry.active.erase(std::string(id));
  failpoint_internal::g_any_active.store(
      static_cast<int>(registry.active.size()), std::memory_order_relaxed);
  return OkStatus();
}

void DeactivateAllFailpoints() {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  registry.active.clear();
  failpoint_internal::g_any_active.store(0, std::memory_order_relaxed);
}

Status ActivateFailpointsFromSpec(std::string_view spec_text) {
  size_t pos = 0;
  while (pos <= spec_text.size()) {
    size_t end = spec_text.find_first_of(",;", pos);
    if (end == std::string_view::npos) {
      end = spec_text.size();
    }
    std::string_view entry = spec_text.substr(pos, end - pos);
    // Trim surrounding spaces.
    while (!entry.empty() && entry.front() == ' ') {
      entry.remove_prefix(1);
    }
    while (!entry.empty() && entry.back() == ' ') {
      entry.remove_suffix(1);
    }
    if (!entry.empty()) {
      FailpointSpec spec;
      CRSAT_RETURN_IF_ERROR(ParseOneSpec(entry, &spec));
      CRSAT_RETURN_IF_ERROR(ActivateFailpoint(spec));
    }
    if (end == spec_text.size()) {
      break;
    }
    pos = end + 1;
  }
  return OkStatus();
}

FailpointCounters GetFailpointCounters(std::string_view id) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  auto it = registry.counters.find(std::string(id));
  return it == registry.counters.end() ? FailpointCounters{} : it->second;
}

void ResetFailpointCounters() {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  registry.counters.clear();
}

ScopedFailpoint::ScopedFailpoint(FailpointSpec spec) : id_(spec.id) {
  status_ = ActivateFailpoint(spec);
}

ScopedFailpoint::ScopedFailpoint(std::string id, std::uint64_t nth)
    : id_(std::move(id)) {
  FailpointSpec spec;
  spec.id = id_;
  spec.mode = FailpointMode::kNth;
  spec.n = nth;
  status_ = ActivateFailpoint(spec);
}

ScopedFailpoint::~ScopedFailpoint() {
  if (status_.ok()) {
    const Status deactivated = DeactivateFailpoint(id_);
    (void)deactivated;  // Deactivation of an armed id cannot fail.
  }
}

}  // namespace crsat
