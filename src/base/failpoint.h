#ifndef CRSAT_BASE_FAILPOINT_H_
#define CRSAT_BASE_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"

namespace crsat {

/// Deterministic fault injection (DESIGN.md §14).
///
/// A *failpoint* is a named site on a recovery seam — warm-start
/// rejection, tier overflow, cover-LP failure, allocation failure — that
/// normally evaluates to `false` at the cost of a single relaxed atomic
/// load, but can be activated (via the API below or the
/// `CRSAT_FAILPOINTS` environment variable) to fire on a deterministic
/// schedule. Firing simulates the failure the seam exists to absorb, so
/// every rung of the degradation ladder is deliberately reachable in
/// tests and in the chaos conformance sweep instead of only when the
/// hardware happens to misbehave.
///
/// Usage at a seam:
///
///   if (CRSAT_FAILPOINT("lp/warm_start_reject")) {
///     return WarmStartOutcome::kRejected;  // As if the basis mismatched.
///   }
///
/// Every id passed to `CRSAT_FAILPOINT` must appear in the static
/// registry (`RegisteredFailpoints`); activation of an unknown id is an
/// error, and the srclint `failpoint-hygiene` rule rejects unregistered
/// ids at the source level. `src/oracle/` must contain no failpoint
/// sites at all: the conformance ground truth stays fault-free.
///
/// Environment grammar (comma- or semicolon-separated):
///
///   CRSAT_FAILPOINTS="lp/warm_start_reject=nth:3,alloc/simplex=every:7"
///   CRSAT_FAILPOINTS="witness/force_rescale=p:0.25@42"
///
///   id            fire on the first hit (shorthand for nth:1)
///   id=nth:N      fire on exactly the N-th hit (1-based), once
///   id=every:K    fire on every K-th hit (K, 2K, 3K, ...)
///   id=p:P@SEED   fire each hit with probability P, drawn from a
///                 DeterministicRng seeded with SEED (identical fault
///                 schedule on every platform)
///
/// Thread safety: activation/deactivation and schedule evaluation are
/// mutex-serialized; the disabled fast path is a lone relaxed load. The
/// hit/fire counters survive deactivation (they are cumulative for the
/// registry coverage assertion) until `ResetFailpointCounters`.

/// How an active failpoint decides to fire.
enum class FailpointMode {
  kNth,          ///< Fire on exactly the n-th hit, once.
  kEveryK,       ///< Fire on every k-th hit.
  kProbability,  ///< Fire each hit with seeded probability.
};

/// An activation request for one failpoint.
struct FailpointSpec {
  std::string id;
  FailpointMode mode = FailpointMode::kNth;
  /// kNth: the 1-based hit index that fires. kEveryK: the period.
  std::uint64_t n = 1;
  /// kProbability: chance of firing per hit, in [0, 1].
  double probability = 0.0;
  /// kProbability: DeterministicRng seed for the firing coin flips.
  std::uint32_t seed = 0;
};

/// Cumulative per-id counters (across activations, until reset).
struct FailpointCounters {
  std::uint64_t hits = 0;   ///< Times an *active* site was evaluated.
  std::uint64_t fires = 0;  ///< Times the schedule said "fire".
};

/// The static catalog of every failpoint id that may appear at a
/// `CRSAT_FAILPOINT` site, sorted. New seams register here first.
const std::vector<std::string>& RegisteredFailpoints();

/// True iff `id` appears in `RegisteredFailpoints()`.
bool IsFailpointRegistered(std::string_view id);

/// Arms `spec.id` with the given schedule, replacing any existing
/// schedule for that id. Fails with kInvalidArgument for unregistered
/// ids or out-of-range parameters (n == 0, probability outside [0, 1]).
Status ActivateFailpoint(const FailpointSpec& spec);

/// Disarms `id` (no-op if it was not active). Counters are preserved.
Status DeactivateFailpoint(std::string_view id);

/// Disarms every failpoint. Counters are preserved.
void DeactivateAllFailpoints();

/// Parses the environment grammar above and activates each entry.
/// Stops at (and reports) the first malformed entry; entries before it
/// stay active.
Status ActivateFailpointsFromSpec(std::string_view spec_text);

/// Cumulative counters for `id` (zeros for an id never hit).
FailpointCounters GetFailpointCounters(std::string_view id);

/// Zeros every id's counters (active schedules keep their positions).
void ResetFailpointCounters();

/// RAII activation for tests: arms in the constructor, disarms in the
/// destructor. Activation failure (unregistered id, bad parameters) is
/// surfaced through `status()` — assert on it before relying on the
/// fault actually being armed.
class ScopedFailpoint {
 public:
  explicit ScopedFailpoint(FailpointSpec spec);
  /// Shorthand: fire on exactly the `nth` hit (1-based), once.
  ScopedFailpoint(std::string id, std::uint64_t nth);
  ~ScopedFailpoint();

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  /// OK iff the failpoint is armed.
  const Status& status() const { return status_; }

 private:
  std::string id_;
  Status status_;
};

namespace failpoint_internal {

/// Non-zero while at least one failpoint is armed. The only cost a
/// disabled `CRSAT_FAILPOINT` site pays is this relaxed load.
extern std::atomic<int> g_any_active;

/// Slow path: looks up `id`'s schedule, advances its counters, and
/// returns whether this hit fires. Called only while something is armed.
bool ShouldFireSlow(const char* id);

}  // namespace failpoint_internal

/// Evaluates to true when the named failpoint is armed and its schedule
/// fires on this hit. `id` must be a string literal naming a registered
/// failpoint (enforced by srclint `failpoint-hygiene` and by
/// `ActivateFailpoint`).
#define CRSAT_FAILPOINT(id)                                      \
  (::crsat::failpoint_internal::g_any_active.load(               \
       std::memory_order_relaxed) != 0 &&                        \
   ::crsat::failpoint_internal::ShouldFireSlow(id))

}  // namespace crsat

#endif  // CRSAT_BASE_FAILPOINT_H_
