#include "src/base/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>

#include "src/base/resource_guard.h"

namespace crsat {

namespace {

// Set for the lifetime of a pool worker thread; ParallelFor calls issued
// from such a thread run inline instead of re-entering the queue.
thread_local bool tls_inside_pool_worker = false;

}  // namespace

// Shared state of one ParallelFor call. Owns a copy of the loop body so a
// helper task dequeued after the caller already drained every index (and
// returned) still touches only live memory. `mutex` guards the completion
// count; index claiming is lock-free through `next`.
struct ThreadPool::ForState {
  std::function<void(size_t)> fn;
  size_t n = 0;
  ResourceGuard* guard = nullptr;
  std::atomic<size_t> next{0};
  Mutex mutex;
  CondVar all_done;  // Signaled when `done` reaches `n`, under mutex.
  size_t done CRSAT_GUARDED_BY(mutex) = 0;

  void Drain() CRSAT_EXCLUDES(mutex) {
    size_t completed = 0;
    while (true) {
      const size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= n) {
        break;
      }
      // Cooperative cancellation: once the guard trips, remaining items
      // are skipped (still counted as done, so the loop drains cleanly).
      if (guard == nullptr || guard->Check("thread_pool/parallel_for").ok()) {
        fn(index);
      }
      ++completed;
    }
    if (completed > 0) {
      MutexLock lock(mutex);
      done += completed;
      if (done == n) {
        all_done.NotifyAll();
      }
    }
  }
};

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  workers_.reserve(num_threads_ - 1);
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  wake_.NotifyAll();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  tls_inside_pool_worker = true;
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      // Explicit predicate loop (not a wait-with-lambda): the analysis
      // treats a lambda body as an unlocked context, while here the
      // guarded reads stay visibly under `lock`.
      while (!stopping_ && tasks_.empty()) {
        wake_.Wait(lock);
      }
      if (tasks_.empty()) {
        return;  // Stopping and drained.
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  wake_.NotifyOne();
}

void ThreadPool::Post(std::function<void()> task) {
  // No workers (parallelism 1): run inline — the queue would never drain.
  if (workers_.empty()) {
    task();
    return;
  }
  Enqueue(std::move(task));
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                             ResourceGuard* guard) {
  if (n == 0) {
    return;
  }
  // Inline paths: trivial loops, single-threaded pools, and nested calls
  // from inside a worker (which would otherwise deadlock waiting for the
  // queue they are blocking).
  if (n == 1 || workers_.empty() || tls_inside_pool_worker) {
    for (size_t i = 0; i < n; ++i) {
      if (guard == nullptr || guard->Check("thread_pool/parallel_for").ok()) {
        fn(i);
      }
    }
    return;
  }
  auto state = std::make_shared<ForState>();
  state->fn = fn;
  state->n = n;
  state->guard = guard;
  const size_t helpers =
      workers_.size() < n - 1 ? workers_.size() : n - 1;
  for (size_t i = 0; i < helpers; ++i) {
    Enqueue([state] { state->Drain(); });
  }
  state->Drain();  // The caller is a lane too.
  MutexLock lock(state->mutex);
  while (state->done != state->n) {
    state->all_done.Wait(lock);
  }
}

int ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("CRSAT_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0 && parsed < 1024) {
      return static_cast<int>(parsed);
    }
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

namespace {

// The global pool and the mutex that guards its (re)construction, as one
// annotated unit so the analysis ties the slot to its lock.
struct GlobalPoolState {
  Mutex mutex;
  std::unique_ptr<ThreadPool> pool CRSAT_GUARDED_BY(mutex);
};

GlobalPoolState& GlobalPool() {
  // By value (not leaked): the destructor joins the workers at exit, so
  // sanitizer legs see no lingering threads.
  static GlobalPoolState state;
  return state;
}

}  // namespace

ThreadPool& GlobalThreadPool() {
  GlobalPoolState& state = GlobalPool();
  MutexLock lock(state.mutex);
  if (!state.pool) {
    state.pool = std::make_unique<ThreadPool>(ThreadPool::DefaultThreadCount());
  }
  return *state.pool;
}

void SetGlobalThreadCount(int num_threads) {
  const int effective =
      num_threads <= 0 ? ThreadPool::DefaultThreadCount() : num_threads;
  GlobalPoolState& state = GlobalPool();
  MutexLock lock(state.mutex);
  if (state.pool && state.pool->num_threads() == effective) {
    return;
  }
  state.pool = std::make_unique<ThreadPool>(effective);
}

int GlobalThreadCount() { return GlobalThreadPool().num_threads(); }

}  // namespace crsat
