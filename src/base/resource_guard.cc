#include "src/base/resource_guard.h"

#include <sstream>

#include "src/base/degradation.h"
#include "src/base/failpoint.h"

namespace crsat {

namespace {

std::string FormatMs(double ms) {
  std::ostringstream out;
  out.precision(1);
  out << std::fixed << ms;
  return out.str();
}

}  // namespace

const char* ResourceLimitKindToString(ResourceLimitKind kind) {
  switch (kind) {
    case ResourceLimitKind::kNone:
      return "none";
    case ResourceLimitKind::kDeadline:
      return "deadline";
    case ResourceLimitKind::kCompounds:
      return "compounds";
    case ResourceLimitKind::kMemory:
      return "memory";
    case ResourceLimitKind::kCancelled:
      return "cancelled";
    case ResourceLimitKind::kInjected:
      return "injected";
  }
  return "unknown";
}

std::string ResourceReport::ToString() const {
  std::string text;
  if (tripped == ResourceLimitKind::kNone) {
    text = "no limit tripped";
  } else {
    text = std::string(ResourceLimitKindToString(tripped)) +
           " limit tripped at " + (site.empty() ? "?" : site);
  }
  text += " (elapsed " + FormatMs(elapsed_ms) + " ms, compounds " +
          std::to_string(compounds) + ", memory " +
          std::to_string(memory_bytes) + " B, peak " +
          std::to_string(peak_memory_bytes) + " B, checks " +
          std::to_string(checks) + ")";
  return text;
}

std::string ResourceReport::ToJson() const {
  std::ostringstream out;
  out << "{\"tripped\": \"" << ResourceLimitKindToString(tripped)
      << "\", \"site\": \"" << site << "\", \"elapsed_ms\": " << elapsed_ms
      << ", \"compounds\": " << compounds
      << ", \"memory_bytes\": " << memory_bytes
      << ", \"peak_memory_bytes\": " << peak_memory_bytes
      << ", \"checks\": " << checks << "}";
  return out.str();
}

ResourceGuard::ResourceGuard(const ResourceLimits& limits)
    : limits_(limits), start_(Clock::now()) {
  deadline_ = limits_.timeout.has_value() ? start_ + *limits_.timeout
                                          : Clock::time_point::max();
}

void ResourceGuard::AddMemory(std::uint64_t bytes) {
  const std::uint64_t now =
      memory_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::uint64_t peak = peak_memory_bytes_.load(std::memory_order_relaxed);
  while (now > peak && !peak_memory_bytes_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

double ResourceGuard::elapsed_ms() const {
  return std::chrono::duration<double, std::milli>(Clock::now() - start_)
      .count();
}

Status ResourceGuard::MakeStatus(ResourceLimitKind kind,
                                 const std::string& site) const {
  const std::string where = site.empty() ? "?" : site;
  switch (kind) {
    case ResourceLimitKind::kDeadline:
      return DeadlineExceededError("deadline exceeded at " + where +
                                   " after " + FormatMs(elapsed_ms()) +
                                   " ms");
    case ResourceLimitKind::kCompounds:
      return ResourceExhaustedError(
          "compound budget exhausted at " + where + " (" +
          std::to_string(compounds()) + " compounds, limit " +
          std::to_string(limits_.max_compounds.value_or(0)) + ")");
    case ResourceLimitKind::kMemory:
      return ResourceExhaustedError(
          "memory budget exhausted at " + where + " (" +
          std::to_string(memory_bytes()) + " B instrumented, limit " +
          std::to_string(limits_.max_memory_bytes.value_or(0)) + " B)");
    case ResourceLimitKind::kCancelled:
      return CancelledError("cancelled at " + where);
    case ResourceLimitKind::kInjected:
      return ResourceExhaustedError("injected fault at " + where);
    case ResourceLimitKind::kNone:
      break;
  }
  return OkStatus();
}

Status ResourceGuard::Trip(ResourceLimitKind kind, const char* site) {
  ResourceLimitKind expected = ResourceLimitKind::kNone;
  if (tripped_kind_.compare_exchange_strong(expected, kind,
                                            std::memory_order_acq_rel)) {
    {
      MutexLock lock(trip_mutex_);
      trip_site_ = site;
    }
    GetRecoveryStats().guard_trips.fetch_add(1, std::memory_order_relaxed);
  }
  return TripStatus();
}

Status ResourceGuard::TripStatus() const {
  const ResourceLimitKind kind = tripped_kind_.load(std::memory_order_acquire);
  if (kind == ResourceLimitKind::kNone) {
    return OkStatus();
  }
  std::string site;
  {
    MutexLock lock(trip_mutex_);
    site = trip_site_;
  }
  return MakeStatus(kind, site);
}

Status ResourceGuard::Check(const char* site) {
  const std::uint64_t check_index =
      checks_.fetch_add(1, std::memory_order_relaxed);
  if (tripped()) {
    return TripStatus();
  }
  if (cancel_requested()) {
    return Trip(ResourceLimitKind::kCancelled, site);
  }
  if (CRSAT_FAILPOINT("guard/trip")) {
    // Injected mid-batch trip: sticks exactly like a genuine one.
    return Trip(ResourceLimitKind::kInjected, site);
  }
  if (limits_.max_compounds.has_value() &&
      compounds() > *limits_.max_compounds) {
    return Trip(ResourceLimitKind::kCompounds, site);
  }
  if (limits_.max_memory_bytes.has_value() &&
      memory_bytes() > *limits_.max_memory_bytes) {
    return Trip(ResourceLimitKind::kMemory, site);
  }
  // The clock is the only non-trivial poll, so it is strided: the first
  // check always reads it (a zero timeout must trip immediately), later
  // ones every kDeadlineStride-th call. The stride counter is shared
  // across threads, which only affects *when* a trip is noticed, never
  // any computed value.
  if (limits_.timeout.has_value() &&
      (check_index % kDeadlineStride == 0) && Clock::now() >= deadline_) {
    return Trip(ResourceLimitKind::kDeadline, site);
  }
  return OkStatus();
}

Status ResourceGuard::CheckNow(const char* site) {
  CRSAT_RETURN_IF_ERROR(Check(site));
  if (limits_.timeout.has_value() && Clock::now() >= deadline_) {
    return Trip(ResourceLimitKind::kDeadline, site);
  }
  return OkStatus();
}

ResourceReport ResourceGuard::report() const {
  ResourceReport report;
  report.tripped = tripped_kind_.load(std::memory_order_acquire);
  if (report.tripped != ResourceLimitKind::kNone) {
    MutexLock lock(trip_mutex_);
    report.site = trip_site_;
  }
  report.compounds = compounds();
  report.memory_bytes = memory_bytes();
  report.peak_memory_bytes =
      peak_memory_bytes_.load(std::memory_order_relaxed);
  report.elapsed_ms = elapsed_ms();
  report.checks = checks_.load(std::memory_order_relaxed);
  return report;
}

}  // namespace crsat
