#ifndef CRSAT_BASE_STATUS_H_
#define CRSAT_BASE_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace crsat {

/// Machine-readable category of a failure reported through `Status`.
enum class StatusCode {
  kOk = 0,
  /// A caller-supplied argument violates the function's contract.
  kInvalidArgument,
  /// A referenced entity (class, relationship, role, variable) is unknown.
  kNotFound,
  /// An entity with the same name/identity already exists.
  kAlreadyExists,
  /// The requested computation is well-defined but could not be completed
  /// (e.g. best-effort model construction exhausted its retry budget).
  kUnavailable,
  /// An internal invariant was violated; indicates a bug in crsat itself.
  kInternal,
  /// Input text could not be parsed.
  kParseError,
  /// A `ResourceGuard` wall-clock deadline passed before the computation
  /// finished (src/base/resource_guard.h).
  kDeadlineExceeded,
  /// A `ResourceGuard` compound or memory budget was exceeded.
  kResourceExhausted,
  /// A `ResourceGuard` cancellation token was observed.
  kCancelled,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail without a value.
///
/// crsat never throws exceptions across its public API; fallible operations
/// return `Status` (or `Result<T>` when they also produce a value). A
/// default-constructed `Status` is OK. The class is cheaply copyable.
///
/// `[[nodiscard]]`: silently dropping a returned `Status` is how a
/// resource trip or parse failure turns into a wrong verdict instead of a
/// refusal, so every discarded return is a compile error
/// (`-Werror=unused-result`). A call whose failure is *provably*
/// irrelevant must say so in code — consume the status and handle or
/// document it — not by ignoring the return.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. `code` must not be
  /// `kOk`; use the default constructor (or `OkStatus()`) for success.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// True iff the operation succeeded.
  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }

  /// The failure category (kOk on success).
  StatusCode code() const { return code_; }

  /// The human-readable failure description (empty on success).
  const std::string& message() const { return message_; }

  /// Formats as "Code: message" (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Constructs an OK status. Provided for symmetry with the error factories.
inline Status OkStatus() { return Status(); }

/// Error-status factories, one per failure category.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status UnavailableError(std::string message);
Status InternalError(std::string message);
Status ParseError(std::string message);
Status DeadlineExceededError(std::string message);
Status ResourceExhaustedError(std::string message);
Status CancelledError(std::string message);

/// Evaluates `expr` (a `Status` expression) and returns it from the current
/// function if it is not OK.
#define CRSAT_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::crsat::Status _crsat_status = (expr);  \
    if (!_crsat_status.ok()) {               \
      return _crsat_status;                  \
    }                                        \
  } while (false)

}  // namespace crsat

#endif  // CRSAT_BASE_STATUS_H_
