#include "src/base/incremental.h"

#include <atomic>
#include <cstdlib>

#include "src/base/failpoint.h"

namespace crsat {

namespace {

// -1 = no override; 0/1 = forced value (ScopedIncrementalOverride).
std::atomic<int> g_override{-1};

bool EnvironmentDefault() {
  static const bool enabled = [] {
    const char* value = std::getenv("CRSAT_NO_INCREMENTAL");
    return value == nullptr || value[0] == '\0' ||
           (value[0] == '0' && value[1] == '\0');
  }();
  return enabled;
}

}  // namespace

bool IncrementalReasoningEnabled() {
  // Injected incremental -> cold degradation (rung 0 -> 1): every layer
  // that consults this toggle falls back to its cold reference path for
  // the queries on which the schedule fires. Checked before the override
  // so the chaos harness can force cold even inside a scoped override.
  if (CRSAT_FAILPOINT("incremental/force_cold")) {
    return false;
  }
  const int forced = g_override.load(std::memory_order_acquire);
  if (forced >= 0) {
    return forced != 0;
  }
  return EnvironmentDefault();
}

ScopedIncrementalOverride::ScopedIncrementalOverride(bool enabled)
    : previous_(g_override.exchange(enabled ? 1 : 0,
                                    std::memory_order_acq_rel)) {}

ScopedIncrementalOverride::~ScopedIncrementalOverride() {
  g_override.store(previous_, std::memory_order_release);
}

}  // namespace crsat
