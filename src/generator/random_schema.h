#ifndef CRSAT_GENERATOR_RANDOM_SCHEMA_H_
#define CRSAT_GENERATOR_RANDOM_SCHEMA_H_

#include <cstdint>

#include "src/base/result.h"
#include "src/cr/schema.h"

namespace crsat {

/// Parameters for the seeded random CR-schema generator that drives
/// property tests and the scaling benchmarks. All probabilities are in
/// [0, 1].
struct RandomSchemaParams {
  std::uint32_t seed = 1;
  int num_classes = 6;
  int num_relationships = 3;
  int min_arity = 2;
  int max_arity = 2;
  /// Probability of each (lower id -> higher id) ISA edge. Edges always
  /// point from a lower-numbered class to a higher-numbered one, so the
  /// ISA graph is acyclic by construction.
  double isa_density = 0.2;
  /// Probability that a role carries an explicit cardinality declaration
  /// on its primary class.
  double primary_card_probability = 0.7;
  /// Probability of an additional refinement declaration on a random
  /// proper subclass of the primary class (when one exists).
  double refinement_probability = 0.3;
  /// Largest generated `minc`. Generated `maxc` lies in [minc, minc +
  /// max_card_slack], or is infinite with `infinite_max_probability`.
  std::uint64_t max_min_card = 2;
  std::uint64_t max_card_slack = 2;
  double infinite_max_probability = 0.3;
  /// Number of pairwise-disjointness groups and the classes per group.
  int num_disjointness_groups = 0;
  int disjointness_group_size = 2;
};

/// Generates a random well-formed CR-schema. Deterministic in `params`
/// (including the seed). Classes are named "C0"..; relationships "R0"..
/// with roles "R<i>_U<k>".
Result<Schema> GenerateRandomSchema(const RandomSchemaParams& params);

}  // namespace crsat

#endif  // CRSAT_GENERATOR_RANDOM_SCHEMA_H_
