#include "src/generator/random_schema.h"

#include <string>
#include <vector>

#include "src/generator/deterministic.h"

namespace crsat {

Result<Schema> GenerateRandomSchema(const RandomSchemaParams& params) {
  if (params.num_classes < 1) {
    return InvalidArgumentError("num_classes must be >= 1");
  }
  if (params.min_arity < 2 || params.max_arity < params.min_arity) {
    return InvalidArgumentError("arity range must satisfy 2 <= min <= max");
  }
  // All draws go through DeterministicRng so a seed reproduces the
  // identical schema on every toolchain (std::uniform_int_distribution
  // sequences are implementation-defined; see deterministic.h).
  DeterministicRng rng(params.seed);
  auto coin = [&rng](double probability) { return rng.Coin(probability); };
  auto uniform_int = [&rng](int low, int high) {
    return rng.UniformInt(low, high);
  };

  SchemaBuilder builder;
  std::vector<std::string> class_names;
  for (int c = 0; c < params.num_classes; ++c) {
    class_names.push_back("C" + std::to_string(c));
    builder.AddClass(class_names.back());
  }

  // ISA edges from lower ids to higher ids: acyclic by construction.
  // Track the closure locally so refinements can pick genuine subclasses.
  std::vector<std::vector<bool>> closure(
      params.num_classes, std::vector<bool>(params.num_classes, false));
  for (int c = 0; c < params.num_classes; ++c) {
    closure[c][c] = true;
  }
  for (int sub = 0; sub < params.num_classes; ++sub) {
    for (int super = sub + 1; super < params.num_classes; ++super) {
      if (coin(params.isa_density)) {
        builder.AddIsa(class_names[sub], class_names[super]);
        for (int a = 0; a < params.num_classes; ++a) {
          if (!closure[a][sub]) {
            continue;
          }
          for (int b = 0; b < params.num_classes; ++b) {
            if (closure[super][b]) {
              closure[a][b] = true;
            }
          }
        }
      }
    }
  }

  auto random_cardinality = [&]() {
    Cardinality cardinality;
    cardinality.min = static_cast<std::uint64_t>(uniform_int(
        0, static_cast<int>(params.max_min_card)));
    if (!coin(params.infinite_max_probability)) {
      cardinality.max =
          cardinality.min + static_cast<std::uint64_t>(uniform_int(
                                0, static_cast<int>(params.max_card_slack)));
    }
    return cardinality;
  };

  for (int r = 0; r < params.num_relationships; ++r) {
    std::string rel_name = "R" + std::to_string(r);
    int arity = uniform_int(params.min_arity, params.max_arity);
    std::vector<std::pair<std::string, std::string>> roles;
    std::vector<int> primaries;
    for (int k = 0; k < arity; ++k) {
      int primary = uniform_int(0, params.num_classes - 1);
      primaries.push_back(primary);
      roles.emplace_back(rel_name + "_U" + std::to_string(k),
                         class_names[primary]);
    }
    builder.AddRelationship(rel_name, roles);
    for (int k = 0; k < arity; ++k) {
      const std::string& role_name = roles[k].first;
      if (coin(params.primary_card_probability)) {
        builder.SetCardinality(class_names[primaries[k]], rel_name, role_name,
                               random_cardinality());
      }
      if (coin(params.refinement_probability)) {
        std::vector<int> subclasses;
        for (int c = 0; c < params.num_classes; ++c) {
          if (c != primaries[k] && closure[c][primaries[k]]) {
            subclasses.push_back(c);
          }
        }
        if (!subclasses.empty()) {
          int chosen = subclasses[uniform_int(
              0, static_cast<int>(subclasses.size()) - 1)];
          builder.SetCardinality(class_names[chosen], rel_name, role_name,
                                 random_cardinality());
        }
      }
    }
  }

  for (int g = 0; g < params.num_disjointness_groups; ++g) {
    std::vector<std::string> group;
    std::vector<int> pool;
    for (int c = 0; c < params.num_classes; ++c) {
      pool.push_back(c);
    }
    for (int pick = 0;
         pick < params.disjointness_group_size && !pool.empty(); ++pick) {
      int index = uniform_int(0, static_cast<int>(pool.size()) - 1);
      group.push_back(class_names[pool[index]]);
      pool.erase(pool.begin() + index);
    }
    if (group.size() >= 2) {
      builder.AddDisjointness(group);
    }
  }

  return builder.Build();
}

}  // namespace crsat
