#ifndef CRSAT_GENERATOR_DETERMINISTIC_H_
#define CRSAT_GENERATOR_DETERMINISTIC_H_

// DeterministicRng moved to src/base/ so that base-layer machinery (the
// failpoint probability schedules in src/base/failpoint.cc) can use it
// without inverting the include layering (base/ may not include
// generator/). This forwarding header keeps every existing generator-,
// oracle- and test-side include working unchanged.
#include "src/base/deterministic.h"

#endif  // CRSAT_GENERATOR_DETERMINISTIC_H_
