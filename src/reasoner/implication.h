#ifndef CRSAT_REASONER_IMPLICATION_H_
#define CRSAT_REASONER_IMPLICATION_H_

#include <cstdint>
#include <optional>

#include "src/base/result.h"
#include "src/cr/schema.h"
#include "src/expansion/expansion.h"

namespace crsat {

/// Decision procedures for logical implication in CR (Section 4): does
/// every finite model of a schema satisfy a given ISA or cardinality
/// statement? All reduce to class-satisfiability checks, exactly as in the
/// paper:
///
///  * `S |= C <= D` iff no acceptable solution makes a compound class
///    containing `C` but not `D` positive;
///  * `S |= minc(C,R,U) = m` iff a fresh subclass `Cexc <= C` constrained
///    by `maxc(Cexc,R,U) = m-1` is unsatisfiable in the extended schema;
///  * `S |= maxc(C,R,U) = n` iff `Cexc` with `minc(Cexc,R,U) = n+1` is
///    unsatisfiable.
class ImplicationChecker {
 public:
  /// True iff every finite model of `schema` satisfies `sub <= super`.
  static Result<bool> ImpliesIsa(const Schema& schema, ClassId sub,
                                 ClassId super,
                                 const ExpansionOptions& options = {});

  /// True iff in every finite model, every instance of `cls` appears in at
  /// least `min` tuples of `rel` at `role`. `cls` must be a subclass of the
  /// role's primary class.
  static Result<bool> ImpliesMinCardinality(
      const Schema& schema, ClassId cls, RelationshipId rel, RoleId role,
      std::uint64_t min, const ExpansionOptions& options = {});

  /// True iff in every finite model, every instance of `cls` appears in at
  /// most `max` tuples of `rel` at `role`.
  static Result<bool> ImpliesMaxCardinality(
      const Schema& schema, ClassId cls, RelationshipId rel, RoleId role,
      std::uint64_t max, const ExpansionOptions& options = {});

  /// The largest implied minimum cardinality for `(cls, rel, role)` — the
  /// tightest lower bound the schema forces, which can be stronger than any
  /// declared bound (the paper's Figure 7 derives minc refinements through
  /// ISA interaction). Requires `cls` to be satisfiable (otherwise every
  /// bound is vacuously implied; an `InvalidArgument` explains this).
  static Result<std::uint64_t> TightestImpliedMin(
      const Schema& schema, ClassId cls, RelationshipId rel, RoleId role,
      const ExpansionOptions& options = {});

  /// The smallest implied maximum cardinality, searching up to
  /// `search_limit`; `nullopt` when no bound up to the limit is implied
  /// (in particular when the true bound is infinity). Requires `cls`
  /// satisfiable, as above.
  static Result<std::optional<std::uint64_t>> TightestImpliedMax(
      const Schema& schema, ClassId cls, RelationshipId rel, RoleId role,
      std::uint64_t search_limit = 64, const ExpansionOptions& options = {});

  /// The complete implied-ISA relation: `result[c][d]` iff
  /// `S |= C_c <= C_d`. Computed from a *single* maximal-acceptable-support
  /// pass: `c <= d` is implied exactly when no supported compound class
  /// contains `c` without `d`. Always a superset of the declared
  /// reflexive-transitive closure; Figure 7's `Speaker <= Discussant` is an
  /// implied-but-undeclared edge, and unsatisfiable classes are vacuously
  /// below every class.
  static Result<std::vector<std::vector<bool>>> ImpliedIsaClosure(
      const Schema& schema, const ExpansionOptions& options = {});

  /// True iff every finite model keeps `a` and `b` disjoint (the Section 5
  /// extension as a *derived* property): no supported compound class
  /// contains both. Implied vacuously when either class is unsatisfiable.
  static Result<bool> ImpliesDisjointness(const Schema& schema, ClassId a,
                                          ClassId b,
                                          const ExpansionOptions& options = {});

  /// True iff in every finite model each instance of `covered` belongs to
  /// some class in `coverers`: no supported compound class contains
  /// `covered` but none of the coverers.
  static Result<bool> ImpliesCovering(const Schema& schema, ClassId covered,
                                      const std::vector<ClassId>& coverers,
                                      const ExpansionOptions& options = {});
};

/// One row of an implied-cardinality report: a legal `(class, relationship,
/// role)` triple with its declared and tightest implied bounds.
struct ImpliedCardinalityRow {
  ClassId cls;
  RelationshipId rel;
  RoleId role;
  Cardinality declared;
  /// Implied bounds; `implied_max` is nullopt when no bound up to the
  /// report's search limit is implied. Absent entirely (see `vacuous`) for
  /// unsatisfiable classes, where every bound holds vacuously.
  std::uint64_t implied_min = 0;
  std::optional<std::uint64_t> implied_max;
  bool vacuous = false;
};

/// Computes, for every legal refinement triple of the schema (every class
/// under every role's primary class), the tightest implied cardinalities —
/// the machine-generated generalization of the paper's Figure 7 table.
/// `search_limit` caps the implied-max search per triple. One
/// `CardinalityImplicationEngine` is built per triple, so cost is
/// O(#triples * log(bound)) satisfiability checks.
Result<std::vector<ImpliedCardinalityRow>> BuildImpliedCardinalityReport(
    const Schema& schema, std::uint64_t search_limit = 16,
    const ExpansionOptions& options = {});

/// Renders a report as an aligned text table.
std::string ImpliedCardinalityReportToString(
    const Schema& schema, const std::vector<ImpliedCardinalityRow>& rows);

}  // namespace crsat

#endif  // CRSAT_REASONER_IMPLICATION_H_
