#include "src/reasoner/satisfiability.h"

#include <utility>

#include "src/base/incremental.h"
#include "src/lp/simplex.h"

namespace crsat {

Result<std::vector<Rational>> MinimalWitnessForSupport(
    const LinearSystem& system, const std::vector<bool>& positive,
    const std::vector<Rational>& fallback, ResourceGuard* guard,
    WarmStartBasis* basis_carry) {
  LinearSystem pinned = system;
  LinearExpr total;
  for (VarId v = 0; v < pinned.num_variables(); ++v) {
    if (positive[v]) {
      LinearExpr at_least_one = LinearExpr::Var(v);
      at_least_one.AddConstant(Rational(-1));
      pinned.AddGe(std::move(at_least_one));
      total.AddTerm(v, Rational(1));
    } else {
      pinned.AddEq(LinearExpr::Var(v));
    }
  }
  SimplexOptions options;
  options.guard = guard;
  WarmStartBasis exported;
  if (basis_carry != nullptr) {
    if (!basis_carry->empty()) {
      options.warm_start = basis_carry;
    }
    options.export_basis = &exported;
  }
  CRSAT_ASSIGN_OR_RETURN(
      LpResult lp,
      SimplexSolver::SolveWith(pinned, total, /*maximize=*/false, options));
  if (lp.outcome != LpOutcome::kOptimal) {
    return fallback;
  }
  if (basis_carry != nullptr && !exported.empty()) {
    *basis_carry = std::move(exported);
  }
  return std::move(lp.values);
}

Result<AcceptableSupport> ComputeAcceptableSupport(
    const LinearSystem& system, const std::vector<Dependency>& dependencies,
    WarmStartBasisCache* probe_cache, ResourceGuard* guard,
    const std::vector<bool>* seed_zero) {
  const int n = system.num_variables();
  std::vector<bool> forced_zero =
      seed_zero != nullptr ? *seed_zero : std::vector<bool>(n, false);
  SupportResult support;
  while (true) {
    // Every iteration sees the shape-keyed cache: later iterations pin
    // more variables (a different probe shape), so they miss the earlier
    // iterations' entries but warm-start within their own shape family —
    // and across calls on similarly-pinned systems.
    CRSAT_ASSIGN_OR_RETURN(
        support,
        ComputeMaximalSupport(system, forced_zero, probe_cache, guard));
    bool changed = false;
    // (a) Variables the LP proves zero under the current pinning are zero
    // in every acceptable solution (every acceptable solution satisfies
    // the pinned system).
    for (VarId v = 0; v < n; ++v) {
      if (!forced_zero[v] && !support.positive[v]) {
        forced_zero[v] = true;
        changed = true;
      }
    }
    // (b) Dependency propagation: a relationship unknown is zero in every
    // acceptable solution once one of its class unknowns is.
    for (const Dependency& dependency : dependencies) {
      if (forced_zero[dependency.dependent]) {
        continue;
      }
      for (VarId source : dependency.depends_on) {
        if (forced_zero[source]) {
          forced_zero[dependency.dependent] = true;
          changed = true;
          break;
        }
      }
    }
    if (!changed) {
      break;
    }
  }
  AcceptableSupport result;
  result.positive = support.positive;
  result.witness = std::move(support.witness);
  return result;
}

SatisfiabilityChecker::SatisfiabilityChecker(
    const Expansion& expansion,
    const std::vector<CardinalityOverride>* overrides)
    : expansion_(&expansion),
      cr_system_(SystemBuilder::Build(expansion, overrides)) {
  for (size_t i = 0; i < expansion.relationships().size(); ++i) {
    const CompoundRelationship& compound = expansion.relationships()[i];
    Dependency dependency;
    dependency.dependent = cr_system_.rel_vars[i];
    for (const CompoundClass& component : compound.components) {
      int class_index = expansion.ClassIndexOf(component);
      dependency.depends_on.push_back(cr_system_.class_vars[class_index]);
    }
    dependencies_.push_back(std::move(dependency));
  }
}

const std::vector<bool>& SatisfiabilityChecker::StructurallyDeadCompounds()
    const {
  if (!dead_compounds_.has_value()) {
    std::vector<bool> dead = cr_system_.empty_class_compounds;
    if (!known_empty_.empty()) {
      for (size_t i = 0; i < expansion_->classes().size(); ++i) {
        if (dead[i]) {
          continue;
        }
        for (ClassId member : expansion_->classes()[i].Members()) {
          if (IsKnownEmpty(member)) {
            dead[i] = true;
            break;
          }
        }
      }
    }
    dead_compounds_ = std::move(dead);
  }
  return *dead_compounds_;
}

Result<AcceptableSupport> SatisfiabilityChecker::Support() const {
  if (!support_.has_value()) {
    // Seed the fixpoint with structurally dead unknowns (and, via one step
    // of dependency propagation, the relationship unknowns touching them)
    // so the LP never spends probe rounds proving them zero. The seeds are
    // sound, so the resulting support is the one the unseeded fixpoint
    // would reach; gated on the incremental toggle purely so the forced
    // cold reference path runs the historical solve sequence.
    std::vector<bool> seed;
    if (IncrementalReasoningEnabled()) {
      const std::vector<bool>& dead = StructurallyDeadCompounds();
      seed.assign(cr_system_.system.num_variables(), false);
      for (size_t i = 0; i < cr_system_.class_vars.size(); ++i) {
        seed[cr_system_.class_vars[i]] = dead[i];
      }
      for (const Dependency& dependency : dependencies_) {
        for (VarId source : dependency.depends_on) {
          if (seed[source]) {
            seed[dependency.dependent] = true;
            break;
          }
        }
      }
    }
    support_ = ComputeAcceptableSupport(cr_system_.system, dependencies_,
                                        probe_cache_,
                                        expansion_->options().guard,
                                        seed.empty() ? nullptr : &seed);
  }
  return *support_;
}

Result<bool> SatisfiabilityChecker::IsClassSatisfiable(ClassId cls) const {
  if (IsKnownEmpty(cls)) {
    return false;  // Structural pre-pass already decided; skip the LP.
  }
  return IsTargetSatisfiable(expansion_->ClassIndicesContaining(cls));
}

Result<std::vector<bool>> SatisfiabilityChecker::SatisfiableClasses() const {
  const int num_classes = expansion_->schema().num_classes();
  // If the structural pre-pass decided every class, skip the LP entirely.
  bool all_known_empty = true;
  for (int c = 0; c < num_classes; ++c) {
    if (!IsKnownEmpty(ClassId(c))) {
      all_known_empty = false;
      break;
    }
  }
  if (all_known_empty) {
    return std::vector<bool>(num_classes, false);
  }
  CRSAT_ASSIGN_OR_RETURN(AcceptableSupport support, Support());
  std::vector<bool> satisfiable(expansion_->schema().num_classes(), false);
  for (int c = 0; c < expansion_->schema().num_classes(); ++c) {
    if (IsKnownEmpty(ClassId(c))) {
      continue;
    }
    for (int class_index : expansion_->ClassIndicesContaining(ClassId(c))) {
      if (support.positive[cr_system_.class_vars[class_index]]) {
        satisfiable[c] = true;
        break;
      }
    }
  }
  return satisfiable;
}

Result<bool> SatisfiabilityChecker::IsTargetSatisfiable(
    const std::vector<int>& target_class_indices) const {
  if (IncrementalReasoningEnabled()) {
    // If every target compound is structurally dead the verdict is already
    // settled — skip the support computation entirely. This is the big win
    // for tight implication probes, where the overridden bound empties
    // every compound containing the probed class.
    const std::vector<bool>& dead = StructurallyDeadCompounds();
    bool all_dead = true;
    for (int class_index : target_class_indices) {
      if (!dead[class_index]) {
        all_dead = false;
        break;
      }
    }
    if (all_dead) {
      return false;
    }
  }
  CRSAT_ASSIGN_OR_RETURN(AcceptableSupport support, Support());
  for (int class_index : target_class_indices) {
    if (support.positive[cr_system_.class_vars[class_index]]) {
      return true;
    }
  }
  return false;
}

Result<IntegerSolution> SatisfiabilityChecker::AcceptableIntegerSolution()
    const {
  CRSAT_ASSIGN_OR_RETURN(AcceptableSupport support, Support());
  // A minimal single-vertex witness keeps the scaled integers (and the
  // models built from them) small; it is automatically acceptable because
  // its support equals the maximal acceptable support.
  CRSAT_ASSIGN_OR_RETURN(
      std::vector<Rational> witness,
      MinimalWitnessForSupport(cr_system_.system, support.positive,
                               support.witness,
                               expansion_->options().guard));
  std::vector<BigInt> integers = ScaleToIntegerSolution(witness);
  IntegerSolution solution;
  for (VarId var : cr_system_.class_vars) {
    solution.class_counts.push_back(integers[var]);
  }
  for (VarId var : cr_system_.rel_vars) {
    solution.rel_counts.push_back(integers[var]);
  }
  return solution;
}

Result<bool> IsTargetSatisfiableByEnumeration(
    const CrSystem& cr_system, const std::vector<Dependency>& dependencies,
    const std::vector<int>& target_class_indices) {
  const size_t num_class_vars = cr_system.class_vars.size();
  if (num_class_vars > 16) {
    return UnavailableError(
        "IsTargetSatisfiableByEnumeration is exponential and capped at 16 "
        "consistent compound classes");
  }
  std::vector<bool> is_target(num_class_vars, false);
  for (int class_index : target_class_indices) {
    is_target[class_index] = true;
  }
  const std::uint64_t subsets = std::uint64_t{1} << num_class_vars;
  for (std::uint64_t z = 0; z < subsets; ++z) {
    // Z = class unknowns pinned to zero (bit set => in Z). The target
    // needs some compound class outside Z.
    bool target_possible = false;
    for (size_t i = 0; i < num_class_vars; ++i) {
      if (is_target[i] && ((z >> i) & 1) == 0) {
        target_possible = true;
        break;
      }
    }
    if (!target_possible) {
      continue;
    }
    LinearSystem candidate = cr_system.system;
    for (size_t i = 0; i < num_class_vars; ++i) {
      VarId var = cr_system.class_vars[i];
      if ((z >> i) & 1) {
        candidate.AddEq(LinearExpr::Var(var));
      } else {
        // Strict positivity; homogeneity makes `>= 1` equivalent.
        LinearExpr expr = LinearExpr::Var(var);
        expr.AddConstant(Rational(-1));
        candidate.AddGe(std::move(expr));
      }
    }
    for (const Dependency& dependency : dependencies) {
      for (VarId source : dependency.depends_on) {
        bool source_in_z = false;
        for (size_t i = 0; i < num_class_vars; ++i) {
          if (cr_system.class_vars[i] == source && ((z >> i) & 1)) {
            source_in_z = true;
            break;
          }
        }
        if (source_in_z) {
          candidate.AddEq(LinearExpr::Var(dependency.dependent));
          break;
        }
      }
    }
    CRSAT_ASSIGN_OR_RETURN(LpResult lp,
                           SimplexSolver::CheckFeasibility(candidate));
    if (lp.outcome == LpOutcome::kOptimal) {
      return true;
    }
  }
  return false;
}

}  // namespace crsat
