#include "src/reasoner/satisfiability.h"

#include <utility>

#include "src/lp/simplex.h"

namespace crsat {

Result<std::vector<Rational>> MinimalWitnessForSupport(
    const LinearSystem& system, const std::vector<bool>& positive,
    const std::vector<Rational>& fallback, ResourceGuard* guard,
    WarmStartBasis* basis_carry) {
  LinearSystem pinned = system;
  LinearExpr total;
  for (VarId v = 0; v < pinned.num_variables(); ++v) {
    if (positive[v]) {
      LinearExpr at_least_one = LinearExpr::Var(v);
      at_least_one.AddConstant(Rational(-1));
      pinned.AddGe(std::move(at_least_one));
      total.AddTerm(v, Rational(1));
    } else {
      pinned.AddEq(LinearExpr::Var(v));
    }
  }
  SimplexOptions options;
  options.guard = guard;
  WarmStartBasis exported;
  if (basis_carry != nullptr) {
    if (!basis_carry->empty()) {
      options.warm_start = basis_carry;
    }
    options.export_basis = &exported;
  }
  CRSAT_ASSIGN_OR_RETURN(
      LpResult lp,
      SimplexSolver::SolveWith(pinned, total, /*maximize=*/false, options));
  if (lp.outcome != LpOutcome::kOptimal) {
    return fallback;
  }
  if (basis_carry != nullptr && !exported.empty()) {
    *basis_carry = std::move(exported);
  }
  return std::move(lp.values);
}

Result<AcceptableSupport> ComputeAcceptableSupport(
    const LinearSystem& system, const std::vector<Dependency>& dependencies,
    WarmStartBasis* probe_carry, ResourceGuard* guard) {
  const int n = system.num_variables();
  std::vector<bool> forced_zero(n, false);
  SupportResult support;
  bool first_iteration = true;
  while (true) {
    // Only the first fixpoint iteration sees the caller's carried basis:
    // later iterations pin more variables, which changes the probe
    // system's shape and would make any carried basis a guaranteed miss.
    CRSAT_ASSIGN_OR_RETURN(
        support, ComputeMaximalSupport(system, forced_zero,
                                       first_iteration ? probe_carry
                                                       : nullptr,
                                       guard));
    first_iteration = false;
    bool changed = false;
    // (a) Variables the LP proves zero under the current pinning are zero
    // in every acceptable solution (every acceptable solution satisfies
    // the pinned system).
    for (VarId v = 0; v < n; ++v) {
      if (!forced_zero[v] && !support.positive[v]) {
        forced_zero[v] = true;
        changed = true;
      }
    }
    // (b) Dependency propagation: a relationship unknown is zero in every
    // acceptable solution once one of its class unknowns is.
    for (const Dependency& dependency : dependencies) {
      if (forced_zero[dependency.dependent]) {
        continue;
      }
      for (VarId source : dependency.depends_on) {
        if (forced_zero[source]) {
          forced_zero[dependency.dependent] = true;
          changed = true;
          break;
        }
      }
    }
    if (!changed) {
      break;
    }
  }
  AcceptableSupport result;
  result.positive = support.positive;
  result.witness = std::move(support.witness);
  return result;
}

SatisfiabilityChecker::SatisfiabilityChecker(
    const Expansion& expansion,
    const std::vector<CardinalityOverride>* overrides)
    : expansion_(&expansion),
      cr_system_(SystemBuilder::Build(expansion, overrides)) {
  for (size_t i = 0; i < expansion.relationships().size(); ++i) {
    const CompoundRelationship& compound = expansion.relationships()[i];
    Dependency dependency;
    dependency.dependent = cr_system_.rel_vars[i];
    for (const CompoundClass& component : compound.components) {
      int class_index = expansion.ClassIndexOf(component);
      dependency.depends_on.push_back(cr_system_.class_vars[class_index]);
    }
    dependencies_.push_back(std::move(dependency));
  }
}

Result<AcceptableSupport> SatisfiabilityChecker::Support() const {
  if (!support_.has_value()) {
    support_ = ComputeAcceptableSupport(cr_system_.system, dependencies_,
                                        probe_carry_,
                                        expansion_->options().guard);
  }
  return *support_;
}

Result<bool> SatisfiabilityChecker::IsClassSatisfiable(ClassId cls) const {
  if (IsKnownEmpty(cls)) {
    return false;  // Structural pre-pass already decided; skip the LP.
  }
  return IsTargetSatisfiable(expansion_->ClassIndicesContaining(cls));
}

Result<std::vector<bool>> SatisfiabilityChecker::SatisfiableClasses() const {
  const int num_classes = expansion_->schema().num_classes();
  // If the structural pre-pass decided every class, skip the LP entirely.
  bool all_known_empty = true;
  for (int c = 0; c < num_classes; ++c) {
    if (!IsKnownEmpty(ClassId(c))) {
      all_known_empty = false;
      break;
    }
  }
  if (all_known_empty) {
    return std::vector<bool>(num_classes, false);
  }
  CRSAT_ASSIGN_OR_RETURN(AcceptableSupport support, Support());
  std::vector<bool> satisfiable(expansion_->schema().num_classes(), false);
  for (int c = 0; c < expansion_->schema().num_classes(); ++c) {
    if (IsKnownEmpty(ClassId(c))) {
      continue;
    }
    for (int class_index : expansion_->ClassIndicesContaining(ClassId(c))) {
      if (support.positive[cr_system_.class_vars[class_index]]) {
        satisfiable[c] = true;
        break;
      }
    }
  }
  return satisfiable;
}

Result<bool> SatisfiabilityChecker::IsTargetSatisfiable(
    const std::vector<int>& target_class_indices) const {
  CRSAT_ASSIGN_OR_RETURN(AcceptableSupport support, Support());
  for (int class_index : target_class_indices) {
    if (support.positive[cr_system_.class_vars[class_index]]) {
      return true;
    }
  }
  return false;
}

Result<IntegerSolution> SatisfiabilityChecker::AcceptableIntegerSolution()
    const {
  CRSAT_ASSIGN_OR_RETURN(AcceptableSupport support, Support());
  // A minimal single-vertex witness keeps the scaled integers (and the
  // models built from them) small; it is automatically acceptable because
  // its support equals the maximal acceptable support.
  CRSAT_ASSIGN_OR_RETURN(
      std::vector<Rational> witness,
      MinimalWitnessForSupport(cr_system_.system, support.positive,
                               support.witness,
                               expansion_->options().guard));
  std::vector<BigInt> integers = ScaleToIntegerSolution(witness);
  IntegerSolution solution;
  for (VarId var : cr_system_.class_vars) {
    solution.class_counts.push_back(integers[var]);
  }
  for (VarId var : cr_system_.rel_vars) {
    solution.rel_counts.push_back(integers[var]);
  }
  return solution;
}

Result<bool> IsTargetSatisfiableByEnumeration(
    const CrSystem& cr_system, const std::vector<Dependency>& dependencies,
    const std::vector<int>& target_class_indices) {
  const size_t num_class_vars = cr_system.class_vars.size();
  if (num_class_vars > 16) {
    return UnavailableError(
        "IsTargetSatisfiableByEnumeration is exponential and capped at 16 "
        "consistent compound classes");
  }
  std::vector<bool> is_target(num_class_vars, false);
  for (int class_index : target_class_indices) {
    is_target[class_index] = true;
  }
  const std::uint64_t subsets = std::uint64_t{1} << num_class_vars;
  for (std::uint64_t z = 0; z < subsets; ++z) {
    // Z = class unknowns pinned to zero (bit set => in Z). The target
    // needs some compound class outside Z.
    bool target_possible = false;
    for (size_t i = 0; i < num_class_vars; ++i) {
      if (is_target[i] && ((z >> i) & 1) == 0) {
        target_possible = true;
        break;
      }
    }
    if (!target_possible) {
      continue;
    }
    LinearSystem candidate = cr_system.system;
    for (size_t i = 0; i < num_class_vars; ++i) {
      VarId var = cr_system.class_vars[i];
      if ((z >> i) & 1) {
        candidate.AddEq(LinearExpr::Var(var));
      } else {
        // Strict positivity; homogeneity makes `>= 1` equivalent.
        LinearExpr expr = LinearExpr::Var(var);
        expr.AddConstant(Rational(-1));
        candidate.AddGe(std::move(expr));
      }
    }
    for (const Dependency& dependency : dependencies) {
      for (VarId source : dependency.depends_on) {
        bool source_in_z = false;
        for (size_t i = 0; i < num_class_vars; ++i) {
          if (cr_system.class_vars[i] == source && ((z >> i) & 1)) {
            source_in_z = true;
            break;
          }
        }
        if (source_in_z) {
          candidate.AddEq(LinearExpr::Var(dependency.dependent));
          break;
        }
      }
    }
    CRSAT_ASSIGN_OR_RETURN(LpResult lp,
                           SimplexSolver::CheckFeasibility(candidate));
    if (lp.outcome == LpOutcome::kOptimal) {
      return true;
    }
  }
  return false;
}

}  // namespace crsat
