#ifndef CRSAT_REASONER_SYSTEM_BUILDER_H_
#define CRSAT_REASONER_SYSTEM_BUILDER_H_

#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/expansion/expansion.h"
#include "src/lp/linear_system.h"

namespace crsat {

/// The system of linear disequations Psi_S associated with a CR-schema
/// (Section 3.2), together with the bookkeeping that ties its unknowns back
/// to the expansion.
///
/// Unknowns exist only for *consistent* compound classes and relationships;
/// inconsistent ones are pinned to zero by Lemma 3.2 (A')/(B') and are
/// simply not materialized. All constraints are homogeneous and non-strict;
/// nonnegativity is carried by the variable flags.
struct CrSystem {
  const Expansion* expansion = nullptr;
  LinearSystem system;
  /// Class unknowns: `class_vars[i]` is the variable of compound class `i`.
  std::vector<VarId> class_vars;
  /// Relationship unknowns, aligned with `Expansion::relationships()`.
  std::vector<VarId> rel_vars;
  /// `empty_class_compounds[i]` iff compound class `i` has an empty lifted
  /// cardinality range (min > max) for some role, under the same overrides
  /// the system was built with. The emitted row pair already forces such an
  /// unknown to zero (`sum >= m*c` and `sum <= n*c` with `n < m` give
  /// `(m-n)*c <= 0`), so the flag adds no information to the LP — it lets
  /// the satisfiability fixpoint pin these unknowns up front instead of
  /// spending a probe round proving each one zero.
  std::vector<bool> empty_class_compounds;

  /// True iff `var` is a relationship unknown.
  bool IsRelationshipVar(VarId var) const {
    return var >= static_cast<VarId>(class_vars.size());
  }

  /// For a relationship unknown, the index of its compound relationship.
  int RelationshipIndexOfVar(VarId var) const {
    return var - static_cast<int>(class_vars.size());
  }
};

/// Builds Psi_S from an expansion (Section 3.2):
///
///   for each relationship R, role U_k with primary class C_k, and
///   consistent compound class Cbar containing C_k:
///     minc(Cbar,R,U_k) = m > 0    =>  sum_{Rbar[U_k]=Cbar} Var(Rbar) >= m*Var(Cbar)
///     maxc(Cbar,R,U_k) = n != inf =>  sum_{Rbar[U_k]=Cbar} Var(Rbar) <= n*Var(Cbar)
///
/// plus implicit `>= 0` on every unknown.
class SystemBuilder {
 public:
  /// Builds the (consistent-only) system used by the reasoner.
  /// `overrides`, when non-null, replace the schema's cardinality
  /// declarations for matching triples (see `CardinalityOverride`).
  static CrSystem Build(
      const Expansion& expansion,
      const std::vector<CardinalityOverride>* overrides = nullptr);

  /// Builds the *presentation* form of Psi_S exactly as the paper's Figure
  /// 5 shows it: unknowns for all compound classes and relationships,
  /// inconsistent ones pinned by explicit `= 0` constraints, with
  /// paper-style unknown names (`c1..c7`, `H_1_3`, ...). Exponential in the
  /// number of classes; intended for small illustrative schemas only.
  static Result<LinearSystem> BuildPresentationSystem(const Schema& schema);
};

}  // namespace crsat

#endif  // CRSAT_REASONER_SYSTEM_BUILDER_H_
