#include "src/reasoner/repair.h"

#include <utility>

#include "src/reasoner/satisfiability.h"

namespace crsat {

namespace {

// Rebuilds `schema` with the cardinality declaration at `decl_index`
// replaced by `replacement` (or removed when nullopt).
Result<Schema> WithCardinalityEdited(
    const Schema& schema, int decl_index,
    const std::optional<Cardinality>& replacement) {
  SchemaBuilder builder;
  for (ClassId cls : schema.AllClasses()) {
    builder.AddClass(schema.ClassName(cls));
  }
  for (RelationshipId rel : schema.AllRelationships()) {
    std::vector<std::pair<std::string, std::string>> roles;
    for (RoleId role : schema.RolesOf(rel)) {
      roles.emplace_back(schema.RoleName(role),
                         schema.ClassName(schema.PrimaryClass(role)));
    }
    builder.AddRelationship(schema.RelationshipName(rel), roles);
  }
  for (const IsaStatement& isa : schema.isa_statements()) {
    builder.AddIsa(schema.ClassName(isa.subclass),
                   schema.ClassName(isa.superclass));
  }
  const auto& declarations = schema.cardinality_declarations();
  for (size_t i = 0; i < declarations.size(); ++i) {
    const CardinalityDeclaration& decl = declarations[i];
    if (static_cast<int>(i) == decl_index) {
      if (replacement.has_value()) {
        builder.SetCardinality(schema.ClassName(decl.cls),
                               schema.RelationshipName(decl.rel),
                               schema.RoleName(decl.role), *replacement);
      }
      continue;
    }
    builder.SetCardinality(schema.ClassName(decl.cls),
                           schema.RelationshipName(decl.rel),
                           schema.RoleName(decl.role), decl.cardinality);
  }
  for (const DisjointnessConstraint& group :
       schema.disjointness_constraints()) {
    std::vector<std::string> names;
    for (ClassId cls : group.classes) {
      names.push_back(schema.ClassName(cls));
    }
    builder.AddDisjointness(names);
  }
  for (const CoveringConstraint& constraint : schema.covering_constraints()) {
    std::vector<std::string> coverers;
    for (ClassId cls : constraint.coverers) {
      coverers.push_back(schema.ClassName(cls));
    }
    builder.AddCovering(schema.ClassName(constraint.covered), coverers);
  }
  return builder.Build();
}

Result<bool> SatisfiableWithEdit(const Schema& schema, ClassId cls,
                                 int decl_index,
                                 const std::optional<Cardinality>& replacement,
                                 const ExpansionOptions& options) {
  CRSAT_ASSIGN_OR_RETURN(Schema edited,
                         WithCardinalityEdited(schema, decl_index,
                                               replacement));
  CRSAT_ASSIGN_OR_RETURN(Expansion expansion,
                         Expansion::Build(edited, options));
  SatisfiabilityChecker checker(expansion);
  return checker.IsClassSatisfiable(cls);
}

std::string DescribeRelax(const Schema& schema,
                          const CardinalityDeclaration& decl,
                          const Cardinality& relaxed) {
  return "relax card " + schema.ClassName(decl.cls) + " in " +
         schema.RelationshipName(decl.rel) + "." +
         schema.RoleName(decl.role) + " = " + decl.cardinality.ToString() +
         " to " + relaxed.ToString();
}

// Largest lowered `min` that restores satisfiability, if any (monotone:
// lowering `min` only adds models).
Result<std::optional<Cardinality>> SearchRelaxedMin(
    const Schema& schema, ClassId cls, int decl_index,
    const CardinalityDeclaration& decl, const ExpansionOptions& options) {
  if (decl.cardinality.min == 0) {
    return std::optional<Cardinality>();
  }
  Cardinality fully_relaxed = decl.cardinality;
  fully_relaxed.min = 0;
  CRSAT_ASSIGN_OR_RETURN(
      bool works_at_zero,
      SatisfiableWithEdit(schema, cls, decl_index, fully_relaxed, options));
  if (!works_at_zero) {
    return std::optional<Cardinality>();
  }
  std::uint64_t low = 0;                        // Known to work.
  std::uint64_t high = decl.cardinality.min;    // Known to fail (original).
  while (high - low > 1) {
    std::uint64_t mid = low + (high - low) / 2;
    Cardinality candidate = decl.cardinality;
    candidate.min = mid;
    CRSAT_ASSIGN_OR_RETURN(
        bool works,
        SatisfiableWithEdit(schema, cls, decl_index, candidate, options));
    if (works) {
      low = mid;
    } else {
      high = mid;
    }
  }
  Cardinality relaxed = decl.cardinality;
  relaxed.min = low;
  return std::optional<Cardinality>(relaxed);
}

// Smallest raised `max` that restores satisfiability, if any. Tries
// infinity first (monotone), then gallops/bisects for the least raise.
Result<std::optional<Cardinality>> SearchRelaxedMax(
    const Schema& schema, ClassId cls, int decl_index,
    const CardinalityDeclaration& decl, const ExpansionOptions& options) {
  if (!decl.cardinality.max.has_value()) {
    return std::optional<Cardinality>();
  }
  Cardinality unbounded = decl.cardinality;
  unbounded.max.reset();
  CRSAT_ASSIGN_OR_RETURN(
      bool works_unbounded,
      SatisfiableWithEdit(schema, cls, decl_index, unbounded, options));
  if (!works_unbounded) {
    return std::optional<Cardinality>();
  }
  // Gallop for a finite raised bound that works.
  std::uint64_t original = *decl.cardinality.max;
  std::uint64_t step = 1;
  std::uint64_t low = original;  // Known to fail.
  std::optional<std::uint64_t> high;
  constexpr std::uint64_t kFiniteSearchCap = 1 << 16;
  while (original + step <= kFiniteSearchCap) {
    Cardinality candidate = decl.cardinality;
    candidate.max = original + step;
    CRSAT_ASSIGN_OR_RETURN(
        bool works,
        SatisfiableWithEdit(schema, cls, decl_index, candidate, options));
    if (works) {
      high = original + step;
      break;
    }
    low = original + step;
    step *= 2;
  }
  if (!high.has_value()) {
    return std::optional<Cardinality>(unbounded);  // Only infinity works.
  }
  while (*high - low > 1) {
    std::uint64_t mid = low + (*high - low) / 2;
    Cardinality candidate = decl.cardinality;
    candidate.max = mid;
    CRSAT_ASSIGN_OR_RETURN(
        bool works,
        SatisfiableWithEdit(schema, cls, decl_index, candidate, options));
    if (works) {
      high = mid;
    } else {
      low = mid;
    }
  }
  Cardinality relaxed = decl.cardinality;
  relaxed.max = high;
  return std::optional<Cardinality>(relaxed);
}

}  // namespace

Result<std::vector<RepairSuggestion>> SuggestRepairs(
    const Schema& schema, ClassId cls, const ExpansionOptions& options) {
  CRSAT_ASSIGN_OR_RETURN(UnsatCore core,
                         MinimizeUnsatCore(schema, cls, options));
  std::vector<RepairSuggestion> suggestions;
  for (const CoreConstraint& constraint : core.constraints) {
    if (constraint.kind != CoreConstraint::Kind::kCardinality) {
      RepairSuggestion suggestion;
      suggestion.constraint = constraint;
      suggestion.action = RepairSuggestion::Action::kRemove;
      suggestion.description = "remove " + constraint.description;
      suggestions.push_back(std::move(suggestion));
      continue;
    }
    const CardinalityDeclaration& decl =
        schema.cardinality_declarations()[constraint.index];
    CRSAT_ASSIGN_OR_RETURN(
        std::optional<Cardinality> relaxed_min,
        SearchRelaxedMin(schema, cls, constraint.index, decl, options));
    if (relaxed_min.has_value()) {
      RepairSuggestion suggestion;
      suggestion.constraint = constraint;
      suggestion.action = RepairSuggestion::Action::kRelaxMin;
      suggestion.relaxed = relaxed_min;
      suggestion.description = DescribeRelax(schema, decl, *relaxed_min);
      suggestions.push_back(std::move(suggestion));
    }
    CRSAT_ASSIGN_OR_RETURN(
        std::optional<Cardinality> relaxed_max,
        SearchRelaxedMax(schema, cls, constraint.index, decl, options));
    if (relaxed_max.has_value()) {
      RepairSuggestion suggestion;
      suggestion.constraint = constraint;
      suggestion.action = RepairSuggestion::Action::kRelaxMax;
      suggestion.relaxed = relaxed_max;
      suggestion.description = DescribeRelax(schema, decl, *relaxed_max);
      suggestions.push_back(std::move(suggestion));
    }
    if (!relaxed_min.has_value() && !relaxed_max.has_value()) {
      // No single-bound relaxation helps; fall back to removal (which
      // works by core minimality).
      RepairSuggestion suggestion;
      suggestion.constraint = constraint;
      suggestion.action = RepairSuggestion::Action::kRemove;
      suggestion.description = "remove " + constraint.description;
      suggestions.push_back(std::move(suggestion));
    }
  }
  return suggestions;
}

}  // namespace crsat
