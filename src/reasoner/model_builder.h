#ifndef CRSAT_REASONER_MODEL_BUILDER_H_
#define CRSAT_REASONER_MODEL_BUILDER_H_

#include <cstdint>

#include "src/base/result.h"
#include "src/cr/interpretation.h"
#include "src/expansion/expansion.h"
#include "src/reasoner/satisfiability.h"

namespace crsat {

/// Options controlling model materialization.
struct ModelBuildOptions {
  /// How many times the solution may be doubled when tuple-distinctness
  /// cannot be realized at the current scale (solutions of the homogeneous
  /// system are closed under positive scaling).
  int max_scaling_attempts = 8;
  /// Refuse to materialize models larger than this many individuals plus
  /// tuples (the decision procedure never needs materialization; this is a
  /// safety valve for the constructive API).
  std::uint64_t max_model_size = 1000000;
};

/// Constructs an actual finite database state from an acceptable
/// nonnegative integer solution of Psi_S — the constructive half of the
/// paper's completeness argument (Section 3.3, Figure 6).
///
/// For each consistent compound class with count `t`, `t` fresh individuals
/// are created and added to the member classes' extensions. Tuples of each
/// compound relationship draw their role fillers round-robin from a global
/// per-(relationship, role, compound class) rotation, which keeps every
/// individual's tuple count within the lifted `[minc, maxc]` window.
/// Relationship extensions are sets, so tuples within one compound
/// relationship must also be pairwise distinct; when round-robin collides,
/// the builder re-realizes that compound relationship coordinate by
/// coordinate using a min-congestion max-flow assignment, and as a last
/// resort doubles the whole solution and retries. The result is always
/// verified against `ModelChecker` before being returned.
class ModelBuilder {
 public:
  /// Materializes a model realizing `solution` (possibly scaled up).
  /// Fails with `Unavailable` when the retry budget or size cap is
  /// exhausted, and `InvalidArgument` when `solution` is not acceptable
  /// (a populated compound relationship with an empty component).
  static Result<Interpretation> BuildModel(
      const Expansion& expansion, const IntegerSolution& solution,
      const ModelBuildOptions& options = {});

  /// Convenience: checks satisfiability of `cls` and materializes a model
  /// with a nonempty extension for it.
  static Result<Interpretation> BuildModelForClass(
      const SatisfiabilityChecker& checker, ClassId cls,
      const ModelBuildOptions& options = {});
};

}  // namespace crsat

#endif  // CRSAT_REASONER_MODEL_BUILDER_H_
