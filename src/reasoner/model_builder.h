#ifndef CRSAT_REASONER_MODEL_BUILDER_H_
#define CRSAT_REASONER_MODEL_BUILDER_H_

#include <cstdint>

#include "src/base/result.h"
#include "src/cr/interpretation.h"
#include "src/expansion/expansion.h"
#include "src/reasoner/satisfiability.h"

namespace crsat {

/// Options controlling model materialization.
struct ModelBuildOptions {
  /// How many times the solution may be doubled when tuple-distinctness
  /// cannot be realized at the current scale (solutions of the homogeneous
  /// system are closed under positive scaling).
  int max_scaling_attempts = 8;
  /// Refuse to materialize models larger than this many individuals plus
  /// tuples (the decision procedure never needs materialization; this is a
  /// safety valve for the constructive API).
  std::uint64_t max_model_size = 1000000;
};

/// Constructs an actual finite database state from an acceptable
/// nonnegative integer solution of Psi_S — the constructive half of the
/// paper's completeness argument (Section 3.3, Figure 6).
///
/// This is a thin compatibility facade over the staged witness pipeline in
/// src/witness/ (`WitnessSynthesizer`): tuple assignment distributes role
/// fillers round-robin, falls back to a min-congestion max-flow per
/// compound relationship when round-robin collides, doubles the solution
/// as a last resort, and every result is `ModelChecker`-certified before
/// it is returned. Use `WitnessSynthesizer` directly for synthesis stats,
/// resource-guard plumbing, and warm-started repeated synthesis.
class ModelBuilder {
 public:
  /// Materializes a model realizing `solution` (possibly scaled up).
  /// Fails with `Unavailable` when the retry budget or size cap is
  /// exhausted, and `InvalidArgument` when `solution` is not acceptable
  /// (a populated compound relationship with an empty component).
  static Result<Interpretation> BuildModel(
      const Expansion& expansion, const IntegerSolution& solution,
      const ModelBuildOptions& options = {});

  /// Convenience: checks satisfiability of `cls` and materializes a model
  /// with a nonempty extension for it.
  static Result<Interpretation> BuildModelForClass(
      const SatisfiabilityChecker& checker, ClassId cls,
      const ModelBuildOptions& options = {});
};

}  // namespace crsat

#endif  // CRSAT_REASONER_MODEL_BUILDER_H_
