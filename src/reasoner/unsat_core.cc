#include "src/reasoner/unsat_core.h"

#include <utility>

#include "src/reasoner/satisfiability.h"

namespace crsat {

namespace {

// Rebuilds `schema` keeping only the constraints flagged in `active`
// (indexed like `units`); classes and relationships are always kept.
Result<Schema> RebuildWithConstraints(const Schema& schema,
                                      const std::vector<CoreConstraint>& units,
                                      const std::vector<bool>& active) {
  SchemaBuilder builder;
  for (ClassId cls : schema.AllClasses()) {
    builder.AddClass(schema.ClassName(cls));
  }
  for (RelationshipId rel : schema.AllRelationships()) {
    std::vector<std::pair<std::string, std::string>> roles;
    for (RoleId role : schema.RolesOf(rel)) {
      roles.emplace_back(schema.RoleName(role),
                         schema.ClassName(schema.PrimaryClass(role)));
    }
    builder.AddRelationship(schema.RelationshipName(rel), roles);
  }
  // ISA closure under the *kept* ISA statements: dropping an ISA statement
  // can strip a kept cardinality refinement of its legality (the class is
  // no longer a subclass of the role's primary class); such refinements are
  // dropped along with it, mirroring what a designer deleting the ISA edge
  // would have to do.
  const int n = schema.num_classes();
  std::vector<std::vector<bool>> closure(n, std::vector<bool>(n, false));
  for (int c = 0; c < n; ++c) {
    closure[c][c] = true;
  }
  for (size_t i = 0; i < units.size(); ++i) {
    if (active[i] && units[i].kind == CoreConstraint::Kind::kIsa) {
      const IsaStatement& isa = schema.isa_statements()[units[i].index];
      closure[isa.subclass.value][isa.superclass.value] = true;
    }
  }
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      if (!closure[i][k]) {
        continue;
      }
      for (int j = 0; j < n; ++j) {
        if (closure[k][j]) {
          closure[i][j] = true;
        }
      }
    }
  }

  for (size_t i = 0; i < units.size(); ++i) {
    if (!active[i]) {
      continue;
    }
    const CoreConstraint& unit = units[i];
    switch (unit.kind) {
      case CoreConstraint::Kind::kIsa: {
        const IsaStatement& isa = schema.isa_statements()[unit.index];
        builder.AddIsa(schema.ClassName(isa.subclass),
                       schema.ClassName(isa.superclass));
        break;
      }
      case CoreConstraint::Kind::kCardinality: {
        const CardinalityDeclaration& decl =
            schema.cardinality_declarations()[unit.index];
        ClassId primary = schema.PrimaryClass(decl.role);
        if (!closure[decl.cls.value][primary.value]) {
          break;  // Refinement lost its legality; drop it.
        }
        builder.SetCardinality(schema.ClassName(decl.cls),
                               schema.RelationshipName(decl.rel),
                               schema.RoleName(decl.role), decl.cardinality);
        break;
      }
      case CoreConstraint::Kind::kDisjointness: {
        const DisjointnessConstraint& group =
            schema.disjointness_constraints()[unit.index];
        std::vector<std::string> names;
        for (ClassId cls : group.classes) {
          names.push_back(schema.ClassName(cls));
        }
        builder.AddDisjointness(names);
        break;
      }
      case CoreConstraint::Kind::kCovering: {
        const CoveringConstraint& constraint =
            schema.covering_constraints()[unit.index];
        std::vector<std::string> coverers;
        for (ClassId cls : constraint.coverers) {
          coverers.push_back(schema.ClassName(cls));
        }
        builder.AddCovering(schema.ClassName(constraint.covered), coverers);
        break;
      }
    }
  }
  return builder.Build();
}

// Caveat: dropping a cardinality declaration on a *subclass* can only relax
// the schema (declarations are refinements), and dropping any other
// constraint enlarges the model set as well, so deletion is monotone and
// the deletion-based sweep yields a subset-minimal core.
Result<bool> ClassSatisfiableIn(const Schema& schema, ClassId cls,
                                const ExpansionOptions& options) {
  CRSAT_ASSIGN_OR_RETURN(Expansion expansion,
                         Expansion::Build(schema, options));
  SatisfiabilityChecker checker(expansion);
  return checker.IsClassSatisfiable(cls);
}

std::string DescribeIsa(const Schema& schema, const IsaStatement& isa) {
  return "isa " + schema.ClassName(isa.subclass) + " < " +
         schema.ClassName(isa.superclass);
}

std::string DescribeCardinality(const Schema& schema,
                                const CardinalityDeclaration& decl) {
  return "card " + schema.ClassName(decl.cls) + " in " +
         schema.RelationshipName(decl.rel) + "." +
         schema.RoleName(decl.role) + " = " + decl.cardinality.ToString();
}

std::string DescribeDisjointness(const Schema& schema,
                                 const DisjointnessConstraint& group) {
  std::string text = "disjoint ";
  for (size_t i = 0; i < group.classes.size(); ++i) {
    if (i > 0) {
      text += ", ";
    }
    text += schema.ClassName(group.classes[i]);
  }
  return text;
}

std::string DescribeCovering(const Schema& schema,
                             const CoveringConstraint& constraint) {
  std::string text = "cover " + schema.ClassName(constraint.covered) + " by ";
  for (size_t i = 0; i < constraint.coverers.size(); ++i) {
    if (i > 0) {
      text += ", ";
    }
    text += schema.ClassName(constraint.coverers[i]);
  }
  return text;
}

}  // namespace

Result<UnsatCore> MinimizeUnsatCore(const Schema& schema, ClassId cls,
                                    const ExpansionOptions& options) {
  CRSAT_ASSIGN_OR_RETURN(bool satisfiable,
                         ClassSatisfiableIn(schema, cls, options));
  if (satisfiable) {
    return InvalidArgumentError("class '" + schema.ClassName(cls) +
                                "' is satisfiable; there is no unsat core");
  }

  std::vector<CoreConstraint> units;
  for (size_t i = 0; i < schema.isa_statements().size(); ++i) {
    units.push_back(CoreConstraint{
        CoreConstraint::Kind::kIsa, static_cast<int>(i),
        DescribeIsa(schema, schema.isa_statements()[i])});
  }
  for (size_t i = 0; i < schema.cardinality_declarations().size(); ++i) {
    units.push_back(CoreConstraint{
        CoreConstraint::Kind::kCardinality, static_cast<int>(i),
        DescribeCardinality(schema, schema.cardinality_declarations()[i])});
  }
  for (size_t i = 0; i < schema.disjointness_constraints().size(); ++i) {
    units.push_back(CoreConstraint{
        CoreConstraint::Kind::kDisjointness, static_cast<int>(i),
        DescribeDisjointness(schema, schema.disjointness_constraints()[i])});
  }
  for (size_t i = 0; i < schema.covering_constraints().size(); ++i) {
    units.push_back(CoreConstraint{
        CoreConstraint::Kind::kCovering, static_cast<int>(i),
        DescribeCovering(schema, schema.covering_constraints()[i])});
  }

  std::vector<bool> active(units.size(), true);
  for (size_t i = 0; i < units.size(); ++i) {
    active[i] = false;
    CRSAT_ASSIGN_OR_RETURN(Schema reduced,
                           RebuildWithConstraints(schema, units, active));
    CRSAT_ASSIGN_OR_RETURN(bool now_satisfiable,
                           ClassSatisfiableIn(reduced, cls, options));
    if (now_satisfiable) {
      active[i] = true;  // Needed: keep it in the core.
    }
  }

  UnsatCore core;
  for (size_t i = 0; i < units.size(); ++i) {
    if (active[i]) {
      core.constraints.push_back(units[i]);
    }
  }
  return core;
}

}  // namespace crsat
