#ifndef CRSAT_REASONER_REPAIR_H_
#define CRSAT_REASONER_REPAIR_H_

#include <optional>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/cr/schema.h"
#include "src/expansion/expansion.h"
#include "src/reasoner/unsat_core.h"

namespace crsat {

/// One way to make an unsatisfiable class satisfiable again by editing a
/// single constraint from its unsat core.
struct RepairSuggestion {
  enum class Action {
    /// Drop the constraint entirely (the only option for ISA,
    /// disjointness, and covering constraints).
    kRemove,
    /// Lower a cardinality declaration's `min` to `relaxed`.
    kRelaxMin,
    /// Raise a cardinality declaration's `max` to `relaxed` (or infinity).
    kRelaxMax,
  };

  /// The core constraint being edited.
  CoreConstraint constraint;
  Action action;
  /// The *least* relaxed replacement bound that restores satisfiability
  /// (present for kRelaxMin / kRelaxMax).
  std::optional<Cardinality> relaxed;
  /// Human-readable, e.g.
  /// "relax card C in R.V1 = (2, *) to (1, *)".
  std::string description;
};

/// Computes repair suggestions for an unsatisfiable class: the minimal
/// unsatisfiable core is extracted first (`MinimizeUnsatCore`), and then
/// for every core constraint the *smallest* single edit that restores the
/// class is searched — the largest still-working lowered `min` and the
/// smallest raised `max` for cardinality declarations (satisfiability is
/// monotone in each direction, so bisection applies), and plain removal
/// otherwise. This realizes the Section 5 "schema debugging" programme:
/// not just *why* the class is empty, but the nearest schemas in which it
/// is not.
///
/// Fails with `InvalidArgument` when `cls` is satisfiable.
Result<std::vector<RepairSuggestion>> SuggestRepairs(
    const Schema& schema, ClassId cls, const ExpansionOptions& options = {});

}  // namespace crsat

#endif  // CRSAT_REASONER_REPAIR_H_
