#ifndef CRSAT_REASONER_IMPLICATION_ENGINE_H_
#define CRSAT_REASONER_IMPLICATION_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/base/mutex.h"
#include "src/base/result.h"
#include "src/cr/schema.h"
#include "src/expansion/expansion.h"
#include "src/lp/simplex.h"

namespace crsat {

/// Process-wide counters for the probe-layer memoization. Same policy as
/// `SimplexStats`: relaxed atomics, exact totals, `Reset()` must not race
/// with running queries.
struct ImplicationStats {
  /// Dominance-cache consultations by `ImpliesMin`/`ImpliesMax` probes
  /// (only counted while `IncrementalReasoningEnabled()`).
  std::atomic<std::uint64_t> dominance_lookups{0};
  /// Subset of `dominance_lookups` answered without an LP solve.
  std::atomic<std::uint64_t> dominance_hits{0};

  /// Zeroes every counter.
  void Reset();
};

/// Returns a mutable reference to the process-wide probe-layer counters.
ImplicationStats& GetImplicationStats();

/// Monotone memo over one triple's probed bounds, exploiting the dominance
/// lattice of cardinality implication: implied-min bounds are downward
/// closed (if `minc >= m` is implied, so is every `m' <= m`) and
/// implied-max bounds are upward closed — so each refutation is likewise
/// monotone on the opposite side (a refuted `minc >= m` refutes every
/// `m' >= m`; a refuted `maxc <= n` refutes every `n' <= n`). Four stored
/// frontiers answer every dominated query without an LP solve. Recorded
/// facts must be sound (true implication verdicts, or declared-bound seeds
/// that hold in every model): then the cache is schedule-independent —
/// whichever concurrent probe records first, every answer equals the LP's.
/// Thread-safe; `CheckAllPartial` probes share one instance.
class BoundDominanceCache {
 public:
  /// The cached verdict for `S |= minc = min`, or nullopt if undominated.
  std::optional<bool> LookupMin(std::uint64_t min);
  /// Records an LP verdict for `minc = min`.
  void RecordMin(std::uint64_t min, bool implied);
  /// The cached verdict for `S |= maxc = max`, or nullopt if undominated.
  std::optional<bool> LookupMax(std::uint64_t max);
  /// Records an LP verdict for `maxc = max`.
  void RecordMax(std::uint64_t max, bool implied);

 private:
  Mutex mutex_;
  // Frontiers; the gaps between them are the undecided band.
  std::uint64_t greatest_implied_min_ CRSAT_GUARDED_BY(mutex_) = 0;
  std::optional<std::uint64_t> least_refuted_min_ CRSAT_GUARDED_BY(mutex_);
  std::optional<std::uint64_t> least_implied_max_ CRSAT_GUARDED_BY(mutex_);
  std::optional<std::uint64_t> greatest_refuted_max_ CRSAT_GUARDED_BY(mutex_);
};

/// One cardinality-implication question against an engine's triple: does
/// the schema imply `minc = bound` (kMin) or `maxc = bound` (kMax)?
struct ImplicationQuery {
  enum class Kind { kMin, kMax };
  Kind kind = Kind::kMin;
  std::uint64_t bound = 0;
};

/// Per-query answer of `CheckAllPartial`: a definite verdict, or `kUnknown`
/// when a resource limit stopped that query's probe before it finished.
struct ImplicationVerdict {
  enum class Outcome { kImplied, kNotImplied, kUnknown };
  Outcome outcome = Outcome::kUnknown;
  /// For `kUnknown`, the limit that interfered (`kDeadlineExceeded`,
  /// `kResourceExhausted`, or `kCancelled`); `kOk` for definite verdicts.
  StatusCode reason = StatusCode::kOk;

  bool known() const { return outcome != Outcome::kUnknown; }
  bool implied() const { return outcome == Outcome::kImplied; }
};

/// Answers repeated cardinality-implication questions for one
/// `(class, relationship, role)` triple.
///
/// The paper's Section 4 reduction adds a fresh subclass `Cexc <= cls`
/// carrying the candidate bound and asks whether `Cexc` is satisfiable.
/// The expensive part — building the expansion of the extended schema —
/// does not depend on the candidate bound at all (compound-class
/// consistency only looks at ISA/disjointness/covering), so this engine
/// builds the extended schema and its expansion *once* and re-derives only
/// the (cheap) disequation system per probe, via `CardinalityOverride`.
/// Gallop/bisection queries (`ImplicationChecker::TightestImplied{Min,Max}`)
/// and repair search go through here.
class CardinalityImplicationEngine {
 public:
  /// Validates the triple (role must belong to `rel`, `cls` must be a
  /// subclass of the role's primary class) and builds the extended
  /// expansion. The schema is copied; the engine is self-contained.
  static Result<CardinalityImplicationEngine> Create(
      const Schema& schema, ClassId cls, RelationshipId rel, RoleId role,
      const ExpansionOptions& options = {});

  /// True iff `S |= minc(cls, rel, role) = min`.
  Result<bool> ImpliesMin(std::uint64_t min) const;

  /// True iff `S |= maxc(cls, rel, role) = max`.
  Result<bool> ImpliesMax(std::uint64_t max) const;

  /// Batched form: answers every query, fanning the (mutually independent)
  /// satisfiability probes across the global thread pool. Each probe
  /// re-derives only the cheap disequation system against the shared
  /// expansion, so the batch scales near-linearly with cores. Verdicts are
  /// returned in query order and are identical to issuing the queries
  /// serially; on any probe error the first error (in query order) is
  /// returned.
  Result<std::vector<bool>> CheckAll(
      const std::vector<ImplicationQuery>& queries) const;

  /// Resource-aware batched form. Like `CheckAll`, but when the engine's
  /// expansion carries a `ResourceGuard` (see `ExpansionOptions::guard`)
  /// and it trips mid-batch, the call *succeeds* and reports per-query
  /// verdicts: queries whose probes finished before the trip keep their
  /// definite answers; unfinished ones come back `kUnknown` with the
  /// tripped limit as `reason`. Genuine (non-resource) probe errors still
  /// fail the whole call with the first error in query order. Definite
  /// verdicts are identical to `CheckAll`'s at any thread count.
  Result<std::vector<ImplicationVerdict>> CheckAllPartial(
      const std::vector<ImplicationQuery>& queries) const;

  /// True iff `cls` itself is satisfiable in the base schema (bounds are
  /// vacuously implied otherwise).
  Result<bool> IsBaseClassSatisfiable() const;

  /// Largest implied minimum (see `ImplicationChecker::TightestImpliedMin`;
  /// requires a satisfiable class).
  Result<std::uint64_t> TightestMin() const;

  /// Smallest implied maximum up to `search_limit`, or nullopt.
  Result<std::optional<std::uint64_t>> TightestMax(
      std::uint64_t search_limit = 64) const;

 private:
  CardinalityImplicationEngine() = default;

  // Satisfiability of Cexc under an override bound on it. `cache` threads
  // warm-start bases between probes: successive probes alternate between a
  // handful of system shapes (only the overridden bound's coefficients
  // change within a shape), so a previous probe's optimal basis is reused
  // as-is or dual-repaired instead of a cold phase 1. Serial queries pass
  // `&carry_cache_`; `CheckAll` gives each concurrent probe a private copy
  // of the current cache so verdicts stay independent of scheduling.
  Result<bool> AuxiliarySatisfiableWith(Cardinality cardinality,
                                        WarmStartBasisCache* cache) const;

  Result<bool> ImpliesMinWith(std::uint64_t min,
                              WarmStartBasisCache* cache) const;
  Result<bool> ImpliesMaxWith(std::uint64_t max,
                              WarmStartBasisCache* cache) const;

  // The extended schema and its expansion; unique_ptr keeps the expansion's
  // schema pointer stable across moves.
  std::shared_ptr<const Schema> extended_schema_;
  std::shared_ptr<const Expansion> expansion_;
  ClassId aux_class_;
  ClassId base_class_;
  RelationshipId rel_;
  RoleId role_;
  std::vector<int> aux_targets_;   // Compound classes containing Cexc.
  std::vector<int> base_targets_;  // Compound classes containing cls.
  // Warm-start bases carried across this engine's serial probes (gallop /
  // bisection). Queries on one engine are not safe to issue concurrently
  // from outside — use `CheckAll` for that; it snapshots this cache.
  mutable WarmStartBasisCache carry_cache_;
  // The triple's dominance memo, shared by serial and batched probes
  // (thread-safe; behind unique_ptr so the engine stays movable). Seeded
  // in `Create` from the declared bounds of `cls`'s superclasses — sound,
  // since declared constraints hold in every model. Consulted only while
  // `IncrementalReasoningEnabled()`.
  std::unique_ptr<BoundDominanceCache> dominance_;
};

}  // namespace crsat

#endif  // CRSAT_REASONER_IMPLICATION_ENGINE_H_
