#ifndef CRSAT_REASONER_IMPLICATION_ENGINE_H_
#define CRSAT_REASONER_IMPLICATION_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/base/result.h"
#include "src/cr/schema.h"
#include "src/expansion/expansion.h"
#include "src/lp/simplex.h"

namespace crsat {

/// One cardinality-implication question against an engine's triple: does
/// the schema imply `minc = bound` (kMin) or `maxc = bound` (kMax)?
struct ImplicationQuery {
  enum class Kind { kMin, kMax };
  Kind kind = Kind::kMin;
  std::uint64_t bound = 0;
};

/// Per-query answer of `CheckAllPartial`: a definite verdict, or `kUnknown`
/// when a resource limit stopped that query's probe before it finished.
struct ImplicationVerdict {
  enum class Outcome { kImplied, kNotImplied, kUnknown };
  Outcome outcome = Outcome::kUnknown;
  /// For `kUnknown`, the limit that interfered (`kDeadlineExceeded`,
  /// `kResourceExhausted`, or `kCancelled`); `kOk` for definite verdicts.
  StatusCode reason = StatusCode::kOk;

  bool known() const { return outcome != Outcome::kUnknown; }
  bool implied() const { return outcome == Outcome::kImplied; }
};

/// Answers repeated cardinality-implication questions for one
/// `(class, relationship, role)` triple.
///
/// The paper's Section 4 reduction adds a fresh subclass `Cexc <= cls`
/// carrying the candidate bound and asks whether `Cexc` is satisfiable.
/// The expensive part — building the expansion of the extended schema —
/// does not depend on the candidate bound at all (compound-class
/// consistency only looks at ISA/disjointness/covering), so this engine
/// builds the extended schema and its expansion *once* and re-derives only
/// the (cheap) disequation system per probe, via `CardinalityOverride`.
/// Gallop/bisection queries (`ImplicationChecker::TightestImplied{Min,Max}`)
/// and repair search go through here.
class CardinalityImplicationEngine {
 public:
  /// Validates the triple (role must belong to `rel`, `cls` must be a
  /// subclass of the role's primary class) and builds the extended
  /// expansion. The schema is copied; the engine is self-contained.
  static Result<CardinalityImplicationEngine> Create(
      const Schema& schema, ClassId cls, RelationshipId rel, RoleId role,
      const ExpansionOptions& options = {});

  /// True iff `S |= minc(cls, rel, role) = min`.
  Result<bool> ImpliesMin(std::uint64_t min) const;

  /// True iff `S |= maxc(cls, rel, role) = max`.
  Result<bool> ImpliesMax(std::uint64_t max) const;

  /// Batched form: answers every query, fanning the (mutually independent)
  /// satisfiability probes across the global thread pool. Each probe
  /// re-derives only the cheap disequation system against the shared
  /// expansion, so the batch scales near-linearly with cores. Verdicts are
  /// returned in query order and are identical to issuing the queries
  /// serially; on any probe error the first error (in query order) is
  /// returned.
  Result<std::vector<bool>> CheckAll(
      const std::vector<ImplicationQuery>& queries) const;

  /// Resource-aware batched form. Like `CheckAll`, but when the engine's
  /// expansion carries a `ResourceGuard` (see `ExpansionOptions::guard`)
  /// and it trips mid-batch, the call *succeeds* and reports per-query
  /// verdicts: queries whose probes finished before the trip keep their
  /// definite answers; unfinished ones come back `kUnknown` with the
  /// tripped limit as `reason`. Genuine (non-resource) probe errors still
  /// fail the whole call with the first error in query order. Definite
  /// verdicts are identical to `CheckAll`'s at any thread count.
  Result<std::vector<ImplicationVerdict>> CheckAllPartial(
      const std::vector<ImplicationQuery>& queries) const;

  /// True iff `cls` itself is satisfiable in the base schema (bounds are
  /// vacuously implied otherwise).
  Result<bool> IsBaseClassSatisfiable() const;

  /// Largest implied minimum (see `ImplicationChecker::TightestImpliedMin`;
  /// requires a satisfiable class).
  Result<std::uint64_t> TightestMin() const;

  /// Smallest implied maximum up to `search_limit`, or nullopt.
  Result<std::optional<std::uint64_t>> TightestMax(
      std::uint64_t search_limit = 64) const;

 private:
  CardinalityImplicationEngine() = default;

  // Satisfiability of Cexc under an override bound on it. `carry` threads
  // a warm-start basis between probes: every probe solves a system of the
  // same shape (only the overridden bound's coefficients change), so a
  // previous probe's optimal basis frequently remains feasible and skips
  // phase 1. Serial queries pass `&carry_`; `CheckAll` gives each
  // concurrent probe a private copy of the current carry so verdicts stay
  // independent of scheduling.
  Result<bool> AuxiliarySatisfiableWith(Cardinality cardinality,
                                        WarmStartBasis* carry) const;

  Result<bool> ImpliesMinWith(std::uint64_t min, WarmStartBasis* carry) const;
  Result<bool> ImpliesMaxWith(std::uint64_t max, WarmStartBasis* carry) const;

  // The extended schema and its expansion; unique_ptr keeps the expansion's
  // schema pointer stable across moves.
  std::shared_ptr<const Schema> extended_schema_;
  std::shared_ptr<const Expansion> expansion_;
  ClassId aux_class_;
  ClassId base_class_;
  RelationshipId rel_;
  RoleId role_;
  std::vector<int> aux_targets_;   // Compound classes containing Cexc.
  std::vector<int> base_targets_;  // Compound classes containing cls.
  // Warm-start basis carried across this engine's serial probes (gallop /
  // bisection). Queries on one engine are not safe to issue concurrently
  // from outside — use `CheckAll` for that; it snapshots this carry.
  mutable WarmStartBasis carry_;
};

}  // namespace crsat

#endif  // CRSAT_REASONER_IMPLICATION_ENGINE_H_
