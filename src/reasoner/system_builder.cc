#include "src/reasoner/system_builder.h"

#include <map>
#include <utility>

namespace crsat {

CrSystem SystemBuilder::Build(const Expansion& expansion,
                              const std::vector<CardinalityOverride>* overrides) {
  const Schema& schema = expansion.schema();
  CrSystem result;
  result.expansion = &expansion;

  for (size_t i = 0; i < expansion.classes().size(); ++i) {
    result.class_vars.push_back(result.system.AddVariable(
        "c" + std::to_string(i) + ":" +
            expansion.classes()[i].ToString(schema),
        /*nonnegative=*/true));
  }
  for (size_t i = 0; i < expansion.relationships().size(); ++i) {
    result.rel_vars.push_back(result.system.AddVariable(
        "r" + std::to_string(i) + ":" +
            expansion.relationships()[i].ToString(schema),
        /*nonnegative=*/true));
  }

  result.empty_class_compounds.assign(expansion.classes().size(), false);

  for (RelationshipId rel : schema.AllRelationships()) {
    const std::vector<RoleId>& roles = schema.RolesOf(rel);
    for (size_t k = 0; k < roles.size(); ++k) {
      RoleId role = roles[k];
      ClassId primary = schema.PrimaryClass(role);
      for (int class_index : expansion.ClassIndicesContaining(primary)) {
        Cardinality lifted =
            expansion.LiftedCardinality(class_index, rel, role, overrides);
        if (lifted.IsDefault()) {
          continue;
        }
        if (lifted.max.has_value() && *lifted.max < lifted.min) {
          result.empty_class_compounds[class_index] = true;
        }
        LinearExpr sum;
        for (int rel_index :
             expansion.RelationshipsWith(rel, static_cast<int>(k),
                                         class_index)) {
          sum.AddTerm(result.rel_vars[rel_index], Rational(1));
        }
        if (lifted.min > 0) {
          // sum - m * c >= 0.
          LinearExpr expr = sum;
          expr.AddTerm(result.class_vars[class_index],
                       -Rational(static_cast<std::int64_t>(lifted.min)));
          result.system.AddGe(std::move(expr));
        }
        if (lifted.max.has_value()) {
          // n * c - sum >= 0.
          LinearExpr expr = -sum;
          expr.AddTerm(result.class_vars[class_index],
                       Rational(static_cast<std::int64_t>(*lifted.max)));
          result.system.AddGe(std::move(expr));
        }
      }
    }
  }
  return result;
}

Result<LinearSystem> SystemBuilder::BuildPresentationSystem(
    const Schema& schema) {
  CRSAT_ASSIGN_OR_RETURN(std::vector<CompoundClass> all_classes,
                         AllCompoundClasses(schema));
  LinearSystem system;

  // Class unknowns c1..c_{2^n-1}, numbered by mask as in Figure 4/5.
  std::map<std::uint64_t, VarId> class_var_by_mask;
  for (size_t i = 0; i < all_classes.size(); ++i) {
    VarId var = system.AddVariable("c" + std::to_string(i + 1),
                                   /*nonnegative=*/true);
    class_var_by_mask[all_classes[i].mask()] = var;
    if (!all_classes[i].IsExtendedConsistentIn(schema)) {
      system.AddEq(LinearExpr::Var(var));  // Pinned: inconsistent.
    }
  }

  // Relationship unknowns, one block per relationship, components indexed
  // by compound-class number.
  std::map<std::pair<int, std::vector<std::uint64_t>>, VarId> rel_vars;
  for (RelationshipId rel : schema.AllRelationships()) {
    CRSAT_ASSIGN_OR_RETURN(std::vector<CompoundRelationship> all_rels,
                           AllCompoundRelationships(schema, rel));
    for (const CompoundRelationship& compound : all_rels) {
      std::string name = schema.RelationshipName(rel);
      std::vector<std::uint64_t> key_masks;
      for (const CompoundClass& component : compound.components) {
        // Compound-class number = mask (masks enumerate 1..2^n-1).
        name += "_" + std::to_string(component.mask());
        key_masks.push_back(component.mask());
      }
      VarId var = system.AddVariable(name, /*nonnegative=*/true);
      rel_vars[{rel.value, std::move(key_masks)}] = var;
      if (!compound.IsConsistentIn(schema, /*extended=*/true)) {
        system.AddEq(LinearExpr::Var(var));  // Pinned: inconsistent.
      }
    }
  }

  // Cardinality disequations over consistent compound classes.
  for (RelationshipId rel : schema.AllRelationships()) {
    const std::vector<RoleId>& roles = schema.RolesOf(rel);
    CRSAT_ASSIGN_OR_RETURN(std::vector<CompoundRelationship> all_rels,
                           AllCompoundRelationships(schema, rel));
    for (size_t k = 0; k < roles.size(); ++k) {
      RoleId role = roles[k];
      ClassId primary = schema.PrimaryClass(role);
      for (const CompoundClass& compound : all_classes) {
        if (!compound.IsExtendedConsistentIn(schema) ||
            !compound.Contains(primary)) {
          continue;
        }
        // Lifted cardinality per Definition 3.1.
        Cardinality lifted;
        for (ClassId member : compound.Members()) {
          if (!schema.IsSubclassOf(member, primary)) {
            continue;
          }
          Cardinality declared = schema.GetCardinality(member, rel, role);
          lifted.min = std::max(lifted.min, declared.min);
          if (declared.max.has_value() &&
              (!lifted.max.has_value() || *declared.max < *lifted.max)) {
            lifted.max = declared.max;
          }
        }
        if (lifted.IsDefault()) {
          continue;
        }
        LinearExpr sum;
        for (const CompoundRelationship& compound_rel : all_rels) {
          if (compound_rel.components[k] != compound ||
              !compound_rel.IsConsistentIn(schema, /*extended=*/true)) {
            continue;
          }
          std::vector<std::uint64_t> key_masks;
          for (const CompoundClass& component : compound_rel.components) {
            key_masks.push_back(component.mask());
          }
          sum.AddTerm(rel_vars[{rel.value, key_masks}], Rational(1));
        }
        VarId class_var = class_var_by_mask[compound.mask()];
        if (lifted.min > 0) {
          LinearExpr expr = sum;
          expr.AddTerm(class_var,
                       -Rational(static_cast<std::int64_t>(lifted.min)));
          system.AddGe(std::move(expr));
        }
        if (lifted.max.has_value()) {
          LinearExpr expr = -sum;
          expr.AddTerm(class_var,
                       Rational(static_cast<std::int64_t>(*lifted.max)));
          system.AddGe(std::move(expr));
        }
      }
    }
  }
  return system;
}

}  // namespace crsat
