#include "src/reasoner/implication.h"

#include <optional>

#include "src/base/thread_pool.h"
#include "src/reasoner/implication_engine.h"
#include "src/reasoner/satisfiability.h"

namespace crsat {

Result<bool> ImplicationChecker::ImpliesIsa(const Schema& schema, ClassId sub,
                                            ClassId super,
                                            const ExpansionOptions& options) {
  CRSAT_ASSIGN_OR_RETURN(Expansion expansion,
                         Expansion::Build(schema, options));
  SatisfiabilityChecker checker(expansion);
  // Target: compound classes containing `sub` but not `super` — exactly
  // the populations witnessing a violation of `sub <= super`.
  std::vector<int> targets;
  for (int class_index : expansion.ClassIndicesContaining(sub)) {
    if (!expansion.classes()[class_index].Contains(super)) {
      targets.push_back(class_index);
    }
  }
  CRSAT_ASSIGN_OR_RETURN(bool violable, checker.IsTargetSatisfiable(targets));
  return !violable;
}

Result<bool> ImplicationChecker::ImpliesMinCardinality(
    const Schema& schema, ClassId cls, RelationshipId rel, RoleId role,
    std::uint64_t min, const ExpansionOptions& options) {
  CRSAT_ASSIGN_OR_RETURN(
      CardinalityImplicationEngine engine,
      CardinalityImplicationEngine::Create(schema, cls, rel, role, options));
  return engine.ImpliesMin(min);
}

Result<bool> ImplicationChecker::ImpliesMaxCardinality(
    const Schema& schema, ClassId cls, RelationshipId rel, RoleId role,
    std::uint64_t max, const ExpansionOptions& options) {
  CRSAT_ASSIGN_OR_RETURN(
      CardinalityImplicationEngine engine,
      CardinalityImplicationEngine::Create(schema, cls, rel, role, options));
  return engine.ImpliesMax(max);
}

Result<std::vector<std::vector<bool>>> ImplicationChecker::ImpliedIsaClosure(
    const Schema& schema, const ExpansionOptions& options) {
  CRSAT_ASSIGN_OR_RETURN(Expansion expansion,
                         Expansion::Build(schema, options));
  SatisfiabilityChecker checker(expansion);
  CRSAT_ASSIGN_OR_RETURN(AcceptableSupport support, checker.Support());
  const int n = schema.num_classes();
  std::vector<std::vector<bool>> implied(n, std::vector<bool>(n, true));
  for (size_t i = 0; i < expansion.classes().size(); ++i) {
    if (!support.positive[checker.cr_system().class_vars[i]]) {
      continue;
    }
    // A populated compound class containing c but not d witnesses that
    // `c <= d` is violable.
    const CompoundClass& compound = expansion.classes()[i];
    for (ClassId c : compound.Members()) {
      for (int d = 0; d < n; ++d) {
        if (!compound.Contains(ClassId(d))) {
          implied[c.value][d] = false;
        }
      }
    }
  }
  return implied;
}

Result<bool> ImplicationChecker::ImpliesDisjointness(
    const Schema& schema, ClassId a, ClassId b,
    const ExpansionOptions& options) {
  CRSAT_ASSIGN_OR_RETURN(Expansion expansion,
                         Expansion::Build(schema, options));
  SatisfiabilityChecker checker(expansion);
  // Target: compound classes containing both — populations witnessing an
  // overlap.
  std::vector<int> targets;
  for (int class_index : expansion.ClassIndicesContaining(a)) {
    if (expansion.classes()[class_index].Contains(b)) {
      targets.push_back(class_index);
    }
  }
  CRSAT_ASSIGN_OR_RETURN(bool violable, checker.IsTargetSatisfiable(targets));
  return !violable;
}

Result<bool> ImplicationChecker::ImpliesCovering(
    const Schema& schema, ClassId covered,
    const std::vector<ClassId>& coverers, const ExpansionOptions& options) {
  CRSAT_ASSIGN_OR_RETURN(Expansion expansion,
                         Expansion::Build(schema, options));
  SatisfiabilityChecker checker(expansion);
  // Target: compound classes containing `covered` but none of the
  // coverers.
  std::vector<int> targets;
  for (int class_index : expansion.ClassIndicesContaining(covered)) {
    bool any_coverer = false;
    for (ClassId coverer : coverers) {
      if (expansion.classes()[class_index].Contains(coverer)) {
        any_coverer = true;
        break;
      }
    }
    if (!any_coverer) {
      targets.push_back(class_index);
    }
  }
  CRSAT_ASSIGN_OR_RETURN(bool violable, checker.IsTargetSatisfiable(targets));
  return !violable;
}

Result<std::uint64_t> ImplicationChecker::TightestImpliedMin(
    const Schema& schema, ClassId cls, RelationshipId rel, RoleId role,
    const ExpansionOptions& options) {
  CRSAT_ASSIGN_OR_RETURN(
      CardinalityImplicationEngine engine,
      CardinalityImplicationEngine::Create(schema, cls, rel, role, options));
  return engine.TightestMin();
}

Result<std::optional<std::uint64_t>> ImplicationChecker::TightestImpliedMax(
    const Schema& schema, ClassId cls, RelationshipId rel, RoleId role,
    std::uint64_t search_limit, const ExpansionOptions& options) {
  CRSAT_ASSIGN_OR_RETURN(
      CardinalityImplicationEngine engine,
      CardinalityImplicationEngine::Create(schema, cls, rel, role, options));
  return engine.TightestMax(search_limit);
}

namespace {

Result<ImpliedCardinalityRow> BuildReportRow(const Schema& schema, ClassId cls,
                                             RelationshipId rel, RoleId role,
                                             std::uint64_t search_limit,
                                             const ExpansionOptions& options) {
  ImpliedCardinalityRow row;
  row.cls = cls;
  row.rel = rel;
  row.role = role;
  row.declared = schema.GetCardinality(cls, rel, role);
  CRSAT_ASSIGN_OR_RETURN(
      CardinalityImplicationEngine engine,
      CardinalityImplicationEngine::Create(schema, cls, rel, role, options));
  CRSAT_ASSIGN_OR_RETURN(bool satisfiable, engine.IsBaseClassSatisfiable());
  if (!satisfiable) {
    row.vacuous = true;
    return row;
  }
  CRSAT_ASSIGN_OR_RETURN(row.implied_min, engine.TightestMin());
  CRSAT_ASSIGN_OR_RETURN(row.implied_max, engine.TightestMax(search_limit));
  return row;
}

}  // namespace

Result<std::vector<ImpliedCardinalityRow>> BuildImpliedCardinalityReport(
    const Schema& schema, std::uint64_t search_limit,
    const ExpansionOptions& options) {
  // Enumerate the triples first (row order is part of the API), then build
  // the rows concurrently: each triple owns a private engine — its own
  // extended schema and expansion — so the tasks share only the immutable
  // input schema. Errors are reported for the first failing triple in row
  // order, matching the serial behaviour.
  struct Triple {
    ClassId cls;
    RelationshipId rel;
    RoleId role;
  };
  std::vector<Triple> triples;
  for (RelationshipId rel : schema.AllRelationships()) {
    for (RoleId role : schema.RolesOf(rel)) {
      ClassId primary = schema.PrimaryClass(role);
      for (ClassId cls : schema.SubclassesOf(primary)) {
        triples.push_back(Triple{cls, rel, role});
      }
    }
  }
  std::vector<std::optional<Result<ImpliedCardinalityRow>>> built(
      triples.size());
  GlobalThreadPool().ParallelFor(triples.size(), [&](size_t i) {
    built[i] = BuildReportRow(schema, triples[i].cls, triples[i].rel,
                              triples[i].role, search_limit, options);
  });
  std::vector<ImpliedCardinalityRow> rows;
  rows.reserve(triples.size());
  for (size_t i = 0; i < triples.size(); ++i) {
    if (!built[i]->ok()) {
      return built[i]->status();
    }
    rows.push_back(std::move(built[i]->value()));
  }
  return rows;
}

std::string ImpliedCardinalityReportToString(
    const Schema& schema, const std::vector<ImpliedCardinalityRow>& rows) {
  std::string text =
      "class / relationship.role            declared   implied\n";
  for (const ImpliedCardinalityRow& row : rows) {
    std::string triple = schema.ClassName(row.cls) + " / " +
                         schema.RelationshipName(row.rel) + "." +
                         schema.RoleName(row.role);
    if (triple.size() < 36) {
      triple.append(36 - triple.size(), ' ');
    }
    std::string declared = row.declared.ToString();
    if (declared.size() < 10) {
      declared.append(10 - declared.size(), ' ');
    }
    std::string implied;
    if (row.vacuous) {
      implied = "(class unsatisfiable; vacuous)";
    } else {
      implied = "(" + std::to_string(row.implied_min) + ", " +
                (row.implied_max.has_value()
                     ? std::to_string(*row.implied_max)
                     : "*") +
                ")";
    }
    text += triple + " " + declared + " " + implied + "\n";
  }
  return text;
}

}  // namespace crsat
