#include "src/reasoner/model_builder.h"

#include <utility>

#include "src/witness/witness.h"

namespace crsat {

namespace {

WitnessOptions ToWitnessOptions(const ModelBuildOptions& options) {
  WitnessOptions witness_options;
  witness_options.max_scaling_attempts = options.max_scaling_attempts;
  witness_options.max_model_size = options.max_model_size;
  return witness_options;
}

}  // namespace

Result<Interpretation> ModelBuilder::BuildModel(
    const Expansion& expansion, const IntegerSolution& solution,
    const ModelBuildOptions& options) {
  CRSAT_ASSIGN_OR_RETURN(CertifiedWitness witness,
                         WitnessSynthesizer::SynthesizeFromSolution(
                             expansion, solution, ToWitnessOptions(options)));
  return std::move(witness).TakeInterpretation();
}

Result<Interpretation> ModelBuilder::BuildModelForClass(
    const SatisfiabilityChecker& checker, ClassId cls,
    const ModelBuildOptions& options) {
  CRSAT_ASSIGN_OR_RETURN(bool satisfiable, checker.IsClassSatisfiable(cls));
  if (!satisfiable) {
    return InvalidArgumentError(
        "class '" + checker.expansion().schema().ClassName(cls) +
        "' is unsatisfiable; no model can populate it");
  }
  WitnessSynthesizer synthesizer(checker);
  CRSAT_ASSIGN_OR_RETURN(CertifiedWitness witness,
                         synthesizer.Synthesize(ToWitnessOptions(options)));
  return std::move(witness).TakeInterpretation();
}

}  // namespace crsat
