#include "src/reasoner/implication_engine.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "src/base/incremental.h"
#include "src/base/resource_guard.h"
#include "src/base/thread_pool.h"
#include "src/reasoner/satisfiability.h"

namespace crsat {

void ImplicationStats::Reset() {
  dominance_lookups.store(0, std::memory_order_relaxed);
  dominance_hits.store(0, std::memory_order_relaxed);
}

ImplicationStats& GetImplicationStats() {
  static ImplicationStats stats;
  return stats;
}

std::optional<bool> BoundDominanceCache::LookupMin(std::uint64_t min) {
  MutexLock lock(mutex_);
  if (min <= greatest_implied_min_) {
    return true;
  }
  if (least_refuted_min_.has_value() && min >= *least_refuted_min_) {
    return false;
  }
  return std::nullopt;
}

void BoundDominanceCache::RecordMin(std::uint64_t min, bool implied) {
  MutexLock lock(mutex_);
  if (implied) {
    greatest_implied_min_ = std::max(greatest_implied_min_, min);
  } else {
    least_refuted_min_ =
        std::min(least_refuted_min_.value_or(min), min);
  }
}

std::optional<bool> BoundDominanceCache::LookupMax(std::uint64_t max) {
  MutexLock lock(mutex_);
  if (least_implied_max_.has_value() && max >= *least_implied_max_) {
    return true;
  }
  if (greatest_refuted_max_.has_value() && max <= *greatest_refuted_max_) {
    return false;
  }
  return std::nullopt;
}

void BoundDominanceCache::RecordMax(std::uint64_t max, bool implied) {
  MutexLock lock(mutex_);
  if (implied) {
    least_implied_max_ =
        std::min(least_implied_max_.value_or(max), max);
  } else {
    greatest_refuted_max_ =
        std::max(greatest_refuted_max_.value_or(max), max);
  }
}

namespace {

std::string FreshClassName(const Schema& schema) {
  std::string name = "__Cexc";
  while (schema.FindClass(name).has_value()) {
    name += "_";
  }
  return name;
}

// Consults a triple's dominance cache for a probe at `bound`; counts the
// lookup and any hit. Returns nullopt (and counts nothing) when the cache
// is absent or the incremental paths are disabled.
std::optional<bool> ConsultDominance(BoundDominanceCache* cache,
                                     ImplicationQuery::Kind kind,
                                     std::uint64_t bound) {
  if (cache == nullptr || !IncrementalReasoningEnabled()) {
    return std::nullopt;
  }
  ImplicationStats& stats = GetImplicationStats();
  stats.dominance_lookups.fetch_add(1, std::memory_order_relaxed);
  std::optional<bool> verdict = kind == ImplicationQuery::Kind::kMin
                                    ? cache->LookupMin(bound)
                                    : cache->LookupMax(bound);
  if (verdict.has_value()) {
    stats.dominance_hits.fetch_add(1, std::memory_order_relaxed);
  }
  return verdict;
}

}  // namespace

Result<CardinalityImplicationEngine> CardinalityImplicationEngine::Create(
    const Schema& schema, ClassId cls, RelationshipId rel, RoleId role,
    const ExpansionOptions& options) {
  if (schema.RelationshipOf(role) != rel) {
    return InvalidArgumentError("role '" + schema.RoleName(role) +
                                "' does not belong to relationship '" +
                                schema.RelationshipName(rel) + "'");
  }
  if (!schema.IsSubclassOf(cls, schema.PrimaryClass(role))) {
    return InvalidArgumentError(
        "class '" + schema.ClassName(cls) +
        "' is not a subclass of the primary class of role '" +
        schema.RoleName(role) + "'");
  }

  SchemaBuilder builder = schema.ToBuilder();
  std::string aux_name = FreshClassName(schema);
  builder.AddClass(aux_name);
  builder.AddIsa(aux_name, schema.ClassName(cls));
  CRSAT_ASSIGN_OR_RETURN(Schema extended, builder.Build());

  CardinalityImplicationEngine engine;
  engine.extended_schema_ =
      std::make_shared<const Schema>(std::move(extended));
  CRSAT_ASSIGN_OR_RETURN(
      Expansion expansion,
      Expansion::Build(*engine.extended_schema_, options));
  engine.expansion_ =
      std::make_shared<const Expansion>(std::move(expansion));
  engine.aux_class_ = engine.extended_schema_->FindClass(aux_name).value();
  engine.base_class_ =
      engine.extended_schema_->FindClass(schema.ClassName(cls)).value();
  engine.rel_ =
      engine.extended_schema_->FindRelationship(schema.RelationshipName(rel))
          .value();
  engine.role_ =
      engine.extended_schema_->FindRole(schema.RoleName(role)).value();
  engine.aux_targets_ =
      engine.expansion_->ClassIndicesContaining(engine.aux_class_);
  engine.base_targets_ =
      engine.expansion_->ClassIndicesContaining(engine.base_class_);

  // Seed the dominance memo from the bounds declared on cls and its
  // superclasses (within the role's primary hierarchy): every instance of
  // cls is an instance of each such superclass, so a declared
  // `minc(D) = m` / `maxc(D) = n` is implied for cls in every model. This
  // lets gallop/bisection skip the LP for every bound the schema states
  // outright.
  const Schema& ext = *engine.extended_schema_;
  engine.dominance_ = std::make_unique<BoundDominanceCache>();
  for (ClassId super : ext.AllClasses()) {
    if (!ext.IsSubclassOf(engine.base_class_, super) ||
        !ext.IsSubclassOf(super, ext.PrimaryClass(engine.role_))) {
      continue;
    }
    Cardinality declared = ext.GetCardinality(super, engine.rel_,
                                              engine.role_);
    if (declared.min > 0) {
      engine.dominance_->RecordMin(declared.min, /*implied=*/true);
    }
    if (declared.max.has_value()) {
      engine.dominance_->RecordMax(*declared.max, /*implied=*/true);
    }
  }
  return engine;
}

Result<bool> CardinalityImplicationEngine::AuxiliarySatisfiableWith(
    Cardinality cardinality, WarmStartBasisCache* cache) const {
  std::vector<CardinalityOverride> overrides = {
      CardinalityOverride{aux_class_, rel_, role_, cardinality}};
  SatisfiabilityChecker checker(*expansion_, &overrides);
  checker.SetProbeBasisCache(cache);
  return checker.IsTargetSatisfiable(aux_targets_);
}

Result<bool> CardinalityImplicationEngine::ImpliesMinWith(
    std::uint64_t min, WarmStartBasisCache* cache) const {
  if (min == 0) {
    return true;  // Trivial bound.
  }
  if (std::optional<bool> dominated = ConsultDominance(
          dominance_.get(), ImplicationQuery::Kind::kMin, min)) {
    return *dominated;
  }
  Cardinality cardinality;
  cardinality.max = min - 1;
  CRSAT_ASSIGN_OR_RETURN(bool violable,
                         AuxiliarySatisfiableWith(cardinality, cache));
  if (dominance_ != nullptr && IncrementalReasoningEnabled()) {
    dominance_->RecordMin(min, !violable);
  }
  return !violable;
}

Result<bool> CardinalityImplicationEngine::ImpliesMaxWith(
    std::uint64_t max, WarmStartBasisCache* cache) const {
  if (std::optional<bool> dominated = ConsultDominance(
          dominance_.get(), ImplicationQuery::Kind::kMax, max)) {
    return *dominated;
  }
  Cardinality cardinality;
  cardinality.min = max + 1;
  CRSAT_ASSIGN_OR_RETURN(bool violable,
                         AuxiliarySatisfiableWith(cardinality, cache));
  if (dominance_ != nullptr && IncrementalReasoningEnabled()) {
    dominance_->RecordMax(max, !violable);
  }
  return !violable;
}

Result<bool> CardinalityImplicationEngine::ImpliesMin(
    std::uint64_t min) const {
  return ImpliesMinWith(min, &carry_cache_);
}

Result<bool> CardinalityImplicationEngine::ImpliesMax(
    std::uint64_t max) const {
  return ImpliesMaxWith(max, &carry_cache_);
}

Result<std::vector<bool>> CardinalityImplicationEngine::CheckAll(
    const std::vector<ImplicationQuery>& queries) const {
  CRSAT_ASSIGN_OR_RETURN(std::vector<ImplicationVerdict> verdicts,
                         CheckAllPartial(queries));
  std::vector<bool> implied(queries.size(), false);
  for (size_t i = 0; i < queries.size(); ++i) {
    if (!verdicts[i].known()) {
      // All-or-nothing contract: surface the underlying trip as the
      // batch's error (the guard is necessarily set and tripped here).
      return expansion_->options().guard->TripStatus();
    }
    implied[i] = verdicts[i].implied();
  }
  return implied;
}

Result<std::vector<ImplicationVerdict>>
CardinalityImplicationEngine::CheckAllPartial(
    const std::vector<ImplicationQuery>& queries) const {
  // Each query is one satisfiability probe against the shared (immutable)
  // expansion; probes build their own SatisfiabilityChecker, so they are
  // independent. Verdicts are collected per index and combined in query
  // order afterwards — results do not depend on scheduling. Every probe
  // warm starts from a private *copy* of the current basis cache (they all
  // see the same snapshot regardless of thread count); the first query (in
  // query order) that ends up holding bases donates its cache back,
  // deterministically. The dominance memo is shared as-is — it is
  // thread-safe and only ever accumulates sound facts, so verdicts stay
  // schedule-independent even when probes race to record.
  ResourceGuard* guard = expansion_->options().guard;
  std::vector<std::optional<Result<bool>>> probes(queries.size());
  std::vector<WarmStartBasisCache> caches(queries.size(), carry_cache_);
  GlobalThreadPool().ParallelFor(
      queries.size(),
      [&](size_t i) {
        const ImplicationQuery& query = queries[i];
        probes[i] = query.kind == ImplicationQuery::Kind::kMin
                        ? ImpliesMinWith(query.bound, &caches[i])
                        : ImpliesMaxWith(query.bound, &caches[i]);
      },
      guard);
  for (WarmStartBasisCache& cache : caches) {
    if (!cache.empty()) {
      carry_cache_ = std::move(cache);
      break;
    }
  }
  std::vector<ImplicationVerdict> verdicts(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ImplicationVerdict& verdict = verdicts[i];
    if (!probes[i].has_value()) {
      // The pool skipped this probe after the guard tripped.
      verdict.outcome = ImplicationVerdict::Outcome::kUnknown;
      verdict.reason = guard->TripStatus().code();
      continue;
    }
    if (!probes[i]->ok()) {
      if (IsResourceLimitStatus(probes[i]->status().code())) {
        verdict.outcome = ImplicationVerdict::Outcome::kUnknown;
        verdict.reason = probes[i]->status().code();
        continue;
      }
      return probes[i]->status();  // Genuine error: fail the batch.
    }
    verdict.outcome = probes[i]->value()
                          ? ImplicationVerdict::Outcome::kImplied
                          : ImplicationVerdict::Outcome::kNotImplied;
  }
  return verdicts;
}

Result<bool> CardinalityImplicationEngine::IsBaseClassSatisfiable() const {
  // The unconstrained auxiliary subclass does not affect the other
  // classes' satisfiability (it can always be empty), so the extended
  // expansion answers for the base schema directly.
  SatisfiabilityChecker checker(*expansion_);
  return checker.IsTargetSatisfiable(base_targets_);
}

Result<std::uint64_t> CardinalityImplicationEngine::TightestMin() const {
  CRSAT_ASSIGN_OR_RETURN(bool satisfiable, IsBaseClassSatisfiable());
  if (!satisfiable) {
    return InvalidArgumentError(
        "class '" + extended_schema_->ClassName(base_class_) +
        "' is unsatisfiable; every cardinality bound is vacuously implied");
  }
  // Implied-min bounds are downward closed; gallop then bisect for the
  // largest implied one. Termination: the class is satisfiable, so some
  // model realizes a finite per-instance count t, and min = t+1 is not
  // implied.
  std::uint64_t low = 0;  // Highest known implied.
  std::uint64_t high = 1;
  while (true) {
    CRSAT_ASSIGN_OR_RETURN(bool implied, ImpliesMin(high));
    if (!implied) {
      break;
    }
    low = high;
    high *= 2;
  }
  while (high - low > 1) {
    std::uint64_t mid = low + (high - low) / 2;
    CRSAT_ASSIGN_OR_RETURN(bool implied, ImpliesMin(mid));
    if (implied) {
      low = mid;
    } else {
      high = mid;
    }
  }
  return low;
}

Result<std::optional<std::uint64_t>> CardinalityImplicationEngine::TightestMax(
    std::uint64_t search_limit) const {
  CRSAT_ASSIGN_OR_RETURN(bool satisfiable, IsBaseClassSatisfiable());
  if (!satisfiable) {
    return InvalidArgumentError(
        "class '" + extended_schema_->ClassName(base_class_) +
        "' is unsatisfiable; every cardinality bound is vacuously implied");
  }
  CRSAT_ASSIGN_OR_RETURN(bool implied_at_limit, ImpliesMax(search_limit));
  if (!implied_at_limit) {
    return std::optional<std::uint64_t>();  // No bound up to the limit.
  }
  CRSAT_ASSIGN_OR_RETURN(bool implied_zero, ImpliesMax(0));
  if (implied_zero) {
    return std::optional<std::uint64_t>(0);
  }
  std::uint64_t low = 0;
  std::uint64_t high = search_limit;  // Known implied.
  while (high - low > 1) {
    std::uint64_t mid = low + (high - low) / 2;
    CRSAT_ASSIGN_OR_RETURN(bool implied, ImpliesMax(mid));
    if (implied) {
      high = mid;
    } else {
      low = mid;
    }
  }
  return std::optional<std::uint64_t>(high);
}

}  // namespace crsat
