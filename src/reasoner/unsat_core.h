#ifndef CRSAT_REASONER_UNSAT_CORE_H_
#define CRSAT_REASONER_UNSAT_CORE_H_

#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/cr/schema.h"
#include "src/expansion/expansion.h"

namespace crsat {

/// A constraint of a schema, as a removable unit for core minimization.
struct CoreConstraint {
  enum class Kind {
    kIsa,
    kCardinality,
    kDisjointness,
    kCovering,
  };
  Kind kind;
  /// Index into the corresponding declaration list of the schema.
  int index;
  /// Human-readable rendering, e.g. "isa Discussant < Speaker" or
  /// "card Talk in Holds.U2 = (1, 1)".
  std::string description;
};

/// A minimal explanation of why a class is unsatisfiable.
struct UnsatCore {
  /// Constraints that jointly force the class empty; removing any one of
  /// them makes the class satisfiable (subset-minimality).
  std::vector<CoreConstraint> constraints;
};

/// Computes a *minimal unsatisfiable core* for an unsatisfiable class: a
/// subset-minimal set of constraints (ISA statements, cardinality
/// declarations, disjointness groups, covering constraints) whose presence
/// keeps the class unsatisfiable. This implements the "schema debugging"
/// support sketched in the paper's Section 5 ("a technique that provides
/// the designer with a minimum number of constraints that are
/// unsatisfiable").
///
/// Deletion-based minimization: each constraint is tentatively dropped;
/// if the class stays unsatisfiable the constraint is discarded for good,
/// otherwise it is part of the core. Cost: one satisfiability check per
/// constraint. Fails with `InvalidArgument` if `cls` is satisfiable in
/// `schema` to begin with.
Result<UnsatCore> MinimizeUnsatCore(const Schema& schema, ClassId cls,
                                    const ExpansionOptions& options = {});

}  // namespace crsat

#endif  // CRSAT_REASONER_UNSAT_CORE_H_
