#ifndef CRSAT_REASONER_SATISFIABILITY_H_
#define CRSAT_REASONER_SATISFIABILITY_H_

#include <optional>
#include <utility>
#include <vector>

#include "src/base/result.h"
#include "src/lp/homogeneous.h"
#include "src/math/bigint.h"
#include "src/reasoner/system_builder.h"

namespace crsat {

/// The maximal support realizable by an *acceptable* solution of a
/// homogeneous system (Section 3.3: a solution is acceptable if every
/// relationship unknown that depends on a zero class unknown is itself
/// zero).
struct AcceptableSupport {
  /// `positive[v]` iff some acceptable solution assigns `v` a positive
  /// value — equivalently (acceptable solutions are closed under addition)
  /// iff the maximum-support acceptable solution does.
  std::vector<bool> positive;
  /// One acceptable solution whose support is exactly `positive`.
  std::vector<Rational> witness;
};

/// A dependency edge: `dependent` must be zero whenever any variable in
/// `depends_on` is zero (the paper's "Var(R) depends on Var(C)").
struct Dependency {
  VarId dependent;
  std::vector<VarId> depends_on;
};

/// Returns a *minimal* solution of `system` whose support is exactly
/// `positive`: support variables are pinned to `>= 1`, the others to 0,
/// and the total is minimized in a single LP. Used to keep integer
/// witnesses (and the models built from them) small — the raw accumulated
/// support witness is a sum of many LP vertices whose denominators
/// multiply up. Falls back to `fallback` if the LP is not optimal (cannot
/// happen for a correct support; defensive).
///
/// `basis_carry`, when non-null, threads a warm-start basis across
/// successive calls on same-shaped pinned systems (the witness
/// synthesizer's repeated syntheses over one expansion): a carried basis
/// skips phase 1, and an optimal solve writes its final basis back. A
/// stale or mismatched carry only costs a rejected warm-start attempt.
Result<std::vector<Rational>> MinimalWitnessForSupport(
    const LinearSystem& system, const std::vector<bool>& positive,
    const std::vector<Rational>& fallback, ResourceGuard* guard = nullptr,
    WarmStartBasis* basis_carry = nullptr);

/// Computes the maximal acceptable support of a homogeneous non-strict
/// `system` under the given dependencies.
///
/// Algorithm (equivalent to Theorem 3.4's subset enumeration, but
/// polynomial in the system size): maintain a set of variables proven zero
/// in every acceptable solution; alternate (a) LP probes marking variables
/// that cannot be positive once the proven-zero ones are pinned, and (b)
/// dependency propagation, until a fixpoint. Acceptable solutions form a
/// cone closed under addition, so the surviving variables are exactly the
/// support of a single (witness) acceptable solution.
///
/// `probe_cache`, when non-null, carries warm-start bases across LP probes
/// — both across the fixpoint's own iterations (whose probe shapes shrink
/// as more variables are pinned; the shape-keyed cache serves each shape
/// family) and across successive calls on related systems (see
/// `ComputeMaximalSupport`). Reuse affects cost only, never verdicts.
///
/// `seed_zero`, when non-null (size = `system.num_variables()`), pre-pins
/// variables already known to be zero in every acceptable solution (e.g.
/// unknowns whose constraint rows force them to zero structurally). The
/// seeds must be sound: the fixpoint would prove them zero anyway, so
/// seeding skips LP rounds without changing the resulting support.
///
/// `guard`, when non-null, bounds the whole fixpoint (it is handed down to
/// every LP probe; see `ComputeMaximalSupport`).
Result<AcceptableSupport> ComputeAcceptableSupport(
    const LinearSystem& system, const std::vector<Dependency>& dependencies,
    WarmStartBasisCache* probe_cache = nullptr, ResourceGuard* guard = nullptr,
    const std::vector<bool>* seed_zero = nullptr);

/// An acceptable solution of Psi_S scaled to nonnegative integers.
struct IntegerSolution {
  /// Instance count per consistent compound class (expansion class index).
  std::vector<BigInt> class_counts;
  /// Tuple count per consistent compound relationship.
  std::vector<BigInt> rel_counts;
};

/// Decision procedure for (finite) class satisfiability in CR
/// (Theorem 3.3). Builds Psi_S once and computes the maximal acceptable
/// support lazily; all queries are then lookups.
class SatisfiabilityChecker {
 public:
  /// The expansion must outlive the checker. `overrides`, when non-null,
  /// replace the schema's cardinality declarations for matching triples
  /// when Psi_S is derived (used by the implication engine to probe
  /// candidate bounds against one shared expansion).
  explicit SatisfiabilityChecker(
      const Expansion& expansion,
      const std::vector<CardinalityOverride>* overrides = nullptr);

  const CrSystem& cr_system() const { return cr_system_; }
  const Expansion& expansion() const { return *expansion_; }

  /// The maximal acceptable support of Psi_S (computed once, cached).
  Result<AcceptableSupport> Support() const;

  /// Theorem 3.3: true iff `cls` can be populated in some finite model.
  Result<bool> IsClassSatisfiable(ClassId cls) const;

  /// One flag per schema class; a single support computation answers all.
  Result<std::vector<bool>> SatisfiableClasses() const;

  /// Generalized target query: is there an acceptable solution with
  /// `sum of Var(compound class i) > 0` over the given expansion class
  /// indices? (`IsClassSatisfiable` is the target "all compound classes
  /// containing cls"; ISA implication uses "containing C but not D".)
  Result<bool> IsTargetSatisfiable(
      const std::vector<int>& target_class_indices) const;

  /// The support witness scaled to integers: an acceptable nonnegative
  /// integer solution whose support is the maximal acceptable support.
  /// Feed this to `ModelBuilder` to materialize an actual database state.
  Result<IntegerSolution> AcceptableIntegerSolution() const;

  /// The dependency edges of Psi_S (each relationship unknown depends on
  /// its component class unknowns).
  const std::vector<Dependency>& dependencies() const { return dependencies_; }

  /// Marks classes already proven unsatisfiable by a cheaper pre-LP pass
  /// (the lint engine's structural empty-class fixpoint,
  /// src/analysis/empty_classes.h). Queries about these classes
  /// short-circuit to "unsatisfiable" without triggering the support
  /// computation; other classes are unaffected. The hints must be sound —
  /// only pass facts that hold in every finite model. Indexed by ClassId;
  /// may be shorter than `num_classes()` (missing entries mean "unknown").
  void SetKnownEmptyClasses(std::vector<bool> known_empty) {
    known_empty_ = std::move(known_empty);
  }

  /// Threads a warm-start basis cache through the (single, cached) support
  /// computation: every LP probe offers the cache entry matching its shape
  /// and feasible probes write their final bases back. Intended for callers
  /// that build many short-lived checkers over the same expansion with
  /// slightly different cardinality overrides (the implication engine's
  /// bisection); a stale entry is either repaired by dual pivots or costs
  /// one rejected warm-start attempt. The pointee must outlive the first
  /// `Support()` call; pass before any query.
  void SetProbeBasisCache(WarmStartBasisCache* cache) { probe_cache_ = cache; }

 private:
  bool IsKnownEmpty(ClassId cls) const {
    return cls.value >= 0 &&
           cls.value < static_cast<int>(known_empty_.size()) &&
           known_empty_[cls.value];
  }

  // Per compound class, true when it is structurally forced empty: its own
  // lifted cardinality range is empty (`CrSystem::empty_class_compounds`)
  // or it contains a schema class from `known_empty_`. Sound facts — both
  // sources hold in every finite model — so seeding the support fixpoint
  // with them (and short-circuiting all-dead target queries) changes LP
  // work, never verdicts. Computed lazily; only consulted when
  // `IncrementalReasoningEnabled()`.
  const std::vector<bool>& StructurallyDeadCompounds() const;

  const Expansion* expansion_;
  CrSystem cr_system_;
  std::vector<Dependency> dependencies_;
  std::vector<bool> known_empty_;
  // Thread confinement (not a lock): a `SatisfiabilityChecker` is
  // *thread-compatible*, not thread-safe — `Support()` mutates the
  // lazily-cached `support_`/`dead_compounds_` and the cache behind
  // `probe_cache_`, so a checker (and any `WarmStartBasisCache` it uses)
  // must be confined to one thread at a time. The parallelism inside
  // `Support()` is internal (`ThreadPool::ParallelFor` over per-probe
  // state) and does not touch these fields concurrently. There is
  // deliberately no mutex here — callers that want concurrent queries
  // build one checker per thread over the shared (immutable) expansion.
  WarmStartBasisCache* probe_cache_ = nullptr;
  mutable std::optional<std::vector<bool>> dead_compounds_;
  mutable std::optional<Result<AcceptableSupport>> support_;
};

/// Reference implementation of Theorem 3.4: decides target satisfiability
/// by enumerating every subset Z of the class unknowns and checking
/// feasibility of Psi_Z. Exponential in the number of consistent compound
/// classes (capped at 16); exists to cross-validate the fixpoint engine in
/// tests.
Result<bool> IsTargetSatisfiableByEnumeration(
    const CrSystem& cr_system, const std::vector<Dependency>& dependencies,
    const std::vector<int>& target_class_indices);

}  // namespace crsat

#endif  // CRSAT_REASONER_SATISFIABILITY_H_
