#ifndef CRSAT_ANALYSIS_LINT_RULE_H_
#define CRSAT_ANALYSIS_LINT_RULE_H_

#include <string_view>
#include <vector>

#include "src/analysis/diagnostics.h"
#include "src/cr/schema.h"
#include "src/cr/schema_text.h"

namespace crsat {

/// Everything a lint rule may look at: the (well-formed) schema and, when
/// it came from DSL text, the source positions of its declarations. The
/// accessors tolerate a missing/partial source map so rules never have to
/// branch on whether the schema was parsed or built programmatically.
class LintContext {
 public:
  /// `source_map` may be null (programmatic schema). Both referents must
  /// outlive the context.
  LintContext(const Schema& schema, const SchemaSourceMap* source_map)
      : schema_(&schema), source_map_(source_map) {}

  const Schema& schema() const { return *schema_; }

  SourceLocation ClassLocation(ClassId cls) const {
    return At(source_map_ ? &source_map_->classes : nullptr, cls.value);
  }
  SourceLocation RelationshipLocation(RelationshipId rel) const {
    return At(source_map_ ? &source_map_->relationships : nullptr, rel.value);
  }
  SourceLocation RoleLocation(RoleId role) const {
    return At(source_map_ ? &source_map_->roles : nullptr, role.value);
  }
  /// Location of the `index`-th entry of `schema().isa_statements()`.
  SourceLocation IsaLocation(int index) const {
    return At(source_map_ ? &source_map_->isa_statements : nullptr, index);
  }
  /// Location of the `index`-th entry of
  /// `schema().cardinality_declarations()`.
  SourceLocation CardinalityLocation(int index) const {
    return At(source_map_ ? &source_map_->cardinality_declarations : nullptr,
              index);
  }

 private:
  static SourceLocation At(const std::vector<SourceLocation>* locations,
                           int index) {
    if (locations == nullptr || index < 0 ||
        index >= static_cast<int>(locations->size())) {
      return SourceLocation{};
    }
    return (*locations)[index];
  }

  const Schema* schema_;
  const SchemaSourceMap* source_map_;
};

/// One structural diagnostic rule. Implementations live in
/// `src/analysis/rules/`, one class per file, and are registered with the
/// `LintRuleRegistry` (see lint_engine.h). Rules must be pure functions of
/// the context: no LP, no expansion, no global state — linear or
/// near-linear passes over the schema only.
class LintRule {
 public:
  virtual ~LintRule() = default;

  /// Stable rule id, e.g. "isa-cycle". Used in output, in JSON, and to
  /// enable/disable rules by name.
  virtual std::string_view id() const = 0;

  /// One-line human description (for `crsat_cli lint --rules` listings).
  virtual std::string_view description() const = 0;

  /// Appends this rule's findings to `out`.
  virtual void Run(const LintContext& context,
                   std::vector<Diagnostic>* out) const = 0;
};

}  // namespace crsat

#endif  // CRSAT_ANALYSIS_LINT_RULE_H_
