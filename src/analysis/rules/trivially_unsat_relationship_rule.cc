#include <memory>
#include <string>
#include <vector>

#include "src/analysis/empty_classes.h"
#include "src/analysis/rules.h"

namespace crsat {

namespace {

/// Reports relationships that can never hold a tuple because some role's
/// primary class is provably empty (per the structural fixpoint of
/// empty_classes.h). The classes seeding the emptiness are reported by
/// `empty-range` / `card-refinement-conflict`; this rule surfaces the
/// downstream blast radius.
class TriviallyUnsatRelationshipRule : public LintRule {
 public:
  std::string_view id() const override {
    return "trivially-unsat-relationship";
  }
  std::string_view description() const override {
    return "relationships with a role over a provably-empty class";
  }

  void Run(const LintContext& context,
           std::vector<Diagnostic>* out) const override {
    const Schema& schema = context.schema();
    EmptyEntityAnalysis analysis = ComputeProvablyEmpty(schema);
    for (RelationshipId rel : schema.AllRelationships()) {
      if (!analysis.relationship_empty[rel.value]) {
        continue;
      }
      Diagnostic diagnostic;
      diagnostic.rule = std::string(id());
      diagnostic.severity = Severity::kError;
      diagnostic.message = "relationship '" + schema.RelationshipName(rel) +
                           "' can never hold a tuple: " +
                           analysis.relationship_reason[rel.value];
      diagnostic.entities = {schema.RelationshipName(rel)};
      diagnostic.location = context.RelationshipLocation(rel);
      out->push_back(std::move(diagnostic));
    }
  }
};

}  // namespace

std::unique_ptr<LintRule> MakeTriviallyUnsatRelationshipRule() {
  return std::make_unique<TriviallyUnsatRelationshipRule>();
}

}  // namespace crsat
