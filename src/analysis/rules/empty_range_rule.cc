#include <memory>
#include <string>
#include <vector>

#include "src/analysis/rules.h"

namespace crsat {

namespace {

/// Reports cardinality declarations whose range is empty (`min > max`).
/// Such a declaration forbids every participation count, so the declaring
/// class can never be populated. Schemas with these declarations only
/// exist under `ParseSchemaOptions::permit_empty_ranges` (the strict
/// builder rejects them); the lint pipeline parses leniently exactly so
/// this rule can point at the source line instead of failing the build.
class EmptyRangeRule : public LintRule {
 public:
  std::string_view id() const override { return "empty-range"; }
  std::string_view description() const override {
    return "cardinality declarations with min > max force the class empty";
  }

  void Run(const LintContext& context,
           std::vector<Diagnostic>* out) const override {
    const Schema& schema = context.schema();
    const std::vector<CardinalityDeclaration>& declarations =
        schema.cardinality_declarations();
    for (int i = 0; i < static_cast<int>(declarations.size()); ++i) {
      const CardinalityDeclaration& decl = declarations[i];
      if (!decl.cardinality.max.has_value() ||
          *decl.cardinality.max >= decl.cardinality.min) {
        continue;
      }
      Diagnostic diagnostic;
      diagnostic.rule = std::string(id());
      diagnostic.severity = Severity::kError;
      diagnostic.message =
          "cardinality " + decl.cardinality.ToString() + " of ('" +
          schema.ClassName(decl.cls) + "', '" +
          schema.RelationshipName(decl.rel) + "', '" +
          schema.RoleName(decl.role) + "') is an empty range; class '" +
          schema.ClassName(decl.cls) + "' can never be populated";
      diagnostic.entities = {schema.ClassName(decl.cls),
                             schema.RelationshipName(decl.rel),
                             schema.RoleName(decl.role)};
      diagnostic.location = context.CardinalityLocation(i);
      out->push_back(std::move(diagnostic));
    }
  }
};

}  // namespace

std::unique_ptr<LintRule> MakeEmptyRangeRule() {
  return std::make_unique<EmptyRangeRule>();
}

}  // namespace crsat
