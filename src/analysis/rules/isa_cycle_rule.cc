#include <memory>
#include <string>
#include <vector>

#include "src/analysis/rules.h"
#include "src/base/string_util.h"

namespace crsat {

namespace {

/// Reports each set of classes forced extensionally equal by a cycle of
/// ISA statements. Two distinct classes lie on a cycle iff each is a
/// transitive subclass of the other, so the cycles are exactly the
/// nontrivial equivalence groups of the ISA closure; a self ISA
/// (`isa A < A`) is its own degenerate cycle.
class IsaCycleRule : public LintRule {
 public:
  std::string_view id() const override { return "isa-cycle"; }
  std::string_view description() const override {
    return "ISA cycles force all classes on the cycle to be equal";
  }

  void Run(const LintContext& context,
           std::vector<Diagnostic>* out) const override {
    const Schema& schema = context.schema();
    const int n = schema.num_classes();

    std::vector<int> group(n, -1);
    int num_groups = 0;
    for (int c = 0; c < n; ++c) {
      if (group[c] >= 0) {
        continue;
      }
      group[c] = num_groups;
      for (int d = c + 1; d < n; ++d) {
        if (group[d] < 0 && schema.IsSubclassOf(ClassId(c), ClassId(d)) &&
            schema.IsSubclassOf(ClassId(d), ClassId(c))) {
          group[d] = num_groups;
        }
      }
      ++num_groups;
    }

    std::vector<std::vector<ClassId>> members(num_groups);
    for (int c = 0; c < n; ++c) {
      members[group[c]].push_back(ClassId(c));
    }

    const std::vector<IsaStatement>& isa = schema.isa_statements();
    for (const std::vector<ClassId>& cycle : members) {
      if (cycle.size() < 2) {
        continue;
      }
      Diagnostic diagnostic;
      diagnostic.rule = std::string(id());
      diagnostic.severity = Severity::kWarning;
      std::vector<std::string> names;
      for (ClassId cls : cycle) {
        names.push_back(schema.ClassName(cls));
        diagnostic.entities.push_back(schema.ClassName(cls));
      }
      diagnostic.message = "ISA cycle forces classes " + Join(names, ", ") +
                           " to have equal extensions";
      // Point at the first declared edge inside the cycle.
      for (int i = 0; i < static_cast<int>(isa.size()); ++i) {
        if (isa[i].subclass != isa[i].superclass &&
            group[isa[i].subclass.value] == group[cycle[0].value] &&
            group[isa[i].superclass.value] == group[cycle[0].value]) {
          diagnostic.location = context.IsaLocation(i);
          break;
        }
      }
      out->push_back(std::move(diagnostic));
    }

    // Degenerate cycles: a class declared ISA of itself.
    for (int i = 0; i < static_cast<int>(isa.size()); ++i) {
      if (isa[i].subclass != isa[i].superclass) {
        continue;
      }
      Diagnostic diagnostic;
      diagnostic.rule = std::string(id());
      diagnostic.severity = Severity::kWarning;
      diagnostic.message = "class '" + schema.ClassName(isa[i].subclass) +
                           "' is declared ISA of itself (no effect)";
      diagnostic.entities.push_back(schema.ClassName(isa[i].subclass));
      diagnostic.location = context.IsaLocation(i);
      out->push_back(std::move(diagnostic));
    }
  }
};

}  // namespace

std::unique_ptr<LintRule> MakeIsaCycleRule() {
  return std::make_unique<IsaCycleRule>();
}

}  // namespace crsat
