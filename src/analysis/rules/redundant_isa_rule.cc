#include <memory>
#include <string>
#include <vector>

#include "src/analysis/rules.h"

namespace crsat {

namespace {

/// Reports declared ISA edges that are already implied by the remaining
/// declared edges (transitive shortcuts and exact duplicates). Removing a
/// flagged edge leaves the ISA closure unchanged.
class RedundantIsaRule : public LintRule {
 public:
  std::string_view id() const override { return "redundant-isa"; }
  std::string_view description() const override {
    return "ISA edges implied by the other declared ISA statements";
  }

  void Run(const LintContext& context,
           std::vector<Diagnostic>* out) const override {
    const Schema& schema = context.schema();
    const std::vector<IsaStatement>& isa = schema.isa_statements();
    for (int e = 0; e < static_cast<int>(isa.size()); ++e) {
      if (isa[e].subclass == isa[e].superclass) {
        continue;  // Self-loops belong to the isa-cycle rule.
      }
      if (!ReachableWithoutEdge(schema, e)) {
        continue;
      }
      Diagnostic diagnostic;
      diagnostic.rule = std::string(id());
      diagnostic.severity = Severity::kNote;
      diagnostic.message = "isa " + schema.ClassName(isa[e].subclass) + " < " +
                           schema.ClassName(isa[e].superclass) +
                           " is redundant: already implied by the other ISA "
                           "statements";
      diagnostic.entities = {schema.ClassName(isa[e].subclass),
                             schema.ClassName(isa[e].superclass)};
      diagnostic.location = context.IsaLocation(e);
      out->push_back(std::move(diagnostic));
    }
  }

 private:
  // Depth-first search from the edge's subclass to its superclass over
  // every declared edge except the `skip`-th one.
  static bool ReachableWithoutEdge(const Schema& schema, int skip) {
    const std::vector<IsaStatement>& isa = schema.isa_statements();
    const ClassId source = isa[skip].subclass;
    const ClassId target = isa[skip].superclass;
    std::vector<bool> visited(schema.num_classes(), false);
    std::vector<ClassId> stack = {source};
    visited[source.value] = true;
    while (!stack.empty()) {
      ClassId current = stack.back();
      stack.pop_back();
      for (int e = 0; e < static_cast<int>(isa.size()); ++e) {
        if (e == skip || isa[e].subclass != current) {
          continue;
        }
        if (isa[e].superclass == target) {
          return true;
        }
        if (!visited[isa[e].superclass.value]) {
          visited[isa[e].superclass.value] = true;
          stack.push_back(isa[e].superclass);
        }
      }
    }
    return false;
  }
};

}  // namespace

std::unique_ptr<LintRule> MakeRedundantIsaRule() {
  return std::make_unique<RedundantIsaRule>();
}

}  // namespace crsat
