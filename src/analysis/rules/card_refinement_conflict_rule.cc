#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/empty_classes.h"
#include "src/analysis/rules.h"

namespace crsat {

namespace {

/// Reports classes whose *inherited* bounds conflict: per Definition 3.1,
/// a class inherits the max of all declared minima and the min of all
/// declared maxima along ISA, and when two distinct declarations combine
/// into `min > max` the class is forced empty — detectable without any
/// expansion or LP. Single-declaration empty ranges are left to the
/// `empty-range` rule, and a conflict is reported only at the topmost
/// class exhibiting it (every subclass inherits the same conflict).
class CardRefinementConflictRule : public LintRule {
 public:
  std::string_view id() const override { return "card-refinement-conflict"; }
  std::string_view description() const override {
    return "inherited min exceeds inherited max along ISA refinements";
  }

  void Run(const LintContext& context,
           std::vector<Diagnostic>* out) const override {
    const Schema& schema = context.schema();

    // conflicted[c] holds the roles on which class c's lifted bound is an
    // empty range spanning two distinct declarations.
    const int n = schema.num_classes();
    std::vector<std::vector<RoleId>> conflicted_roles(n);
    std::vector<bool> conflicted(n, false);
    for (ClassId cls : schema.AllClasses()) {
      for (RelationshipId rel : schema.AllRelationships()) {
        for (RoleId role : schema.RolesOf(rel)) {
          if (!schema.IsSubclassOf(cls, schema.PrimaryClass(role))) {
            continue;
          }
          LiftedCardinality lifted = LiftCardinality(schema, cls, role);
          if (lifted.IsEmptyRange() && lifted.min_decl != lifted.max_decl) {
            conflicted[cls.value] = true;
            conflicted_roles[cls.value].push_back(role);
          }
        }
      }
    }

    for (ClassId cls : schema.AllClasses()) {
      if (!conflicted[cls.value]) {
        continue;
      }
      // Report only where the conflict first appears: skip `cls` when a
      // strictly-higher superclass (not ISA-equivalent to it) already
      // conflicts.
      bool dominated = false;
      for (ClassId super : schema.SuperclassesOf(cls)) {
        if (super != cls && conflicted[super.value] &&
            !schema.IsSubclassOf(super, cls)) {
          dominated = true;
          break;
        }
      }
      if (dominated) {
        continue;
      }
      for (RoleId role : conflicted_roles[cls.value]) {
        LiftedCardinality lifted = LiftCardinality(schema, cls, role);
        const CardinalityDeclaration& min_decl =
            schema.cardinality_declarations()[lifted.min_decl];
        const CardinalityDeclaration& max_decl =
            schema.cardinality_declarations()[lifted.max_decl];
        Diagnostic diagnostic;
        diagnostic.rule = std::string(id());
        diagnostic.severity = Severity::kError;
        diagnostic.message =
            "class '" + schema.ClassName(cls) + "' inherits min " +
            std::to_string(lifted.min) + " (from card on '" +
            schema.ClassName(min_decl.cls) + "') but max " +
            std::to_string(*lifted.max) + " (from card on '" +
            schema.ClassName(max_decl.cls) + "') for role '" +
            schema.RoleName(role) + "'; the class can never be populated";
        diagnostic.entities = {schema.ClassName(cls),
                               schema.ClassName(min_decl.cls),
                               schema.ClassName(max_decl.cls),
                               schema.RoleName(role)};
        // Point at the refinement declared later in the source — the one
        // that completed the conflict.
        diagnostic.location = context.CardinalityLocation(
            std::max(lifted.min_decl, lifted.max_decl));
        out->push_back(std::move(diagnostic));
      }
    }
  }
};

}  // namespace

std::unique_ptr<LintRule> MakeCardRefinementConflictRule() {
  return std::make_unique<CardRefinementConflictRule>();
}

}  // namespace crsat
