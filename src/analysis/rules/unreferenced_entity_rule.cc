#include <memory>
#include <string>
#include <vector>

#include "src/analysis/rules.h"

namespace crsat {

namespace {

/// Reports entities no declaration ever refers to:
///
///  * "unused-class" — a class that is no role's primary class, appears in
///    no ISA statement, carries no cardinality refinement, and belongs to
///    no disjointness or covering group. It cannot affect satisfiability
///    and is almost always a leftover or a typo'd name.
///  * "dangling-role" — a role no cardinality declaration constrains (on
///    its primary class or any subclass), so every participation defaults
///    to the implicit `(0, *)`. Harmless, but worth surfacing in a model
///    meant to bound cardinalities.
class UnreferencedEntityRule : public LintRule {
 public:
  std::string_view id() const override { return "unused-class"; }
  std::string_view description() const override {
    return "classes referenced by nothing; roles never constrained";
  }

  void Run(const LintContext& context,
           std::vector<Diagnostic>* out) const override {
    const Schema& schema = context.schema();

    std::vector<bool> class_used(schema.num_classes(), false);
    auto use = [&](ClassId cls) { class_used[cls.value] = true; };
    for (RelationshipId rel : schema.AllRelationships()) {
      for (RoleId role : schema.RolesOf(rel)) {
        use(schema.PrimaryClass(role));
      }
    }
    for (const IsaStatement& isa : schema.isa_statements()) {
      use(isa.subclass);
      use(isa.superclass);
    }
    for (const CardinalityDeclaration& decl :
         schema.cardinality_declarations()) {
      use(decl.cls);
    }
    for (const DisjointnessConstraint& group :
         schema.disjointness_constraints()) {
      for (ClassId cls : group.classes) {
        use(cls);
      }
    }
    for (const CoveringConstraint& covering : schema.covering_constraints()) {
      use(covering.covered);
      for (ClassId cls : covering.coverers) {
        use(cls);
      }
    }

    for (ClassId cls : schema.AllClasses()) {
      if (class_used[cls.value]) {
        continue;
      }
      Diagnostic diagnostic;
      diagnostic.rule = "unused-class";
      diagnostic.severity = Severity::kNote;
      diagnostic.message = "class '" + schema.ClassName(cls) +
                           "' is never referenced by any relationship, ISA, "
                           "or constraint";
      diagnostic.entities = {schema.ClassName(cls)};
      diagnostic.location = context.ClassLocation(cls);
      out->push_back(std::move(diagnostic));
    }

    std::vector<bool> role_constrained(schema.num_roles(), false);
    for (const CardinalityDeclaration& decl :
         schema.cardinality_declarations()) {
      role_constrained[decl.role.value] = true;
    }
    for (RelationshipId rel : schema.AllRelationships()) {
      for (RoleId role : schema.RolesOf(rel)) {
        if (role_constrained[role.value]) {
          continue;
        }
        Diagnostic diagnostic;
        diagnostic.rule = "dangling-role";
        diagnostic.severity = Severity::kNote;
        diagnostic.message =
            "role '" + schema.RoleName(role) + "' of relationship '" +
            schema.RelationshipName(rel) +
            "' has no cardinality declaration; participation of '" +
            schema.ClassName(schema.PrimaryClass(role)) +
            "' is unconstrained (0, *)";
        diagnostic.entities = {schema.RoleName(role),
                               schema.RelationshipName(rel)};
        diagnostic.location = context.RoleLocation(role);
        out->push_back(std::move(diagnostic));
      }
    }
  }
};

}  // namespace

std::unique_ptr<LintRule> MakeUnreferencedEntityRule() {
  return std::make_unique<UnreferencedEntityRule>();
}

}  // namespace crsat
