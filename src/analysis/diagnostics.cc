#include "src/analysis/diagnostics.h"

namespace crsat {

namespace {

// Escapes a string for inclusion in a JSON string literal.
std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* SeverityToString(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string FormatDiagnostic(const Diagnostic& diagnostic,
                             std::string_view source_name) {
  std::string out;
  if (diagnostic.location.IsKnown()) {
    if (!source_name.empty()) {
      out += std::string(source_name) + ":";
    }
    out += diagnostic.location.ToString() + ": ";
  } else if (!source_name.empty()) {
    out += std::string(source_name) + ": ";
  }
  out += SeverityToString(diagnostic.severity);
  out += ": ";
  out += diagnostic.message;
  out += " [" + diagnostic.rule + "]";
  return out;
}

std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics) {
  std::string json = "[";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (i > 0) {
      json += ",";
    }
    json += "\n  {\"rule\": \"" + JsonEscape(d.rule) + "\", \"severity\": \"";
    json += SeverityToString(d.severity);
    json += "\", \"message\": \"" + JsonEscape(d.message) + "\"";
    json += ", \"entities\": [";
    for (size_t k = 0; k < d.entities.size(); ++k) {
      if (k > 0) {
        json += ", ";
      }
      json += "\"" + JsonEscape(d.entities[k]) + "\"";
    }
    json += "]";
    if (d.location.IsKnown()) {
      json += ", \"line\": " + std::to_string(d.location.line) +
              ", \"column\": " + std::to_string(d.location.column);
    }
    json += "}";
  }
  json += diagnostics.empty() ? "]" : "\n]";
  return json;
}

bool HasErrors(const std::vector<Diagnostic>& diagnostics) {
  for (const Diagnostic& diagnostic : diagnostics) {
    if (diagnostic.severity == Severity::kError) {
      return true;
    }
  }
  return false;
}

}  // namespace crsat
