#ifndef CRSAT_ANALYSIS_LINT_ENGINE_H_
#define CRSAT_ANALYSIS_LINT_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/analysis/lint_rule.h"

namespace crsat {

class ResourceGuard;

/// An ordered collection of lint rules. `BuiltIn()` returns the default
/// rule set; callers may assemble custom registries (e.g. tests exercising
/// one rule in isolation).
class LintRuleRegistry {
 public:
  LintRuleRegistry() = default;
  LintRuleRegistry(LintRuleRegistry&&) = default;
  LintRuleRegistry& operator=(LintRuleRegistry&&) = default;

  /// All built-in rules (see src/analysis/rules.h), in reporting order.
  static LintRuleRegistry BuiltIn();

  /// Adds a rule; later rules run after earlier ones.
  void Register(std::unique_ptr<LintRule> rule);

  /// The rule whose `id()` matches, or null.
  const LintRule* Find(std::string_view id) const;

  const std::vector<std::unique_ptr<LintRule>>& rules() const {
    return rules_;
  }

 private:
  std::vector<std::unique_ptr<LintRule>> rules_;
};

/// Knobs for `RunLint`.
struct LintOptions {
  /// When non-empty, keep only diagnostics whose rule id is listed
  /// (diagnostic-level filter, so ids like "dangling-role" that share an
  /// implementation with "unused-class" are addressable).
  std::vector<std::string> rules;

  /// Optional resource guard (src/base/resource_guard.h), polled between
  /// rules. On a trip, `RunLint` stops running further rules and returns
  /// the diagnostics gathered so far — callers that care must consult
  /// `guard->tripped()` to tell a complete run from a truncated one.
  ResourceGuard* guard = nullptr;
};

/// Runs every registry rule over the schema and returns the findings
/// sorted by source position (unknown positions last), then severity
/// (errors first), then rule id. Purely structural: no expansion, no LP —
/// linear-ish in the schema size, so safe to run on every load.
std::vector<Diagnostic> RunLint(const LintRuleRegistry& registry,
                                const Schema& schema,
                                const SchemaSourceMap* source_map = nullptr,
                                const LintOptions& options = {});

/// Convenience: `RunLint` with the built-in registry.
std::vector<Diagnostic> RunLint(const Schema& schema,
                                const SchemaSourceMap* source_map = nullptr,
                                const LintOptions& options = {});

/// Convenience: `RunLint` over a parsed schema, using its source map.
std::vector<Diagnostic> RunLint(const NamedSchema& named,
                                const LintOptions& options = {});

}  // namespace crsat

#endif  // CRSAT_ANALYSIS_LINT_ENGINE_H_
