#include "src/analysis/lint_engine.h"

#include <algorithm>
#include <limits>
#include <tuple>
#include <utility>

#include "src/analysis/rules.h"
#include "src/base/resource_guard.h"

namespace crsat {

LintRuleRegistry LintRuleRegistry::BuiltIn() {
  LintRuleRegistry registry;
  registry.Register(MakeIsaCycleRule());
  registry.Register(MakeEmptyRangeRule());
  registry.Register(MakeCardRefinementConflictRule());
  registry.Register(MakeRedundantIsaRule());
  registry.Register(MakeUnreferencedEntityRule());
  registry.Register(MakeTriviallyUnsatRelationshipRule());
  return registry;
}

void LintRuleRegistry::Register(std::unique_ptr<LintRule> rule) {
  rules_.push_back(std::move(rule));
}

const LintRule* LintRuleRegistry::Find(std::string_view id) const {
  for (const std::unique_ptr<LintRule>& rule : rules_) {
    if (rule->id() == id) {
      return rule.get();
    }
  }
  return nullptr;
}

std::vector<Diagnostic> RunLint(const LintRuleRegistry& registry,
                                const Schema& schema,
                                const SchemaSourceMap* source_map,
                                const LintOptions& options) {
  LintContext context(schema, source_map);
  std::vector<Diagnostic> diagnostics;
  for (const std::unique_ptr<LintRule>& rule : registry.rules()) {
    if (options.guard != nullptr &&
        !options.guard->CheckNow("lint/rule").ok()) {
      break;  // Truncated run; the caller sees guard->tripped().
    }
    rule->Run(context, &diagnostics);
  }
  if (!options.rules.empty()) {
    diagnostics.erase(
        std::remove_if(diagnostics.begin(), diagnostics.end(),
                       [&](const Diagnostic& d) {
                         return std::find(options.rules.begin(),
                                          options.rules.end(),
                                          d.rule) == options.rules.end();
                       }),
        diagnostics.end());
  }
  auto sort_key = [](const Diagnostic& d) {
    int line = d.location.IsKnown() ? d.location.line
                                    : std::numeric_limits<int>::max();
    int column = d.location.IsKnown() ? d.location.column
                                      : std::numeric_limits<int>::max();
    // Higher severity first at equal positions.
    return std::make_tuple(line, column, -static_cast<int>(d.severity),
                           d.rule);
  };
  std::stable_sort(diagnostics.begin(), diagnostics.end(),
                   [&](const Diagnostic& a, const Diagnostic& b) {
                     return sort_key(a) < sort_key(b);
                   });
  return diagnostics;
}

std::vector<Diagnostic> RunLint(const Schema& schema,
                                const SchemaSourceMap* source_map,
                                const LintOptions& options) {
  return RunLint(LintRuleRegistry::BuiltIn(), schema, source_map, options);
}

std::vector<Diagnostic> RunLint(const NamedSchema& named,
                                const LintOptions& options) {
  return RunLint(named.schema, &named.source_map, options);
}

}  // namespace crsat
