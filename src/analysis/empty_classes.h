#ifndef CRSAT_ANALYSIS_EMPTY_CLASSES_H_
#define CRSAT_ANALYSIS_EMPTY_CLASSES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/cr/schema.h"

namespace crsat {

/// The cardinality bound a class effectively carries for a role after
/// inheriting every declaration along ISA (Definition 3.1's lifting:
/// max-of-mins, min-of-maxes over all declarations on superclasses).
/// `min_decl` / `max_decl` index `schema.cardinality_declarations()` and
/// identify the declaration responsible for each bound (-1 when the bound
/// is the implicit default `0` / infinity).
struct LiftedCardinality {
  std::uint64_t min = 0;
  std::optional<std::uint64_t> max;
  int min_decl = -1;
  int max_decl = -1;

  /// True iff no instance of the class can satisfy the bounds, i.e.
  /// `min > max`.
  bool IsEmptyRange() const { return max.has_value() && *max < min; }
};

/// Computes the lifted bound of `cls` for `role`. Meaningful when `cls` is
/// a (reflexive-transitive) subclass of the role's primary class; for
/// other classes the participation constraint does not apply.
LiftedCardinality LiftCardinality(const Schema& schema, ClassId cls,
                                  RoleId role);

/// Classes and relationships that cheap structural reasoning proves empty
/// in every finite model — no expansion, no LP (compare Theorem 3.3's full
/// procedure). Sound but deliberately incomplete: Figure 1 of the paper is
/// unsatisfiable yet structurally clean.
struct EmptyEntityAnalysis {
  /// Indexed by ClassId / RelationshipId value. An empty `reason` string
  /// means "not provably empty".
  std::vector<bool> class_empty;
  std::vector<std::string> class_reason;
  std::vector<bool> relationship_empty;
  std::vector<std::string> relationship_reason;

  bool AnyEmpty() const;
};

/// Runs the fixpoint. Derivation steps, iterated until stable:
///   1. a class whose lifted bound on some role has `min > max` is empty;
///   2. a class below two members of one disjointness group is empty;
///   3. subclasses of an empty class are empty;
///   4. a relationship with an empty primary class on any role is empty;
///   5. a class with lifted `min >= 1` on a role of an empty relationship
///      is empty;
///   6. a covered class whose coverers are all empty is empty.
EmptyEntityAnalysis ComputeProvablyEmpty(const Schema& schema);

}  // namespace crsat

#endif  // CRSAT_ANALYSIS_EMPTY_CLASSES_H_
