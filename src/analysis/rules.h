#ifndef CRSAT_ANALYSIS_RULES_H_
#define CRSAT_ANALYSIS_RULES_H_

// Factory functions for the built-in lint rules, one implementation file
// per rule under src/analysis/rules/. New rules: add a factory here,
// implement it in its own file, and register it in
// `LintRuleRegistry::BuiltIn()` (lint_engine.cc).

#include <memory>

#include "src/analysis/lint_rule.h"

namespace crsat {

/// "isa-cycle" (warning): a cycle of ISA statements forces every class on
/// the cycle to have the same extension.
std::unique_ptr<LintRule> MakeIsaCycleRule();

/// "empty-range" (error): a cardinality declaration with `min > max`.
std::unique_ptr<LintRule> MakeEmptyRangeRule();

/// "card-refinement-conflict" (error): a class whose inherited minimum
/// along ISA exceeds its inherited maximum (Definition 3.1 lifting),
/// across at least two distinct declarations.
std::unique_ptr<LintRule> MakeCardRefinementConflictRule();

/// "redundant-isa" (note): a declared ISA edge already implied by the
/// other declared edges.
std::unique_ptr<LintRule> MakeRedundantIsaRule();

/// "unused-class" (note) and "dangling-role" (note): classes referenced by
/// nothing, and roles whose participation is never constrained.
std::unique_ptr<LintRule> MakeUnreferencedEntityRule();

/// "trivially-unsat-relationship" (error): a relationship with a role
/// whose primary class is provably empty (see empty_classes.h).
std::unique_ptr<LintRule> MakeTriviallyUnsatRelationshipRule();

}  // namespace crsat

#endif  // CRSAT_ANALYSIS_RULES_H_
