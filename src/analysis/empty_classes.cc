#include "src/analysis/empty_classes.h"

namespace crsat {

LiftedCardinality LiftCardinality(const Schema& schema, ClassId cls,
                                  RoleId role) {
  LiftedCardinality lifted;
  const std::vector<CardinalityDeclaration>& declarations =
      schema.cardinality_declarations();
  for (int i = 0; i < static_cast<int>(declarations.size()); ++i) {
    const CardinalityDeclaration& decl = declarations[i];
    if (decl.role != role || !schema.IsSubclassOf(cls, decl.cls)) {
      continue;
    }
    if (decl.cardinality.min > lifted.min) {
      lifted.min = decl.cardinality.min;
      lifted.min_decl = i;
    }
    if (decl.cardinality.max.has_value() &&
        (!lifted.max.has_value() || *decl.cardinality.max < *lifted.max)) {
      lifted.max = decl.cardinality.max;
      lifted.max_decl = i;
    }
  }
  return lifted;
}

bool EmptyEntityAnalysis::AnyEmpty() const {
  for (bool empty : class_empty) {
    if (empty) {
      return true;
    }
  }
  for (bool empty : relationship_empty) {
    if (empty) {
      return true;
    }
  }
  return false;
}

EmptyEntityAnalysis ComputeProvablyEmpty(const Schema& schema) {
  const int num_classes = schema.num_classes();
  const int num_rels = schema.num_relationships();
  EmptyEntityAnalysis analysis;
  analysis.class_empty.assign(num_classes, false);
  analysis.class_reason.assign(num_classes, "");
  analysis.relationship_empty.assign(num_rels, false);
  analysis.relationship_reason.assign(num_rels, "");

  auto mark_class = [&](ClassId cls, const std::string& reason) -> bool {
    if (analysis.class_empty[cls.value]) {
      return false;
    }
    analysis.class_empty[cls.value] = true;
    analysis.class_reason[cls.value] = reason;
    return true;
  };

  // Seed 1: lifted empty range on any role the class legally participates
  // in (includes directly-declared `min > max` ranges).
  for (ClassId cls : schema.AllClasses()) {
    for (RelationshipId rel : schema.AllRelationships()) {
      for (RoleId role : schema.RolesOf(rel)) {
        if (!schema.IsSubclassOf(cls, schema.PrimaryClass(role))) {
          continue;
        }
        LiftedCardinality lifted = LiftCardinality(schema, cls, role);
        if (lifted.IsEmptyRange()) {
          mark_class(cls, "inherited bounds on role '" +
                              schema.RoleName(role) + "' require at least " +
                              std::to_string(lifted.min) + " but at most " +
                              std::to_string(*lifted.max) + " links");
        }
      }
    }
  }

  // Seed 2: a class below two members of one disjointness group.
  for (const DisjointnessConstraint& group :
       schema.disjointness_constraints()) {
    for (ClassId cls : schema.AllClasses()) {
      for (size_t a = 0; a < group.classes.size(); ++a) {
        for (size_t b = a + 1; b < group.classes.size(); ++b) {
          if (schema.IsSubclassOf(cls, group.classes[a]) &&
              schema.IsSubclassOf(cls, group.classes[b])) {
            mark_class(cls, "subclass of both disjoint classes '" +
                                schema.ClassName(group.classes[a]) + "' and '" +
                                schema.ClassName(group.classes[b]) + "'");
          }
        }
      }
    }
  }

  // Fixpoint over the propagation steps.
  bool changed = true;
  while (changed) {
    changed = false;

    // Subclasses of an empty class are empty.
    for (ClassId cls : schema.AllClasses()) {
      if (analysis.class_empty[cls.value]) {
        continue;
      }
      for (ClassId super : schema.SuperclassesOf(cls)) {
        if (super != cls && analysis.class_empty[super.value]) {
          changed |= mark_class(cls, "subclass of provably-empty class '" +
                                         schema.ClassName(super) + "'");
          break;
        }
      }
    }

    // A relationship with an empty primary class on any role is empty.
    for (RelationshipId rel : schema.AllRelationships()) {
      if (analysis.relationship_empty[rel.value]) {
        continue;
      }
      for (RoleId role : schema.RolesOf(rel)) {
        ClassId primary = schema.PrimaryClass(role);
        if (analysis.class_empty[primary.value]) {
          analysis.relationship_empty[rel.value] = true;
          analysis.relationship_reason[rel.value] =
              "role '" + schema.RoleName(role) +
              "' requires a filler from provably-empty class '" +
              schema.ClassName(primary) + "'";
          changed = true;
          break;
        }
      }
    }

    // A class that must participate (lifted min >= 1) in an empty
    // relationship is empty.
    for (ClassId cls : schema.AllClasses()) {
      if (analysis.class_empty[cls.value]) {
        continue;
      }
      for (RelationshipId rel : schema.AllRelationships()) {
        if (!analysis.relationship_empty[rel.value]) {
          continue;
        }
        for (RoleId role : schema.RolesOf(rel)) {
          if (!schema.IsSubclassOf(cls, schema.PrimaryClass(role))) {
            continue;
          }
          if (LiftCardinality(schema, cls, role).min >= 1) {
            changed |= mark_class(
                cls, "must participate in provably-empty relationship '" +
                         schema.RelationshipName(rel) + "' via role '" +
                         schema.RoleName(role) + "'");
            break;
          }
        }
        if (analysis.class_empty[cls.value]) {
          break;
        }
      }
    }

    // A covered class whose coverers are all empty is empty.
    for (const CoveringConstraint& covering : schema.covering_constraints()) {
      if (analysis.class_empty[covering.covered.value]) {
        continue;
      }
      bool all_empty = true;
      for (ClassId coverer : covering.coverers) {
        if (!analysis.class_empty[coverer.value]) {
          all_empty = false;
          break;
        }
      }
      if (all_empty) {
        changed |= mark_class(covering.covered,
                              "covered exclusively by provably-empty classes");
      }
    }
  }

  return analysis;
}

}  // namespace crsat
