#ifndef CRSAT_ANALYSIS_DIAGNOSTICS_H_
#define CRSAT_ANALYSIS_DIAGNOSTICS_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/cr/source_location.h"

namespace crsat {

/// How bad a lint finding is.
///
///  * `kError`   — the schema is provably broken (some class or
///                 relationship can never be populated). `crsat_cli lint`
///                 exits non-zero when any error is present.
///  * `kWarning` — almost certainly an authoring mistake (e.g. an ISA
///                 cycle forcing classes equal), but every class may still
///                 be satisfiable.
///  * `kNote`    — stylistic or informational (redundant/unused
///                 declarations).
enum class Severity {
  kNote,
  kWarning,
  kError,
};

/// Stable lowercase name ("note", "warning", "error").
const char* SeverityToString(Severity severity);

/// One structured lint finding. `rule` is the stable rule id (e.g.
/// "isa-cycle"); `entities` names the affected classes / relationships /
/// roles; `location` points into the DSL source when the schema was parsed
/// from text (unknown otherwise).
struct Diagnostic {
  std::string rule;
  Severity severity = Severity::kNote;
  std::string message;
  std::vector<std::string> entities;
  SourceLocation location;
};

/// Renders "source:line:col: severity: message [rule]" (the location part
/// is omitted when unknown; `source_name` may be empty).
std::string FormatDiagnostic(const Diagnostic& diagnostic,
                             std::string_view source_name);

/// Renders the findings as a JSON array of objects with keys `rule`,
/// `severity`, `message`, `entities`, and (when known) `line` / `column`.
std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics);

/// True iff any finding has `kError` severity.
bool HasErrors(const std::vector<Diagnostic>& diagnostics);

}  // namespace crsat

#endif  // CRSAT_ANALYSIS_DIAGNOSTICS_H_
