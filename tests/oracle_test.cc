// Tests for the brute-force conformance oracle and the metamorphic
// rewrite library (src/oracle/).
//
// This binary deliberately links ONLY crsat_core + crsat_oracle (see
// tests/CMakeLists.txt): it is the link-time proof that the oracle does
// not depend on expansion/, lp/ or reasoner/ code. Do not include any
// header from those directories here.

#include <gtest/gtest.h>

#include "src/cr/model_checker.h"
#include "src/cr/schema.h"
#include "src/cr/schema_text.h"
#include "src/generator/random_schema.h"
#include "src/oracle/brute_force.h"
#include "src/oracle/metamorphic.h"
#include "src/oracle/schema_parts.h"

namespace crsat {
namespace {

Cardinality Card(std::uint64_t min, std::optional<std::uint64_t> max) {
  Cardinality cardinality;
  cardinality.min = min;
  cardinality.max = max;
  return cardinality;
}

Schema Build(SchemaBuilder& builder) {
  Result<Schema> schema = builder.Build();
  EXPECT_TRUE(schema.ok()) << schema.status();
  return std::move(schema).value();
}

bool OracleSat(const OracleReport& report, const Schema& schema,
               const std::string& cls) {
  return report.Satisfiable(*schema.FindClass(cls));
}

// The paper's Figure 1 interaction: ISA makes an LN-satisfiable
// constraint set unsatisfiable. Every C needs >= 2 tuples at V1, every
// tuple puts a D at V2, every D (a subset of C!) tolerates <= 1 tuple at
// V2 — so 2|C| <= |D| <= |C|, forcing C (and D) empty.
TEST(BruteForceOracle, IsaCardinalityInteractionIsUnsat) {
  SchemaBuilder builder;
  builder.AddClass("C");
  builder.AddClass("D");
  builder.AddIsa("D", "C");
  builder.AddRelationship("R", {{"V1", "C"}, {"V2", "D"}});
  builder.SetCardinality("C", "R", "V1", Card(2, std::nullopt));
  builder.SetCardinality("D", "R", "V2", Card(0, 1));
  Schema schema = Build(builder);

  Result<OracleReport> report = BruteForceOracle::Decide(schema);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(OracleSat(*report, schema, "C"));
  EXPECT_FALSE(OracleSat(*report, schema, "D"));
}

// Without the ISA edge the same cardinalities are satisfiable — the
// oracle must see the difference (this is the whole point of the paper).
TEST(BruteForceOracle, SameCardinalitiesWithoutIsaAreSat) {
  SchemaBuilder builder;
  builder.AddClass("C");
  builder.AddClass("D");
  builder.AddRelationship("R", {{"V1", "C"}, {"V2", "D"}});
  builder.SetCardinality("C", "R", "V1", Card(2, std::nullopt));
  builder.SetCardinality("D", "R", "V2", Card(0, 1));
  Schema schema = Build(builder);

  Result<OracleReport> report = BruteForceOracle::Decide(schema);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(OracleSat(*report, schema, "C"));
  EXPECT_TRUE(OracleSat(*report, schema, "D"));
}

TEST(BruteForceOracle, SimpleSatWithCertifiedModel) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("B");
  builder.AddRelationship("R", {{"U", "A"}, {"V", "B"}});
  builder.SetCardinality("A", "R", "U", Card(1, 2));
  builder.SetCardinality("B", "R", "V", Card(1, 1));
  Schema schema = Build(builder);

  Result<OracleReport> report = BruteForceOracle::Decide(schema);
  ASSERT_TRUE(report.ok()) << report.status();
  for (ClassId cls : schema.AllClasses()) {
    EXPECT_TRUE(report->Satisfiable(cls)) << schema.ClassName(cls);
    // The report carries an exemplar model; re-judging it must agree.
    ASSERT_TRUE(report->models[cls.value].has_value());
    const Interpretation& model = *report->models[cls.value];
    EXPECT_FALSE(model.ClassExtension(cls).empty());
    EXPECT_TRUE(ModelChecker::CheckModel(schema, model).empty());
    EXPECT_LE(model.domain_size(), OracleOptions().max_domain);
  }
}

TEST(BruteForceOracle, DisjointSuperclassesForceSubclassEmpty) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("B");
  builder.AddClass("C");
  builder.AddIsa("C", "A");
  builder.AddIsa("C", "B");
  builder.AddDisjointness({"A", "B"});
  Schema schema = Build(builder);

  Result<OracleReport> report = BruteForceOracle::Decide(schema);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(OracleSat(*report, schema, "A"));
  EXPECT_TRUE(OracleSat(*report, schema, "B"));
  EXPECT_FALSE(OracleSat(*report, schema, "C"));
}

// Covering propagates emptiness upward: B is forced empty by its own
// cardinalities, and A (covered by B alone) must then be empty too.
TEST(BruteForceOracle, CoveringPropagatesEmptiness) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("B");
  builder.AddIsa("B", "A");
  builder.AddCovering("A", {"B"});
  builder.AddRelationship("R", {{"U", "B"}, {"V", "B"}});
  builder.SetCardinality("B", "R", "U", Card(2, std::nullopt));
  builder.SetCardinality("B", "R", "V", Card(0, 1));
  Schema schema = Build(builder);

  Result<OracleReport> report = BruteForceOracle::Decide(schema);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(OracleSat(*report, schema, "B"));
  EXPECT_FALSE(OracleSat(*report, schema, "A"));
}

// A refinement that contradicts the superclass declaration empties the
// subclass but leaves the superclass satisfiable.
TEST(BruteForceOracle, ConflictingRefinementEmptiesSubclassOnly) {
  SchemaBuilder builder;
  builder.AddClass("C");
  builder.AddClass("D");
  builder.AddIsa("D", "C");
  builder.AddRelationship("R", {{"U", "C"}, {"V", "C"}});
  builder.SetCardinality("C", "R", "U", Card(1, 1));
  builder.SetCardinality("D", "R", "U", Card(2, 2));
  Schema schema = Build(builder);

  Result<OracleReport> report = BruteForceOracle::Decide(schema);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(OracleSat(*report, schema, "C"));
  EXPECT_FALSE(OracleSat(*report, schema, "D"));
}

TEST(BruteForceOracle, ArityThreeSolvesWithBacktracking) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("B");
  builder.AddClass("C");
  builder.AddRelationship(
      "S", {{"X", "A"}, {"Y", "B"}, {"Z", "C"}});
  builder.SetCardinality("A", "S", "X", Card(1, 2));
  builder.SetCardinality("B", "S", "Y", Card(1, std::nullopt));
  Schema schema = Build(builder);

  Result<OracleReport> report = BruteForceOracle::Decide(schema);
  ASSERT_TRUE(report.ok()) << report.status();
  for (ClassId cls : schema.AllClasses()) {
    EXPECT_TRUE(report->Satisfiable(cls)) << schema.ClassName(cls);
  }
}

// Minimum model needs 4 individuals (one A, three Bs — the disjointness
// stops one individual from playing both roles): the verdict must flip
// from UNSAT-up-to-bound to SAT exactly when the bound admits it.
TEST(BruteForceOracle, VerdictIsBoundSensitive) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("B");
  builder.AddRelationship("R", {{"U", "A"}, {"V", "B"}});
  builder.SetCardinality("A", "R", "U", Card(3, std::nullopt));
  builder.SetCardinality("B", "R", "V", Card(0, 1));
  builder.AddDisjointness({"A", "B"});
  Schema schema = Build(builder);

  OracleOptions tight;
  tight.max_domain = 3;
  Result<OracleReport> bounded = BruteForceOracle::Decide(schema, tight);
  ASSERT_TRUE(bounded.ok()) << bounded.status();
  EXPECT_FALSE(OracleSat(*bounded, schema, "A"));

  OracleOptions enough;
  enough.max_domain = 4;
  Result<OracleReport> unbounded = BruteForceOracle::Decide(schema, enough);
  ASSERT_TRUE(unbounded.ok()) << unbounded.status();
  EXPECT_TRUE(OracleSat(*unbounded, schema, "A"));
  EXPECT_EQ(unbounded->classes[schema.FindClass("A")->value]
                .model_domain_size,
            4);
}

TEST(BruteForceOracle, ExhaustedBudgetIsAnErrorNotAVerdict) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("B");
  builder.AddDisjointness({"A", "B"});
  Schema schema = Build(builder);

  OracleOptions options;
  options.max_assignments = 1;
  Result<OracleReport> report = BruteForceOracle::Decide(schema, options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kResourceExhausted);
}

TEST(BruteForceOracle, RefusesSchemasTooWideToEnumerate) {
  SchemaBuilder builder;
  for (int i = 0; i < 17; ++i) {
    builder.AddClass("C" + std::to_string(i));
  }
  Schema schema = Build(builder);
  Result<OracleReport> report = BruteForceOracle::Decide(schema);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

// --- SchemaParts round trip -------------------------------------------

TEST(SchemaParts, RoundTripsThroughBuilder) {
  RandomSchemaParams params;
  params.seed = 7;
  params.num_disjointness_groups = 1;
  Result<Schema> schema = GenerateRandomSchema(params);
  ASSERT_TRUE(schema.ok()) << schema.status();

  Result<Schema> rebuilt = SchemaParts::FromSchema(*schema).Build();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_EQ(SchemaToText(*schema, "s"), SchemaToText(*rebuilt, "s"));
}

// --- Metamorphic rewrites ---------------------------------------------

Schema SmallMutationTarget() {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("B");
  builder.AddClass("C");
  builder.AddIsa("B", "A");
  builder.AddIsa("C", "B");
  builder.AddRelationship("R", {{"U", "A"}, {"V", "B"}});
  builder.SetCardinality("A", "R", "U", Card(1, 2));
  builder.SetCardinality("B", "R", "V", Card(0, 3));
  builder.AddDisjointness({"A", "C"});
  return Build(builder);
}

TEST(Metamorphic, AppliesEveryRuleToARichSchema) {
  Schema schema = SmallMutationTarget();
  Result<std::vector<MutatedSchema>> mutants =
      ApplyMetamorphicRules(schema, /*seed=*/11);
  ASSERT_TRUE(mutants.ok()) << mutants.status();
  // The schema has relationships, cards, composable ISA and disjointness,
  // so all eight rules are applicable.
  EXPECT_EQ(mutants->size(), MetamorphicRuleNames().size());
  for (const MutatedSchema& mutant : *mutants) {
    EXPECT_GE(mutant.schema.AllClasses().size(),
              schema.AllClasses().size())
        << mutant.rule_name;
    ASSERT_EQ(mutant.class_map.size(), schema.AllClasses().size());
  }
}

TEST(Metamorphic, SameSeedSameMutants) {
  Schema schema = SmallMutationTarget();
  Result<std::vector<MutatedSchema>> first =
      ApplyMetamorphicRules(schema, 3);
  Result<std::vector<MutatedSchema>> second =
      ApplyMetamorphicRules(schema, 3);
  ASSERT_TRUE(first.ok() && second.ok());
  ASSERT_EQ(first->size(), second->size());
  for (size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ(SchemaToText((*first)[i].schema, "m"),
              SchemaToText((*second)[i].schema, "m"));
  }
}

// The oracle doubles as the judge of the rewrite rules themselves: on a
// small schema every declared verdict relation must hold against ground
// truth. (The conformance harness then holds the *reasoner* to the same
// contract over thousands of seeds.)
TEST(Metamorphic, VerdictRelationsHoldAgainstOracle) {
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    RandomSchemaParams params;
    params.seed = seed;
    params.num_classes = 3;
    params.num_relationships = 2;
    params.isa_density = 0.4;
    Result<Schema> schema = GenerateRandomSchema(params);
    ASSERT_TRUE(schema.ok()) << schema.status();
    Result<OracleReport> original = BruteForceOracle::Decide(*schema);
    ASSERT_TRUE(original.ok()) << original.status();

    Result<std::vector<MutatedSchema>> mutants =
        ApplyMetamorphicRules(*schema, seed);
    ASSERT_TRUE(mutants.ok()) << mutants.status();
    for (const MutatedSchema& mutant : *mutants) {
      Result<OracleReport> mutated =
          BruteForceOracle::Decide(mutant.schema);
      ASSERT_TRUE(mutated.ok())
          << mutant.rule_name << ": " << mutated.status();
      for (ClassId cls : schema->AllClasses()) {
        const bool before = original->Satisfiable(cls);
        const bool after =
            mutated->Satisfiable(mutant.class_map[cls.value]);
        switch (mutant.relation) {
          case VerdictRelation::kEquisatisfiable:
            EXPECT_EQ(before, after)
                << mutant.rule_name << " seed " << seed << " class "
                << schema->ClassName(cls);
            break;
          case VerdictRelation::kSatPreserved:
            EXPECT_TRUE(!before || after)
                << mutant.rule_name << " seed " << seed << " class "
                << schema->ClassName(cls);
            break;
          case VerdictRelation::kUnsatPreserved:
            EXPECT_TRUE(before || !after)
                << mutant.rule_name << " seed " << seed << " class "
                << schema->ClassName(cls);
            break;
        }
      }
    }
  }
}

}  // namespace
}  // namespace crsat
