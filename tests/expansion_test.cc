#include "src/expansion/expansion.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "tests/test_schemas.h"

namespace crsat {
namespace {

using crsat::testing::MeetingSchema;

TEST(CompoundClassTest, MembershipAndConstruction) {
  CompoundClass empty;
  EXPECT_TRUE(empty.IsEmpty());
  EXPECT_EQ(empty.size(), 0);
  CompoundClass compound = CompoundClass::Of({ClassId(0), ClassId(2)});
  EXPECT_EQ(compound.mask(), 0b101u);
  EXPECT_EQ(compound.size(), 2);
  EXPECT_TRUE(compound.Contains(ClassId(0)));
  EXPECT_FALSE(compound.Contains(ClassId(1)));
  EXPECT_TRUE(compound.Contains(ClassId(2)));
  std::vector<ClassId> members = compound.Members();
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0], ClassId(0));
  EXPECT_EQ(members[1], ClassId(2));
  EXPECT_EQ(compound.With(ClassId(1)).mask(), 0b111u);
}

TEST(CompoundClassTest, ConsistencyIsUpwardClosureUnderIsa) {
  Schema schema = MeetingSchema();  // Speaker=0, Discussant=1, Talk=2.
  // {Discussant} without {Speaker} is inconsistent.
  EXPECT_FALSE(CompoundClass(0b010).IsConsistentIn(schema));
  EXPECT_TRUE(CompoundClass(0b001).IsConsistentIn(schema));
  EXPECT_TRUE(CompoundClass(0b011).IsConsistentIn(schema));
  EXPECT_TRUE(CompoundClass(0b100).IsConsistentIn(schema));
  EXPECT_FALSE(CompoundClass(0b110).IsConsistentIn(schema));
  EXPECT_TRUE(CompoundClass(0b111).IsConsistentIn(schema));
}

TEST(CompoundClassTest, ExtendedConsistencyHonorsDisjointness) {
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("B");
  builder.AddRelationship("R", {{"U", "A"}, {"V", "B"}});
  builder.AddDisjointness({"A", "B"});
  Schema schema = builder.Build().value();
  EXPECT_TRUE(CompoundClass(0b11).IsConsistentIn(schema));
  EXPECT_FALSE(CompoundClass(0b11).IsExtendedConsistentIn(schema));
  EXPECT_TRUE(CompoundClass(0b01).IsExtendedConsistentIn(schema));
}

TEST(CompoundClassTest, ExtendedConsistencyHonorsCovering) {
  SchemaBuilder builder;
  builder.AddClass("Person");
  builder.AddClass("Adult");
  builder.AddClass("Minor");
  builder.AddIsa("Adult", "Person");
  builder.AddIsa("Minor", "Person");
  builder.AddRelationship("R", {{"U", "Person"}, {"V", "Person"}});
  builder.AddCovering("Person", {"Adult", "Minor"});
  Schema schema = builder.Build().value();
  // {Person} alone violates the covering; {Person, Adult} satisfies it.
  EXPECT_FALSE(CompoundClass(0b001).IsExtendedConsistentIn(schema));
  EXPECT_TRUE(CompoundClass(0b011).IsExtendedConsistentIn(schema));
  EXPECT_TRUE(CompoundClass(0b101).IsExtendedConsistentIn(schema));
  // {Adult} without {Person} fails plain ISA consistency already.
  EXPECT_FALSE(CompoundClass(0b010).IsExtendedConsistentIn(schema));
}

TEST(ExpansionTest, MeetingSchemaMatchesFigure4CompoundClasses) {
  // Figure 4: consistent compound classes are {S}, {T}, {S,D}, {S,T},
  // {S,D,T} (the paper's C1, C3, C4, C5, C7).
  Schema schema = MeetingSchema();
  Expansion expansion = Expansion::Build(schema).value();
  std::vector<std::uint64_t> masks;
  for (const CompoundClass& compound : expansion.classes()) {
    masks.push_back(compound.mask());
  }
  // Speaker=bit0, Discussant=bit1, Talk=bit2.
  EXPECT_EQ(masks, (std::vector<std::uint64_t>{0b001, 0b011, 0b100, 0b101,
                                               0b111}));
  EXPECT_EQ(expansion.total_compound_class_count(), 7u);
}

TEST(ExpansionTest, MeetingSchemaMatchesFigure4CompoundRelationships) {
  // Figure 4: 12 consistent compound relationships for Holds (4 Speaker-
  // containing x 3 Talk-containing) and 6 for Participates (2 x 3).
  Schema schema = MeetingSchema();
  Expansion expansion = Expansion::Build(schema).value();
  RelationshipId holds = schema.FindRelationship("Holds").value();
  RelationshipId participates =
      schema.FindRelationship("Participates").value();
  EXPECT_EQ(expansion.RelationshipIndicesOf(holds).size(), 12u);
  EXPECT_EQ(expansion.RelationshipIndicesOf(participates).size(), 6u);
  EXPECT_EQ(expansion.relationships().size(), 18u);
  // Every compound relationship is consistent by construction.
  for (const CompoundRelationship& compound : expansion.relationships()) {
    EXPECT_TRUE(compound.IsConsistentIn(schema, /*extended=*/true));
  }
}

TEST(ExpansionTest, MeetingSchemaLiftedCardinalitiesMatchFigure4) {
  Schema schema = MeetingSchema();
  Expansion expansion = Expansion::Build(schema).value();
  RelationshipId holds = schema.FindRelationship("Holds").value();
  RelationshipId participates =
      schema.FindRelationship("Participates").value();
  RoleId u1 = schema.FindRole("U1").value();
  RoleId u2 = schema.FindRole("U2").value();
  RoleId u3 = schema.FindRole("U3").value();
  RoleId u4 = schema.FindRole("U4").value();

  auto lifted = [&](std::uint64_t mask, RelationshipId rel, RoleId role) {
    int index = expansion.ClassIndexOf(CompoundClass(mask));
    EXPECT_GE(index, 0);
    return expansion.LiftedCardinality(index, rel, role);
  };

  // minc({S},H,U1) = 1, maxc = inf.
  EXPECT_EQ(lifted(0b001, holds, u1).min, 1u);
  EXPECT_FALSE(lifted(0b001, holds, u1).max.has_value());
  // {S,D}: minc 1 (from Speaker), maxc 2 (Discussant refinement).
  EXPECT_EQ(lifted(0b011, holds, u1).min, 1u);
  EXPECT_EQ(lifted(0b011, holds, u1).max, std::optional<std::uint64_t>(2));
  // {S,T} at U1: like {S}.
  EXPECT_EQ(lifted(0b101, holds, u1).min, 1u);
  EXPECT_FALSE(lifted(0b101, holds, u1).max.has_value());
  // {S,D,T} at U1: like {S,D}.
  EXPECT_EQ(lifted(0b111, holds, u1).min, 1u);
  EXPECT_EQ(lifted(0b111, holds, u1).max, std::optional<std::uint64_t>(2));
  // Talk-containing classes at U2: (1,1).
  for (std::uint64_t mask : {0b100u, 0b101u, 0b111u}) {
    EXPECT_EQ(lifted(mask, holds, u2).min, 1u);
    EXPECT_EQ(lifted(mask, holds, u2).max, std::optional<std::uint64_t>(1));
  }
  // Discussant-containing classes at U3: (1,1).
  for (std::uint64_t mask : {0b011u, 0b111u}) {
    EXPECT_EQ(lifted(mask, participates, u3).min, 1u);
    EXPECT_EQ(lifted(mask, participates, u3).max,
              std::optional<std::uint64_t>(1));
  }
  // Talk-containing classes at U4: (1, inf).
  for (std::uint64_t mask : {0b100u, 0b101u, 0b111u}) {
    EXPECT_EQ(lifted(mask, participates, u4).min, 1u);
    EXPECT_FALSE(lifted(mask, participates, u4).max.has_value());
  }
}

TEST(ExpansionTest, ClassIndicesContainingIsTheUnionIndex) {
  Schema schema = MeetingSchema();
  Expansion expansion = Expansion::Build(schema).value();
  ClassId speaker = schema.FindClass("Speaker").value();
  ClassId discussant = schema.FindClass("Discussant").value();
  ClassId talk = schema.FindClass("Talk").value();
  EXPECT_EQ(expansion.ClassIndicesContaining(speaker).size(), 4u);
  EXPECT_EQ(expansion.ClassIndicesContaining(discussant).size(), 2u);
  EXPECT_EQ(expansion.ClassIndicesContaining(talk).size(), 3u);
  for (int index : expansion.ClassIndicesContaining(discussant)) {
    EXPECT_TRUE(expansion.classes()[index].Contains(discussant));
    EXPECT_TRUE(expansion.classes()[index].Contains(speaker));  // ISA.
  }
}

TEST(ExpansionTest, RelationshipsWithIndexesSumsCorrectly) {
  Schema schema = MeetingSchema();
  Expansion expansion = Expansion::Build(schema).value();
  RelationshipId holds = schema.FindRelationship("Holds").value();
  // {S,D} at role position 0 of Holds: one compound relationship per
  // Talk-containing compound class at position 1.
  int sd = expansion.ClassIndexOf(CompoundClass(0b011));
  const std::vector<int>& with_sd = expansion.RelationshipsWith(holds, 0, sd);
  EXPECT_EQ(with_sd.size(), 3u);
  for (int rel_index : with_sd) {
    EXPECT_EQ(expansion.relationships()[rel_index].components[0],
              CompoundClass(0b011));
  }
  // Sanity: lists partition the 12 Holds compound relationships.
  size_t total = 0;
  for (int ci = 0; ci < static_cast<int>(expansion.classes().size()); ++ci) {
    total += expansion.RelationshipsWith(holds, 0, ci).size();
  }
  EXPECT_EQ(total, 12u);
}

TEST(ExpansionTest, DisjointnessPrunesTheExpansion) {
  // The paper's Section 5 observation: declaring Speaker and Talk disjoint
  // shrinks the expansion to "just a few unknowns".
  SchemaBuilder builder = MeetingSchema().ToBuilder();
  builder.AddDisjointness({"Speaker", "Talk"});
  Schema schema = builder.Build().value();
  Expansion expansion = Expansion::Build(schema).value();
  // {S,T} and {S,D,T} are now inconsistent: 3 compound classes remain.
  EXPECT_EQ(expansion.classes().size(), 3u);
  // Holds: 2 Speaker-containing x 1 Talk-containing; Participates: 1 x 1.
  EXPECT_EQ(expansion.relationships().size(), 3u);

  // With use_extensions=false the pruning is disabled.
  ExpansionOptions no_extensions;
  no_extensions.use_extensions = false;
  Expansion unpruned = Expansion::Build(schema, no_extensions).value();
  EXPECT_EQ(unpruned.classes().size(), 5u);
}

TEST(ExpansionTest, CoveringPrunesLeafCompounds) {
  SchemaBuilder builder;
  builder.AddClass("Person");
  builder.AddClass("Adult");
  builder.AddClass("Minor");
  builder.AddIsa("Adult", "Person");
  builder.AddIsa("Minor", "Person");
  builder.AddRelationship("R", {{"U", "Person"}, {"V", "Person"}});
  builder.AddCovering("Person", {"Adult", "Minor"});
  Schema schema = builder.Build().value();
  Expansion expansion = Expansion::Build(schema).value();
  for (const CompoundClass& compound : expansion.classes()) {
    if (compound.Contains(schema.FindClass("Person").value())) {
      EXPECT_TRUE(compound.Contains(schema.FindClass("Adult").value()) ||
                  compound.Contains(schema.FindClass("Minor").value()))
          << compound.ToString(schema);
    }
  }
}

TEST(ExpansionTest, EmptyPrimaryCandidateListYieldsNoCompoundRelationships) {
  // A relationship whose primary class cannot be consistently populated:
  // B <= A, B <= C, A and C disjoint -> no compound class contains B.
  SchemaBuilder builder;
  builder.AddClass("A");
  builder.AddClass("B");
  builder.AddClass("C");
  builder.AddIsa("B", "A");
  builder.AddIsa("B", "C");
  builder.AddDisjointness({"A", "C"});
  builder.AddRelationship("R", {{"U", "B"}, {"V", "A"}});
  Schema schema = builder.Build().value();
  Expansion expansion = Expansion::Build(schema).value();
  RelationshipId r = schema.FindRelationship("R").value();
  EXPECT_TRUE(expansion.RelationshipIndicesOf(r).empty());
  EXPECT_TRUE(
      expansion.ClassIndicesContaining(schema.FindClass("B").value()).empty());
}

TEST(ExpansionTest, CapsAreEnforced) {
  Schema schema = MeetingSchema();
  ExpansionOptions tiny;
  tiny.max_consistent_classes = 2;
  Result<Expansion> result = Expansion::Build(schema, tiny);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);

  ExpansionOptions tiny_rels;
  tiny_rels.max_compound_relationships = 5;
  Result<Expansion> rel_result = Expansion::Build(schema, tiny_rels);
  ASSERT_FALSE(rel_result.ok());
  EXPECT_EQ(rel_result.status().code(), StatusCode::kUnavailable);
}

TEST(ExpansionTest, AllCompoundClassesEnumeratesEverySubset) {
  Schema schema = MeetingSchema();
  std::vector<CompoundClass> all = AllCompoundClasses(schema).value();
  EXPECT_EQ(all.size(), 7u);
  std::set<std::uint64_t> masks;
  for (const CompoundClass& compound : all) {
    masks.insert(compound.mask());
  }
  EXPECT_EQ(masks.size(), 7u);
}

TEST(ExpansionTest, AllCompoundRelationshipsEnumeratesProduct) {
  Schema schema = MeetingSchema();
  RelationshipId holds = schema.FindRelationship("Holds").value();
  std::vector<CompoundRelationship> all =
      AllCompoundRelationships(schema, holds).value();
  EXPECT_EQ(all.size(), 49u);  // 7 x 7 as in Figure 4's Hij grid.
}

TEST(ExpansionTest, ToStringListsFigure4Content) {
  Schema schema = MeetingSchema();
  Expansion expansion = Expansion::Build(schema).value();
  std::string text = expansion.ToString();
  EXPECT_NE(text.find("Consistent compound classes (5)"), std::string::npos);
  EXPECT_NE(text.find("Consistent compound relationships (18)"),
            std::string::npos);
  EXPECT_NE(text.find("{Speaker,Discussant}"), std::string::npos);
}

}  // namespace
}  // namespace crsat
